"""SDC severity: how *wrong* is a corrupted output?

The paper's three-way classification treats every SDC alike; protection
studies usually also care about output quality (a 1-ulp wobble in one
element vs a NaN-poisoned matrix).  :class:`SeverityInjector` wraps a
:class:`~repro.faults.injector.FaultInjector` and, for runs that complete,
quantifies the output deviation:

* ``corrupted_elements`` — elements differing from golden;
* ``max_rel_error`` — worst relative deviation over float outputs
  (``inf`` when NaN/Inf appears where the golden value was finite).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import HangDetected, MemoryFault
from .injector import FaultInjector
from .outcome import Outcome
from .site import FaultSite


@dataclass(frozen=True)
class InjectionRecord:
    """One injection's outcome plus its output-quality impact."""

    site: FaultSite
    outcome: Outcome
    corrupted_elements: int = 0
    total_elements: int = 0
    max_rel_error: float = 0.0

    @property
    def corruption_fraction(self) -> float:
        if self.total_elements == 0:
            return 0.0
        return self.corrupted_elements / self.total_elements


class SeverityInjector:
    """Outcome classification augmented with output-deviation metrics."""

    def __init__(self, injector: FaultInjector) -> None:
        self._injector = injector
        instance = injector.instance
        golden = injector._golden_memory
        self._golden_outputs = instance.read_outputs(golden)

    def inject(self, site: FaultSite) -> InjectionRecord:
        injector = self._injector
        outcome = injector.inject(site)
        if outcome is not Outcome.SDC:
            total = sum(buf.count for buf in injector.instance.outputs)
            return InjectionRecord(
                site=site, outcome=outcome, total_elements=total
            )

        # Re-run the fast path once more to obtain the faulty outputs.
        # (inject() already validated the site; classification above was
        # SDC, so this run completes.)
        faulty = self._faulty_outputs(site)
        corrupted = 0
        total = 0
        worst = 0.0
        for name, golden in self._golden_outputs.items():
            got = faulty[name]
            total += golden.size
            differs = got != golden.ravel()
            corrupted += int(np.count_nonzero(differs))
            if np.issubdtype(golden.dtype, np.floating):
                worst = max(worst, _max_rel_error(golden.ravel(), got))
            elif np.any(differs):
                worst = max(worst, 1.0)
        return InjectionRecord(
            site=site,
            outcome=outcome,
            corrupted_elements=corrupted,
            total_elements=total,
            max_rel_error=worst,
        )

    def _faulty_outputs(self, site: FaultSite) -> dict[str, np.ndarray]:
        injector = self._injector
        geometry = injector.instance.geometry
        cta = geometry.cta_of_thread(site.thread)
        memory = injector.instance.initial_memory.snapshot()
        log: list[tuple[int, bytes]] = []
        memory.write_log = log
        try:
            injector._launcher.launch(
                injector.instance.program,
                geometry,
                injector.instance.param_bytes,
                memory=memory,
                only_cta=cta,
                injection=(site.thread, site.dyn_index, site.bit),
                max_steps=injector._cta_budget[cta],
            )
        except (MemoryFault, HangDetected):  # pragma: no cover - outcome was SDC
            raise
        finally:
            memory.write_log = None
        if injector._writes_escape_cta(log, cta):
            # Same fallback rule as classification: cross-CTA writes need
            # the full-ordering re-execution.
            full_memory = injector.instance.initial_memory.snapshot()
            injector._launcher.launch(
                injector.instance.program,
                geometry,
                injector.instance.param_bytes,
                memory=full_memory,
                injection=(site.thread, site.dyn_index, site.bit),
                max_steps=max(injector._cta_budget),
            )
            return injector.instance.read_outputs(full_memory)
        final = injector._overlay(cta, log)
        return injector.instance.read_outputs(final)


def _max_rel_error(golden: np.ndarray, faulty: np.ndarray) -> float:
    worst = 0.0
    for g, f in zip(golden.astype(np.float64), faulty.astype(np.float64)):
        if g == f or (math.isnan(g) and math.isnan(f)):
            continue
        if not math.isfinite(f):
            return math.inf
        scale = max(abs(g), 1e-12)
        worst = max(worst, abs(f - g) / scale)
    return worst
