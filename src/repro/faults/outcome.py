"""Fault-injection outcomes and resilience profiles.

The paper classifies every injection into three buckets (Section II-B):
masked, silent data corruption (SDC), and "other" (crashes + hangs).  We
keep crash and hang distinguishable internally and collapse them into
``other`` for reporting, so the profile matches the paper's figures while
the extra detail remains available.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import ReproError


class Outcome(enum.Enum):
    MASKED = "masked"
    SDC = "sdc"
    CRASH = "crash"
    HANG = "hang"

    @property
    def category(self) -> str:
        """The paper's three-way bucket: masked / sdc / other."""
        if self in (Outcome.CRASH, Outcome.HANG):
            return "other"
        return self.value


CATEGORIES = ("masked", "sdc", "other")


@dataclass
class ResilienceProfile:
    """A (possibly weighted) distribution of fault-injection outcomes.

    ``weights[c]`` is the total weight of outcomes in category ``c``; with
    unit weights this is a plain count.  Pruned-space campaigns use weights
    to extrapolate each representative site to the sites it stands for.
    """

    weights: dict[str, float] = field(
        default_factory=lambda: {c: 0.0 for c in CATEGORIES}
    )
    n_injections: int = 0

    def add(self, outcome: Outcome, weight: float = 1.0) -> None:
        if weight < 0:
            raise ReproError("outcome weight must be non-negative")
        self.weights[outcome.category] += weight
        self.n_injections += 1

    def merge(self, other: "ResilienceProfile") -> None:
        for category in CATEGORIES:
            self.weights[category] += other.weights[category]
        self.n_injections += other.n_injections

    @property
    def total_weight(self) -> float:
        return sum(self.weights.values())

    def fraction(self, category: str) -> float:
        total = self.total_weight
        if total == 0:
            raise ReproError("empty profile has no outcome fractions")
        return self.weights[category] / total

    @property
    def pct_masked(self) -> float:
        return 100.0 * self.fraction("masked")

    @property
    def pct_sdc(self) -> float:
        return 100.0 * self.fraction("sdc")

    @property
    def pct_other(self) -> float:
        return 100.0 * self.fraction("other")

    def as_percentages(self) -> dict[str, float]:
        return {c: 100.0 * self.fraction(c) for c in CATEGORIES}

    def max_abs_error(self, other: "ResilienceProfile") -> float:
        """Largest absolute percentage-point gap to another profile."""
        mine, theirs = self.as_percentages(), other.as_percentages()
        return max(abs(mine[c] - theirs[c]) for c in CATEGORIES)

    @classmethod
    def from_outcomes(cls, outcomes, weights=None) -> "ResilienceProfile":
        profile = cls()
        if weights is None:
            for outcome in outcomes:
                profile.add(outcome)
        else:
            for outcome, weight in zip(outcomes, weights, strict=True):
                profile.add(outcome, weight)
        return profile

    def __str__(self) -> str:
        pct = self.as_percentages()
        return (
            f"masked={pct['masked']:.2f}% sdc={pct['sdc']:.2f}% "
            f"other={pct['other']:.2f}% (n={self.n_injections})"
        )
