"""Campaign drivers: batches of injections aggregated into profiles.

Three campaign shapes cover everything the paper does:

* :func:`run_campaign` — inject an explicit iterable of sites (optionally
  weighted), e.g. the exhaustive pruned space;
* :func:`random_campaign` — ``n`` uniform random sites, the statistical
  baseline of Section II-D;
* :func:`exhaustive_campaign` — every site in the space (only sane for
  small spaces or single instructions).

``run_campaign`` streams: sites may be any iterable (a generator over a
1e6-site exhaustive space never materialises twice), the profile is built
incrementally, and an optional ``progress(done, total)`` hook fires after
every injection.  ``random_campaign`` and ``exhaustive_campaign`` forward
all keyword arguments (``weights``/``telemetry``/``progress``/…) to
:func:`run_campaign`, so every campaign shape is instrumentable the same
way.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..telemetry import CampaignEvent, Telemetry
from .injector import FaultInjector
from .outcome import Outcome, ResilienceProfile
from .site import FaultSite


@dataclass
class CampaignResult:
    """Outcomes plus the aggregated (possibly weighted) profile.

    ``sites``/``outcomes`` are empty when the campaign ran with
    ``keep_sites=False`` (streaming over huge spaces); the profile still
    carries every classified run.  ``converged`` reports whether the
    ``until_ci`` convergence target was met; ``stopped_early`` whether the
    campaign actually cut off there (``early_stop=True``, sampled mode).
    """

    sites: list[FaultSite]
    outcomes: list[Outcome]
    profile: ResilienceProfile
    converged: bool = False
    stopped_early: bool = False

    @property
    def n_runs(self) -> int:
        return len(self.sites) if self.sites else self.profile.n_injections


def run_campaign(
    injector: FaultInjector,
    sites: Iterable[FaultSite],
    weights: Iterable[float] | None = None,
    *,
    telemetry: Telemetry | None = None,
    executor=None,
    progress=None,
    total: int | None = None,
    keep_sites: bool = True,
    label: str = "explicit",
    order_batch: int | None = None,
    live=None,
    until_ci: float | None = None,
    early_stop: bool = False,
    confidence: float = 0.95,
) -> CampaignResult:
    """Inject every site in ``sites``; weight outcomes if weights given.

    Args:
        sites: any iterable of fault sites — consumed exactly once.
        weights: optional per-site weights, zipped strictly against sites.
        telemetry: event/metric/span bundle; defaults to the injector's.
        executor: a :class:`~repro.parallel.ParallelCampaignRunner` (or
            anything with its ``imap`` signature) to fan injections over
            worker processes; ``None`` injects serially in-process.
            Outcomes stream back in site order either way, so the profile
            is identical for identical seeds.
        order_batch: serial checkpoint-locality window (see
            :class:`~repro.parallel.SerialExecutor`): sites are *executed*
            sorted by ``(thread, dyn_index)`` within windows of this size
            but *aggregated* in input order, so the profile is unchanged.
            ``None`` auto-enables when the injector checkpoints; ``0``
            forces pure streaming.  Ignored when ``executor`` is given
            (workers order within their own chunks instead).
        progress: ``callable(done, total)`` (a
            :class:`~repro.telemetry.ProgressReporter` works directly),
            invoked after every injection.
        total: planned site count for progress/ETA when ``sites`` has no
            ``len()`` (e.g. a generator).
        keep_sites: set False to drop the per-run site/outcome lists and
            keep only the profile — O(1) memory over huge spaces.
        label: campaign tag recorded in :class:`CampaignEvent`.
        live: a :class:`~repro.observe.live.LiveAggregator` receiving the
            streaming delta records (serial and pooled executors both
            feed it).  Advisory: outcomes and the profile are identical
            with or without it.
        until_ci: convergence target — once the widest Wilson CI
            half-width over the four outcome shares drops to this value
            the campaign reports ``converged``.  Computed from the
            parent's in-order outcome stream, so the verdict (and any
            early stop) is deterministic for a fixed seed regardless of
            worker count.
        early_stop: with ``until_ci``, actually stop at convergence
            instead of just flagging it.  Only meaningful for *sampled*
            campaigns — truncating a weighted exhaustive enumeration
            would bias the profile, so drivers keep this False there.
        confidence: CI confidence level for the convergence signal.
    """
    telemetry = telemetry if telemetry is not None else injector.telemetry
    if total is None:
        try:
            total = len(sites)  # type: ignore[arg-type]
        except TypeError:
            total = None
    if telemetry.enabled:
        telemetry.emit(
            CampaignEvent(
                time.time(),
                phase="start",
                campaign=label,
                n_sites=total if total is not None else -1,
                profile=None,
            )
        )
    pairs = (
        ((site, 1.0) for site in sites)
        if weights is None
        else zip(sites, weights, strict=True)
    )
    if executor is None:
        from ..parallel import SerialExecutor

        executor = SerialExecutor(order_batch=order_batch)
    if live is not None:
        spec = getattr(injector.instance, "spec", None)
        live.begin(
            total=total,
            kernel=getattr(spec, "key", "") or "",
            label=label,
            telemetry=telemetry,
        )
    if until_ci is not None:
        from ..observe.live import check_convergence
    kept_sites: list[FaultSite] = []
    kept_outcomes: list[Outcome] = []
    profile = ResilienceProfile()
    counts: dict[str, int] = {}
    converged = False
    stopped_early = False
    done = 0
    # Feed the progress reporter cumulative effective instructions so its
    # ETA projects remaining *work*, not remaining injection count.
    feed_work = (
        progress is not None
        and telemetry.enabled
        and hasattr(progress, "note_work")
    )
    # ``live`` travels as a keyword only when set, so third-party
    # executors with the pre-live ``imap`` signature keep working.
    stream = (
        executor.imap(injector, pairs, telemetry)
        if live is None
        else executor.imap(injector, pairs, telemetry, live=live)
    )
    try:
        with telemetry.span(f"campaign.{label}"):
            for site, weight, outcome in stream:
                profile.add(outcome, weight)
                if keep_sites:
                    kept_sites.append(site)
                    kept_outcomes.append(outcome)
                done += 1
                if until_ci is not None and not converged:
                    counts[outcome.value] = counts.get(outcome.value, 0) + 1
                    if check_convergence(counts, done, until_ci, confidence):
                        converged = True
                        if live is not None:
                            live.note_converged()
                if progress is not None:
                    if feed_work:
                        progress.note_work(
                            telemetry.metrics.counter_value(
                                "work.effective_instructions"
                            )
                        )
                    progress(done, total)
                if converged and early_stop:
                    stopped_early = True
                    break
    except BaseException as exc:
        if live is not None:
            live.abort(exc)
        raise
    finally:
        # Breaking out (early stop) must still run the executor
        # generator's cleanup: live drain stop, pool terminate/join.
        close = getattr(stream, "close", None)
        if close is not None:
            close()
    if telemetry.enabled:
        telemetry.emit(
            CampaignEvent(
                time.time(),
                phase="end",
                campaign=label,
                n_sites=done,
                profile=dict(profile.weights),
            )
        )
    if live is not None:
        live.finish(converged=converged, stopped_early=stopped_early)
    return CampaignResult(
        sites=kept_sites,
        outcomes=kept_outcomes,
        profile=profile,
        converged=converged,
        stopped_early=stopped_early,
    )


def random_campaign(
    injector: FaultInjector,
    n: int,
    rng: np.random.Generator | int | None = None,
    **campaign_kwargs,
) -> CampaignResult:
    """``n`` uniform random injections over the exhaustive space.

    Extra keyword arguments pass straight through to :func:`run_campaign`.
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    sites = injector.space.sample(n, rng)
    campaign_kwargs.setdefault("label", "random")
    return run_campaign(injector, sites, **campaign_kwargs)


def exhaustive_campaign(
    injector: FaultInjector,
    threads: list[int] | None = None,
    **campaign_kwargs,
) -> CampaignResult:
    """Every site of the given threads (default: the whole space).

    Sites stream from the space lazily — the full site list is never
    materialised up front.  Extra keyword arguments pass straight through
    to :func:`run_campaign`.
    """
    if threads is None:
        threads = list(range(injector.space.n_threads))
    sites = (
        site for thread in threads for site in injector.space.iter_thread_sites(thread)
    )
    campaign_kwargs.setdefault("label", "exhaustive")
    campaign_kwargs.setdefault(
        "total", sum(injector.space.thread_sites(t) for t in threads)
    )
    return run_campaign(injector, sites, **campaign_kwargs)
