"""Campaign drivers: batches of injections aggregated into profiles.

Three campaign shapes cover everything the paper does:

* :func:`run_campaign` — inject an explicit site list (optionally
  weighted), e.g. the exhaustive pruned space;
* :func:`random_campaign` — ``n`` uniform random sites, the statistical
  baseline of Section II-D;
* :func:`exhaustive_campaign` — every site in the space (only sane for
  small spaces or single instructions).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .injector import FaultInjector
from .outcome import Outcome, ResilienceProfile
from .site import FaultSite


@dataclass
class CampaignResult:
    """Outcomes plus the aggregated (possibly weighted) profile."""

    sites: list[FaultSite]
    outcomes: list[Outcome]
    profile: ResilienceProfile

    @property
    def n_runs(self) -> int:
        return len(self.sites)


def run_campaign(
    injector: FaultInjector,
    sites: list[FaultSite],
    weights: list[float] | None = None,
) -> CampaignResult:
    """Inject every site in ``sites``; weight outcomes if weights given."""
    outcomes = [injector.inject(site) for site in sites]
    profile = ResilienceProfile.from_outcomes(outcomes, weights)
    return CampaignResult(sites=list(sites), outcomes=outcomes, profile=profile)


def random_campaign(
    injector: FaultInjector,
    n: int,
    rng: np.random.Generator | int | None = None,
) -> CampaignResult:
    """``n`` uniform random injections over the exhaustive space."""
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    sites = injector.space.sample(n, rng)
    return run_campaign(injector, sites)


def exhaustive_campaign(
    injector: FaultInjector, threads: list[int] | None = None
) -> CampaignResult:
    """Every site of the given threads (default: the whole space)."""
    if threads is None:
        threads = list(range(injector.space.n_threads))
    sites: list[FaultSite] = []
    for thread in threads:
        sites.extend(injector.space.iter_thread_sites(thread))
    return run_campaign(injector, sites)
