"""Golden-resync early exit: convergence-bounded fault injection.

Checkpoints (``repro.gpu.checkpoint``) removed the pre-flip prefix cost;
this module removes the post-window *suffix* cost.  The dominant outcome
of a fault-injection campaign is MASKED — most flips reconverge with the
golden execution after a short divergence window — yet without this
layer every faulty run still executes from the flip to program end.

:class:`ResyncMonitor` observes the injected thread at every dynamic
instruction after the flip (riding the checkpoint-sink plumbing, so the
hot loops gain no new per-step conditionals) and compares against the
cached golden register stream plus the golden write-log index.  Once

* the thread's PC sequence has matched golden at every observation,
* every global write issued inside the window was byte-identical to the
  golden write at the same log position,
* no unverifiable shared-memory store executed inside the window, and
* the full register file matches the golden snapshot at dyn ``d'``,

the machine state is *provably* golden: the remaining suffix would
re-execute the golden run byte-for-byte.  The monitor raises
:class:`~repro.errors.ResyncReached` and the injector splices the golden
suffix — outcome MASKED by construction, remaining write logs / iCnt
reconstructed from golden artifacts — instead of executing it.

Soundness argument (also encoded in ``tests/faults/test_resync.py``):

* **PC contiguity** — the monitor fires at every instruction boundary
  from the flip onward and disarms on the first PC that departs from the
  golden trace, so the executed instruction sequence inside the window
  is exactly the golden one.
* **Write verification** — deltas of the (stable or per-segment) write
  log are attributed to the instruction just executed and compared
  positionally against the golden thread write log; any mismatch — value,
  address, width, count — disarms.  Across barriers (classic CTA path)
  and scalar-segment swaps (vector path) the monitor rebaselines instead
  of attributing, which skips only *sibling* writes (siblings are golden:
  every channel from the faulty registers to them is verified or
  guarded).
* **Shared-store guard** — :class:`~repro.gpu.memory.SharedMemory` has
  no write log, so a post-flip shared store is verified at its *inputs*:
  the monitor compares the registers the store reads (address base,
  stored value, guard predicate) against the golden snapshot at the same
  point and disarms before the store executes unless all of them match —
  matching sources make the store's effect byte-identical to golden.
* **Register match** — dict equality is unsound for ``-0.0``/``NaN``
  (and int ``0`` vs float ``0.0``), so snapshots carrying such values
  are compared strictly; golden ``NaN`` conservatively never matches
  (payload preservation through the register file is not guaranteed).

On top of the monitor sits a bounded-LRU **divergence-window memo**
keyed by ``(path, thread, flip dyn, post-divergence state hash)``:
sibling sites (same dynamic instruction, different bit) that collapse to
the same divergent state reuse the suffix verdict outright — a hit
splices (or abandons the scan) at the first post-flip observation.
Thread-sliced memo hits replay the stored window reads into the caller's
read log so interference checks stay decision-identical; CTA-path
verdicts need no reads (the checkpoint-equivalence contract makes CTA
state at any schedule point resume-independent).  Path tags keep
thread-sliced verdicts away from CTA runs: the same flip can demote.

:class:`GoldenStreamCache` captures the per-thread golden register
stream, per-dyn cumulative write counts and the golden thread write log
in one sliced replay per thread; :class:`PropagationTracer` consumes the
same cache, so ``propagation=True`` and resync share the golden
comparison instead of computing it twice.
"""

from __future__ import annotations

import math
import struct
import time

from ..errors import ResyncReached
from ..gpu import GPUSimulator
from ..gpu.isa import Reg
from ..telemetry import NULL_TELEMETRY

#: Dynamic instructions after the flip the monitor will scan before
#: abandoning the splice (the divergence-window bound).
DEFAULT_RESYNC_WINDOW = 128

#: Divergence-window memo entries kept (bounded LRU).
DEFAULT_MEMO_CAPACITY = 4096

#: Golden per-thread streams cached; cleared wholesale on overflow
#: (campaigns hammer few threads, audits touch many once).
_STREAM_CACHE_LIMIT = 32

_MISSING = object()


def _exact(value):
    """Hashable encoding that distinguishes every architectural value.

    Floats go through their IEEE-754 image so ``-0.0 != 0.0`` and NaN
    payloads stay distinct; ints (and the 4-bit predicate codes) are
    already exact.  An int never encodes equal to a float.
    """
    if isinstance(value, float):
        return struct.pack("<d", value)
    return value


def _has_special(regs: dict) -> bool:
    """Does plain dict equality under-distinguish this snapshot?

    True when any value is NaN (``v != v``), a float zero (``-0.0 ==
    0.0``) or an int zero (``0 == 0.0``) — those snapshots take the
    strict element-wise comparison path.
    """
    for v in regs.values():
        if v != v or v == 0:
            return True
    return False


def _value_matches(v, g) -> bool:
    """One architectural value vs its golden counterpart, exactly.

    Sign-of-zero aware; golden NaN conservatively never matches (a NaN
    payload round-trip through the register file is not guaranteed); an
    int never matches a float.
    """
    if isinstance(g, float):
        # g != v also rejects golden NaN.
        if not isinstance(v, float) or g != v:
            return False
        if g == 0.0 and math.copysign(1.0, g) != math.copysign(1.0, v):
            return False
        return True
    return not isinstance(v, float) and v == g


def _strict_match(regs: dict, snap: dict) -> bool:
    """Exact register-file equality (sign-of-zero aware, NaN-conservative)."""
    if len(regs) != len(snap):
        return False
    for name, g in snap.items():
        v = regs.get(name, _MISSING)
        if v is _MISSING or not _value_matches(v, g):
            return False
    return True


def control_pcs(program) -> tuple[frozenset, dict]:
    """(barrier PCs, shared-store PC -> source register names) of a program.

    Barrier PCs mark the only points where sibling writes can interleave
    into a shared write log (rebaseline instead of attribute).  Shared
    stores have no write log to verify against, so the monitor instead
    checks the registers the store *reads* — address base, stored value,
    guard predicate — against golden before one executes: matching
    sources make the store's effect byte-identical to golden, anything
    else disarms.
    """
    bars = set()
    shared_stores: dict[int, tuple[str, ...]] = {}
    for pc, insn in enumerate(program.instructions):
        if insn.op == "bar.sync":
            bars.add(pc)
        elif insn.op == "st" and insn.srcs[0].space == "shared":
            names = set()
            if insn.srcs[0].base is not None:
                names.add(insn.srcs[0].base.name)
            value = insn.srcs[1]
            if isinstance(value, Reg):
                names.add(value.name)
            if insn.guard is not None:
                names.add(insn.guard.reg.name)
            shared_stores[pc] = tuple(sorted(names))
    return frozenset(bars), shared_stores


class ThreadStream:
    """One thread's golden observation stream.

    ``snaps[d - 1]`` is the register file after the thread's first ``d``
    instructions (same convention as the propagation tracer: dyn 0's
    prior state is trivially empty, the post-exit state is unobservable
    and irrelevant).  ``special[d - 1]`` flags snapshots needing the
    strict comparison; ``counts[d - 1]`` is the thread's cumulative
    golden global-write count at the same point; ``writes`` is its full
    golden write log and ``total`` its golden iCnt.
    """

    __slots__ = ("snaps", "special", "counts", "writes", "total")

    def __init__(self, snaps, special, counts, writes, total):
        self.snaps = snaps
        self.special = special
        self.counts = counts
        self.writes = writes
        self.total = total


class GoldenStreamCache:
    """Per-thread golden streams shared by resync and propagation.

    Captured with a private ``NULL_TELEMETRY`` simulator so campaign
    metrics, events and instruction counters stay byte-identical with
    the layer on or off.  Sliceable CTAs capture via the cheaper
    single-thread replay; others replay the owning CTA.
    """

    def __init__(self, injector) -> None:
        self._injector = injector
        self._sim = GPUSimulator(
            telemetry=NULL_TELEMETRY, backend=injector.backend
        )
        self._streams: dict[int, ThreadStream] = {}
        self.capture_s = 0.0
        self.captures = 0

    def __len__(self) -> int:
        return len(self._streams)

    def stream(self, thread: int) -> ThreadStream:
        cached = self._streams.get(thread)
        if cached is not None:
            return cached
        if len(self._streams) >= _STREAM_CACHE_LIMIT:
            self._streams.clear()
        stream = self._capture(thread)
        self._streams[thread] = stream
        return stream

    def _capture(self, thread: int) -> ThreadStream:
        injector = self._injector
        instance = injector.instance
        geometry = instance.geometry
        cta = geometry.cta_of_thread(thread)
        memory = injector._scratch_memory
        snaps: list[dict] = []
        special: list[bool] = []
        counts: list[int] = []
        # Per-thread write attribution: with ``record_thread_write_logs``
        # the CTA scheduler swaps a fresh segment list into
        # ``memory.write_log`` for every run-to-barrier segment of every
        # thread, so at a fire the current log holds exactly this
        # thread's writes of the current segment.  Completed segments
        # are accumulated by identity change (the strong reference keeps
        # the finished list alive and un-aliased).
        state = {"acc": 0, "last": None}

        def sink(dyn: int, pc: int, regs: dict) -> None:
            cur = memory.write_log
            if cur is not state["last"]:
                if state["last"] is not None:
                    state["acc"] += len(state["last"])
                state["last"] = cur
            snaps.append(dict(regs))
            special.append(_has_special(regs))
            counts.append(state["acc"] + (len(cur) if cur is not None else 0))

        slicing = {"only_thread": thread} if injector._cta_sliceable[cta] else {
            "only_cta": cta
        }
        t0 = time.perf_counter()
        result = self._sim.launch(
            instance.program,
            instance.geometry,
            instance.param_bytes,
            memory=memory,
            record_write_logs=True,
            record_thread_write_logs=True,
            max_steps=injector._cta_budget[cta],
            step_trace=(thread, sink),
            **slicing,
        )
        memory.revert_writes(
            result.cta_write_logs[cta], instance.initial_memory
        )
        self.capture_s += time.perf_counter() - t0
        self.captures += 1
        return ThreadStream(
            snaps,
            special,
            counts,
            result.thread_write_logs[thread],
            len(injector.traces[thread]),
        )


class ResyncMemo:
    """Bounded-LRU divergence-window memo.

    Values are verdict tuples: ``("splice", resync_dyn, window_reads)``
    or ``("none",)``.  Sound because the key pins the complete machine
    state at the first post-flip observation — same path kind, same
    thread, same flip, same register deltas vs golden, and (established
    by the monitor before the key is computed) golden memory — and the
    simulator is deterministic from there.
    """

    __slots__ = ("capacity", "_entries", "evicted")

    def __init__(self, capacity: int = DEFAULT_MEMO_CAPACITY) -> None:
        self.capacity = capacity
        self._entries: dict = {}
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key):
        entry = self._entries.get(key)
        if entry is not None:
            # dicts preserve insertion order: re-insert to mark recency.
            del self._entries[key]
            self._entries[key] = entry
        return entry

    def put(self, key, verdict) -> None:
        entries = self._entries
        if key in entries:
            del entries[key]
        elif len(entries) >= self.capacity:
            oldest = next(iter(entries))
            del entries[oldest]
            self.evicted += 1
        entries[key] = verdict


class ResyncMonitor:
    """Per-injection convergence monitor (one per faulty run).

    Installed as a return-driven checkpoint sink: fires once at the flip
    (arming — state is still golden at the loop head) and then at every
    instruction boundary until it splices, disarms, or the window bound
    trips.  ``observe`` returns the next fire index (``-1`` disarms) or
    raises :class:`ResyncReached`.
    """

    __slots__ = (
        "stream", "trace", "flip", "window", "memory", "read_log",
        "memo", "path_tag", "thread", "bar_pcs", "shared_store_pcs",
        "armed", "resolution", "scan_s", "_t0", "_last_list", "_last_len",
        "_cum", "_key", "_read_base", "memo_checked", "memo_hit",
        "resync_dyn", "window_span",
    )

    def __init__(
        self,
        thread: int,
        stream: ThreadStream,
        trace,
        flip: int,
        window: int,
        memory,
        memo: ResyncMemo | None,
        path_tag: str,
        bar_pcs: frozenset,
        shared_store_pcs: frozenset,
        read_log: list | None = None,
    ) -> None:
        self.thread = thread
        self.stream = stream
        self.trace = trace
        self.flip = flip
        self.window = window
        self.memory = memory
        self.read_log = read_log
        self.memo = memo
        self.path_tag = path_tag
        self.bar_pcs = bar_pcs
        self.shared_store_pcs = shared_store_pcs
        self.armed = False
        self.resolution: str | None = None
        self.scan_s = 0.0
        self._t0 = 0.0
        self._last_list = None
        self._last_len = 0
        self._cum = 0
        self._key = None
        self._read_base = 0
        self.memo_checked = False
        self.memo_hit = False
        self.resync_dyn: int | None = None
        self.window_span = 0

    # ------------------------------------------------------------- sink

    def observe(self, dyn: int, pc: int, regs: dict) -> int:
        """The per-instruction sink body; see the class docstring."""
        if dyn == self.flip:
            return self._arm(pc)
        if not self.armed:  # pragma: no cover - defensive
            return -1
        trace = self.trace
        stream = self.stream
        # (1) PC contiguity: the upcoming instruction must be the golden
        # one; running past the golden length is control divergence too.
        if dyn >= len(trace) or pc != trace[dyn][0]:
            return self._disarm(dyn, "divergence")
        # (2) Attribute and verify the write-log delta of the
        # just-executed instruction.  Identity change = segment swap
        # (vector scalar demotion / golden capture); barrier PC =
        # sibling writes interleaved (classic CTA): rebaseline, don't
        # attribute — in both regimes the skipped entries are provably
        # not this thread's (bar.sync writes nothing).
        cur = self.memory.write_log
        if cur is not self._last_list or trace[dyn - 1][0] in self.bar_pcs:
            self._last_list = cur
            self._last_len = len(cur) if cur is not None else 0
        elif cur is not None and len(cur) > self._last_len:
            delta = cur[self._last_len :]
            cum = self._cum
            end = cum + len(delta)
            golden = stream.writes
            if end > len(golden) or golden[cum:end] != delta:
                return self._disarm(dyn, "write-mismatch")
            self._cum = end
            self._last_len = len(cur)
        # (3) First post-flip observation: the full divergent state is
        # now pinned (registers visible, memory verified golden) — the
        # memo key is sound from here.
        if dyn == self.flip + 1 and self.memo is not None:
            self._key = (
                self.path_tag,
                self.thread,
                self.flip,
                self._signature(pc, regs),
            )
            self.memo_checked = True
            entry = self.memo.get(self._key)
            if entry is not None:
                self.memo_hit = True
                if entry[0] == "splice":
                    self._resolve(dyn, "memo-splice")
                    self.resync_dyn = entry[1]
                    raise ResyncReached(
                        entry[1], self.flip,
                        from_memo=True, window_reads=entry[2],
                    )
                return self._disarm(dyn, "memo-none")
            if self.read_log is not None:
                self._read_base = len(self.read_log)
        # (4) Splice check: registers match golden AND every golden
        # write so far has been issued and verified.
        snap = stream.snaps[dyn - 1]
        if stream.special[dyn - 1]:
            match = _strict_match(regs, snap)
        else:
            match = regs == snap
        if match and self._cum == stream.counts[dyn - 1]:
            if self.memo is not None and self._key is not None:
                reads = (
                    tuple(self.read_log[self._read_base :])
                    if self.read_log is not None
                    else ()
                )
                self.memo.put(self._key, ("splice", dyn, reads))
            self._resolve(dyn, "splice")
            self.resync_dyn = dyn
            raise ResyncReached(dyn, self.flip)
        # (5) Shared-store guard: the upcoming instruction is a shared
        # store, whose effect no write log records.  It is provably
        # golden iff every register it reads — address base, stored
        # value, guard predicate — matches golden right now (unset
        # registers read as integer 0 in both runs); otherwise disarm
        # before a corrupt value or address escapes into shared memory.
        store_srcs = self.shared_store_pcs.get(trace[dyn][0])
        if store_srcs is not None:
            for name in store_srcs:
                if not _value_matches(regs.get(name, 0), snap.get(name, 0)):
                    return self._disarm(dyn, "shared-store")
        # (6) Window bound.
        if dyn - self.flip >= self.window:
            return self._disarm(dyn, "window")
        return dyn + 1

    # ---------------------------------------------------------- internals

    def _arm(self, pc: int) -> int:
        # Re-arming resets everything: a vectorized attempt that fell
        # back to the compiled path re-fires the monitor from the flip.
        self.armed = True
        self.resolution = None
        self._t0 = time.perf_counter()
        cur = self.memory.write_log
        self._last_list = cur
        self._last_len = len(cur) if cur is not None else 0
        flip = self.flip
        self._cum = self.stream.counts[flip - 1] if flip > 0 else 0
        self._key = None
        self._read_base = 0
        # The flip instruction itself may be a shared store issuing a
        # corrupted value or address — unverifiable, never arm.
        if pc in self.shared_store_pcs:
            return self._disarm(flip, "shared-store")
        return flip + 1

    def _signature(self, pc: int, regs: dict):
        """Exact register deltas vs the golden state at the same point."""
        golden = self.stream.snaps[self.flip]
        deltas = []
        for name in golden.keys() | regs.keys():
            g = golden.get(name, _MISSING)
            v = regs.get(name, _MISSING)
            if g is _MISSING:
                deltas.append((name, b"+", _exact(v)))
            elif v is _MISSING:
                deltas.append((name, b"-", b""))
            elif _exact(v) != _exact(g):
                deltas.append((name, b"=", _exact(v)))
        deltas.sort(key=lambda item: item[0])
        return (pc, tuple(deltas))

    def _disarm(self, dyn: int, why: str) -> int:
        if self.memo is not None and self._key is not None:
            self.memo.put(self._key, ("none",))
        self._resolve(dyn, why)
        return -1

    def _resolve(self, dyn: int, why: str) -> None:
        self.armed = False
        self.resolution = why
        self.window_span = max(dyn - self.flip, 0)
        self.scan_s += time.perf_counter() - self._t0

    def finalize(self) -> None:
        """Close out a monitor whose run ended while it was armed.

        The thread exited (or crashed / hung) inside the window without
        reconverging — a miss.  Sound to memoise: a sibling collapsing
        to the same state meets the same deterministic fate.
        """
        if self.armed:
            if self.memo is not None and self._key is not None:
                self.memo.put(self._key, ("none",))
            self._resolve(self.flip + self.window, "exit")
