"""Fault-injection framework (single-bit flips in destination registers)."""

from .audit import CoherenceAudit, GroupAudit, SiteProbe, run_coherence_audit
from .campaign import CampaignResult, exhaustive_campaign, random_campaign, run_campaign
from .injector import ADDRESS_BITS, DEFAULT_HANG_FACTOR, FaultInjector, GoldenState
from .model import FaultModel, InjectionSpec, RegisterFileSite, StoreAddressSite
from .outcome import CATEGORIES, Outcome, ResilienceProfile
from .persistence import load_campaign, save_campaign
from .propagation import PropagationRecord, PropagationTracer
from .severity import InjectionRecord, SeverityInjector
from .site import FaultSite, parse_site
from .space import FaultSpace

__all__ = [
    "CATEGORIES",
    "CampaignResult",
    "CoherenceAudit",
    "GroupAudit",
    "PropagationRecord",
    "PropagationTracer",
    "SiteProbe",
    "run_coherence_audit",
    "DEFAULT_HANG_FACTOR",
    "FaultInjector",
    "FaultSite",
    "FaultModel",
    "FaultSpace",
    "GoldenState",
    "InjectionRecord",
    "InjectionSpec",
    "RegisterFileSite",
    "StoreAddressSite",
    "Outcome",
    "ResilienceProfile",
    "SeverityInjector",
    "exhaustive_campaign",
    "load_campaign",
    "parse_site",
    "random_campaign",
    "run_campaign",
    "save_campaign",
]
