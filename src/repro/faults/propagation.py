"""Fault-propagation provenance tracing.

Outcome labels (masked/SDC/crash/hang) say *what* an injection did;
this module reconstructs *why*.  For one classified injection the
:class:`PropagationTracer` replays the owning CTA twice against the
initial heap — once golden (cached per thread), once faulty — observing
the injected thread at every dynamic instruction through the simulator's
``step_trace`` hook (the checkpoint-sink plumbing re-armed at
``every=1``, so both backends are covered with zero hot-loop changes).
Diffing the two replays yields a :class:`PropagationRecord`:

* the **corrupted-register set** per dynamic instruction (stored as
  change events, capped at :data:`MAX_CORRUPTION_EVENTS`);
* the **first-corrupted PC** — the static instruction where the flip
  entered architectural state;
* the **control-flow divergence point** — the first dynamic instruction
  whose PC departs from the golden trace;
* the **masking point** — the depth at which the corrupted-register set
  drains back to empty (register tracking stops at divergence: past it a
  by-dyn-index diff compares unrelated instructions);
* **heap-corruption geometry** — corrupted window bytes vs the golden
  CTA image, with cross-thread / cross-CTA escape decided by the
  injector's existing byte-ownership masks;
* **output-corruption geometry** — corrupted output-image bytes, their
  spatial extent and maximum per-byte magnitude.

Design invariants:

* The tracer never touches the classifying run: it owns a private
  :class:`~repro.gpu.GPUSimulator` with ``NULL_TELEMETRY``, so outcome
  profiles, metrics and sim-run events are byte-identical with tracing
  on or off, on either backend, at any checkpoint interval.
* Replays are CTA-sliced against the initial heap — exact for every
  kernel (CTAs within a launch cannot communicate) — and repair the
  injector's scratch heap from their own write logs afterwards.
* Disabled cost is one ``is None`` check per injection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..errors import HangDetected, MemoryFault
from ..gpu import GPUSimulator
from ..telemetry import NULL_TELEMETRY
from .model import InjectionSpec
from .outcome import Outcome

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .injector import FaultInjector

#: Corrupted-set *change* events stored per record; the total change
#: count is always recorded so truncation is visible.
MAX_CORRUPTION_EVENTS = 64

_MISSING = object()


def _same_value(a, b) -> bool:
    """Register equality with NaN == NaN (a NaN payload is one value)."""
    if a is _MISSING or b is _MISSING:
        return a is b
    if a == b:
        return True
    return isinstance(a, float) and isinstance(b, float) and a != a and b != b


@dataclass(frozen=True)
class PropagationRecord:
    """Corruption lineage of one classified injection."""

    thread: int
    dyn_index: int
    bit: int
    model: str  # FaultModel value
    outcome: str  # Outcome value (from the real classification)
    backend: str
    #: Static instruction where the corruption entered architectural
    #: state — the key of the PC-level vulnerability map.
    first_corrupted_pc: int
    #: Diagnostic replay status: "completed" | "crash" | "hang".
    replay_outcome: str
    #: Dynamic instructions the injected thread executed in the replay.
    faulty_icnt: int
    #: ``(dyn, (reg, ...))`` whenever the corrupted set changed; capped.
    corruption_events: tuple = ()
    n_corruption_events: int = 0
    max_corrupted_regs: int = 0
    #: First dynamic instruction whose PC left the golden trace.
    divergence_dyn: int | None = None
    divergence_pc: int | None = None
    #: First dynamic instruction at which the corrupted-register set was
    #: empty and stayed empty (pre-divergence); None = never drained.
    masking_dyn: int | None = None
    #: Corrupted heap bytes vs the golden CTA image.
    heap_corrupt_bytes: int = 0
    heap_extent: int = 0
    heap_first_offset: int | None = None
    #: Corruption reached bytes outside the injected thread's own golden
    #: writes (None when thread ownership masks were not recorded).
    escaped_thread: bool | None = None
    #: Faulty writes overlapped another CTA's golden territory.
    escaped_cta: bool = False
    #: Output-image corruption geometry.
    output_corrupt_bytes: int = 0
    output_extent: int = 0
    output_max_magnitude: int = 0
    group: str | None = field(default=None, compare=False)

    @property
    def masking_depth(self) -> int | None:
        """Dynamic instructions from flip to drain; None = unmasked."""
        if self.masking_dyn is None:
            return None
        return self.masking_dyn - self.dyn_index

    @property
    def diverged(self) -> bool:
        return self.divergence_dyn is not None

    def signature(self) -> str:
        """Compact propagation fingerprint for equivalence auditing.

        Two injections with the same signature corrupted state at the
        same static instruction and propagated the same way: same
        control-flow fate, masking bucket, escape behaviour, outcome and
        output-corruption magnitude bucket.  Site coordinates (thread,
        dyn index) are deliberately excluded so signatures compare
        *across* the members of a pruning group.
        """
        depth = self.masking_depth
        if depth is None:
            mask = "live"
        else:
            mask = f"mask{max(0, depth - 1).bit_length()}"
        return "|".join(
            (
                f"pc{self.first_corrupted_pc}",
                self.outcome,
                "div" if self.diverged else "conv",
                mask,
                "esc" if self.escaped_cta else "local",
                f"out{self.output_corrupt_bytes.bit_length()}",
            )
        )

    def to_dict(self) -> dict:
        """JSON-ready payload for ``InjectionEvent.propagation``."""
        return {
            "thread": self.thread,
            "dyn_index": self.dyn_index,
            "bit": self.bit,
            "model": self.model,
            "outcome": self.outcome,
            "backend": self.backend,
            "first_corrupted_pc": self.first_corrupted_pc,
            "replay_outcome": self.replay_outcome,
            "faulty_icnt": self.faulty_icnt,
            "corruption_events": [
                [dyn, list(regs)] for dyn, regs in self.corruption_events
            ],
            "n_corruption_events": self.n_corruption_events,
            "max_corrupted_regs": self.max_corrupted_regs,
            "divergence_dyn": self.divergence_dyn,
            "divergence_pc": self.divergence_pc,
            "masking_dyn": self.masking_dyn,
            "masking_depth": self.masking_depth,
            "heap_corrupt_bytes": self.heap_corrupt_bytes,
            "heap_extent": self.heap_extent,
            "heap_first_offset": self.heap_first_offset,
            "escaped_thread": self.escaped_thread,
            "escaped_cta": self.escaped_cta,
            "output_corrupt_bytes": self.output_corrupt_bytes,
            "output_extent": self.output_extent,
            "output_max_magnitude": self.output_max_magnitude,
            "signature": self.signature(),
            "group": self.group,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PropagationRecord":
        return cls(
            thread=data["thread"],
            dyn_index=data["dyn_index"],
            bit=data["bit"],
            model=data["model"],
            outcome=data["outcome"],
            backend=data.get("backend", "interpreter"),
            first_corrupted_pc=data["first_corrupted_pc"],
            replay_outcome=data.get("replay_outcome", "completed"),
            faulty_icnt=data.get("faulty_icnt", 0),
            corruption_events=tuple(
                (dyn, tuple(regs))
                for dyn, regs in data.get("corruption_events", ())
            ),
            n_corruption_events=data.get("n_corruption_events", 0),
            max_corrupted_regs=data.get("max_corrupted_regs", 0),
            divergence_dyn=data.get("divergence_dyn"),
            divergence_pc=data.get("divergence_pc"),
            masking_dyn=data.get("masking_dyn"),
            heap_corrupt_bytes=data.get("heap_corrupt_bytes", 0),
            heap_extent=data.get("heap_extent", 0),
            heap_first_offset=data.get("heap_first_offset"),
            escaped_thread=data.get("escaped_thread"),
            escaped_cta=data.get("escaped_cta", False),
            output_corrupt_bytes=data.get("output_corrupt_bytes", 0),
            output_extent=data.get("output_extent", 0),
            output_max_magnitude=data.get("output_max_magnitude", 0),
            group=data.get("group"),
        )


class PropagationTracer:
    """Produces a :class:`PropagationRecord` per classified injection."""

    def __init__(self, injector: "FaultInjector") -> None:
        self._injector = injector
        # Private simulator: diagnostic replays must not pollute the
        # campaign's metrics, events or instruction counters.
        self._sim = GPUSimulator(
            telemetry=NULL_TELEMETRY, backend=injector.backend
        )

    # ------------------------------------------------------------- replays

    def _launch_cta(self, cta: int, thread: int, sink, injection=None) -> str:
        """One CTA-sliced replay on the scratch heap; returns the replay
        status and leaves the faulty write log in ``self._last_log``."""
        injector = self._injector
        instance = injector.instance
        memory = injector._scratch_memory
        log: list[tuple[int, bytes]] = []
        self._last_log = log
        memory.write_log = log
        status = "completed"
        try:
            self._sim.launch(
                instance.program,
                instance.geometry,
                instance.param_bytes,
                memory=memory,
                only_cta=cta,
                injection=injection,
                max_steps=injector._cta_budget[cta],
                step_trace=(thread, sink),
            )
        except MemoryFault:
            status = "crash"
        except HangDetected:
            status = "hang"
        finally:
            memory.write_log = None
            memory.revert_writes(log, instance.initial_memory)
        return status

    def _golden_stream(self, thread: int) -> list[dict]:
        """Golden per-instruction register snapshots of one thread.

        The stream holds one dict per observation at dyn 1..icnt-1 (the
        state *before* dyn 0 is trivially empty, the state *after* the
        final instruction is unobservable — and irrelevant: a thread's
        last instruction is an exit, which writes no register).

        Delegates to the injector's :class:`GoldenStreamCache` so the
        resync monitor and the propagation tracer share one capture per
        thread instead of replaying the golden CTA twice.
        """
        return self._injector.golden_streams().stream(thread).snaps

    # --------------------------------------------------------------- trace

    def trace(
        self, thread: int, spec: InjectionSpec, outcome: Outcome
    ) -> PropagationRecord:
        """Replay one injection diagnostically and diff it against golden."""
        injector = self._injector
        geometry = injector.instance.geometry
        cta = geometry.cta_of_thread(thread)
        golden_trace = injector.traces[thread]
        golden_len = len(golden_trace)
        flip = spec.dyn_index
        snaps = self._golden_stream(thread)

        state = {
            "cur": (),  # current corrupted-register set
            "drain_dyn": None,  # dyn at which the set last became empty
            "div_dyn": None,
            "div_pc": None,
            "last_dyn": 0,
            "n_events": 0,
            "max_regs": 0,
        }
        events: list[tuple[int, tuple]] = []

        def sink(dyn: int, pc: int, regs: dict) -> None:
            state["last_dyn"] = dyn
            if dyn <= flip or state["div_dyn"] is not None:
                return
            if dyn >= golden_len or pc != golden_trace[dyn][0]:
                state["div_dyn"] = dyn
                state["div_pc"] = pc
                return
            golden = snaps[dyn - 1]
            corrupted = tuple(
                sorted(
                    name
                    for name in golden.keys() | regs.keys()
                    if not _same_value(
                        golden.get(name, _MISSING), regs.get(name, _MISSING)
                    )
                )
            )
            if corrupted == state["cur"]:
                return
            state["cur"] = corrupted
            state["drain_dyn"] = dyn if not corrupted else None
            state["n_events"] += 1
            if len(corrupted) > state["max_regs"]:
                state["max_regs"] = len(corrupted)
            if len(events) < MAX_CORRUPTION_EVENTS:
                events.append((dyn, corrupted))

        status = self._launch_cta(cta, thread, sink, injection=(thread, spec))
        faulty_log = self._last_log

        masking_dyn = None
        if (
            status == "completed"
            and state["div_dyn"] is None
            and state["last_dyn"] > flip
            and not state["cur"]
        ):
            masking_dyn = (
                state["drain_dyn"] if state["drain_dyn"] is not None else flip + 1
            )

        heap = self._heap_geometry(cta, thread, faulty_log)
        output = self._output_geometry(cta, faulty_log)

        return PropagationRecord(
            thread=thread,
            dyn_index=flip,
            bit=spec.bit,
            model=spec.model.value,
            outcome=outcome.value,
            backend=injector.backend,
            first_corrupted_pc=golden_trace[flip][0],
            replay_outcome=status,
            faulty_icnt=state["last_dyn"] + 1,
            corruption_events=tuple(events),
            n_corruption_events=state["n_events"],
            max_corrupted_regs=state["max_regs"],
            divergence_dyn=state["div_dyn"],
            divergence_pc=state["div_pc"],
            masking_dyn=masking_dyn,
            escaped_cta=injector._writes_escape_cta(faulty_log, cta),
            group=injector.injection_group,
            **heap,
            **output,
        )

    # ------------------------------------------------------------ geometry

    def _heap_geometry(self, cta: int, thread: int, faulty_log) -> dict:
        """Corrupted window bytes vs the golden CTA image, plus escape."""
        injector = self._injector
        lo = injector._win_lo
        size = injector._win_size
        faulty = injector._initial_window.copy()
        self._apply_log(faulty, faulty_log, lo, size)
        golden = injector._initial_window.copy()
        self._apply_log(golden, injector._cta_write_logs[cta], lo, size)
        offsets = np.flatnonzero(faulty != golden)
        escaped_thread = None
        if injector._slicing_enabled and offsets.size:
            own = injector._thread_write_offsets[thread]
            escaped_thread = bool(np.setdiff1d(offsets, own).size)
        elif injector._slicing_enabled:
            escaped_thread = False
        if not offsets.size:
            return {
                "heap_corrupt_bytes": 0,
                "heap_extent": 0,
                "heap_first_offset": None,
                "escaped_thread": escaped_thread,
            }
        return {
            "heap_corrupt_bytes": int(offsets.size),
            "heap_extent": int(offsets[-1] - offsets[0] + 1),
            "heap_first_offset": int(offsets[0]),
            "escaped_thread": escaped_thread,
        }

    @staticmethod
    def _apply_log(window: np.ndarray, log, lo: int, size: int) -> None:
        for address, raw in log:
            start = address - lo
            end = start + len(raw)
            c0, c1 = max(start, 0), min(end, size)
            if c0 < c1:
                window[c0:c1] = np.frombuffer(
                    raw[c0 - start : c1 - start], dtype=np.uint8
                )

    def _output_geometry(self, cta: int, faulty_log) -> dict:
        """Corrupted output-image bytes: count, extent, max magnitude.

        Same overlay as the injector's patched-image classifier: golden
        image, CTA's golden writes reverted to initial, faulty writes
        replayed in order.  For escaped injections (cross-CTA writes)
        the overlay is CTA-local and therefore approximate — the record
        flags those via ``escaped_cta``.
        """
        injector = self._injector
        image = injector._golden_image.copy()
        indices, values = injector._cta_patch(cta)
        if indices.size:
            image[indices] = values
        for address, raw in faulty_log:
            end = address + len(raw)
            for region_lo, region_hi, image_off in injector._out_regions:
                if address < region_hi and end > region_lo:
                    a = max(address, region_lo)
                    b = min(end, region_hi)
                    image[image_off + a - region_lo : image_off + b - region_lo] = (
                        np.frombuffer(raw[a - address : b - address], dtype=np.uint8)
                    )
        golden = injector._golden_image
        offsets = np.flatnonzero(image != golden)
        if not offsets.size:
            return {
                "output_corrupt_bytes": 0,
                "output_extent": 0,
                "output_max_magnitude": 0,
            }
        deltas = np.abs(
            image[offsets].astype(np.int16) - golden[offsets].astype(np.int16)
        )
        return {
            "output_corrupt_bytes": int(offsets.size),
            "output_extent": int(offsets[-1] - offsets[0] + 1),
            "output_max_magnitude": int(deltas.max()),
        }
