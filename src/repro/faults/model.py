"""Fault models beyond the paper's default.

The paper injects single-bit flips into **destination register values**
(mimicking functional-unit soft errors), the same as SASSIFI's IOV mode.
SASSIFI — the injection methodology the paper builds on — also supports:

* **IOA** (:attr:`FaultModel.STORE_ADDRESS`) — corrupt the effective
  address of a store (load-store-unit addressing fault);
* **RF**  (:attr:`FaultModel.REGISTER_FILE`) — flip a bit of an arbitrary
  architected register at an arbitrary dynamic point (unprotected
  register-file cell upset).

These extend the injector so the pruning methodology can be studied under
different fault models (see ``benchmarks/bench_ablation_fault_models.py``).
The definitions live in :mod:`repro.gpu.injection` (the interpreter
executes them); this module is the fault-layer face of the same types.
"""

from ..gpu.injection import (  # noqa: F401
    FaultModel,
    InjectionSpec,
    RegisterFileSite,
    StoreAddressSite,
)

__all__ = ["FaultModel", "InjectionSpec", "RegisterFileSite", "StoreAddressSite"]
