"""The exhaustive fault-site space of a kernel (paper Eq. 1).

Built from the golden per-thread traces, a :class:`FaultSpace` can count,
enumerate, index and uniformly sample the space

    FaultCoverage = sum_t sum_i bit(t, i)

without ever materialising it (the spaces run to 1e6+ sites even at our
scale, and 1e8+ at the paper's).
"""

from __future__ import annotations

import bisect

import numpy as np

from ..errors import FaultInjectionError
from ..gpu.tracing import ThreadTrace
from .site import FaultSite


class FaultSpace:
    """Counting / indexing view over every (thread, dyn instr, bit) site."""

    def __init__(self, traces: list[ThreadTrace]) -> None:
        self._traces = traces
        # Per-thread cumulative widths over trace entries, for O(log n)
        # random indexing; built lazily per thread to keep startup cheap.
        self._thread_sites = [sum(w for _, w in trace) for trace in traces]
        self._thread_cum = np.cumsum([0] + self._thread_sites).tolist()
        self._entry_cums: dict[int, list[int]] = {}

    @property
    def n_threads(self) -> int:
        return len(self._traces)

    @property
    def total_sites(self) -> int:
        return self._thread_cum[-1]

    def thread_sites(self, thread: int) -> int:
        return self._thread_sites[thread]

    def thread_icnt(self, thread: int) -> int:
        return len(self._traces[thread])

    def _entry_cum(self, thread: int) -> list[int]:
        cum = self._entry_cums.get(thread)
        if cum is None:
            widths = [w for _, w in self._traces[thread]]
            cum = np.cumsum([0] + widths).tolist()
            self._entry_cums[thread] = cum
        return cum

    def site_at(self, flat_index: int) -> FaultSite:
        """The site with global index ``flat_index`` in [0, total_sites)."""
        if not 0 <= flat_index < self.total_sites:
            raise FaultInjectionError(
                f"site index {flat_index} outside space of {self.total_sites}"
            )
        thread = bisect.bisect_right(self._thread_cum, flat_index) - 1
        within = flat_index - self._thread_cum[thread]
        cum = self._entry_cum(thread)
        dyn_index = bisect.bisect_right(cum, within) - 1
        bit = within - cum[dyn_index]
        return FaultSite(thread=thread, dyn_index=dyn_index, bit=bit)

    def sample(self, n: int, rng: np.random.Generator) -> list[FaultSite]:
        """``n`` sites drawn uniformly at random (with replacement).

        Sampling with replacement matches the statistical-fault-injection
        baseline of Leveugle et al. that the paper compares against.
        """
        indices = rng.integers(0, self.total_sites, size=n)
        return [self.site_at(int(i)) for i in indices]

    def sites_of_instruction(self, thread: int, dyn_index: int) -> list[FaultSite]:
        """Every bit position of one dynamic instruction of one thread."""
        _, width = self._traces[thread][dyn_index]
        return [FaultSite(thread, dyn_index, b) for b in range(width)]

    def iter_thread_sites(self, thread: int):
        """Every site of one thread, in (dyn_index, bit) order."""
        for dyn_index, (_pc, width) in enumerate(self._traces[thread]):
            for bit in range(width):
                yield FaultSite(thread, dyn_index, bit)

    def width_of(self, thread: int, dyn_index: int) -> int:
        return self._traces[thread][dyn_index][1]

    def pc_of(self, thread: int, dyn_index: int) -> int:
        return self._traces[thread][dyn_index][0]
