"""Fault-site identity.

The paper identifies a fault site by (thread id, dynamic instruction id,
destination-register bit position) — Section II-C.  Sites only exist where
the dynamic instruction actually writes a destination (predicated-off
slots and stores contribute zero bits to Eq. 1).

:func:`parse_site` inverts the ``str()`` forms of all three site kinds
(``t0/i5/b3``, ``ioa:t0/i5/b3``, ``rf:t0/i5/R1/b3``) so CLI commands can
accept a site exactly as reports and logs print it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import ReproError


@dataclass(frozen=True, slots=True, order=True)
class FaultSite:
    """One single-bit-flip injection target."""

    thread: int
    dyn_index: int
    bit: int

    def __str__(self) -> str:
        return f"t{self.thread}/i{self.dyn_index}/b{self.bit}"


_IOV_RE = re.compile(r"^t(\d+)/i(\d+)/b(\d+)$")
_IOA_RE = re.compile(r"^ioa:t(\d+)/i(\d+)/b(\d+)$")
_RF_RE = re.compile(r"^rf:t(\d+)/i(\d+)/([A-Za-z_]\w*)/b(\d+)$")


def parse_site(text: str):
    """Parse any site's ``str()`` form back into the site object.

    Returns a :class:`FaultSite`, :class:`~repro.faults.model.StoreAddressSite`
    or :class:`~repro.faults.model.RegisterFileSite` according to the
    (optional) model prefix.
    """
    from .model import RegisterFileSite, StoreAddressSite

    text = text.strip()
    match = _IOV_RE.match(text)
    if match:
        return FaultSite(*(int(g) for g in match.groups()))
    match = _IOA_RE.match(text)
    if match:
        return StoreAddressSite(*(int(g) for g in match.groups()))
    match = _RF_RE.match(text)
    if match:
        thread, dyn_index, reg, bit = match.groups()
        return RegisterFileSite(int(thread), int(dyn_index), reg, int(bit))
    raise ReproError(
        f"cannot parse fault site {text!r} (expected t<T>/i<D>/b<B>, "
        "ioa:t<T>/i<D>/b<B> or rf:t<T>/i<D>/<REG>/b<B>)"
    )
