"""Fault-site identity.

The paper identifies a fault site by (thread id, dynamic instruction id,
destination-register bit position) — Section II-C.  Sites only exist where
the dynamic instruction actually writes a destination (predicated-off
slots and stores contribute zero bits to Eq. 1).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True, order=True)
class FaultSite:
    """One single-bit-flip injection target."""

    thread: int
    dyn_index: int
    bit: int

    def __str__(self) -> str:
        return f"t{self.thread}/i{self.dyn_index}/b{self.bit}"
