"""Persisting campaign results (JSON) for long-running studies.

Real campaigns run for hours; crashing at run 40,000 must not lose runs
0-39,999.  These helpers serialise campaign results and pruned-space
estimates to plain JSON so a study can checkpoint, resume, and archive
its raw outcomes next to the aggregated profiles.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import ReproError
from .campaign import CampaignResult
from .outcome import CATEGORIES, Outcome, ResilienceProfile
from .site import FaultSite

FORMAT_VERSION = 1


def campaign_to_dict(result: CampaignResult, kernel: str = "") -> dict:
    return {
        "version": FORMAT_VERSION,
        "kernel": kernel,
        "runs": [
            {
                "thread": site.thread,
                "dyn_index": site.dyn_index,
                "bit": site.bit,
                "outcome": outcome.value,
            }
            for site, outcome in zip(result.sites, result.outcomes)
        ],
        "profile": {
            "weights": result.profile.weights,
            "n_injections": result.profile.n_injections,
        },
    }


def campaign_from_dict(data: dict) -> CampaignResult:
    if data.get("version") != FORMAT_VERSION:
        raise ReproError(f"unsupported campaign format {data.get('version')!r}")
    sites = []
    outcomes = []
    for run in data["runs"]:
        sites.append(FaultSite(run["thread"], run["dyn_index"], run["bit"]))
        outcomes.append(Outcome(run["outcome"]))
    profile = ResilienceProfile(
        weights={c: float(data["profile"]["weights"][c]) for c in CATEGORIES},
        n_injections=int(data["profile"]["n_injections"]),
    )
    return CampaignResult(sites=sites, outcomes=outcomes, profile=profile)


def save_campaign(result: CampaignResult, path: str | Path, kernel: str = "") -> None:
    Path(path).write_text(json.dumps(campaign_to_dict(result, kernel), indent=1))


def load_campaign(path: str | Path) -> CampaignResult:
    return campaign_from_dict(json.loads(Path(path).read_text()))
