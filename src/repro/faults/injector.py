"""The fault injector: golden run + classified faulty runs.

``FaultInjector`` wraps one staged :class:`~repro.kernels.KernelInstance`.
On construction it performs the golden run, recording per-thread traces
(which define the fault-site space), per-CTA global-memory write logs and
the golden output image.

Each injection re-executes only the CTA that owns the injected thread
against a snapshot of the *initial* heap (CTAs within one launch cannot
communicate, so this is exact), then rebuilds the faulty final heap by
reverting that CTA's golden writes and replaying its faulty ones.  If a
corrupted-but-in-bounds pointer made the faulty CTA write into another
CTA's output territory, ordering against the other CTA matters, so the
injector detects the overlap and transparently falls back to a full
re-execution.  ``inject_full`` is the reference slow path used for
cross-validation.

Outcome classification (paper Section II-B):

* ``MASKED`` — output image identical to golden;
* ``SDC``    — run completed, output differs;
* ``CRASH``  — a memory fault aborted the run;
* ``HANG``   — a thread exceeded ``hang_factor`` x its golden iCnt budget.
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import FaultInjectionError, HangDetected, MemoryFault
from ..gpu import GPUSimulator, GlobalMemory
from ..kernels.registry import KernelInstance
from ..telemetry import NULL_TELEMETRY, InjectionEvent, Telemetry
from .model import FaultModel, InjectionSpec, RegisterFileSite, StoreAddressSite
from .outcome import Outcome
from .site import FaultSite
from .space import FaultSpace

#: Faulty runs may execute this many times the CTA's golden instruction
#: budget before being declared hung.
DEFAULT_HANG_FACTOR = 10

#: Effective addresses and architected registers are 32-bit cells.
ADDRESS_BITS = 32


class FaultInjector:
    """Golden state plus the injection entry points for one kernel."""

    def __init__(
        self,
        instance: KernelInstance,
        hang_factor: int = DEFAULT_HANG_FACTOR,
        verify_golden: bool = True,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.instance = instance
        self.hang_factor = hang_factor
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._launcher = GPUSimulator(telemetry=self.telemetry)

        with self.telemetry.span("golden-run"):
            golden_memory = instance.golden_memory()
            result = self._launcher.launch(
                instance.program,
                instance.geometry,
                instance.param_bytes,
                memory=golden_memory,
                record_traces=True,
                record_write_logs=True,
            )
            if verify_golden:
                instance.verify_reference(golden_memory)

        self.traces = result.traces
        self.space = FaultSpace(self.traces)
        self._golden_memory = golden_memory
        self._golden_output = instance.output_bytes(golden_memory)
        self._cta_write_logs = result.cta_write_logs
        # Byte addresses written by each CTA in the golden run, used both to
        # revert a CTA's writes and to detect cross-CTA write overlap.
        self._cta_write_bytes: list[set[int]] = []
        for log in self._cta_write_logs:
            touched: set[int] = set()
            for address, raw in log:
                touched.update(range(address, address + len(raw)))
            self._cta_write_bytes.append(touched)
        tpc = instance.geometry.threads_per_cta
        self._cta_budget = [
            self.hang_factor
            * max(len(self.traces[cta * tpc + s]) for s in range(tpc))
            + 256
            for cta in range(instance.geometry.n_ctas)
        ]
        self.fallback_count = 0  # full re-executions forced by write overlap

    # ------------------------------------------------------------ injection

    def inject(self, site: FaultSite) -> Outcome:
        """Classify one single-bit flip using the CTA-sliced fast path."""
        self._check_site(site)
        return self.inject_spec(
            site.thread, InjectionSpec(site.dyn_index, site.bit), label=str(site)
        )

    def inject_spec(
        self, thread: int, spec: InjectionSpec, label: str | None = None
    ) -> Outcome:
        """Classify one injection of any fault model (fast path)."""
        telemetry = self.telemetry
        if not telemetry.enabled:
            return self._run_spec(thread, spec, label)
        t0 = time.perf_counter()
        fallbacks_before = self.fallback_count
        with telemetry.span("injection"):
            outcome = self._run_spec(thread, spec, label)
        self._record_injection(
            thread,
            spec,
            outcome,
            fast_path=self.fallback_count == fallbacks_before,
            duration_s=time.perf_counter() - t0,
        )
        return outcome

    def _run_spec(
        self, thread: int, spec: InjectionSpec, label: str | None = None
    ) -> Outcome:
        """The uninstrumented fast path (CTA slice, overlay, classify)."""
        label = label if label is not None else f"t{thread}:{spec}"
        self._check_spec(thread, spec)
        geometry = self.instance.geometry
        cta = geometry.cta_of_thread(thread)
        memory = self.instance.initial_memory.snapshot()
        faulty_log: list[tuple[int, bytes]] = []
        memory.write_log = faulty_log
        try:
            result = self._launcher.launch(
                self.instance.program,
                geometry,
                self.instance.param_bytes,
                memory=memory,
                only_cta=cta,
                injection=(thread, spec),
                max_steps=self._cta_budget[cta],
            )
        except MemoryFault:
            return Outcome.CRASH
        except HangDetected:
            return Outcome.HANG
        finally:
            memory.write_log = None
        if not result.injection_applied:
            if spec.model is FaultModel.STORE_ADDRESS:
                # The targeted store was predicated off: a corrupted address
                # on a store that never issues has no effect.
                return Outcome.MASKED
            raise FaultInjectionError(f"injection at {label} never fired")

        if self._writes_escape_cta(faulty_log, cta):
            self.fallback_count += 1
            return self._run_spec_full(thread, spec, label)

        faulty_final = self._overlay(cta, faulty_log)
        return self._classify_output(faulty_final)

    def inject_full(self, site: FaultSite) -> Outcome:
        """Reference slow path: re-execute the entire grid."""
        self._check_site(site)
        return self.inject_spec_full(
            site.thread, InjectionSpec(site.dyn_index, site.bit), label=str(site)
        )

    def inject_spec_full(
        self, thread: int, spec: InjectionSpec, label: str | None = None
    ) -> Outcome:
        """Classify one injection via the reference full re-execution."""
        telemetry = self.telemetry
        if not telemetry.enabled:
            return self._run_spec_full(thread, spec, label)
        t0 = time.perf_counter()
        with telemetry.span("injection"):
            outcome = self._run_spec_full(thread, spec, label)
        self._record_injection(
            thread, spec, outcome, fast_path=False,
            duration_s=time.perf_counter() - t0,
        )
        return outcome

    def _run_spec_full(
        self, thread: int, spec: InjectionSpec, label: str | None = None
    ) -> Outcome:
        label = label if label is not None else f"t{thread}:{spec}"
        self._check_spec(thread, spec)
        memory = self.instance.initial_memory.snapshot()
        max_steps = max(self._cta_budget)
        try:
            result = self._launcher.launch(
                self.instance.program,
                self.instance.geometry,
                self.instance.param_bytes,
                memory=memory,
                injection=(thread, spec),
                max_steps=max_steps,
            )
        except MemoryFault:
            return Outcome.CRASH
        except HangDetected:
            return Outcome.HANG
        if not result.injection_applied:
            if spec.model is FaultModel.STORE_ADDRESS:
                return Outcome.MASKED
            raise FaultInjectionError(f"injection at {label} never fired")
        return self._classify_output(memory)

    # -------------------------------------------- extended fault-model sites

    def store_address_sites(self, thread: int) -> list[StoreAddressSite]:
        """Every IOA site of one thread: each bit of each store's address."""
        program = self.instance.program
        sites = []
        for dyn_index, (pc, _width) in enumerate(self.traces[thread]):
            if program.instructions[pc].op == "st":
                sites.extend(
                    StoreAddressSite(thread, dyn_index, bit)
                    for bit in range(ADDRESS_BITS)
                )
        return sites

    def sample_register_file_sites(
        self, n: int, rng: np.random.Generator
    ) -> list[RegisterFileSite]:
        """``n`` random RF sites: (thread, dynamic point, register, bit).

        Registers are drawn from those the thread has *written* by the
        chosen point (flipping a never-written cell models an upset in an
        unallocated register — pointless to study).
        """
        sites: list[RegisterFileSite] = []
        program = self.instance.program
        n_threads = len(self.traces)
        while len(sites) < n:
            thread = int(rng.integers(0, n_threads))
            trace = self.traces[thread]
            if not trace:
                continue
            dyn_index = int(rng.integers(0, len(trace)))
            written = {
                program.instructions[pc].dest.name
                for pc, width in trace[:dyn_index]
                if width and program.instructions[pc].dest is not None
            }
            if not written:
                continue
            reg = sorted(written)[int(rng.integers(0, len(written)))]
            bit = int(rng.integers(0, ADDRESS_BITS))
            sites.append(RegisterFileSite(thread, dyn_index, reg, bit))
        return sites

    # -------------------------------------------------------------- helpers

    def _record_injection(
        self,
        thread: int,
        spec: InjectionSpec,
        outcome: Outcome,
        fast_path: bool,
        duration_s: float,
    ) -> None:
        """Counters + one :class:`InjectionEvent` per classified injection."""
        telemetry = self.telemetry
        telemetry.count("injections.total")
        telemetry.count(
            "injections.fast_path" if fast_path else "injections.full_rerun"
        )
        telemetry.count(f"outcome.{outcome.value}")
        telemetry.observe("injection_s", duration_s)
        telemetry.emit(
            InjectionEvent(
                time.time(),
                thread=thread,
                dyn_index=spec.dyn_index,
                bit=spec.bit,
                model=spec.model.value,
                outcome=outcome.value,
                fast_path=fast_path,
                duration_s=duration_s,
            )
        )

    def _check_site(self, site: FaultSite) -> None:
        if not 0 <= site.thread < len(self.traces):
            raise FaultInjectionError(f"{site}: thread out of range")
        trace = self.traces[site.thread]
        if not 0 <= site.dyn_index < len(trace):
            raise FaultInjectionError(f"{site}: dynamic instruction out of range")
        width = trace[site.dyn_index][1]
        if not 0 <= site.bit < width:
            raise FaultInjectionError(
                f"{site}: bit out of range for a {width}-bit destination"
            )

    def _check_spec(self, thread: int, spec: InjectionSpec) -> None:
        if not 0 <= thread < len(self.traces):
            raise FaultInjectionError(f"thread {thread} out of range")
        trace = self.traces[thread]
        if not 0 <= spec.dyn_index < len(trace):
            raise FaultInjectionError(
                f"t{thread}/i{spec.dyn_index}: dynamic instruction out of range"
            )
        if spec.model is FaultModel.STORE_ADDRESS:
            pc = trace[spec.dyn_index][0]
            if self.instance.program.instructions[pc].op != "st":
                raise FaultInjectionError(
                    f"t{thread}/i{spec.dyn_index}: STORE_ADDRESS target is not a store"
                )
            if not 0 <= spec.bit < ADDRESS_BITS:
                raise FaultInjectionError(f"address bit {spec.bit} out of range")
        elif spec.model is FaultModel.REGISTER_FILE:
            if not 0 <= spec.bit < ADDRESS_BITS:
                raise FaultInjectionError(f"register bit {spec.bit} out of range")

    def _writes_escape_cta(self, faulty_log, cta: int) -> bool:
        """Did the faulty CTA write bytes another CTA also writes?"""
        others: list[set[int]] = [
            touched
            for index, touched in enumerate(self._cta_write_bytes)
            if index != cta
        ]
        own = self._cta_write_bytes[cta]
        for address, raw in faulty_log:
            span = range(address, address + len(raw))
            if all(b in own for b in span):
                continue
            for touched in others:
                if any(b in touched for b in span):
                    return True
        return False

    def _overlay(self, cta: int, faulty_log) -> GlobalMemory:
        """Golden final heap with CTA ``cta``'s writes replaced."""
        final = self._golden_memory.snapshot()
        initial = self.instance.initial_memory
        for address, raw in self._cta_write_logs[cta]:
            final.write_bytes(address, initial.read_bytes(address, len(raw)))
        final.apply_writes(faulty_log)
        return final

    def _classify_output(self, memory: GlobalMemory) -> Outcome:
        try:
            output = self.instance.output_bytes(memory)
        except MemoryFault:  # pragma: no cover - outputs are always allocated
            return Outcome.CRASH
        if output == self._golden_output:
            return Outcome.MASKED
        return Outcome.SDC
