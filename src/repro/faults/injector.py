"""The fault injector: golden run + classified faulty runs.

``FaultInjector`` wraps one staged :class:`~repro.kernels.KernelInstance`.
On construction it performs the golden run, recording per-thread traces
(which define the fault-site space), per-CTA global-memory write/read logs
and the golden output image.

Injections execute over a ladder of progressively cheaper slices, each
rung proven equivalent to the one below before its result is trusted:

* **thread slice** — when the owning CTA provably exchanges no data
  between its threads (no shared-memory instructions, and the CTA's
  golden global reads never touch golden global writes), only the
  injected thread re-executes.  Dynamic read/write logs of the faulty
  run are checked against precomputed byte-ownership masks; any overlap
  with what sibling threads read or wrote demotes the run one rung.
* **CTA slice** — the paper's fast path: the owning CTA re-executes
  against the initial heap (CTAs within one launch cannot communicate,
  so this is exact) and its writes are overlaid onto the golden final
  output image.  If a corrupted-but-in-bounds pointer wrote into another
  CTA's output territory, ordering against the other CTA matters, so the
  overlap is detected via the same ownership masks and the run falls
  back to a full re-execution.
* **full re-execution** — ``inject_full``, the reference slow path used
  for cross-validation and as the final fallback.

Hot-path engineering (see ``docs/performance.md``): one scratch heap is
reused across injections and repaired from the write log instead of
copying the golden heap; overlays patch only the output image instead of
a full heap snapshot; and cross-CTA/intra-CTA overlap checks are numpy
slice operations over precomputed byte-ownership masks rather than
per-byte ``set`` scans.

Outcome classification (paper Section II-B):

* ``MASKED`` — output image identical to golden;
* ``SDC``    — run completed, output differs;
* ``CRASH``  — a memory fault aborted the run;
* ``HANG``   — a thread exceeded ``hang_factor`` x its golden iCnt budget.
"""

from __future__ import annotations

import bisect
import time

import numpy as np

from dataclasses import dataclass

from ..errors import FaultInjectionError, HangDetected, MemoryFault, ResyncReached
from ..gpu import GPUSimulator, GlobalMemory
from ..gpu.checkpoint import (
    DEFAULT_BUDGET_MB,
    CheckpointPlan,
    CheckpointStore,
    CTACheckpoint,
    ThreadCheckpoint,
    derive_checkpoint_interval,
)
from ..gpu.isa import MemRef
from ..kernels.registry import KernelInstance
from ..telemetry import NULL_TELEMETRY, InjectionEvent, Telemetry
from .model import FaultModel, InjectionSpec, RegisterFileSite, StoreAddressSite
from .outcome import Outcome
from .resync import (
    DEFAULT_RESYNC_WINDOW,
    GoldenStreamCache,
    ResyncMemo,
    ResyncMonitor,
    control_pcs,
)
from .site import FaultSite
from .space import FaultSpace

#: Faulty runs may execute this many times the CTA's golden instruction
#: budget before being declared hung.
DEFAULT_HANG_FACTOR = 10

#: Effective addresses and architected registers are 32-bit cells.
ADDRESS_BITS = 32

_EMPTY_PATCH = (np.zeros(0, dtype=np.intp), np.zeros(0, dtype=np.uint8))


def _program_uses_shared(program) -> bool:
    """Does any instruction touch the per-CTA shared scratchpad?"""
    return any(
        isinstance(operand, MemRef) and operand.space == "shared"
        for insn in program.instructions
        for operand in insn.srcs
    )


@dataclass
class GoldenState:
    """Pickled golden-run artifacts for worker handoff.

    A :class:`FaultInjector` built with ``golden=`` skips the golden
    launch entirely: the final heap is rebuilt by replaying the CTA write
    logs (exact, because CTAs execute sequentially and cannot
    communicate), and traces/logs are adopted as-is.  Everything here is
    plain picklable data, so a campaign coordinator captures golden state
    once and ships it to every pool worker instead of each worker paying
    a full traced-and-logged run.
    """

    traces: list
    cta_write_logs: list
    cta_read_logs: list | None
    thread_write_logs: list | None


class FaultInjector:
    """Golden state plus the injection entry points for one kernel."""

    def __init__(
        self,
        instance: KernelInstance,
        hang_factor: int = DEFAULT_HANG_FACTOR,
        verify_golden: bool = True,
        telemetry: Telemetry | None = None,
        thread_slicing: bool = True,
        checkpoint_interval: int | str = "auto",
        checkpoint_budget_mb: float = DEFAULT_BUDGET_MB,
        backend: str = "interpreter",
        golden: GoldenState | None = None,
        propagation: bool = False,
        resync: bool = False,
        resync_window: int = DEFAULT_RESYNC_WINDOW,
    ) -> None:
        self.instance = instance
        self.hang_factor = hang_factor
        self.thread_slicing = thread_slicing  # the requested flag, as given
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.backend = backend
        #: Provenance tracing: every classified injection also gets a
        #: diagnostic replay producing a :class:`PropagationRecord`
        #: (see ``repro.faults.propagation``).  Off by default; the
        #: disabled cost is one attribute check per injection.
        self.propagation = propagation
        self.propagation_records: list = []
        #: Pruning-group tag stamped onto emitted events/records while
        #: set (used by the coherence audit); None outside audits.
        self.injection_group: str | None = None
        self._tracer = None  # built lazily on the first traced injection
        #: Golden-resync early exit: once a faulty run provably
        #: reconverges with golden, splice the suffix instead of
        #: executing it (see ``repro.faults.resync``).
        self.resync = resync
        self.resync_window = max(1, int(resync_window))
        self._resync_memo = ResyncMemo() if resync else None
        self._resync_pcs = control_pcs(instance.program) if resync else None
        self._golden_streams: GoldenStreamCache | None = None
        self._golden_interferes: dict[int, bool] = {}
        self._cta_trace_totals: dict[int, int] = {}
        #: Per-run accounting scratch for effective-iCnt event fields
        #: (checkpoint-skipped + resync-spliced instructions).
        self._run_extra = {"skipped": 0, "golden_total": 0}
        self._launcher = GPUSimulator(telemetry=self.telemetry, backend=backend)
        self.checkpoint_budget_mb = checkpoint_budget_mb
        # Thread slicing is sound only for CTAs whose threads provably do
        # not communicate; the static half of that proof is "no shared
        # memory instructions at all".
        self._slicing_enabled = thread_slicing and not _program_uses_shared(
            instance.program
        )

        if golden is not None:
            # Worker handoff: adopt shipped golden artifacts and rebuild
            # the final heap from the CTA write logs — no golden launch.
            if self._slicing_enabled and golden.cta_read_logs is None:
                self._slicing_enabled = False  # shipped state lacks read logs
            with self.telemetry.span("golden-restore"):
                golden_memory = instance.golden_memory()
                for log in golden.cta_write_logs:
                    golden_memory.apply_writes(log)
            result = golden
            self.traces = golden.traces
        else:
            with self.telemetry.span("golden-run"):
                golden_memory = instance.golden_memory()
                result = self._launcher.launch(
                    instance.program,
                    instance.geometry,
                    instance.param_bytes,
                    memory=golden_memory,
                    record_traces=True,
                    record_write_logs=True,
                    record_read_logs=self._slicing_enabled,
                    record_thread_write_logs=self._slicing_enabled,
                )
                if verify_golden:
                    instance.verify_reference(golden_memory)
            self.traces = result.traces

        # Checkpointed fast-forwarding: interval 0 disables the layer and
        # every injection re-executes its full golden prefix (the
        # reference behaviour all equivalence tests pin against).
        # ``"auto"`` derives a per-kernel interval from the trace-length
        # tertiles — shallow kernels skip the layer entirely.
        if checkpoint_interval == "auto":
            self.checkpoint_interval = derive_checkpoint_interval(self.traces)
        else:
            self.checkpoint_interval = max(0, int(checkpoint_interval))
        self.checkpoints: CheckpointStore | None = (
            CheckpointStore(int(checkpoint_budget_mb * (1 << 20)))
            if self.checkpoint_interval > 0
            else None
        )

        self.space = FaultSpace(self.traces)
        #: Per-thread golden global-write logs (sliceable kernels only) —
        #: the checkpoint layer replays prefixes of these onto the scratch
        #: heap instead of re-executing the instructions that issued them.
        self._thread_write_logs = result.thread_write_logs
        self._golden_memory = golden_memory
        self._golden_output = instance.output_bytes(golden_memory)
        self._cta_write_logs = result.cta_write_logs
        self._cta_read_logs = result.cta_read_logs
        tpc = instance.geometry.threads_per_cta
        self._cta_budget = [
            self.hang_factor
            * max(len(self.traces[cta * tpc + s]) for s in range(tpc))
            + 256
            for cta in range(instance.geometry.n_ctas)
        ]
        self.fallback_count = 0  # full re-executions forced by write overlap

        self._build_ownership_masks(result)
        self._build_output_image()
        # One scratch heap reused by every sliced faulty run; repaired
        # from the write log afterwards instead of re-copied.
        self._scratch_memory = instance.initial_memory.snapshot()
        self._cta_patches: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._thread_patches: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._rf_prefix_cache: dict[int, tuple[list[int], list[tuple[str, ...]]]] = {}

    # --------------------------------------------------- golden-state index

    def golden_state(self) -> GoldenState:
        """Picklable golden-run artifacts for :class:`GoldenState` handoff.

        Everything returned is immutable-in-practice golden data; shipping
        it to a pool worker lets that worker's injector skip the golden
        launch entirely (see ``repro.parallel``).
        """
        return GoldenState(
            traces=self.traces,
            cta_write_logs=self._cta_write_logs,
            cta_read_logs=self._cta_read_logs,
            thread_write_logs=self._thread_write_logs,
        )

    def golden_streams(self) -> GoldenStreamCache:
        """The shared per-thread golden observation streams (lazy).

        One cache serves both the resync monitor and the propagation
        tracer, so ``resync=True`` composed with ``propagation=True``
        captures each thread's golden comparison stream once.
        """
        streams = self._golden_streams
        if streams is None:
            streams = self._golden_streams = GoldenStreamCache(self)
        return streams

    def _build_resync_monitor(
        self, thread: int, spec: InjectionSpec, read_log, path_tag: str
    ) -> ResyncMonitor | None:
        """One convergence monitor for one faulty run; ``None`` = futile.

        A flip on the thread's final dynamic instruction has no post-flip
        observation point (the post-exit state is unobservable), so no
        monitor is armed and the run executes to completion as before.
        """
        trace = self.traces[thread]
        if spec.dyn_index >= len(trace) - 1:
            return None
        bar_pcs, shared_store_pcs = self._resync_pcs
        return ResyncMonitor(
            thread,
            self.golden_streams().stream(thread),
            trace,
            spec.dyn_index,
            self.resync_window,
            self._scratch_memory,
            self._resync_memo,
            path_tag,
            bar_pcs,
            shared_store_pcs,
            read_log=read_log,
        )

    def _golden_thread_interferes(self, thread: int, cta: int) -> bool:
        """Would the thread's own *golden* writes interfere with siblings?

        A spliced run's write sequence is exactly a golden prefix, so the
        only interference term its unexecuted suffix can contribute is a
        golden write-write overlap — precomputable per thread.  (Golden
        reads cannot interfere: a sliceable CTA's golden reads never
        touch its golden writes, by the sliceability criterion.)
        """
        cached = self._golden_interferes.get(thread)
        if cached is None:
            own = self._thread_write_offsets[thread]
            counts = self._thread_write_count[cta]
            cached = bool(own.size and (counts[own] > 1).any())
            self._golden_interferes[thread] = cached
        return cached

    def _cta_trace_total(self, cta: int) -> int:
        """Total golden dynamic instructions of one CTA (splice scope)."""
        total = self._cta_trace_totals.get(cta)
        if total is None:
            tpc = self.instance.geometry.threads_per_cta
            total = sum(
                len(self.traces[cta * tpc + slot]) for slot in range(tpc)
            )
            self._cta_trace_totals[cta] = total
        return total

    def _build_ownership_masks(self, result) -> None:
        """Byte-ownership masks over the allocated heap window.

        ``_cta_write_mask[c][b]`` — CTA ``c`` wrote window byte ``b`` in
        the golden run; ``_cta_write_count`` counts owning CTAs per byte,
        so "some *other* CTA wrote this byte" is ``count > own`` — the
        vectorised replacement for the former per-byte ``set`` scans.
        """
        geometry = self.instance.geometry
        lo, hi = self.instance.initial_memory.allocation_span()
        self._win_lo = lo
        self._win_size = size = hi - lo
        n_ctas = geometry.n_ctas
        self._cta_write_mask = np.zeros((n_ctas, size), dtype=bool)
        for cta, log in enumerate(self._cta_write_logs):
            mask = self._cta_write_mask[cta]
            for address, raw in log:
                start = address - lo
                mask[start : start + len(raw)] = True
        self._cta_write_count = self._cta_write_mask.sum(axis=0, dtype=np.int16)

        if not self._slicing_enabled:
            self._cta_sliceable = [False] * n_ctas
            return
        self._cta_read_mask = np.zeros((n_ctas, size), dtype=bool)
        for cta, log in enumerate(result.cta_read_logs):
            mask = self._cta_read_mask[cta]
            for address, nbytes in log:
                start = address - lo
                mask[start : start + nbytes] = True
        # Threads-per-byte counts within each CTA, plus each thread's own
        # written-byte offsets (for subtracting its contribution).
        self._thread_write_count = np.zeros((n_ctas, size), dtype=np.int16)
        self._thread_write_offsets: list[np.ndarray] = []
        scratch = np.zeros(size, dtype=bool)
        for thread, log in enumerate(result.thread_write_logs):
            scratch[:] = False
            for address, raw in log:
                start = address - lo
                scratch[start : start + len(raw)] = True
            offsets = np.flatnonzero(scratch)
            self._thread_write_offsets.append(offsets)
            self._thread_write_count[geometry.cta_of_thread(thread)][offsets] += 1
        # A CTA is thread-sliceable when its golden reads never touch its
        # golden writes: no thread observed any thread's output, so every
        # thread's golden behaviour is schedule-independent.
        self._cta_sliceable = [
            not (self._cta_read_mask[c] & self._cta_write_mask[c]).any()
            for c in range(n_ctas)
        ]

    def _build_output_image(self) -> None:
        """The golden output image plus the heap→image region table."""
        regions = []
        offset = 0
        for buf in self.instance.outputs:
            regions.append((buf.address, buf.address + buf.nbytes, offset))
            offset += buf.nbytes
        self._out_regions = regions
        self._golden_image = np.frombuffer(self._golden_output, dtype=np.uint8)
        self._image_scratch = self._golden_image.copy()
        self._initial_window = np.frombuffer(
            self.instance.initial_memory.raw_window(
                self._win_lo, self._win_lo + self._win_size
            ),
            dtype=np.uint8,
        )

    # ------------------------------------------------------------ injection

    def inject(self, site: FaultSite) -> Outcome:
        """Classify one single-bit flip using the sliced fast paths."""
        self._check_site(site)
        return self.inject_spec(
            site.thread, InjectionSpec(site.dyn_index, site.bit), label=str(site)
        )

    def inject_spec(
        self, thread: int, spec: InjectionSpec, label: str | None = None
    ) -> Outcome:
        """Classify one injection of any fault model (fast path)."""
        telemetry = self.telemetry
        if not telemetry.enabled:
            outcome = self._run_spec(thread, spec, label)
            if self.propagation:
                self._trace_propagation(thread, spec, outcome)
            return outcome
        t0 = time.perf_counter()
        fallbacks_before = self.fallback_count
        instructions = telemetry.metrics.counter("sim.instructions")
        instructions_before = instructions.value
        prev_phases = telemetry.phases
        telemetry.phases = phases = {}
        self._run_extra = extra = {"skipped": 0, "golden_total": 0}
        record = None
        try:
            with telemetry.span("injection"):
                outcome = self._run_spec(thread, spec, label)
                # Counter delta snapshots the *classifying* run before the
                # diagnostic replay (which uses a NULL_TELEMETRY simulator
                # and must never show up in campaign attribution).
                suffix_instructions = instructions.value - instructions_before
                if self.propagation:
                    with telemetry.phase("propagation_trace"):
                        record = self._trace_propagation(thread, spec, outcome)
        finally:
            telemetry.phases = prev_phases
        self._record_injection(
            thread,
            spec,
            outcome,
            fast_path=self.fallback_count == fallbacks_before,
            duration_s=time.perf_counter() - t0,
            phases=phases,
            suffix_instructions=suffix_instructions,
            propagation=record,
            extra=extra,
        )
        return outcome

    def _run_spec(
        self, thread: int, spec: InjectionSpec, label: str | None = None
    ) -> Outcome:
        """The uninstrumented fast path (slice, overlay, classify)."""
        label = label if label is not None else f"t{thread}:{spec}"
        self._check_spec(thread, spec)
        cta = self.instance.geometry.cta_of_thread(thread)
        telemetry = self.telemetry
        if self._cta_sliceable[cta]:
            outcome = self._run_spec_thread(thread, spec, label, cta)
            if outcome is not None:
                if telemetry.enabled:
                    telemetry.count("injections.thread_sliced")
                return outcome
            # The faulty run touched bytes sibling threads read or wrote;
            # demote to the CTA slice, which replays the full schedule.
            if telemetry.enabled:
                telemetry.count("injections.thread_sliced_fallback")
        if telemetry.enabled:
            telemetry.count("injections.cta_sliced")
        return self._run_spec_cta(thread, spec, label, cta)

    def _run_spec_thread(
        self, thread: int, spec: InjectionSpec, label: str, cta: int
    ) -> Outcome | None:
        """Re-execute only the injected thread; ``None`` = demote to CTA.

        With checkpointing enabled, the deepest golden snapshot at or
        below the fault's dynamic index is restored and only the suffix
        executes: the thread's golden write prefix is replayed onto the
        scratch heap beforehand, and prepended to the faulty log
        afterwards so interference/escape/classification decisions are
        byte-identical to a full-prefix run (the prefix's *reads* need no
        replay — a sliceable CTA's golden reads provably never touch its
        golden writes, so they cannot flip any check).
        """
        memory = self._scratch_memory
        telemetry = self.telemetry
        faulty_log: list[tuple[int, bytes]] = []
        read_log: list[tuple[int, int]] = []
        monitor = None
        if self.resync:
            with telemetry.phase("resync_scan"):
                monitor = self._build_resync_monitor(thread, spec, read_log, "t")
        with telemetry.phase("checkpoint_restore"):
            resume, prefix, plan = self._thread_checkpoint_plan(
                thread, spec, faulty_log, monitor
            )
        if prefix:
            with telemetry.phase("prefix_replay"):
                memory.apply_writes(prefix)
        memory.write_log = faulty_log
        memory.read_log = read_log
        crashed = hanged = False
        splice = None
        result = None
        try:
            with telemetry.phase("suffix_exec"):
                result = self._launcher.launch(
                    self.instance.program,
                    self.instance.geometry,
                    self.instance.param_bytes,
                    memory=memory,
                    only_thread=thread,
                    injection=(thread, spec),
                    max_steps=self._cta_budget[cta],
                    checkpoint=plan,
                )
        except MemoryFault:
            crashed = True
        except HangDetected:
            hanged = True
        except ResyncReached as reached:
            splice = reached
        finally:
            memory.write_log = None
            memory.read_log = None
            full_log = prefix + faulty_log if prefix else faulty_log
            with telemetry.phase("heap_repair"):
                memory.revert_writes(full_log, self.instance.initial_memory)
        if monitor is not None:
            self._note_resync(monitor, splice)
        if splice is not None:
            # The machine reconverged with golden: the unexecuted suffix
            # is the golden one, so the outcome is MASKED by construction
            # and the suffix never escapes the CTA (golden writes don't).
            # Interference must still be ruled out — window reads of a
            # memo hit are replayed from the stored verdict so the
            # decision matches the run that produced it.
            with telemetry.phase("suffix_splice"):
                if splice.window_reads:
                    read_log.extend(splice.window_reads)
                self._run_extra["golden_total"] = len(self.traces[thread])
            with telemetry.phase("classify"):
                interferes = self._thread_run_interferes(
                    thread, cta, full_log, read_log
                ) or self._golden_thread_interferes(thread, cta)
            if interferes:
                self._run_extra["golden_total"] = 0  # CTA rung re-decides
                return None
            return Outcome.MASKED
        # Interference must be ruled out even for crash/hang outcomes: up
        # to the aborting access the thread's behaviour is only schedule-
        # independent if it never touched sibling-owned bytes.
        with telemetry.phase("classify"):
            interferes = self._thread_run_interferes(thread, cta, full_log, read_log)
        if interferes:
            return None
        if crashed:
            return Outcome.CRASH
        if hanged:
            return Outcome.HANG
        if not result.injection_applied:
            if spec.model is FaultModel.STORE_ADDRESS:
                # The targeted store was predicated off: a corrupted address
                # on a store that never issues has no effect.
                return Outcome.MASKED
            raise FaultInjectionError(f"injection at {label} never fired")
        with telemetry.phase("classify"):
            escaped = self._writes_escape_cta(full_log, cta)
        if escaped:
            self.fallback_count += 1
            return self._run_spec_full(thread, spec, label)
        with telemetry.phase("classify"):
            return self._classify_patched(self._thread_patch(thread), full_log)

    def _thread_checkpoint_plan(
        self,
        thread: int,
        spec: InjectionSpec,
        faulty_log: list,
        monitor: ResyncMonitor | None = None,
    ) -> tuple[ThreadCheckpoint | None, list, CheckpointPlan | None]:
        """Resolve (resume snapshot, golden write prefix, launch plan).

        With a resync monitor the plan's sink is a composite: checkpoint
        captures keep their absolute-grid cadence below the flip via the
        sink-return scheduling protocol, and from the flip onward every
        fire is handed to the monitor (which schedules itself at every
        instruction until it splices or disarms).
        """
        store = self.checkpoints
        if store is None and monitor is None:
            return None, [], None
        flip = spec.dyn_index
        if store is not None:
            resume = store.best_thread(thread, flip)
            base = resume.write_count if resume is not None else 0
            prefix = self._thread_write_logs[thread][:base] if base else []
            interval = self.checkpoint_interval

            def capture(dyn: int, pc: int, regs: dict) -> None:
                if store.has_thread(thread, dyn):
                    return
                t0 = time.perf_counter()
                store.put_thread(
                    thread,
                    ThreadCheckpoint.capture(
                        dyn, pc, regs, base + len(faulty_log)
                    ),
                )
                store.capture_s += time.perf_counter() - t0

            self._note_checkpoint_lookup(
                "thread", resume.dyn_index if resume is not None else None
            )
        else:
            resume, prefix, interval, capture = None, [], 0, None

        if monitor is None:
            return resume, prefix, CheckpointPlan(
                interval=interval, resume=resume, sink=capture, limit=flip
            )

        resume_dyn = resume.dyn_index if resume is not None else 0
        if interval > 0:
            start = min((resume_dyn // interval + 1) * interval, flip)
        else:
            start = flip

        def sink(dyn: int, pc: int, regs: dict) -> int:
            if dyn < flip:
                capture(dyn, pc, regs)
                nxt = dyn + interval
                return nxt if nxt < flip else flip
            return monitor.observe(dyn, pc, regs)

        return resume, prefix, CheckpointPlan(
            interval=interval, resume=resume, sink=sink, limit=flip, start=start
        )

    def _run_spec_cta(
        self, thread: int, spec: InjectionSpec, label: str, cta: int
    ) -> Outcome:
        """Re-execute the owning CTA against the (scratch) initial heap.

        With checkpointing enabled, the CTA resumes from the deepest
        barrier-boundary snapshot in which the injected thread has not yet
        reached the fault; the CTA's golden write-log prefix is replayed
        onto the scratch heap first and prepended to the faulty log for
        the escape check and classification, so results are byte-identical
        to a full-prefix CTA replay.
        """
        memory = self._scratch_memory
        telemetry = self.telemetry
        faulty_log: list[tuple[int, bytes]] = []
        monitor = None
        if self.resync:
            with telemetry.phase("resync_scan"):
                monitor = self._build_resync_monitor(thread, spec, None, "c")
        with telemetry.phase("checkpoint_restore"):
            resume, prefix, plan = self._cta_checkpoint_plan(
                cta, thread, spec, faulty_log, monitor
            )
        if prefix:
            with telemetry.phase("prefix_replay"):
                memory.apply_writes(prefix)
        memory.write_log = faulty_log
        full_log = faulty_log
        crashed = hanged = False
        splice = None
        result = None
        try:
            with telemetry.phase("suffix_exec"):
                result = self._launcher.launch(
                    self.instance.program,
                    self.instance.geometry,
                    self.instance.param_bytes,
                    memory=memory,
                    only_cta=cta,
                    injection=(thread, spec),
                    max_steps=self._cta_budget[cta],
                    checkpoint=plan,
                )
        except MemoryFault:
            crashed = True
        except HangDetected:
            hanged = True
        except ResyncReached as reached:
            splice = reached
        finally:
            memory.write_log = None
            full_log = prefix + faulty_log if prefix else faulty_log
            with telemetry.phase("heap_repair"):
                memory.revert_writes(full_log, self.instance.initial_memory)
        if monitor is not None:
            self._note_resync(monitor, splice)
        if splice is not None:
            # Injected thread reconverged and every byte it wrote was
            # verified golden: the abandoned CTA remainder (its own
            # suffix plus the siblings', which only ever saw golden
            # state) would replay the golden run — MASKED, no escape.
            with telemetry.phase("suffix_splice"):
                self._run_extra["golden_total"] = self._cta_trace_total(cta)
            return Outcome.MASKED
        if crashed:
            return Outcome.CRASH
        if hanged:
            return Outcome.HANG
        if not result.injection_applied:
            if spec.model is FaultModel.STORE_ADDRESS:
                return Outcome.MASKED
            raise FaultInjectionError(f"injection at {label} never fired")

        with telemetry.phase("classify"):
            escaped = self._writes_escape_cta(full_log, cta)
        if escaped:
            self.fallback_count += 1
            return self._run_spec_full(thread, spec, label)
        with telemetry.phase("classify"):
            return self._classify_patched(self._cta_patch(cta), full_log)

    def _cta_checkpoint_plan(
        self,
        cta: int,
        thread: int,
        spec: InjectionSpec,
        faulty_log: list,
        monitor: ResyncMonitor | None = None,
    ) -> tuple[CTACheckpoint | None, list, CheckpointPlan | None]:
        """Resolve (resume snapshot, golden write prefix, launch plan).

        The capture sink fires at barrier releases; it keeps the snapshot
        cadence on the injected thread's ``checkpoint_interval`` grid and
        only captures while that thread's injection is still pending —
        once the flip fires the CTA state is no longer golden.
        """
        store = self.checkpoints
        if store is None and monitor is None:
            return None, [], None
        slot = thread % self.instance.geometry.threads_per_cta
        sink = None
        if store is not None:
            resume = store.best_cta(cta, slot, spec.dyn_index)
            base = resume.write_count if resume is not None else 0
            prefix = self._cta_write_logs[cta][:base] if base else []
            interval = self.checkpoint_interval
            resume_dyn = resume.thread_dyn[slot] if resume is not None else 0
            next_capture = [(resume_dyn // interval + 1) * interval]

            def sink(rounds: int, threads: list, shared) -> None:
                ctx = threads[slot]
                if ctx.injection is None:
                    return  # the flip already fired — state is faulty
                if ctx.dyn_count < next_capture[0]:
                    return
                next_capture[0] = (ctx.dyn_count // interval + 1) * interval
                if store.has_cta(cta, rounds):
                    return
                t0 = time.perf_counter()
                store.put_cta(
                    cta,
                    CTACheckpoint.capture(
                        rounds, threads, shared, base + len(faulty_log)
                    ),
                )
                store.capture_s += time.perf_counter() - t0

            self._note_checkpoint_lookup(
                "cta", resume.instructions if resume is not None else None
            )
        else:
            resume, prefix, interval = None, [], 0

        # The resync monitor rides the per-context sink slot (free in
        # CTA-sliced runs, whose checkpoint captures use the barrier
        # hook above) on the injected thread's context only.
        plan = CheckpointPlan(
            interval=interval,
            resume=resume,
            sink=sink,
            limit=spec.dyn_index,
            step_slot=slot if monitor is not None else None,
            step_sink=monitor.observe if monitor is not None else None,
            step_start=spec.dyn_index,
        )
        return resume, prefix, plan

    def _note_checkpoint_lookup(self, kind: str, skipped: int | None) -> None:
        """Hit/miss/bytes telemetry for one checkpoint-store lookup."""
        # Last rung wins: a demoted thread slice's skip is superseded by
        # the CTA slice that actually decides the outcome.
        self._run_extra["skipped"] = skipped or 0
        telemetry = self.telemetry
        if not telemetry.enabled:
            return
        if skipped is None:
            telemetry.count(f"checkpoint.{kind}_misses")
        else:
            telemetry.count(f"checkpoint.{kind}_hits")
            telemetry.count("checkpoint.skipped_instructions", skipped)
        store = self.checkpoints
        telemetry.set_gauge("checkpoint.bytes", store.nbytes)
        telemetry.set_gauge("checkpoint.entries", len(store))
        telemetry.set_gauge("checkpoint.evicted", store.evicted)
        telemetry.set_gauge("checkpoint.capture_s", store.capture_s)

    def _note_resync(self, monitor: ResyncMonitor, splice) -> None:
        """Counters, gauges and phase attribution for one monitored run.

        The monitor's wall clock from arming to resolution is the
        divergence-window scan; it happened inside the launch, so it is
        moved out of ``suffix_exec`` and into ``resync_scan`` via a
        negative delta (the two keep summing to the bracketed time) —
        same pattern as in-launch checkpoint restores.
        """
        monitor.finalize()
        telemetry = self.telemetry
        if not telemetry.enabled:
            return
        scan = monitor.scan_s
        if scan:
            telemetry.add_phase("resync_scan", scan)
            telemetry.add_phase("suffix_exec", -scan)
        if monitor.memo_checked:
            if monitor.memo_hit:
                telemetry.count("resync.memo_hits")
            else:
                telemetry.count("resync.memo_misses")
        if splice is not None:
            telemetry.count("resync.hits")
            telemetry.count(
                "resync.skipped_instructions",
                max(monitor.stream.total - splice.resync_dyn, 0),
            )
        else:
            telemetry.count("resync.misses")
        telemetry.count("resync.window_instructions", monitor.window_span)
        memo = self._resync_memo
        if memo is not None:
            telemetry.set_gauge("resync.memo_entries", len(memo))
            telemetry.set_gauge("resync.memo_evicted", memo.evicted)
        streams = self._golden_streams
        if streams is not None:
            telemetry.set_gauge("resync.capture_s", streams.capture_s)
            telemetry.set_gauge("resync.captures", streams.captures)

    def inject_full(self, site: FaultSite) -> Outcome:
        """Reference slow path: re-execute the entire grid."""
        self._check_site(site)
        return self.inject_spec_full(
            site.thread, InjectionSpec(site.dyn_index, site.bit), label=str(site)
        )

    def inject_spec_full(
        self, thread: int, spec: InjectionSpec, label: str | None = None
    ) -> Outcome:
        """Classify one injection via the reference full re-execution."""
        telemetry = self.telemetry
        if not telemetry.enabled:
            outcome = self._run_spec_full(thread, spec, label)
            if self.propagation:
                self._trace_propagation(thread, spec, outcome)
            return outcome
        t0 = time.perf_counter()
        instructions = telemetry.metrics.counter("sim.instructions")
        instructions_before = instructions.value
        prev_phases = telemetry.phases
        telemetry.phases = phases = {}
        self._run_extra = extra = {"skipped": 0, "golden_total": 0}
        record = None
        try:
            with telemetry.span("injection"):
                outcome = self._run_spec_full(thread, spec, label)
                suffix_instructions = instructions.value - instructions_before
                if self.propagation:
                    with telemetry.phase("propagation_trace"):
                        record = self._trace_propagation(thread, spec, outcome)
        finally:
            telemetry.phases = prev_phases
        self._record_injection(
            thread, spec, outcome, fast_path=False,
            duration_s=time.perf_counter() - t0,
            phases=phases,
            suffix_instructions=suffix_instructions,
            propagation=record,
            extra=extra,
        )
        return outcome

    def _run_spec_full(
        self, thread: int, spec: InjectionSpec, label: str | None = None
    ) -> Outcome:
        label = label if label is not None else f"t{thread}:{spec}"
        self._check_spec(thread, spec)
        telemetry = self.telemetry
        # A full re-execution skips and splices nothing — clear any
        # accounting left behind by a demoted sliced attempt.
        self._run_extra["skipped"] = 0
        self._run_extra["golden_total"] = 0
        with telemetry.phase("heap_repair"):
            memory = self.instance.initial_memory.snapshot()
        max_steps = max(self._cta_budget)
        try:
            with telemetry.phase("suffix_exec"):
                result = self._launcher.launch(
                    self.instance.program,
                    self.instance.geometry,
                    self.instance.param_bytes,
                    memory=memory,
                    injection=(thread, spec),
                    max_steps=max_steps,
                )
        except MemoryFault:
            return Outcome.CRASH
        except HangDetected:
            return Outcome.HANG
        if not result.injection_applied:
            if spec.model is FaultModel.STORE_ADDRESS:
                return Outcome.MASKED
            raise FaultInjectionError(f"injection at {label} never fired")
        with telemetry.phase("classify"):
            return self._classify_output(memory)

    # -------------------------------------------- extended fault-model sites

    def store_address_sites(self, thread: int) -> list[StoreAddressSite]:
        """Every IOA site of one thread: each bit of each store's address."""
        program = self.instance.program
        sites = []
        for dyn_index, (pc, _width) in enumerate(self.traces[thread]):
            if program.instructions[pc].op == "st":
                sites.extend(
                    StoreAddressSite(thread, dyn_index, bit)
                    for bit in range(ADDRESS_BITS)
                )
        return sites

    def sample_register_file_sites(
        self, n: int, rng: np.random.Generator
    ) -> list[RegisterFileSite]:
        """``n`` random RF sites: (thread, dynamic point, register, bit).

        Registers are drawn from those the thread has *written* by the
        chosen point (flipping a never-written cell models an upset in an
        unallocated register — pointless to study).  Per-thread prefixes
        of the written-register set are cached, so repeated samples on
        the same thread cost one binary search instead of a trace rescan.
        """
        sites: list[RegisterFileSite] = []
        n_threads = len(self.traces)
        while len(sites) < n:
            thread = int(rng.integers(0, n_threads))
            trace = self.traces[thread]
            if not trace:
                continue
            dyn_index = int(rng.integers(0, len(trace)))
            positions, prefixes = self._rf_written_prefixes(thread)
            written_count = bisect.bisect_left(positions, dyn_index)
            if not written_count:
                continue
            written = prefixes[written_count]
            reg = written[int(rng.integers(0, written_count))]
            bit = int(rng.integers(0, ADDRESS_BITS))
            sites.append(RegisterFileSite(thread, dyn_index, reg, bit))
        return sites

    def _rf_written_prefixes(
        self, thread: int
    ) -> tuple[list[int], list[tuple[str, ...]]]:
        """First-write positions plus name-sorted prefixes of the written set.

        ``prefixes[k]`` is the sorted tuple of the first ``k`` registers
        (in first-write order); the set of registers written strictly
        before dynamic index ``i`` is ``prefixes[bisect_left(positions, i)]``
        — identical to rescanning ``trace[:i]`` but O(log writes).
        """
        cached = self._rf_prefix_cache.get(thread)
        if cached is None:
            instructions = self.instance.program.instructions
            positions: list[int] = []
            order: list[str] = []
            seen: set[str] = set()
            for index, (pc, width) in enumerate(self.traces[thread]):
                if not width:
                    continue
                dest = instructions[pc].dest
                if dest is None or dest.name in seen:
                    continue
                seen.add(dest.name)
                positions.append(index)
                order.append(dest.name)
            prefixes: list[tuple[str, ...]] = [()]
            for k in range(1, len(order) + 1):
                prefixes.append(tuple(sorted(order[:k])))
            cached = (positions, prefixes)
            self._rf_prefix_cache[thread] = cached
        return cached

    # -------------------------------------------------------------- helpers

    def _record_injection(
        self,
        thread: int,
        spec: InjectionSpec,
        outcome: Outcome,
        fast_path: bool,
        duration_s: float,
        phases: dict[str, float] | None = None,
        suffix_instructions: int = 0,
        propagation=None,
        extra: dict | None = None,
    ) -> None:
        """Counters + one :class:`InjectionEvent` per classified injection."""
        telemetry = self.telemetry
        # Effective dynamic iCnt: what the injection *covered*, not what
        # it executed — executed suffix + checkpoint-skipped prefix +
        # resync-spliced golden remainder.  Keeps hang-budget shares and
        # latency-by-depth tertiles comparable across instrumentation
        # settings.
        skipped = extra["skipped"] if extra else 0
        golden_total = extra["golden_total"] if extra else 0
        spliced = (
            max(golden_total - skipped - suffix_instructions, 0)
            if golden_total
            else 0
        )
        effective = suffix_instructions + skipped + spliced
        telemetry.count("injections.total")
        telemetry.count(
            "injections.fast_path" if fast_path else "injections.full_rerun"
        )
        # The aggregates live under ``work.`` rather than ``injections.``:
        # like ``sim.instructions``, a crash-truncated count follows the
        # backend's lane schedule (lockstep lanes advance past the abort
        # point, sequential threads don't), so the totals are equivalence-
        # comparable across checkpoint/resync settings but not across
        # backends — keep them out of the invariant namespaces.
        telemetry.count("work.effective_instructions", effective)
        if spliced:
            telemetry.count("work.spliced_instructions", spliced)
        telemetry.count(f"outcome.{outcome.value}")
        telemetry.observe("injection_s", duration_s)
        if phases:
            for name, seconds in phases.items():
                telemetry.observe(f"phase.{name}_s", seconds)
        if propagation is not None:
            telemetry.count("propagation.traced")
        telemetry.emit(
            InjectionEvent(
                time.time(),
                thread=thread,
                dyn_index=spec.dyn_index,
                bit=spec.bit,
                model=spec.model.value,
                outcome=outcome.value,
                fast_path=fast_path,
                duration_s=duration_s,
                backend=self.backend,
                checkpoint_interval=self.checkpoint_interval,
                suffix_instructions=suffix_instructions,
                effective_instructions=effective,
                spliced_instructions=spliced,
                phases=phases or None,
                propagation=propagation.to_dict() if propagation else None,
                group=self.injection_group,
            )
        )

    def _trace_propagation(self, thread: int, spec: InjectionSpec, outcome):
        """Diagnostic replay of one classified injection (tracer is lazy:
        campaigns that never enable tracing pay nothing)."""
        tracer = self._tracer
        if tracer is None:
            from .propagation import PropagationTracer

            tracer = self._tracer = PropagationTracer(self)
        record = tracer.trace(thread, spec, outcome)
        self.propagation_records.append(record)
        return record

    def _check_site(self, site: FaultSite) -> None:
        if not 0 <= site.thread < len(self.traces):
            raise FaultInjectionError(f"{site}: thread out of range")
        trace = self.traces[site.thread]
        if not 0 <= site.dyn_index < len(trace):
            raise FaultInjectionError(f"{site}: dynamic instruction out of range")
        width = trace[site.dyn_index][1]
        if not 0 <= site.bit < width:
            raise FaultInjectionError(
                f"{site}: bit out of range for a {width}-bit destination"
            )

    def _check_spec(self, thread: int, spec: InjectionSpec) -> None:
        if not 0 <= thread < len(self.traces):
            raise FaultInjectionError(f"thread {thread} out of range")
        trace = self.traces[thread]
        if not 0 <= spec.dyn_index < len(trace):
            raise FaultInjectionError(
                f"t{thread}/i{spec.dyn_index}: dynamic instruction out of range"
            )
        if spec.model is FaultModel.STORE_ADDRESS:
            pc = trace[spec.dyn_index][0]
            if self.instance.program.instructions[pc].op != "st":
                raise FaultInjectionError(
                    f"t{thread}/i{spec.dyn_index}: STORE_ADDRESS target is not a store"
                )
            if not 0 <= spec.bit < ADDRESS_BITS:
                raise FaultInjectionError(f"address bit {spec.bit} out of range")
        elif spec.model is FaultModel.REGISTER_FILE:
            if not 0 <= spec.bit < ADDRESS_BITS:
                raise FaultInjectionError(f"register bit {spec.bit} out of range")

    def _writes_escape_cta(self, faulty_log, cta: int) -> bool:
        """Did the faulty CTA write bytes another CTA also writes?

        Vectorised over the precomputed ownership masks: a span escapes
        iff it is not fully covered by the CTA's own golden writes and at
        least one of its bytes is owned by a different CTA
        (``count > own`` byte-wise).
        """
        own = self._cta_write_mask[cta]
        count = self._cta_write_count
        lo = self._win_lo
        size = self._win_size
        for address, raw in faulty_log:
            start = address - lo
            end = start + len(raw)
            if start < 0 or end > size:
                # Bytes outside the allocated window belong to no CTA, so
                # the span cannot be "all own"; check the in-window part
                # for foreign ownership.
                c0, c1 = max(start, 0), min(end, size)
                if c0 < c1 and (count[c0:c1] > own[c0:c1]).any():
                    return True
                continue
            span_own = own[start:end]
            if span_own.all():
                continue
            if (count[start:end] > span_own).any():
                return True
        return False

    def _thread_run_interferes(
        self, thread: int, cta: int, faulty_log, read_log
    ) -> bool:
        """Did a thread-sliced run touch bytes sibling threads own?

        True when the faulty thread read anything its CTA wrote, wrote
        anything its CTA read, or wrote a byte some *other* thread of the
        CTA also wrote — any of which makes the single-thread replay
        schedule-dependent, so the CTA slice must decide instead.
        """
        cta_writes = self._cta_write_mask[cta]
        cta_reads = self._cta_read_mask[cta]
        thread_counts = self._thread_write_count[cta]
        own_offsets = self._thread_write_offsets[thread]
        lo = self._win_lo
        size = self._win_size
        for address, nbytes in read_log:
            start = max(address - lo, 0)
            end = min(address - lo + nbytes, size)
            if start < end and cta_writes[start:end].any():
                return True
        for address, raw in faulty_log:
            start = max(address - lo, 0)
            end = min(address - lo + len(raw), size)
            if start >= end:
                continue
            if cta_reads[start:end].any():
                return True
            counts = thread_counts[start:end]
            if not counts.any():
                continue
            span_own = np.zeros(end - start, dtype=np.int16)
            if own_offsets.size:
                left = np.searchsorted(own_offsets, start)
                right = np.searchsorted(own_offsets, end)
                span_own[own_offsets[left:right] - start] = 1
            if (counts > span_own).any():
                return True
        return False

    def _cta_patch(self, cta: int) -> tuple[np.ndarray, np.ndarray]:
        """Image patch reverting CTA ``cta``'s golden writes to initial."""
        patch = self._cta_patches.get(cta)
        if patch is None:
            offsets = np.flatnonzero(self._cta_write_mask[cta])
            patch = self._cta_patches[cta] = self._revert_patch(offsets)
        return patch

    def _thread_patch(self, thread: int) -> tuple[np.ndarray, np.ndarray]:
        """Image patch reverting one thread's golden writes to initial."""
        patch = self._thread_patches.get(thread)
        if patch is None:
            offsets = self._thread_write_offsets[thread]
            patch = self._thread_patches[thread] = self._revert_patch(offsets)
        return patch

    def _revert_patch(self, offsets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Map window byte offsets to (output-image indices, initial bytes)."""
        index_parts: list[np.ndarray] = []
        value_parts: list[np.ndarray] = []
        lo = self._win_lo
        for region_lo, region_hi, image_off in self._out_regions:
            a, b = region_lo - lo, region_hi - lo
            selected = offsets[(offsets >= a) & (offsets < b)]
            if selected.size:
                index_parts.append(selected - a + image_off)
                value_parts.append(self._initial_window[selected])
        if not index_parts:
            return _EMPTY_PATCH
        return np.concatenate(index_parts), np.concatenate(value_parts)

    def _classify_patched(
        self, patch: tuple[np.ndarray, np.ndarray], faulty_log
    ) -> Outcome:
        """Classify by patching only the output image, never a full heap.

        Equivalent to the reference ``_overlay`` + ``_classify_output``
        path: start from the golden output image, revert the slice's
        golden writes to initial values (order-free — all revert bytes
        are initial), then replay the faulty writes in program order.
        """
        image = self._image_scratch
        np.copyto(image, self._golden_image)
        indices, values = patch
        if indices.size:
            image[indices] = values
        regions = self._out_regions
        for address, raw in faulty_log:
            end = address + len(raw)
            for region_lo, region_hi, image_off in regions:
                if address < region_hi and end > region_lo:
                    a = address if address >= region_lo else region_lo
                    b = end if end <= region_hi else region_hi
                    image[image_off + a - region_lo : image_off + b - region_lo] = (
                        np.frombuffer(raw[a - address : b - address], dtype=np.uint8)
                    )
        if np.array_equal(image, self._golden_image):
            return Outcome.MASKED
        return Outcome.SDC

    def _overlay(self, cta: int, faulty_log) -> GlobalMemory:
        """Golden final heap with CTA ``cta``'s writes replaced.

        The reference full-heap overlay, kept for severity analysis and
        cross-validation of the patched-image classifier.
        """
        final = self._golden_memory.snapshot()
        initial = self.instance.initial_memory
        for address, raw in self._cta_write_logs[cta]:
            final.write_bytes(address, initial.read_bytes(address, len(raw)))
        final.apply_writes(faulty_log)
        return final

    def _classify_output(self, memory: GlobalMemory) -> Outcome:
        try:
            output = self.instance.output_bytes(memory)
        except MemoryFault:  # pragma: no cover - outputs are always allocated
            return Outcome.CRASH
        if output == self._golden_output:
            return Outcome.MASKED
        return Outcome.SDC
