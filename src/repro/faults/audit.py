"""Pruning-group coherence auditing.

Thread-wise pruning (paper Section III) injects only into one
*representative* thread per group and multiplies its outcomes by the
group's site weight — asserting that every member thread would have
behaved the same.  With only outcome labels that assertion is
unfalsifiable in practice: two members can both report "SDC" while
corrupting entirely different outputs through entirely different paths.

The audit makes the assertion testable.  For a sample of groups it
re-injects the *same* (dynamic index, bit) sites into several member
threads and compares their propagation **signatures**
(:meth:`~repro.faults.propagation.PropagationRecord.signature` — first
corrupted PC, control-flow fate, masking bucket, escape behaviour,
outcome, output-magnitude bucket).  Members of a coherent group agree on
every audited site; the per-group *agreement rate* is the fraction of
(site, member) probes whose signature matches the representative's.

Audited injections run through the normal classification ladder with the
injector's ``injection_group`` tag set, so when telemetry is enabled the
resulting :class:`~repro.telemetry.InjectionEvent` stream carries
group-tagged propagation payloads — the raw material for the coherence
section of ``repro report --propagation``.

The audit is a serial, in-process diagnostic: it needs the group tag on
the injector, which deliberately does not cross the process pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import FaultInjectionError, ReproError
from .model import InjectionSpec


@dataclass(frozen=True)
class SiteProbe:
    """One audited (member, site) injection."""

    thread: int
    dyn_index: int
    bit: int
    signature: str  # "invalid" when the injection could not fire


@dataclass(frozen=True)
class GroupAudit:
    """Coherence verdict for one pruned thread group."""

    group: str  # tag stamped on the emitted events ("g<N>")
    icnt: int
    n_threads: int  # full group size
    members: tuple[int, ...]  # threads actually probed (rep first)
    probes: tuple[SiteProbe, ...]
    agreement: float  # probes matching the representative / probes
    mismatches: tuple[SiteProbe, ...] = ()

    @property
    def coherent(self) -> bool:
        return self.agreement == 1.0


@dataclass
class CoherenceAudit:
    """The full audit: one :class:`GroupAudit` per sampled group."""

    groups: list[GroupAudit] = field(default_factory=list)

    @property
    def agreement(self) -> float:
        """Probe-weighted overall agreement rate."""
        probed = sum(len(g.probes) for g in self.groups)
        if not probed:
            return 1.0
        agreed = sum(g.agreement * len(g.probes) for g in self.groups)
        return agreed / probed

    @property
    def incoherent_groups(self) -> list[GroupAudit]:
        return [g for g in self.groups if not g.coherent]

    def to_dict(self) -> dict:
        return {
            "agreement": self.agreement,
            "n_groups": len(self.groups),
            "n_incoherent": len(self.incoherent_groups),
            "groups": [
                {
                    "group": g.group,
                    "icnt": g.icnt,
                    "n_threads": g.n_threads,
                    "members": list(g.members),
                    "n_probes": len(g.probes),
                    "agreement": g.agreement,
                    "mismatches": [
                        {
                            "thread": m.thread,
                            "dyn_index": m.dyn_index,
                            "bit": m.bit,
                            "signature": m.signature,
                        }
                        for m in g.mismatches
                    ],
                }
                for g in self.groups
            ],
        }


def _spread(values: list, count: int) -> list:
    """Up to ``count`` elements, evenly spaced, endpoints included."""
    if len(values) <= count:
        return list(values)
    if count == 1:
        return [values[0]]
    step = (len(values) - 1) / (count - 1)
    return [values[round(i * step)] for i in range(count)]


def run_coherence_audit(
    injector,
    thread_groups=None,
    *,
    members_per_group: int = 2,
    sites_per_group: int = 3,
    max_groups: int | None = None,
) -> CoherenceAudit:
    """Probe pruned thread groups for propagation-signature agreement.

    ``thread_groups`` defaults to a fresh thread-wise pruning of the
    injector's own traces.  Per multi-member group, up to
    ``members_per_group`` threads (the representative plus evenly spaced
    others) each receive the same ``sites_per_group`` injections —
    evenly spaced faultable dynamic indices of the representative, low
    and high bit alternating so shallow and steep corruptions are both
    sampled.  Requires a propagation-enabled injector: signatures *are*
    the audited quantity.
    """
    if not injector.propagation:
        raise ReproError(
            "coherence audit requires a propagation-enabled injector "
            "(FaultInjector(..., propagation=True))"
        )
    if thread_groups is None:
        from ..pruning import prune_threads

        thread_groups = prune_threads(
            injector.traces, injector.instance.geometry
        ).thread_groups

    audit = CoherenceAudit()
    eligible = [g for g in thread_groups if len(g.threads) > 1]
    if max_groups is not None:
        eligible = _spread(eligible, max_groups)
    for gid, group in enumerate(eligible):
        rep = group.representative
        others = [t for t in group.threads if t != rep]
        members = [rep] + _spread(others, max(0, members_per_group - 1))
        trace = injector.traces[rep]
        faultable = [d for d, (_pc, width) in enumerate(trace) if width]
        if not faultable:
            continue
        sites = []
        for pick, dyn in enumerate(_spread(faultable, sites_per_group)):
            width = trace[dyn][1]
            sites.append((dyn, 0 if pick % 2 == 0 else width - 1))
        tag = f"g{gid}"
        probes: list[SiteProbe] = []
        injector.injection_group = tag
        try:
            for thread in members:
                for dyn, bit in sites:
                    member_trace = injector.traces[thread]
                    if dyn >= len(member_trace) or bit >= member_trace[dyn][1]:
                        # The member's aligned instruction cannot host this
                        # flip — itself a coherence violation worth flagging.
                        probes.append(SiteProbe(thread, dyn, bit, "invalid"))
                        continue
                    records_before = len(injector.propagation_records)
                    try:
                        injector.inject_spec(thread, InjectionSpec(dyn, bit))
                    except FaultInjectionError:
                        probes.append(SiteProbe(thread, dyn, bit, "invalid"))
                        continue
                    record = injector.propagation_records[records_before]
                    probes.append(
                        SiteProbe(thread, dyn, bit, record.signature())
                    )
        finally:
            injector.injection_group = None
        reference = {
            (p.dyn_index, p.bit): p.signature
            for p in probes
            if p.thread == rep
        }
        comparable = [p for p in probes if p.thread != rep]
        mismatches = tuple(
            p
            for p in comparable
            if p.signature != reference.get((p.dyn_index, p.bit))
        )
        agreement = (
            1.0
            if not comparable
            else 1.0 - len(mismatches) / len(comparable)
        )
        audit.groups.append(
            GroupAudit(
                group=tag,
                icnt=group.icnt,
                n_threads=len(group.threads),
                members=tuple(members),
                probes=tuple(probes),
                agreement=agreement,
                mismatches=mismatches,
            )
        )
    return audit
