"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``     — the kernel registry with threads and fault-site counts.
* ``profile``  — estimate a kernel's resilience profile via pruning.
* ``baseline`` — run a statistical random-injection baseline.
* ``stages``   — show the per-stage fault-site reduction for a kernel.
"""

from __future__ import annotations

import argparse
import sys

from . import (
    FaultInjector,
    ProgressivePruner,
    all_kernels,
    load_instance,
    random_campaign,
)
from .stats import sample_size_worst_case


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fault-site pruning for GPGPU reliability analysis "
        "(MICRO 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered kernels")

    profile = sub.add_parser("profile", help="pruned-space resilience profile")
    profile.add_argument("kernel", help="kernel key, e.g. gemm.k1")
    profile.add_argument("--loop-iters", type=int, default=5)
    profile.add_argument("--bits", type=int, default=16)
    profile.add_argument("--seed", type=int, default=2018)

    baseline = sub.add_parser("baseline", help="random statistical baseline")
    baseline.add_argument("kernel")
    baseline.add_argument("--confidence", type=float, default=0.95)
    baseline.add_argument("--margin", type=float, default=0.03)
    baseline.add_argument("--seed", type=int, default=2018)

    stages = sub.add_parser("stages", help="per-stage site reduction")
    stages.add_argument("kernel")
    stages.add_argument("--loop-iters", type=int, default=5)
    stages.add_argument("--bits", type=int, default=16)

    report = sub.add_parser("report", help="markdown resilience report")
    report.add_argument("kernel")
    report.add_argument("--loop-iters", type=int, default=5)
    report.add_argument("--bits", type=int, default=8)
    report.add_argument("--out", default=None, help="write to file instead of stdout")
    return parser


def cmd_list() -> int:
    print(f"{'key':16s} {'suite':10s} {'kernel':20s} {'threads':>8s} "
          f"{'fault sites':>12s}")
    for spec in all_kernels():
        injector = FaultInjector(spec.build())
        print(
            f"{spec.key:16s} {spec.suite:10s} {spec.kernel_name:20s} "
            f"{injector.instance.geometry.n_threads:8d} "
            f"{injector.space.total_sites:12,}"
        )
    return 0


def cmd_profile(args) -> int:
    injector = FaultInjector(load_instance(args.kernel))
    pruner = ProgressivePruner(
        num_loop_iters=args.loop_iters, n_bits=args.bits, seed=args.seed
    )
    space = pruner.prune(injector)
    profile = space.estimate_profile(injector)
    print(f"{args.kernel}: {space.total_sites:,} sites -> "
          f"{space.n_injections:,} injections "
          f"({space.reduction_factor():,.0f}x)")
    print(profile)
    return 0


def cmd_baseline(args) -> int:
    injector = FaultInjector(load_instance(args.kernel))
    n = sample_size_worst_case(args.margin, args.confidence)
    result = random_campaign(injector, n, rng=args.seed)
    print(f"{args.kernel}: {n} random injections "
          f"({100 * args.confidence:.1f}% CI, ±{100 * args.margin:.1f}pp)")
    print(result.profile)
    return 0


def cmd_stages(args) -> int:
    injector = FaultInjector(load_instance(args.kernel))
    pruner = ProgressivePruner(num_loop_iters=args.loop_iters, n_bits=args.bits)
    space = pruner.prune(injector)
    print(f"{args.kernel}: exhaustive {space.total_sites:,}")
    for stage in space.stages:
        print(f"  after {stage.name:17s}: {stage.sites_after:10,}")
    return 0


def cmd_report(args) -> int:
    from .analysis import render_report

    injector = FaultInjector(load_instance(args.kernel))
    pruner = ProgressivePruner(num_loop_iters=args.loop_iters, n_bits=args.bits)
    space = pruner.prune(injector)
    profile = space.estimate_profile(injector)
    text = render_report(injector, space, profile)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "profile":
        return cmd_profile(args)
    if args.command == "baseline":
        return cmd_baseline(args)
    if args.command == "stages":
        return cmd_stages(args)
    if args.command == "report":
        return cmd_report(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
