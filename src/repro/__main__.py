"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``     — the kernel registry with threads and fault-site counts
  (``--json`` for a machine-readable inventory).
* ``profile``  — estimate a kernel's resilience profile via pruning.
* ``baseline`` — run a statistical random-injection baseline.
* ``stages``   — show the per-stage fault-site reduction for a kernel.
* ``metrics``  — run a small instrumented campaign and print counters,
  gauges, histograms and span timings.
* ``report``   — campaign report from telemetry artifacts (pass event
  logs and/or manifests), or a markdown resilience report for a kernel
  key; ``--propagation`` adds the provenance sections, ``--diff A B``
  compares two report JSONs.
* ``trace-fault`` — deep-dive one injection's propagation: corruption
  lineage, divergence/masking points, heap and output geometry.
* ``watch``    — in-terminal live dashboard for a running campaign:
  point it at a ``--live-status`` file, a ``--live-port`` port, or a
  full ``/status`` URL.
* ``bench-check`` — compare the newest benchmark observations against
  ``benchmarks/results/history.jsonl`` (host-keyed baselines; ``--host``
  overrides) and fail on regressions.

``profile``/``baseline``/``stages`` accept instrumentation flags:
``--telemetry-out events.jsonl`` streams typed events, ``--progress``
renders per-injection rate/ETA to stderr, and ``--manifest run.json``
writes an auditable run manifest (config, git rev, versions, profile,
wall clock, metrics) — see ``docs/observability.md``.  ``--workers N``
fans the campaign's injections over N worker processes (see
``docs/performance.md``); profiles are identical to serial runs.

``profile``/``baseline``/``metrics`` additionally accept the live
monitoring flags: ``--live-port``/``--live-status`` expose rolling
campaign status (outcome shares with Wilson CIs, per-worker liveness,
throughput) while the campaign runs, ``--until-ci`` adds the sequential
convergence signal (and stops sampled campaigns early at the target),
and ``--flight-recorder`` writes a post-mortem dump if the campaign
dies.  The live plane is advisory — profiles are byte-identical with it
on or off.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from . import (
    BACKENDS,
    FaultInjector,
    ProgressivePruner,
    all_kernels,
    load_instance,
    random_campaign,
    resolve_executor,
)
from .faults.resync import DEFAULT_RESYNC_WINDOW
from .stats import sample_size_worst_case
from .telemetry import (
    NULL_TELEMETRY,
    JsonlSink,
    NullSink,
    ProgressReporter,
    RunManifest,
    Telemetry,
)


def _add_instrumentation_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--telemetry-out",
        metavar="PATH",
        default=None,
        help="stream JSONL telemetry events to PATH",
    )
    sub.add_argument(
        "--progress",
        action="store_true",
        help="render per-injection progress (rate/ETA) to stderr",
    )
    sub.add_argument(
        "--manifest",
        metavar="PATH",
        default=None,
        help="write a reproducibility manifest (config, git rev, profile) to PATH",
    )
    sub.add_argument(
        "--workers",
        type=int,
        metavar="N",
        default=1,
        help="fan injections over N worker processes (1 = serial; "
        "profiles are identical either way)",
    )
    sub.add_argument(
        "--start-method",
        choices=("fork", "spawn", "forkserver"),
        default=None,
        help="multiprocessing start method for --workers pools "
        "(default: fork where available)",
    )
    sub.add_argument(
        "--checkpoint-interval",
        metavar="K",
        default="auto",
        help="snapshot golden state every K dynamic instructions and "
        "fast-forward injections past their golden prefix (0 = disabled, "
        "'auto' = derive per kernel from trace depth; profiles are "
        "identical either way)",
    )
    sub.add_argument(
        "--checkpoint-budget-mb",
        type=float,
        metavar="MB",
        default=64.0,
        help="LRU memory budget for checkpoint snapshots (per process)",
    )
    sub.add_argument(
        "--backend",
        choices=BACKENDS,
        default="interpreter",
        help="execution backend: the reference interpreter, the compiled "
        "closure-chain backend, or the vectorized lane-parallel backend "
        "(identical outcomes, faster)",
    )
    sub.add_argument(
        "--propagation",
        action="store_true",
        help="trace fault propagation per injection (corruption lineage, "
        "divergence/masking points, output geometry); records ride the "
        "telemetry event stream and feed 'repro report --propagation'",
    )
    sub.add_argument(
        "--resync",
        action="store_true",
        help="golden-resync early exit: once a faulty run reconverges "
        "with the cached golden stream inside the divergence window, "
        "splice the golden suffix instead of executing it (profiles are "
        "identical either way)",
    )
    sub.add_argument(
        "--resync-window",
        type=int,
        metavar="W",
        default=DEFAULT_RESYNC_WINDOW,
        help="post-flip instructions to scan for reconvergence before "
        "giving up and running the suffix normally",
    )


def _add_live_args(sub: argparse.ArgumentParser) -> None:
    live = sub.add_argument_group("live monitoring")
    live.add_argument(
        "--live-port",
        type=int,
        metavar="PORT",
        default=None,
        help="serve rolling campaign status over HTTP on 127.0.0.1:PORT "
        "(/status JSON + self-refreshing HTML dashboard; 0 binds an "
        "ephemeral port, printed to stderr)",
    )
    live.add_argument(
        "--live-status",
        metavar="PATH",
        default=None,
        help="write rolling JSON status snapshots to PATH (atomic "
        "replace; point 'repro watch PATH' at it)",
    )
    live.add_argument(
        "--until-ci",
        type=float,
        metavar="HW",
        default=None,
        help="convergence target: report 'converged' once every outcome "
        "share's Wilson CI half-width is at most HW (0.03 = ±3pp); "
        "sampled campaigns (baseline/metrics) also stop early there",
    )
    live.add_argument(
        "--flight-recorder",
        metavar="PATH",
        default=None,
        help="if the campaign crashes, write a post-mortem dump "
        "(recent-event rings, crash site, final status, manifest) to PATH",
    )
    live.add_argument(
        "--no-live",
        action="store_true",
        help="disable the streaming plane even when other live flags are "
        "set (--until-ci still reports convergence from the outcome "
        "stream)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fault-site pruning for GPGPU reliability analysis "
        "(MICRO 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="list registered kernels")
    list_cmd.add_argument(
        "--json", action="store_true", help="machine-readable kernel inventory"
    )

    profile = sub.add_parser("profile", help="pruned-space resilience profile")
    profile.add_argument("kernel", help="kernel key, e.g. gemm.k1")
    profile.add_argument("--loop-iters", type=int, default=5)
    profile.add_argument("--bits", type=int, default=16)
    profile.add_argument("--seed", type=int, default=2018)
    profile.add_argument(
        "--audit-groups",
        type=int,
        metavar="K",
        default=0,
        help="after the campaign, audit up to K pruned thread groups for "
        "propagation-signature coherence (implies --propagation; serial)",
    )
    _add_instrumentation_args(profile)
    _add_live_args(profile)

    baseline = sub.add_parser("baseline", help="random statistical baseline")
    baseline.add_argument("kernel")
    baseline.add_argument("--confidence", type=float, default=0.95)
    baseline.add_argument("--margin", type=float, default=0.03)
    baseline.add_argument("--seed", type=int, default=2018)
    _add_instrumentation_args(baseline)
    _add_live_args(baseline)

    stages = sub.add_parser("stages", help="per-stage site reduction")
    stages.add_argument("kernel")
    stages.add_argument("--loop-iters", type=int, default=5)
    stages.add_argument("--bits", type=int, default=16)
    _add_instrumentation_args(stages)

    metrics = sub.add_parser(
        "metrics", help="instrumented mini-campaign: counters and span timings"
    )
    metrics.add_argument("kernel")
    metrics.add_argument("--runs", type=int, default=30, help="random injections")
    metrics.add_argument("--seed", type=int, default=2018)
    _add_instrumentation_args(metrics)
    _add_live_args(metrics)

    report = sub.add_parser(
        "report",
        help="campaign report from telemetry files, or a markdown "
        "resilience report for a kernel key",
    )
    report.add_argument(
        "target",
        nargs="*",
        help="telemetry files (event logs / manifests) for a campaign "
        "report, or a single kernel key for a resilience report",
    )
    report.add_argument("--loop-iters", type=int, default=5)
    report.add_argument("--bits", type=int, default=8)
    report.add_argument(
        "--format",
        choices=("text", "json", "markdown"),
        default="text",
        help="campaign-report output format",
    )
    report.add_argument(
        "--manifest",
        action="append",
        default=None,
        metavar="PATH",
        help="additional run manifest(s) for the campaign report",
    )
    report.add_argument(
        "--propagation",
        action="store_true",
        help="include the propagation sections (PC vulnerability map, "
        "masking histograms, SDC signatures, group coherence); needs a "
        "campaign run with --propagation",
    )
    report.add_argument(
        "--diff",
        nargs=2,
        metavar=("A", "B"),
        default=None,
        help="compare two 'repro report --format json' files "
        "(A = baseline, B = candidate) instead of rendering one report",
    )
    report.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="with --diff: exit nonzero when any outcome-share delta is "
        "CI-significant (the Wilson intervals are disjoint)",
    )
    report.add_argument("--out", default=None, help="write to file instead of stdout")

    trace = sub.add_parser(
        "trace-fault",
        help="deep-dive one injection: corruption lineage, divergence, "
        "masking and output geometry",
    )
    trace.add_argument("kernel", help="kernel key, e.g. gemm.k1")
    trace.add_argument(
        "site",
        help="fault site as printed by reports/logs: t<T>/i<D>/b<B>, "
        "ioa:t<T>/i<D>/b<B> or rf:t<T>/i<D>/<REG>/b<B>",
    )
    trace.add_argument(
        "--backend",
        choices=BACKENDS,
        default="interpreter",
        help="execution backend for the classification and the trace",
    )
    trace.add_argument(
        "--json", action="store_true", help="emit the raw record as JSON"
    )

    watch_cmd = sub.add_parser(
        "watch",
        help="in-terminal live dashboard for a running campaign",
    )
    watch_cmd.add_argument(
        "target",
        help="where the campaign publishes status: a --live-status file "
        "path, a --live-port port number (local), host:port, or a full "
        "http(s) URL",
    )
    watch_cmd.add_argument(
        "--interval",
        type=float,
        metavar="S",
        default=1.0,
        help="seconds between refreshes",
    )
    watch_cmd.add_argument(
        "--once",
        action="store_true",
        help="render a single snapshot and exit",
    )
    watch_cmd.add_argument(
        "--json",
        action="store_true",
        help="print the raw status JSON instead of the dashboard",
    )
    watch_cmd.add_argument(
        "--timeout",
        type=float,
        metavar="S",
        default=None,
        help="give up after S seconds if the target never appears "
        "(default: wait forever)",
    )

    bench = sub.add_parser(
        "bench-check",
        help="check newest benchmark results against the recorded history",
    )
    bench.add_argument(
        "--results-dir",
        default="benchmarks/results",
        help="directory holding history.jsonl and BENCH_*.json",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed fractional drift around the baseline "
        "(default: repro.observe.history.DEFAULT_TOLERANCE)",
    )
    bench.add_argument("--suite", default=None, help="check one suite only")
    bench.add_argument(
        "--host",
        default=None,
        help="check against baselines recorded for HOST instead of this "
        "machine's hostname (e.g. a stable CI runner label)",
    )
    bench.add_argument(
        "--advisory",
        action="store_true",
        help="report regressions but always exit 0",
    )
    bench.add_argument(
        "--json", action="store_true", help="machine-readable findings"
    )
    return parser


def _checkpoint_kwargs(args) -> dict:
    """Injector keyword arguments for the checkpoint/backend flags."""
    interval = args.checkpoint_interval
    if interval != "auto":
        interval = int(interval)
    return {
        "checkpoint_interval": interval,
        "checkpoint_budget_mb": args.checkpoint_budget_mb,
        "backend": args.backend,
        "propagation": args.propagation,
        "resync": args.resync,
        "resync_window": args.resync_window,
    }


def _live_wanted(args) -> bool:
    """Any live-monitoring flag set (and not ``--no-live``)?"""
    if not hasattr(args, "live_port") or getattr(args, "no_live", False):
        return False
    return (
        args.live_port is not None
        or bool(args.live_status)
        or bool(args.flight_recorder)
        or args.until_ci is not None
    )


def _live_config(args) -> dict:
    """Manifest config entries for the live flags — only keys actually
    set, so manifests from live-less runs are byte-identical to before."""
    config: dict = {}
    if getattr(args, "start_method", None):
        config["start_method"] = args.start_method
    if not hasattr(args, "live_port"):
        return config
    if args.live_port is not None:
        config["live_port"] = args.live_port
    if args.live_status:
        config["live_status"] = args.live_status
    if args.until_ci is not None:
        config["until_ci"] = args.until_ci
    if args.flight_recorder:
        config["flight_recorder"] = args.flight_recorder
    return config


class _LivePlane:
    """One campaign's live plane: the aggregator plus its front-ends."""

    def __init__(self, aggregator, server=None, writer=None):
        self.aggregator = aggregator
        self.server = server
        self.writer = writer

    def close(self) -> None:
        # Writer first: its final flush records the terminal state before
        # the HTTP endpoint disappears.
        if self.writer is not None:
            self.writer.stop()
        if self.server is not None:
            self.server.stop()


def _make_live(args, manifest: RunManifest | None = None) -> _LivePlane | None:
    """Build the live plane when any live flag asks for it."""
    if not _live_wanted(args):
        return None
    from .observe.live import FlightRecorder, LiveAggregator
    from .observe.statusd import StatusFileWriter, StatusServer

    aggregator = LiveAggregator(until_ci=args.until_ci)
    if args.flight_recorder:
        aggregator.flight_recorder = FlightRecorder(
            args.flight_recorder, manifest=manifest
        )
    server = None
    if args.live_port is not None:
        server = StatusServer(aggregator, port=args.live_port)
        server.start()
        print(f"live status: {server.url}", file=sys.stderr)
    writer = None
    if args.live_status:
        writer = StatusFileWriter(aggregator, args.live_status)
        writer.start()
    return _LivePlane(aggregator, server=server, writer=writer)


def _print_convergence(args, result) -> None:
    """One line on the ``--until-ci`` verdict after a sampled campaign."""
    if getattr(args, "until_ci", None) is None:
        return
    target = f"±{100 * args.until_ci:.1f}pp"
    if result.stopped_early:
        print(
            f"converged: every outcome share within {target} after "
            f"{result.profile.n_injections} injections — stopped early"
        )
    elif result.converged:
        print(f"converged: every outcome share within {target}")
    else:
        print(f"not converged: outcome shares wider than {target}")


def _make_telemetry(args) -> Telemetry:
    """A live Telemetry when any instrumentation flag is set, else null."""
    if args.telemetry_out:
        return Telemetry(sink=JsonlSink(args.telemetry_out))
    if args.manifest or args.progress or _live_wanted(args):
        return Telemetry(sink=NullSink())
    return NULL_TELEMETRY


def _make_progress(args, label: str) -> ProgressReporter | None:
    if not args.progress:
        return None
    # On a terminal, redraw one line in place; in a pipeline or CI log,
    # emit periodic newline heartbeats with rolling rate and ETA instead.
    heartbeat_s = None if sys.stderr.isatty() else 5.0
    return ProgressReporter(
        label=label, stream=sys.stderr, heartbeat_s=heartbeat_s
    )


def _finish_manifest(
    manifest: RunManifest | None,
    telemetry: Telemetry,
    t0: float,
    profile=None,
    path: str | None = None,
) -> None:
    telemetry.close()
    if manifest is None:
        return
    if profile is not None:
        manifest.record_profile(profile)
    manifest.finalize(telemetry, wall_clock_s=time.perf_counter() - t0)
    manifest.write(path)
    print(f"wrote manifest {path}")


def cmd_list(args) -> int:
    rows = []
    for spec in all_kernels():
        injector = FaultInjector(spec.build())
        rows.append(
            {
                "key": spec.key,
                "suite": spec.suite,
                "kernel": spec.kernel_name,
                "threads": injector.instance.geometry.n_threads,
                "fault_sites": injector.space.total_sites,
            }
        )
    if args.json:
        print(json.dumps(rows, indent=1))
        return 0
    print(f"{'key':16s} {'suite':10s} {'kernel':20s} {'threads':>8s} "
          f"{'fault sites':>12s}")
    for row in rows:
        print(
            f"{row['key']:16s} {row['suite']:10s} {row['kernel']:20s} "
            f"{row['threads']:8d} {row['fault_sites']:12,}"
        )
    return 0


def cmd_profile(args) -> int:
    telemetry = _make_telemetry(args)
    manifest = None
    if args.audit_groups:
        args.propagation = True  # signatures are the audited quantity
    if args.manifest:
        manifest = RunManifest.create(
            kernel=args.kernel,
            command="profile",
            config={
                "loop_iters": args.loop_iters,
                "bits": args.bits,
                "seed": args.seed,
                "workers": args.workers,
                "checkpoint_interval": args.checkpoint_interval,
                "checkpoint_budget_mb": args.checkpoint_budget_mb,
                "backend": args.backend,
                "propagation": args.propagation,
                "resync": args.resync,
                "resync_window": args.resync_window,
                "audit_groups": args.audit_groups,
                **_live_config(args),
            },
            seed=args.seed,
            events_path=args.telemetry_out,
        )
    t0 = time.perf_counter()
    injector = FaultInjector(
        load_instance(args.kernel), telemetry=telemetry, **_checkpoint_kwargs(args)
    )
    pruner = ProgressivePruner(
        num_loop_iters=args.loop_iters, n_bits=args.bits, seed=args.seed
    )
    space = pruner.prune(injector)
    progress = _make_progress(args, label=f"{args.kernel} injections")
    plane = _make_live(args, manifest=manifest)
    try:
        profile = space.estimate_profile(
            injector,
            executor=resolve_executor(
                args.workers, start_method=args.start_method
            ),
            progress=progress,
            live=plane.aggregator if plane is not None else None,
            until_ci=args.until_ci,
        )
    finally:
        if plane is not None:
            plane.close()
    if progress is not None:
        progress.close()
    print(f"{args.kernel}: {space.total_sites:,} sites -> "
          f"{space.n_injections:,} injections "
          f"({space.reduction_factor():,.0f}x)")
    print(profile)
    if args.until_ci is not None and plane is not None:
        conv = plane.aggregator.snapshot()["convergence"]
        target = f"±{100 * args.until_ci:.1f}pp"
        if conv["converged"]:
            print(f"converged: every outcome share within {target}")
        else:
            print(f"not converged: outcome shares wider than {target}")
    if args.audit_groups:
        from .faults import run_coherence_audit

        audit = run_coherence_audit(injector, max_groups=args.audit_groups)
        print(
            f"coherence audit: {len(audit.groups)} group(s), "
            f"agreement {audit.agreement:.1%}"
        )
        for group in audit.incoherent_groups:
            print(
                f"  {group.group} (icnt {group.icnt},"
                f" {group.n_threads} threads):"
                f" agreement {group.agreement:.1%},"
                f" {len(group.mismatches)} mismatching probe(s)"
            )
    _finish_manifest(manifest, telemetry, t0, profile=profile, path=args.manifest)
    return 0


def cmd_baseline(args) -> int:
    telemetry = _make_telemetry(args)
    manifest = None
    n = sample_size_worst_case(args.margin, args.confidence)
    if args.manifest:
        manifest = RunManifest.create(
            kernel=args.kernel,
            command="baseline",
            config={
                "confidence": args.confidence,
                "margin": args.margin,
                "seed": args.seed,
                "runs": n,
                "workers": args.workers,
                "checkpoint_interval": args.checkpoint_interval,
                "checkpoint_budget_mb": args.checkpoint_budget_mb,
                "backend": args.backend,
                "resync": args.resync,
                "resync_window": args.resync_window,
                **_live_config(args),
            },
            seed=args.seed,
            events_path=args.telemetry_out,
        )
    t0 = time.perf_counter()
    injector = FaultInjector(
        load_instance(args.kernel), telemetry=telemetry, **_checkpoint_kwargs(args)
    )
    progress = _make_progress(args, label=f"{args.kernel} baseline")
    plane = _make_live(args, manifest=manifest)
    try:
        result = random_campaign(
            injector,
            n,
            rng=args.seed,
            executor=resolve_executor(
                args.workers, start_method=args.start_method
            ),
            progress=progress,
            live=plane.aggregator if plane is not None else None,
            until_ci=args.until_ci,
            early_stop=args.until_ci is not None,
        )
    finally:
        if plane is not None:
            plane.close()
    if progress is not None:
        progress.close()
    print(f"{args.kernel}: {result.n_runs} random injections "
          f"({100 * args.confidence:.1f}% CI, ±{100 * args.margin:.1f}pp)")
    print(result.profile)
    _print_convergence(args, result)
    _finish_manifest(
        manifest, telemetry, t0, profile=result.profile, path=args.manifest
    )
    return 0


def cmd_stages(args) -> int:
    telemetry = _make_telemetry(args)
    manifest = None
    if args.manifest:
        manifest = RunManifest.create(
            kernel=args.kernel,
            command="stages",
            config={
                "loop_iters": args.loop_iters,
                "bits": args.bits,
                "workers": args.workers,
                "checkpoint_interval": args.checkpoint_interval,
                "checkpoint_budget_mb": args.checkpoint_budget_mb,
                "backend": args.backend,
                "resync": args.resync,
                "resync_window": args.resync_window,
            },
            events_path=args.telemetry_out,
        )
    t0 = time.perf_counter()
    injector = FaultInjector(
        load_instance(args.kernel), telemetry=telemetry, **_checkpoint_kwargs(args)
    )
    pruner = ProgressivePruner(num_loop_iters=args.loop_iters, n_bits=args.bits)
    progress = _make_progress(args, label=f"{args.kernel} stages")
    space = pruner.prune(injector, progress=progress)
    if progress is not None:
        progress.close()
    print(f"{args.kernel}: exhaustive {space.total_sites:,}")
    for stage in space.stages:
        print(f"  after {stage.name:17s}: {stage.sites_after:10,}")
    _finish_manifest(manifest, telemetry, t0, path=args.manifest)
    return 0


def cmd_metrics(args) -> int:
    telemetry = (
        Telemetry(sink=JsonlSink(args.telemetry_out))
        if args.telemetry_out
        else Telemetry()
    )
    manifest = None
    if args.manifest:
        manifest = RunManifest.create(
            kernel=args.kernel,
            command="metrics",
            config={
                "runs": args.runs,
                "seed": args.seed,
                "workers": args.workers,
                "checkpoint_interval": args.checkpoint_interval,
                "checkpoint_budget_mb": args.checkpoint_budget_mb,
                "backend": args.backend,
                "resync": args.resync,
                "resync_window": args.resync_window,
                **_live_config(args),
            },
            seed=args.seed,
            events_path=args.telemetry_out,
        )
    t0 = time.perf_counter()
    injector = FaultInjector(
        load_instance(args.kernel), telemetry=telemetry, **_checkpoint_kwargs(args)
    )
    progress = _make_progress(args, label=f"{args.kernel} metrics")
    plane = _make_live(args, manifest=manifest)
    try:
        result = random_campaign(
            injector,
            args.runs,
            rng=args.seed,
            executor=resolve_executor(
                args.workers, start_method=args.start_method
            ),
            progress=progress,
            live=plane.aggregator if plane is not None else None,
            until_ci=args.until_ci,
            early_stop=args.until_ci is not None,
        )
    finally:
        if plane is not None:
            plane.close()
    if progress is not None:
        progress.close()
    print(f"{args.kernel}: {result.n_runs} instrumented random injections")
    print(result.profile)
    _print_convergence(args, result)
    print()
    print(telemetry.metrics.render())
    print()
    print(telemetry.spans.render())
    _finish_manifest(
        manifest, telemetry, t0, profile=result.profile, path=args.manifest
    )
    return 0


def _emit(text: str, out: str | None) -> None:
    if out:
        with open(out, "w") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")
        print(f"wrote {out}")
    else:
        print(text, end="" if text.endswith("\n") else "\n")


def cmd_report(args) -> int:
    import os

    if args.diff is not None:
        from .observe import diff_reports, load_report_json, render_diff_text

        diff = diff_reports(
            load_report_json(args.diff[0]), load_report_json(args.diff[1])
        )
        if args.format == "json":
            _emit(json.dumps(diff, indent=1, sort_keys=True) + "\n", args.out)
        else:
            _emit(render_diff_text(diff), args.out)
        if args.fail_on_regression:
            shifted = [
                row["outcome"]
                for row in diff["outcomes"]
                if row["significant"]
            ]
            if shifted:
                print(
                    "FAIL: outcome profile shifted beyond sampling noise "
                    f"({', '.join(shifted)})",
                    file=sys.stderr,
                )
                return 1
        return 0

    targets = list(args.target)
    if not targets:
        from .errors import ReproError

        raise ReproError("report needs telemetry files, a kernel key, or --diff A B")
    if all(os.path.exists(t) for t in targets):
        from .observe import (
            build_report,
            load_campaign,
            render_json,
            render_markdown,
            render_text,
        )

        log = load_campaign(targets, manifest_paths=args.manifest)
        report = build_report(log, propagation=args.propagation)
        renderer = {
            "text": render_text,
            "json": render_json,
            "markdown": render_markdown,
        }[args.format]
        _emit(renderer(report), args.out)
        return 0

    if len(targets) != 1:
        from .errors import ReproError

        missing = [t for t in targets if not os.path.exists(t)]
        raise ReproError(
            f"campaign report needs existing telemetry files; missing: "
            f"{', '.join(missing)}"
        )

    from .analysis import render_report

    injector = FaultInjector(load_instance(targets[0]))
    pruner = ProgressivePruner(num_loop_iters=args.loop_iters, n_bits=args.bits)
    space = pruner.prune(injector)
    profile = space.estimate_profile(injector)
    _emit(render_report(injector, space, profile), args.out)
    return 0


def cmd_trace_fault(args) -> int:
    from .faults import FaultSite, parse_site
    from .observe import render_trace_text

    site = parse_site(args.site)
    injector = FaultInjector(
        load_instance(args.kernel), backend=args.backend, propagation=True
    )
    if isinstance(site, FaultSite):
        outcome = injector.inject(site)
    else:
        outcome = injector.inject_spec(site.thread, site.spec(), label=str(site))
    record = injector.propagation_records[-1]
    if args.json:
        print(json.dumps(record.to_dict(), indent=1, sort_keys=True))
    else:
        print(f"{args.kernel} {site}: {outcome.value}")
        print(render_trace_text(record.to_dict()), end="")
    return 0


def cmd_watch(args) -> int:
    from .observe.statusd import watch

    return watch(
        args.target,
        interval_s=args.interval,
        once=args.once,
        as_json=args.json,
        timeout_s=args.timeout,
    )


def cmd_bench_check(args) -> int:
    from .observe.history import (
        DEFAULT_TOLERANCE,
        MIN_BLOCKING_SAMPLES,
        check_history,
    )

    tolerance = args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
    findings = check_history(
        args.results_dir, tolerance=tolerance, suite=args.suite, host=args.host
    )
    regressions = [f for f in findings if f["status"] == "regression"]
    blocking = [f for f in regressions if not f.get("advisory")]
    advisory = [f for f in regressions if f.get("advisory")]
    if args.json:
        print(json.dumps(
            {"tolerance": tolerance, "findings": findings,
             "regressions": len(regressions),
             "blocking": len(blocking)},
            indent=1,
        ))
    else:
        print(f"bench-check: {len(findings)} series, tolerance ±{tolerance:.0%}")
        for f in findings:
            baseline = (
                f"baseline {f['baseline']:.6g}" if f["baseline"] is not None
                else "no baseline"
            )
            tag = "advisory" if f.get("advisory") else f["status"]
            print(
                f"  [{tag:<11s}] {f['suite']}/{f['kernel']}"
                f" {f['metric']}={f['value']:.6g}{f['unit']}"
                f" ({baseline}, {f['observations']} obs)"
            )
        if advisory:
            print(
                f"WARNING: {len(advisory)} regression(s) backed by fewer "
                f"than {MIN_BLOCKING_SAMPLES} baseline samples — advisory "
                "only, not gating"
            )
        if blocking:
            print(f"{len(blocking)} regression(s) beyond ±{tolerance:.0%}")
    if blocking and not args.advisory:
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list(args)
    if args.command == "profile":
        return cmd_profile(args)
    if args.command == "baseline":
        return cmd_baseline(args)
    if args.command == "stages":
        return cmd_stages(args)
    if args.command == "metrics":
        return cmd_metrics(args)
    if args.command == "report":
        return cmd_report(args)
    if args.command == "trace-fault":
        return cmd_trace_fault(args)
    if args.command == "watch":
        return cmd_watch(args)
    if args.command == "bench-check":
        return cmd_bench_check(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
