"""Run manifests: the audit record that makes a campaign reproducible.

A manifest captures everything needed to re-run or audit one invocation —
kernel key, seed and config, the git revision and library versions it ran
under, the path of its JSONL event log, the final resilience profile, and
wall-clock/metric totals.  The CLI writes one next to its output when
``--manifest`` is given, and every benchmark result under
``benchmarks/results/`` gets a sibling ``<name>.manifest.json`` so the
numbers stay traceable to exact configs.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..errors import ReproError

MANIFEST_VERSION = 1


def git_revision(cwd: str | Path | None = None) -> str | None:
    """The HEAD commit of the checkout containing this package (or of
    ``cwd`` when given), or None outside any git checkout — e.g. for an
    installed wheel."""
    if cwd is None:
        cwd = Path(__file__).parent
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else None


def library_versions() -> dict[str, str]:
    """Interpreter and dependency versions that affect results."""
    import numpy

    from .. import __version__

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "repro": __version__,
    }


def profile_to_dict(profile) -> dict:
    """Duck-typed :class:`~repro.faults.ResilienceProfile` serialisation."""
    return {
        "weights": dict(profile.weights),
        "n_injections": profile.n_injections,
        "percentages": profile.as_percentages(),
    }


@dataclass
class RunManifest:
    """One auditable record of one run."""

    kernel: str
    command: str = ""
    argv: list[str] = field(default_factory=list)
    config: dict = field(default_factory=dict)
    seed: int | None = None
    git_rev: str | None = None
    versions: dict = field(default_factory=dict)
    created_at: str = ""
    events_path: str | None = None
    profile: dict | None = None
    wall_clock_s: float | None = None
    metrics: dict | None = None
    spans: dict | None = None
    version: int = MANIFEST_VERSION

    @classmethod
    def create(
        cls,
        kernel: str,
        command: str = "",
        config: dict | None = None,
        seed: int | None = None,
        events_path: str | Path | None = None,
    ) -> "RunManifest":
        """A manifest stamped with the current environment."""
        return cls(
            kernel=kernel,
            command=command,
            argv=list(sys.argv),
            config=dict(config or {}),
            seed=seed,
            git_rev=git_revision(),
            versions=library_versions(),
            created_at=time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            events_path=str(events_path) if events_path is not None else None,
        )

    def record_profile(self, profile) -> None:
        self.profile = profile_to_dict(profile)

    def finalize(self, telemetry=None, wall_clock_s: float | None = None) -> None:
        """Capture end-of-run totals from a telemetry bundle."""
        self.wall_clock_s = wall_clock_s
        if telemetry is not None and telemetry.enabled:
            self.metrics = telemetry.metrics.snapshot()
            self.spans = telemetry.spans.snapshot()

    # -------------------------------------------------------------- (de)ser

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        if data.get("version") != MANIFEST_VERSION:
            raise ReproError(f"unsupported manifest version {data.get('version')!r}")
        fields = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in fields})

    def write(self, path: str | Path) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=1) + "\n")


def load_manifest(path: str | Path) -> RunManifest:
    return RunManifest.from_dict(json.loads(Path(path).read_text()))
