"""Structured instrumentation for the injection/pruning stack.

The :class:`Telemetry` facade bundles the three recorders every layer
shares — an event sink (:mod:`~repro.telemetry.events`), a metrics
registry (:mod:`~repro.telemetry.metrics`) and a span timer
(:mod:`~repro.telemetry.timing`) — behind one object that the simulator,
injector, campaign drivers and pruner all accept as ``telemetry=``.

``NULL_TELEMETRY`` is the default everywhere: its ``enabled`` flag is
False and every method is a no-op, so uninstrumented campaigns pay one
attribute check per injection and nothing per simulated instruction.
Hot call sites follow the pattern::

    if telemetry.enabled:
        telemetry.emit(InjectionEvent(...))   # events built only when live

Progress reporting (:mod:`~repro.telemetry.progress`) and run manifests
(:mod:`~repro.telemetry.manifest`) ride alongside; see
``docs/observability.md`` for schemas and conventions.
"""

from __future__ import annotations

import dataclasses
import time

from .events import (
    EVENT_TYPES,
    EVENTS_SCHEMA_VERSION,
    NULL_SINK,
    PHASE_NAMES,
    CampaignEvent,
    EventSink,
    HeartbeatEvent,
    InjectionEvent,
    JsonlSink,
    MemorySink,
    NullSink,
    SimRunEvent,
    StageEvent,
    TelemetryEvent,
    event_from_dict,
    event_to_dict,
    read_events,
)
from .manifest import (
    MANIFEST_VERSION,
    RunManifest,
    git_revision,
    library_versions,
    load_manifest,
    profile_to_dict,
)
from .metrics import (
    SCOPED_HISTOGRAMS,
    SUMMED_GAUGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .progress import ProgressReporter
from .timing import SpanStats, SpanTimer


class _NullSpan:
    """Reusable no-op context manager for the disabled span path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _PhaseSpan:
    """Times one injection phase and folds it into ``telemetry.phases``."""

    __slots__ = ("_telemetry", "_name", "_t0")

    def __init__(self, telemetry: "Telemetry", name: str) -> None:
        self._telemetry = telemetry
        self._name = name

    def __enter__(self) -> None:
        self._t0 = time.perf_counter()
        return None

    def __exit__(self, *exc) -> bool:
        self._telemetry.add_phase(self._name, time.perf_counter() - self._t0)
        return False


class Telemetry:
    """Event sink + metrics registry + span timer, as one handle."""

    enabled = True

    def __init__(
        self,
        sink: EventSink | None = None,
        metrics: MetricsRegistry | None = None,
        spans: SpanTimer | None = None,
    ) -> None:
        self.sink = sink if sink is not None else MemorySink()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans = spans if spans is not None else SpanTimer()
        #: Per-injection phase accumulator (phase name -> seconds).  The
        #: injector opens a fresh dict around each injection; while it is
        #: None (outside any injection) phase spans are no-ops.
        self.phases: dict[str, float] | None = None

    @classmethod
    def to_jsonl(cls, path, flush_each: bool = False) -> "Telemetry":
        """Telemetry streaming its events to a JSONL file."""
        return cls(sink=JsonlSink(path, flush_each=flush_each))

    def emit(self, event: TelemetryEvent) -> None:
        self.sink.emit(event)

    def span(self, name: str):
        return self.spans.span(name)

    def count(self, name: str, n: int | float = 1) -> None:
        self.metrics.counter(name).inc(n)

    def observe(self, name: str, value: float) -> None:
        self.metrics.histogram(name).observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name).set(value)

    def add_phase(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` into the current injection's phase dict.

        No-op outside an injection (``self.phases is None``); negative
        deltas are allowed so a layer can move time *between* phases
        (the simulator reclassifies in-launch checkpoint-restore time out
        of ``suffix_exec``).
        """
        phases = self.phases
        if phases is not None:
            phases[name] = phases.get(name, 0.0) + seconds

    def phase(self, name: str):
        """Context manager timing one phase of the current injection."""
        if self.phases is None:
            return _NULL_SPAN
        return _PhaseSpan(self, name)

    def absorb(self, snapshot: dict) -> None:
        """Merge a worker-shipped telemetry snapshot into this handle.

        ``snapshot`` is the wire form parallel campaign workers produce:
        ``{"events": [event dicts], "metrics": MetricsRegistry.snapshot(),
        "spans": SpanTimer.snapshot(), "worker": name}``.  Events are
        re-emitted into this sink — stamped with the worker's name when
        they carry a ``worker`` field left None; counters add, gauges
        last-write-win except :data:`SUMMED_GAUGES` which sum across
        workers, histogram/span stats combine (see
        :meth:`MetricsRegistry.merge` / :meth:`SpanTimer.merge`).
        """
        worker = snapshot.get("worker")
        for payload in snapshot.get("events", ()):
            event = event_from_dict(payload)
            if worker is not None and getattr(event, "worker", "") is None:
                event = dataclasses.replace(event, worker=worker)
            self.emit(event)
        self.metrics.merge(snapshot.get("metrics", {}), worker=worker)
        self.spans.merge(snapshot.get("spans", {}))

    def close(self) -> None:
        self.sink.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullTelemetry(Telemetry):
    """The zero-overhead default: every operation is a no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(sink=NULL_SINK)

    def emit(self, event: TelemetryEvent) -> None:
        pass

    def span(self, name: str):
        return _NULL_SPAN

    def count(self, name: str, n: int | float = 1) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def add_phase(self, name: str, seconds: float) -> None:
        pass

    def phase(self, name: str):
        return _NULL_SPAN

    def absorb(self, snapshot: dict) -> None:
        pass


NULL_TELEMETRY = NullTelemetry()


def coalesce(telemetry: Telemetry | None) -> Telemetry:
    """``telemetry`` or the shared null instance."""
    return telemetry if telemetry is not None else NULL_TELEMETRY


__all__ = [
    "EVENTS_SCHEMA_VERSION",
    "EVENT_TYPES",
    "MANIFEST_VERSION",
    "NULL_SINK",
    "NULL_TELEMETRY",
    "PHASE_NAMES",
    "SCOPED_HISTOGRAMS",
    "SUMMED_GAUGES",
    "CampaignEvent",
    "Counter",
    "EventSink",
    "Gauge",
    "HeartbeatEvent",
    "Histogram",
    "InjectionEvent",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NullSink",
    "NullTelemetry",
    "ProgressReporter",
    "RunManifest",
    "SimRunEvent",
    "SpanStats",
    "SpanTimer",
    "StageEvent",
    "Telemetry",
    "TelemetryEvent",
    "coalesce",
    "event_from_dict",
    "event_to_dict",
    "git_revision",
    "library_versions",
    "load_manifest",
    "profile_to_dict",
    "read_events",
]
