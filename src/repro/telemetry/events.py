"""Typed, timestamped telemetry events and the sinks that record them.

Every observable moment of a campaign maps to one event type:

* :class:`SimRunEvent`       — one kernel launch (golden, CTA-sliced or
  full faulty re-execution) with instruction/barrier counts;
* :class:`InjectionEvent`    — one classified injection (site, model,
  outcome, fast-path vs fallback, duration);
* :class:`StageEvent`        — one pruning stage (sites before/after);
* :class:`CampaignEvent`     — campaign start/end with the aggregated
  profile.

Events are plain frozen dataclasses; :func:`event_to_dict` /
:func:`event_from_dict` give a lossless JSON mapping, and
:class:`JsonlSink` streams them one JSON object per line so a crashed
campaign still leaves a readable prefix.  :class:`NullSink` is the
zero-overhead default — emitters check ``sink.enabled`` (or use
``NULL_TELEMETRY``) before constructing events at all.
"""

from __future__ import annotations

import dataclasses
import json
import warnings
from dataclasses import dataclass
from pathlib import Path

from ..errors import ReproError

#: Version of the on-disk JSONL event schema.  Bumped whenever a record
#: gains fields readers must understand; :class:`JsonlSink` stamps it on
#: the header line and :func:`read_events` rejects files written by a
#: *newer* schema (older files stay readable — new fields have defaults).
#: v3 added the ``propagation`` payload and ``group`` tag on
#: :class:`InjectionEvent` (fault-propagation provenance tracing).
#: v4 added ``effective_instructions``/``spliced_instructions`` on
#: :class:`InjectionEvent` and the ``resync_scan``/``suffix_splice``
#: phases (convergence-bounded injection with golden-suffix splicing).
#: v5 added :class:`HeartbeatEvent` — worker liveness records emitted by
#: the live streaming plane (``repro.observe.live``).
EVENTS_SCHEMA_VERSION = 5

#: Per-injection phase names, in pipeline order.  ``InjectionEvent.phases``
#: maps a subset of these to seconds spent (phases that did not occur —
#: e.g. ``checkpoint_restore`` with checkpointing disabled — are absent).
PHASE_NAMES = (
    "queue_wait",
    "checkpoint_restore",
    "prefix_replay",
    "suffix_exec",
    "resync_scan",
    "suffix_splice",
    "heap_repair",
    "classify",
    "propagation_trace",
)


@dataclass(frozen=True)
class TelemetryEvent:
    """Base record: ``ts`` is a Unix timestamp (``time.time()``)."""

    ts: float


@dataclass(frozen=True)
class SimRunEvent(TelemetryEvent):
    """One kernel launch over the functional simulator."""

    kind: str  # "golden" | "sliced" | "full"
    n_ctas: int
    instructions: int
    barrier_rounds: int
    hang: bool
    memory_fault: bool
    duration_s: float
    backend: str = "interpreter"  # "interpreter" | "compiled"
    checkpoint_interval: int = 0  # 0 = checkpointing disabled
    skipped_instructions: int = 0  # golden prefix skipped via checkpoints
    worker: str | None = None  # pool worker name; None when serial


@dataclass(frozen=True)
class InjectionEvent(TelemetryEvent):
    """One classified fault injection."""

    thread: int
    dyn_index: int
    bit: int
    model: str  # FaultModel value: "iov" | "ioa" | "rf"
    outcome: str  # Outcome value: "masked" | "sdc" | "crash" | "hang"
    fast_path: bool  # classified via the CTA-sliced path (no fallback)
    duration_s: float
    backend: str = "interpreter"  # "interpreter" | "compiled"
    checkpoint_interval: int = 0  # 0 = checkpointing disabled
    suffix_instructions: int = 0  # instructions actually executed (suffix only)
    #: Effective dynamic instruction count the injection *accounts for*:
    #: executed suffix + checkpoint-skipped prefix + resync-spliced golden
    #: suffix.  0 when neither checkpointing nor resync contributed.
    effective_instructions: int = 0
    spliced_instructions: int = 0  # golden suffix reconstructed via resync
    phases: dict | None = None  # phase name -> seconds (see PHASE_NAMES)
    worker: str | None = None  # pool worker name; None when serial
    #: Propagation-trace payload (PropagationRecord.to_dict()); None when
    #: the injector ran without provenance tracing.
    propagation: dict | None = None
    #: Pruning-group tag stamped by the coherence audit; None otherwise.
    group: str | None = None


@dataclass(frozen=True)
class StageEvent(TelemetryEvent):
    """One progressive-pruning stage."""

    stage: str  # "thread-wise" | "instruction-wise" | "loop-wise" | "bit-wise"
    sites_before: int
    sites_after: int
    duration_s: float


@dataclass(frozen=True)
class HeartbeatEvent(TelemetryEvent):
    """Worker liveness beacon from the live streaming plane (schema v5).

    Recorded when a campaign runs with the live plane enabled and an
    event log attached: one record per worker heartbeat, carrying the
    worker's completed-injection count and the campaign-wide rolling
    rate/effective-instruction totals at that instant.  Post-hoc these
    reconstruct the campaign's throughput timeline without sampling the
    (much larger) injection stream.
    """

    worker: str | None = None  # pool worker name; None/"serial" when serial
    state: str = "beat"  # "online" | "beat" | "crash"
    done: int = 0  # injections this worker has completed
    rate: float = 0.0  # campaign-wide rolling injections/sec
    effective_instructions: int = 0  # campaign-wide effective insn total


@dataclass(frozen=True)
class CampaignEvent(TelemetryEvent):
    """Campaign boundary: ``phase`` is "start" or "end"."""

    phase: str
    campaign: str  # "explicit" | "random" | "exhaustive" | "pruned-estimate"
    n_sites: int  # planned (start) or completed (end); -1 when unknown
    profile: dict | None  # category -> weight, present on "end" only


#: JSONL record name -> event class (the ``"event"`` key of each line).
EVENT_TYPES: dict[str, type[TelemetryEvent]] = {
    "sim_run": SimRunEvent,
    "injection": InjectionEvent,
    "stage": StageEvent,
    "campaign": CampaignEvent,
    "heartbeat": HeartbeatEvent,
}

_NAME_OF = {cls: name for name, cls in EVENT_TYPES.items()}


def event_to_dict(event: TelemetryEvent) -> dict:
    """Lossless JSON-ready mapping, tagged with its record name."""
    name = _NAME_OF.get(type(event))
    if name is None:
        raise ReproError(f"unregistered event type {type(event).__name__}")
    record = {"event": name}
    record.update(dataclasses.asdict(event))
    return record


def event_from_dict(data: dict) -> TelemetryEvent:
    """Inverse of :func:`event_to_dict`."""
    try:
        cls = EVENT_TYPES[data["event"]]
    except KeyError:
        raise ReproError(f"unknown event record {data.get('event')!r}") from None
    fields = {f.name for f in dataclasses.fields(cls)}
    return cls(**{k: v for k, v in data.items() if k in fields})


def read_events(path: str | Path) -> list[TelemetryEvent]:
    """Replay a JSONL event log back into typed events.

    The optional header line (``{"schema": N, ...}``, no ``"event"`` key)
    is validated and skipped: files written by a *newer* schema than this
    library understands raise :class:`ReproError` rather than silently
    dropping fields.  Headerless (schema 1) files remain readable.

    A malformed *final* line is tolerated with a warning: a worker killed
    mid-write (OOM, SIGKILL, crashed campaign) leaves a truncated trailing
    record behind, and every completed event before it is still worth a
    report.  Malformed lines anywhere else indicate real corruption and
    raise :class:`ReproError`.
    """
    events = []
    with open(path) as handle:
        lines = handle.readlines()
    for lineno, raw in enumerate(lines):
        line = raw.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError:
            if any(rest.strip() for rest in lines[lineno + 1 :]):
                raise ReproError(
                    f"event log {path} is corrupt at line {lineno + 1}: "
                    "not valid JSON"
                ) from None
            warnings.warn(
                f"event log {path}: ignoring truncated trailing line "
                f"{lineno + 1} (writer likely crashed mid-record)",
                stacklevel=2,
            )
            break
        if "event" not in data and "schema" in data:
            schema = data["schema"]
            if not isinstance(schema, int) or schema > EVENTS_SCHEMA_VERSION:
                raise ReproError(
                    f"event log {path} uses schema {schema!r}; this build "
                    f"understands up to {EVENTS_SCHEMA_VERSION} — upgrade "
                    "repro to read it"
                )
            continue
        events.append(event_from_dict(data))
    return events


# ------------------------------------------------------------------ sinks


class EventSink:
    """Where emitted events go.  Subclasses implement :meth:`emit`."""

    enabled = True

    def emit(self, event: TelemetryEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        pass

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullSink(EventSink):
    """Discards everything; ``enabled`` is False so emitters can skip
    event construction entirely."""

    enabled = False

    def emit(self, event: TelemetryEvent) -> None:
        pass


class MemorySink(EventSink):
    """Keeps events in a list — the test/inspection sink."""

    def __init__(self) -> None:
        self.events: list[TelemetryEvent] = []

    def emit(self, event: TelemetryEvent) -> None:
        self.events.append(event)

    def of_type(self, cls: type) -> list[TelemetryEvent]:
        return [e for e in self.events if isinstance(e, cls)]


class JsonlSink(EventSink):
    """Appends one JSON object per event to ``path``.

    ``flush_each=True`` trades a little throughput for crash-resilient
    logs (every completed injection survives a SIGKILL).
    """

    def __init__(self, path: str | Path, flush_each: bool = False) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "w")
        self._flush_each = flush_each
        self.n_emitted = 0
        # Header line: schema version first so readers can bail before
        # parsing any event.  Not counted in n_emitted.
        self._handle.write(
            json.dumps(
                {"schema": EVENTS_SCHEMA_VERSION, "writer": "repro.telemetry"}
            )
            + "\n"
        )

    def emit(self, event: TelemetryEvent) -> None:
        self._handle.write(json.dumps(event_to_dict(event)) + "\n")
        self.n_emitted += 1
        if self._flush_each:
            self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


NULL_SINK = NullSink()
