"""Dependency-free progress reporting with rate and ETA.

A :class:`ProgressReporter` has two faces:

* a **callable** ``(done, total)`` — the shape the campaign drivers call
  once per injection, so any plain function works in its place;
* a **renderer** that throttles carriage-return updates to a stream
  (stderr for the CLI) and fires an optional ``callback(reporter)`` on
  every advance for programmatic consumers.
"""

from __future__ import annotations

import time


class ProgressReporter:
    """Tracks completed work and renders ``done/total rate eta`` lines."""

    def __init__(
        self,
        total: int | None = None,
        label: str = "",
        callback=None,
        stream=None,
        min_interval_s: float = 0.2,
        clock=time.monotonic,
    ) -> None:
        self.total = total
        self.label = label
        self.callback = callback
        self.stream = stream
        self.min_interval_s = min_interval_s
        self._clock = clock
        self.done = 0
        self.started_at: float | None = None
        self._last_render = -float("inf")
        self._rendered = False

    # ------------------------------------------------------------ updates

    def start(self) -> None:
        if self.started_at is None:
            self.started_at = self._clock()

    def update(self, n: int = 1) -> None:
        """Advance by ``n`` completed units."""
        self.start()
        self.done += n
        self._after_advance()

    def __call__(self, done: int, total: int | None = None) -> None:
        """Campaign-driver hook: absolute position, optional total."""
        self.start()
        self.done = done
        if total is not None:
            self.total = total
        self._after_advance()

    def _after_advance(self) -> None:
        if self.callback is not None:
            self.callback(self)
        if self.stream is not None:
            now = self._clock()
            finished = self.total is not None and self.done >= self.total
            if finished or now - self._last_render >= self.min_interval_s:
                self.stream.write("\r" + self.render_line())
                self.stream.flush()
                self._last_render = now
                self._rendered = True

    def close(self) -> None:
        """Final render plus newline, so the shell prompt stays clean."""
        if self.stream is not None:
            if not self._rendered:
                self.stream.write(self.render_line())
            else:
                self.stream.write("\r" + self.render_line())
            self.stream.write("\n")
            self.stream.flush()

    def __enter__(self) -> "ProgressReporter":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- stats

    @property
    def elapsed_s(self) -> float:
        if self.started_at is None:
            return 0.0
        return self._clock() - self.started_at

    @property
    def rate(self) -> float:
        """Completed units per second (0 until the clock has advanced)."""
        elapsed = self.elapsed_s
        return self.done / elapsed if elapsed > 0 else 0.0

    @property
    def eta_s(self) -> float | None:
        """Seconds remaining, or None when total/rate are unknown."""
        if self.total is None or self.rate == 0:
            return None
        return max(0.0, (self.total - self.done) / self.rate)

    def render_line(self) -> str:
        prefix = f"{self.label}: " if self.label else ""
        if self.total:
            pct = 100.0 * self.done / self.total
            line = f"{prefix}{self.done}/{self.total} ({pct:5.1f}%)"
        else:
            line = f"{prefix}{self.done}"
        if self.rate > 0:
            line += f" {self.rate:8.1f}/s"
        eta = self.eta_s
        if eta is not None:
            line += f" eta {_format_duration(eta)}"
        return line


def _format_duration(seconds: float) -> str:
    seconds = int(round(seconds))
    if seconds < 60:
        return f"{seconds}s"
    if seconds < 3600:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
