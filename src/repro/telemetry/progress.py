"""Dependency-free progress reporting with rate and ETA.

A :class:`ProgressReporter` has two faces:

* a **callable** ``(done, total)`` — the shape the campaign drivers call
  once per injection, so any plain function works in its place;
* a **renderer** that throttles carriage-return updates to a stream
  (stderr for the CLI) and fires an optional ``callback(reporter)`` on
  every advance for programmatic consumers.

With ``heartbeat_s`` set, carriage-return rendering is replaced by
periodic newline-terminated heartbeat lines carrying a *rolling*
rate (computed over the recent window, not since campaign start) and
ETA — the log-friendly mode for long unattended campaigns.  ``close()``
always flushes a final heartbeat so short campaigns aren't silent.

Injections are not uniform work units: checkpoint skipping and resync
splicing make per-injection cost drift over a campaign (deep sites cost
more until resync kicks in), so an ETA from the injection *count* rate is
systematically wrong on deep kernels.  Drivers that know the cumulative
**effective-instruction** total can feed it via :meth:`note_work`; the
ETA then projects remaining work in instructions and divides by the
rolling instruction rate, falling back to the count-based estimate when
no work units were reported.
"""

from __future__ import annotations

import time
from collections import deque


class ProgressReporter:
    """Tracks completed work and renders ``done/total rate eta`` lines."""

    def __init__(
        self,
        total: int | None = None,
        label: str = "",
        callback=None,
        stream=None,
        min_interval_s: float = 0.2,
        clock=time.monotonic,
        heartbeat_s: float | None = None,
    ) -> None:
        self.total = total
        self.label = label
        self.callback = callback
        self.stream = stream
        self.min_interval_s = min_interval_s
        self.heartbeat_s = heartbeat_s
        self._clock = clock
        self.done = 0
        self.started_at: float | None = None
        self._last_render = -float("inf")
        self._rendered = False
        self._last_heartbeat = -float("inf")
        self.heartbeats_emitted = 0
        #: Cumulative work units (effective instructions) reported via
        #: :meth:`note_work`; 0 means "count injections instead".
        self.work_done = 0
        # (timestamp, done, work) samples for the rolling rates; span kept
        # to roughly two heartbeat periods so rates track recent speed.
        self._window: deque[tuple[float, int, int]] = deque()

    # ------------------------------------------------------------ updates

    def start(self) -> None:
        if self.started_at is None:
            self.started_at = self._clock()

    def update(self, n: int = 1) -> None:
        """Advance by ``n`` completed units."""
        self.start()
        self.done += n
        self._after_advance()

    def __call__(self, done: int, total: int | None = None) -> None:
        """Campaign-driver hook: absolute position, optional total."""
        self.start()
        self.done = done
        if total is not None:
            self.total = total
        self._after_advance()

    def note_work(self, units: int | float) -> None:
        """Report the cumulative work-unit total (absolute, monotonic).

        Campaign drivers call this with the running effective-instruction
        count *before* the positional ``(done, total)`` call, so the next
        window sample pairs the two.  Ignored when ``units`` does not
        advance the known total — an uninstrumented campaign reporting 0
        keeps the count-based ETA.
        """
        if units > self.work_done:
            self.work_done = int(units)

    def _after_advance(self) -> None:
        if self.callback is not None:
            self.callback(self)
        now = self._clock()
        self._window.append((now, self.done, self.work_done))
        span = (self.heartbeat_s or self.min_interval_s) * 2
        while len(self._window) > 2 and now - self._window[0][0] > span:
            self._window.popleft()
        if self.stream is None:
            return
        if self.heartbeat_s is not None:
            if now - self._last_heartbeat >= self.heartbeat_s:
                self._emit_heartbeat(now)
            return
        finished = self.total is not None and self.done >= self.total
        if finished or now - self._last_render >= self.min_interval_s:
            self.stream.write("\r" + self.render_line())
            self.stream.flush()
            self._last_render = now
            self._rendered = True

    def _emit_heartbeat(self, now: float) -> None:
        self.stream.write(self.render_heartbeat() + "\n")
        self.stream.flush()
        self._last_heartbeat = now
        self.heartbeats_emitted += 1

    def close(self) -> None:
        """Final render plus newline, so the shell prompt stays clean.

        In heartbeat mode a final heartbeat is always flushed — campaigns
        shorter than one ``heartbeat_s`` period still report their rate.
        """
        if self.stream is None:
            return
        if self.heartbeat_s is not None:
            self._emit_heartbeat(self._clock())
            return
        if not self._rendered:
            self.stream.write(self.render_line())
        else:
            self.stream.write("\r" + self.render_line())
        self.stream.write("\n")
        self.stream.flush()

    def __enter__(self) -> "ProgressReporter":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- stats

    @property
    def elapsed_s(self) -> float:
        if self.started_at is None:
            return 0.0
        return self._clock() - self.started_at

    @property
    def rate(self) -> float:
        """Completed units per second (0 until the clock has advanced)."""
        elapsed = self.elapsed_s
        return self.done / elapsed if elapsed > 0 else 0.0

    @property
    def rolling_rate(self) -> float:
        """Units/second over the recent sample window (falls back to the
        cumulative :attr:`rate` until two window samples exist)."""
        if len(self._window) >= 2:
            (t0, d0, _), (t1, d1, _) = self._window[0], self._window[-1]
            if t1 > t0:
                return (d1 - d0) / (t1 - t0)
        return self.rate

    @property
    def rolling_work_rate(self) -> float:
        """Work units (effective instructions)/second over the window."""
        if len(self._window) >= 2:
            (t0, _, w0), (t1, _, w1) = self._window[0], self._window[-1]
            if t1 > t0:
                return (w1 - w0) / (t1 - t0)
        elapsed = self.elapsed_s
        return self.work_done / elapsed if elapsed > 0 else 0.0

    @property
    def eta_s(self) -> float | None:
        """Seconds remaining, or None when total/rate are unknown.

        Prefers the work-unit projection when :meth:`note_work` has been
        fed: remaining work is estimated by scaling the observed
        work-per-injection to the remaining injection count, then divided
        by the rolling work rate — so a campaign whose later injections
        are cheaper (resync splicing) or dearer (deep prefixes) projects
        from cost actually remaining, not injection count.
        """
        if self.total is None:
            return None
        if 0 < self.done < self.total and self.work_done > 0:
            work_rate = self.rolling_work_rate
            if work_rate > 0:
                projected_total = self.work_done * (self.total / self.done)
                return max(0.0, (projected_total - self.work_done) / work_rate)
        rate = self.rolling_rate or self.rate
        if rate == 0:
            return None
        return max(0.0, (self.total - self.done) / rate)

    def render_line(self) -> str:
        prefix = f"{self.label}: " if self.label else ""
        if self.total:
            pct = 100.0 * self.done / self.total
            line = f"{prefix}{self.done}/{self.total} ({pct:5.1f}%)"
        else:
            line = f"{prefix}{self.done}"
        if self.rate > 0:
            line += f" {self.rate:8.1f}/s"
        eta = self.eta_s
        if eta is not None:
            line += f" eta {_format_duration(eta)}"
        return line

    def render_heartbeat(self) -> str:
        prefix = f"{self.label}: " if self.label else ""
        if self.total:
            pct = 100.0 * self.done / self.total
            line = f"{prefix}heartbeat {self.done}/{self.total} ({pct:5.1f}%)"
        else:
            line = f"{prefix}heartbeat {self.done}"
        line += f" {self.rolling_rate:.1f}/s"
        work_rate = self.rolling_work_rate
        if self.work_done > 0 and work_rate > 0:
            line += f" {work_rate / 1e6:.2f}Minsn/s"
        eta = self.eta_s
        if eta is not None:
            line += f" eta {_format_duration(eta)}"
        return line


def _format_duration(seconds: float) -> str:
    seconds = int(round(seconds))
    if seconds < 60:
        return f"{seconds}s"
    if seconds < 3600:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
