"""Nested wall-clock spans for campaign phases.

``SpanTimer.span("golden-run")`` is a context manager; nested spans
aggregate under slash-joined paths (``"prune/prune.loop-wise"``), so the
same stage timed inside different parents stays distinguishable.  Stats
are aggregates (count/total/min/max), not per-entry traces — a campaign
opens one span per injection and must not accumulate memory.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager


class SpanStats:
    """Aggregate wall-clock stats for one span path."""

    __slots__ = ("count", "total_s", "min_s", "max_s")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.min_s = math.inf
        self.max_s = 0.0

    def record(self, dt: float) -> None:
        self.count += 1
        self.total_s += dt
        if dt < self.min_s:
            self.min_s = dt
        if dt > self.max_s:
            self.max_s = dt

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def summary(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "min_s": self.min_s if self.count else None,
            "max_s": self.max_s if self.count else None,
            "mean_s": self.mean_s,
        }


class SpanTimer:
    """Aggregating span recorder with nesting."""

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._stack: list[str] = []
        self.stats: dict[str, SpanStats] = {}

    @property
    def depth(self) -> int:
        return len(self._stack)

    @property
    def current_path(self) -> str:
        return "/".join(self._stack)

    @contextmanager
    def span(self, name: str):
        """Time a phase; nested calls aggregate under joined paths."""
        self._stack.append(name)
        path = "/".join(self._stack)
        t0 = self._clock()
        try:
            yield path
        finally:
            dt = self._clock() - t0
            self._stack.pop()
            stats = self.stats.get(path)
            if stats is None:
                stats = self.stats[path] = SpanStats()
            stats.record(dt)

    def merge(self, snapshot: dict) -> None:
        """Fold another timer's :meth:`snapshot` into this one.

        Worker processes time the same span paths the parent would have
        (``injection``, ``campaign/...``); merging keeps the aggregate
        view meaningful after a parallel campaign.
        """
        for path, summary in snapshot.items():
            count = summary.get("count", 0)
            if not count:
                continue
            stats = self.stats.get(path)
            if stats is None:
                stats = self.stats[path] = SpanStats()
            stats.count += count
            stats.total_s += summary["total_s"]
            if summary["min_s"] < stats.min_s:
                stats.min_s = summary["min_s"]
            if summary["max_s"] > stats.max_s:
                stats.max_s = summary["max_s"]

    def total(self, path: str) -> float:
        stats = self.stats.get(path)
        return stats.total_s if stats else 0.0

    def snapshot(self) -> dict:
        return {path: s.summary() for path, s in sorted(self.stats.items())}

    def render(self) -> str:
        if not self.stats:
            return "(no spans recorded)"
        width = max(len(p) for p in self.stats)
        lines = ["spans:"]
        for path in sorted(self.stats):
            s = self.stats[path]
            lines.append(
                f"  {path:{width}s} n={s.count:<8d} "
                f"total={s.total_s:9.4f}s mean={s.mean_s:.6f}s"
            )
        return "\n".join(lines)
