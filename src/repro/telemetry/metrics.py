"""Process-local counters, gauges and summary histograms.

Deliberately tiny: a campaign's hot loop is interpreted GPU code at
~1 µs/instruction, so metric updates must be a dict lookup plus an add —
no locks, no label sets, no export protocol.  :meth:`MetricsRegistry.snapshot`
returns plain dicts for manifests; :meth:`MetricsRegistry.render` prints
the aligned table the ``repro metrics`` CLI command shows.

Conventional metric names used across the stack:

* ``sim.launches`` / ``sim.instructions`` / ``sim.barrier_rounds`` /
  ``sim.hangs`` / ``sim.memory_faults`` — simulator counters;
* ``injections.total`` / ``injections.fast_path`` / ``injections.fallback``
  — CTA-sliced vs full-re-run split;
* ``outcome.masked|sdc|crash|hang`` — classification counts;
* ``prune.<stage>.sites_after`` / ``prune.<stage>.factor`` — gauges set by
  the progressive pruner;
* ``injection_s`` — histogram of per-injection wall-clock seconds.
"""

from __future__ import annotations

import math

#: Gauges that describe *per-process* resource levels (checkpoint-store
#: occupancy).  A naive last-write-wins merge of worker snapshots would
#: report one arbitrary worker's store instead of the fleet total, so
#: :meth:`MetricsRegistry.merge` sums these across workers — keeping a
#: ``name[worker]`` gauge per contributor and the plain ``name`` as the sum.
SUMMED_GAUGES = frozenset({
    "checkpoint.bytes",
    "checkpoint.entries",
    "checkpoint.evicted",
    "checkpoint.capture_s",
    "resync.memo_entries",
    "resync.memo_evicted",
    "resync.capture_s",
    "resync.captures",
})

#: Histograms whose per-worker shape matters for diagnosing pool health.
#: :meth:`MetricsRegistry.merge` keeps a scoped ``name[worker]`` copy per
#: contributor *in addition to* the combined ``name`` histogram, so
#: reports can show queue-wait skew across workers instead of one pooled
#: distribution that hides a straggler.
SCOPED_HISTOGRAMS = frozenset({
    "parallel.queue_wait_s",
})


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        self.value += n


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming summary stats (count/total/min/max/mean) of observations."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        if not self.count:
            return {"count": 0, "total": 0.0, "min": None, "max": None, "mean": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Named metrics, created on first use."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram()
        return metric

    def counter_value(self, name: str) -> int | float:
        """Current value of a counter, 0 if it was never incremented.

        Unlike :meth:`counter` this never *creates* the metric, so hot
        paths can poll deltas without polluting snapshots with
        zero-valued entries.
        """
        metric = self._counters.get(name)
        return metric.value if metric is not None else 0

    def merge(self, snapshot: dict, worker: str | None = None) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Used when parallel campaign workers ship their metrics back to
        the parent process: counters add, gauges take the incoming value
        (last-write-wins, same as a local ``set``), histograms combine
        count/total/min/max — exactly the stats a single registry would
        hold had it seen every observation itself.

        When ``worker`` is given, gauges in :data:`SUMMED_GAUGES` are
        tracked per contributor (``name[worker]``) and the plain ``name``
        gauge is maintained as the sum over contributors — e.g.
        ``checkpoint.bytes`` becomes fleet-total snapshot memory rather
        than whichever worker's chunk happened to merge last.  Histograms
        in :data:`SCOPED_HISTOGRAMS` additionally keep a per-contributor
        ``name[worker]`` copy alongside the combined stats.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            if worker is not None and name in SUMMED_GAUGES:
                self.gauge(f"{name}[{worker}]").set(value)
                prefix = f"{name}["
                self.gauge(name).set(
                    sum(
                        g.value
                        for n, g in self._gauges.items()
                        if n.startswith(prefix)
                    )
                )
            else:
                self.gauge(name).set(value)
        for name, summary in snapshot.get("histograms", {}).items():
            if not summary.get("count"):
                continue
            self._fold_histogram(name, summary)
            if worker is not None and name in SCOPED_HISTOGRAMS:
                self._fold_histogram(f"{name}[{worker}]", summary)

    def _fold_histogram(self, name: str, summary: dict) -> None:
        metric = self.histogram(name)
        metric.count += summary["count"]
        metric.total += summary["total"]
        if summary["min"] < metric.min:
            metric.min = summary["min"]
        if summary["max"] > metric.max:
            metric.max = summary["max"]

    def snapshot(self) -> dict:
        """Plain-dict view for manifests and JSON export."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
        }

    def render(self) -> str:
        """Aligned text table of every metric."""
        lines: list[str] = []
        if self._counters:
            lines.append("counters:")
            width = max(len(n) for n in self._counters)
            for name in sorted(self._counters):
                lines.append(f"  {name:{width}s} {self._counters[name].value:>14,}")
        if self._gauges:
            lines.append("gauges:")
            width = max(len(n) for n in self._gauges)
            for name in sorted(self._gauges):
                lines.append(f"  {name:{width}s} {self._gauges[name].value:>14,.3f}")
        if self._histograms:
            lines.append("histograms:")
            width = max(len(n) for n in self._histograms)
            for name in sorted(self._histograms):
                h = self._histograms[name]
                if h.count:
                    lines.append(
                        f"  {name:{width}s} n={h.count:<8d} "
                        f"mean={h.mean:.6f} min={h.min:.6f} max={h.max:.6f}"
                    )
                else:
                    lines.append(f"  {name:{width}s} n=0")
        return "\n".join(lines) if lines else "(no metrics recorded)"
