"""Stage 2 — instruction-wise pruning (paper Section III-C, Observation 3).

Representative threads picked by stage 1 often execute large identical
instruction subsequences (the SIMT common blocks of Fig. 5).  Faults in a
common block behave alike across the threads sharing it (Table V), so the
block is injected once — in a *donor* thread — and the other threads'
matching dynamic instructions are pruned, transferring their extrapolation
weight onto the donor's sites.

Matching is performed on the structural identity of the dynamic
instruction stream (:func:`repro.gpu.tracing.static_key_sequence`) with
``difflib.SequenceMatcher``, donor = the previously processed
representative with the highest match ratio.  Kernels whose
representatives share too little code (ratio below ``min_common_fraction``)
are left untouched, mirroring the paper's "not suitable /not applicable"
rows in Table VI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from difflib import SequenceMatcher

from ..gpu.program import Program
from ..gpu.tracing import ThreadTrace, static_key_sequence


@dataclass(frozen=True)
class BorrowedBlock:
    """A common block of ``size`` dynamic instructions.

    Thread ``thread``'s instructions [lo, lo+size) are pruned; outcomes are
    borrowed from donor's [donor_lo, donor_lo+size).
    """

    thread: int
    lo: int
    donor: int
    donor_lo: int
    size: int


@dataclass
class InstructionwisePruning:
    """Per-representative kept/borrowed partition of dynamic instructions."""

    kept: dict[int, list[tuple[int, int]]]  # thread -> [lo, hi) ranges kept
    borrowed: list[BorrowedBlock] = field(default_factory=list)
    applicable: bool = True

    def kept_indices(self, thread: int) -> list[int]:
        return [i for lo, hi in self.kept[thread] for i in range(lo, hi)]

    def pruned_dyn_count(self) -> int:
        return sum(b.size for b in self.borrowed)

    def common_fraction(self, traces: list[ThreadTrace]) -> float:
        """Fraction of representative dynamic instructions pruned."""
        total = sum(len(traces[t]) for t in self.kept)
        if total == 0:
            return 0.0
        return self.pruned_dyn_count() / total


#: Threads shorter than this may only be pruned against an *identical*
#: donor.  The paper excludes Gaussian K1/K2-style kernels from this stage
#: because a representative "with very few instructions (i.e., less than
#: 10)" shares only a prologue with the long thread — and a fault in a
#: shared prologue instruction behaves very differently when the
#: downstream control flow differs (an idle thread's corrupted index is
#: harmless; an active thread's corrupts its output address).
MIN_PARTIAL_ICNT = 10


def prune_instructions(
    program: Program,
    traces: list[ThreadTrace],
    representatives: list[int],
    min_common_fraction: float = 0.3,
    min_block: int = 4,
    min_partial_icnt: int = MIN_PARTIAL_ICNT,
) -> InstructionwisePruning:
    """Find common blocks among representatives and prune the copies.

    Args:
        representatives: global thread ids from stage 1.
        min_common_fraction: a thread is only pruned against a donor when
            at least this fraction of its instructions match — below it the
            kernel "does not exhibit instruction commonality" (Table VI).
        min_block: ignore matching runs shorter than this many dynamic
            instructions (tiny coincidental matches are not SIMT blocks).
        min_partial_icnt: threads shorter than this are only pruned when
            their *entire* sequence equals the donor's (paper Section
            III-C's "not applicable" rule for short representatives).
    """
    order = sorted(representatives, key=lambda t: len(traces[t]), reverse=True)
    keys = {t: static_key_sequence(program, traces[t]) for t in order}

    kept: dict[int, list[tuple[int, int]]] = {}
    borrowed: list[BorrowedBlock] = []
    donors: list[int] = []

    for thread in order:
        if not donors:
            kept[thread] = [(0, len(traces[thread]))]
            donors.append(thread)
            continue
        best_donor, best_blocks, best_matched = None, None, 0
        for donor in donors:
            matcher = SequenceMatcher(a=keys[donor], b=keys[thread], autojunk=False)
            blocks = [b for b in matcher.get_matching_blocks() if b.size >= min_block]
            matched = sum(b.size for b in blocks)
            if matched > best_matched:
                best_donor, best_blocks, best_matched = donor, blocks, matched
        own_len = len(traces[thread])
        identical = (
            best_donor is not None
            and best_matched == own_len == len(traces[best_donor])
        )
        partial_ok = (
            own_len >= min_partial_icnt
            and own_len > 0
            and best_matched / own_len >= min_common_fraction
        )
        if not identical and not partial_ok:
            kept[thread] = [(0, own_len)]
            donors.append(thread)
            continue
        # Prune matched ranges; keep the gaps.
        kept_ranges: list[tuple[int, int]] = []
        cursor = 0
        for block in best_blocks:
            if block.b > cursor:
                kept_ranges.append((cursor, block.b))
            borrowed.append(
                BorrowedBlock(
                    thread=thread,
                    lo=block.b,
                    donor=best_donor,
                    donor_lo=block.a,
                    size=block.size,
                )
            )
            cursor = block.b + block.size
        if cursor < own_len:
            kept_ranges.append((cursor, own_len))
        kept[thread] = kept_ranges
        donors.append(thread)

    applicable = bool(borrowed)
    return InstructionwisePruning(kept=kept, borrowed=borrowed, applicable=applicable)
