"""Adaptive loop-iteration sampling (paper Section III-D, closing remark).

The paper does not fix ``num_iter`` a priori: *"we randomly add iterations
one by one, until the result is stable"* (3-15 across kernels, mean 7.22).
:func:`stable_loop_iterations` automates that: it sweeps ``num_iter``
upward, estimating the kernel profile at each step over the pipeline's
pruned space, and stops when ``patience`` consecutive steps move the
distribution by less than ``epsilon`` percentage points.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..faults.injector import FaultInjector
from ..faults.outcome import ResilienceProfile
from .progressive import ProgressivePruner, PrunedSpace


@dataclass
class StabilitySweep:
    """Outcome of the adaptive search."""

    chosen_num_iter: int
    profiles: dict[int, ResilienceProfile] = field(default_factory=dict)
    spaces: dict[int, PrunedSpace] = field(default_factory=dict)

    @property
    def chosen_profile(self) -> ResilienceProfile:
        return self.profiles[self.chosen_num_iter]

    @property
    def chosen_space(self) -> PrunedSpace:
        return self.spaces[self.chosen_num_iter]

    def history(self) -> list[tuple[int, ResilienceProfile]]:
        return sorted(self.profiles.items())


def stable_loop_iterations(
    injector: FaultInjector,
    epsilon: float = 2.0,
    patience: int = 2,
    start: int = 1,
    max_iter: int = 15,
    pruner: ProgressivePruner | None = None,
) -> StabilitySweep:
    """Grow the loop sample until the estimated profile stabilises.

    Args:
        epsilon: maximum percentage-point movement (over masked/sdc/other)
            still considered "stable".
        patience: consecutive stable steps required before stopping.
        start / max_iter: sweep bounds (the paper observed 3-15).
        pruner: pipeline configuration to reuse; its ``num_loop_iters`` is
            overridden per step. Defaults to ``ProgressivePruner()``.
    """
    base = pruner if pruner is not None else ProgressivePruner()
    sweep = StabilitySweep(chosen_num_iter=max_iter)
    previous: ResilienceProfile | None = None
    stable_streak = 0

    for num_iter in range(start, max_iter + 1):
        step_pruner = ProgressivePruner(
            num_loop_iters=num_iter,
            n_bits=base.n_bits,
            cta_method=base.cta_method,
            min_common_fraction=base.min_common_fraction,
            enable_instructionwise=base.enable_instructionwise,
            enable_loopwise=True,
            enable_bitwise=base.enable_bitwise,
            pred_flags_masked=base.pred_flags_masked,
            seed=base.seed,
        )
        space = step_pruner.prune(injector)
        profile = space.estimate_profile(injector)
        sweep.spaces[num_iter] = space
        sweep.profiles[num_iter] = profile

        if previous is not None and profile.max_abs_error(previous) < epsilon:
            stable_streak += 1
            if stable_streak >= patience:
                sweep.chosen_num_iter = num_iter
                return sweep
        else:
            stable_streak = 0
        previous = profile

    sweep.chosen_num_iter = max(sweep.profiles)
    return sweep
