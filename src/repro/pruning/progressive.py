"""The four-stage progressive pruning pipeline (paper Section III, Fig. 1).

``ProgressivePruner`` chains thread-wise, instruction-wise, loop-wise and
bit-wise pruning into a :class:`PrunedSpace`: a list of weighted fault
sites whose exhaustive injection estimates the kernel's full resilience
profile.  Weights are conserved at every stage —

    sum(site weights) + statically-masked weight == exhaustive site count

— which is the invariant the property tests pin down.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..errors import PruningError
from ..faults.campaign import run_campaign
from ..faults.injector import FaultInjector
from ..faults.outcome import Outcome, ResilienceProfile
from ..faults.site import FaultSite
from ..telemetry import StageEvent, Telemetry
from .bitwise import BitPlan, plan_bits
from .instructionwise import InstructionwisePruning, prune_instructions
from .loopwise import LoopwisePruning, prune_loops
from .threadwise import ThreadwisePruning, prune_threads


@dataclass(frozen=True)
class WeightedSite:
    site: FaultSite
    weight: float


@dataclass(frozen=True)
class StageReport:
    """Fault sites remaining after one pruning stage (Fig. 10 bars)."""

    name: str
    sites_after: int


@dataclass
class PrunedSpace:
    """The final injection plan plus per-stage bookkeeping."""

    sites: list[WeightedSite]
    static_masked_weight: float
    stages: list[StageReport]
    threadwise: ThreadwisePruning
    instructionwise: InstructionwisePruning | None
    loopwise: LoopwisePruning | None
    total_sites: int

    @property
    def n_injections(self) -> int:
        return len(self.sites)

    def weight_total(self) -> float:
        return sum(ws.weight for ws in self.sites) + self.static_masked_weight

    def reduction_factor(self) -> float:
        if not self.sites:
            raise PruningError("empty pruned space")
        return self.total_sites / len(self.sites)

    def estimate_profile(
        self,
        injector: FaultInjector,
        telemetry: Telemetry | None = None,
        executor=None,
        progress=None,
        live=None,
        until_ci: float | None = None,
    ) -> ResilienceProfile:
        """Exhaustively inject the pruned space and extrapolate.

        ``telemetry``/``progress`` flow into the underlying campaign, so
        every weighted injection is observable like any other run;
        ``executor`` fans the weighted injections over worker processes
        (see :mod:`repro.parallel`) without changing the profile;
        ``live``/``until_ci`` attach the streaming plane and convergence
        signal.  The enumeration is weighted-exhaustive, so convergence
        is *reported* but never stops the campaign early.
        """
        result = run_campaign(
            injector,
            (ws.site for ws in self.sites),
            weights=(ws.weight for ws in self.sites),
            telemetry=telemetry,
            executor=executor,
            progress=progress,
            total=len(self.sites),
            keep_sites=False,
            label="pruned-estimate",
            live=live,
            until_ci=until_ci,
        )
        profile = result.profile
        if self.static_masked_weight:
            profile.add(Outcome.MASKED, self.static_masked_weight)
        return profile


@dataclass
class ProgressivePruner:
    """Configuration + entry point for the pipeline.

    Attributes:
        num_loop_iters: loop iterations sampled per loop (paper: 3-15,
            average 7.22; choose via the Fig. 6 stability sweep).
        n_bits: bit positions sampled per 32-bit destination (paper: 16).
        cta_method: CTA grouping key ("mean" per the paper, or
            "signature" for the stricter ablation variant).
        min_common_fraction: instruction-wise applicability threshold.
        enable_instructionwise / enable_loopwise / enable_bitwise: stage
            toggles, used by the ablation benches.
        seed: RNG seed for loop-iteration sampling.
    """

    num_loop_iters: int = 5
    n_bits: int = 16
    cta_method: str = "mean"
    min_common_fraction: float = 0.3
    enable_instructionwise: bool = True
    enable_loopwise: bool = True
    enable_bitwise: bool = True
    pred_flags_masked: bool = True
    seed: int = 2018

    def prune(
        self,
        injector: FaultInjector,
        telemetry: Telemetry | None = None,
        progress=None,
    ) -> PrunedSpace:
        """Run all enabled stages.

        ``telemetry`` (defaulting to the injector's) gets one span, one
        :class:`~repro.telemetry.StageEvent` and a pair of
        ``prune.<stage>.*`` gauges per stage; ``progress(done, total)``
        fires after each of the four stages.
        """
        traces = injector.traces
        program = injector.instance.program
        geometry = injector.instance.geometry
        rng = np.random.default_rng(self.seed)
        stages: list[StageReport] = []
        telemetry = telemetry if telemetry is not None else injector.telemetry
        n_stages = 4

        def finish_stage(name: str, sites_before: int, sites_after: int, t0: float):
            stages.append(StageReport(name, sites_after))
            if telemetry.enabled:
                telemetry.set_gauge(f"prune.{name}.sites_after", sites_after)
                if sites_after:
                    telemetry.set_gauge(
                        f"prune.{name}.factor", sites_before / sites_after
                    )
                telemetry.emit(
                    StageEvent(
                        time.time(),
                        stage=name,
                        sites_before=sites_before,
                        sites_after=sites_after,
                        duration_s=time.perf_counter() - t0,
                    )
                )
            if progress is not None:
                progress(len(stages), n_stages)
            return sites_after

        # ---- stage 1: thread-wise ---------------------------------------
        # Representatives are drawn randomly within each group, per the
        # paper ("we are able to randomly select one thread as the group
        # representative").  Deterministic picks of the first member bias
        # towards boundary-adjacent threads, whose flips cross the
        # active/idle boundary far more often than their group's.
        t0 = time.perf_counter()
        with telemetry.span("prune.thread-wise"):
            tw = prune_threads(traces, geometry, method=self.cta_method, rng=rng)
            # Injection units: (thread, dyn index) -> weight per bit.
            units: dict[tuple[int, int], float] = {}
            widths: dict[tuple[int, int], int] = {}
            for group in tw.thread_groups:
                rep = group.representative
                w = group.per_site_weight
                for dyn_index, (_pc, width) in enumerate(traces[rep]):
                    if width:
                        key = (rep, dyn_index)
                        units[key] = units.get(key, 0.0) + w
                        widths[key] = width
        remaining = finish_stage(
            "thread-wise", tw.total_sites, _site_count(units, widths), t0
        )

        # ---- stage 2: instruction-wise ----------------------------------
        iw = None
        t0 = time.perf_counter()
        with telemetry.span("prune.instruction-wise"):
            if self.enable_instructionwise:
                iw = prune_instructions(
                    program,
                    traces,
                    tw.representatives,
                    min_common_fraction=self.min_common_fraction,
                )
                for block in iw.borrowed:
                    for offset in range(block.size):
                        src = (block.thread, block.lo + offset)
                        dst = (block.donor, block.donor_lo + offset)
                        if src not in units:
                            continue
                        src_width = widths[src]
                        if dst in units and widths[dst] == src_width:
                            units[dst] += units.pop(src)
                        # else: donor slot was predicated off or absent — the
                        # borrower's copy stays and is injected directly.
        remaining = finish_stage(
            "instruction-wise", remaining, _site_count(units, widths), t0
        )

        # ---- stage 3: loop-wise -----------------------------------------
        lw = None
        t0 = time.perf_counter()
        with telemetry.span("prune.loop-wise"):
            if self.enable_loopwise:
                active_threads = sorted({t for t, _ in units})
                lw = prune_loops(
                    program, traces, active_threads, self.num_loop_iters, rng
                )
                surviving: dict[tuple[int, int], float] = {}
                for (thread, dyn_index), weight in units.items():
                    multiplier = lw.kept(thread).get(dyn_index)
                    if multiplier is None:
                        continue
                    surviving[(thread, dyn_index)] = weight * multiplier
                units = surviving
        remaining = finish_stage("loop-wise", remaining, _site_count(units, widths), t0)

        # ---- stage 4: bit-wise ------------------------------------------
        t0 = time.perf_counter()
        with telemetry.span("prune.bit-wise"):
            sites: list[WeightedSite] = []
            static_masked = 0.0
            plans: dict[int, BitPlan] = {}
            for (thread, dyn_index), weight in sorted(units.items()):
                width = widths[(thread, dyn_index)]
                if self.enable_bitwise:
                    plan = plans.get(width)
                    if plan is None:
                        plan = plan_bits(width, self.n_bits, self.pred_flags_masked)
                        plans[width] = plan
                    for bit in plan.kept_bits:
                        sites.append(
                            WeightedSite(
                                FaultSite(thread, dyn_index, bit),
                                weight * plan.weight_per_bit,
                            )
                        )
                    static_masked += weight * plan.static_masked_bits
                else:
                    for bit in range(width):
                        sites.append(
                            WeightedSite(FaultSite(thread, dyn_index, bit), weight)
                        )
        finish_stage("bit-wise", remaining, len(sites), t0)

        return PrunedSpace(
            sites=sites,
            static_masked_weight=static_masked,
            stages=stages,
            threadwise=tw,
            instructionwise=iw,
            loopwise=lw,
            total_sites=tw.total_sites,
        )


def _site_count(units: dict[tuple[int, int], float], widths: dict) -> int:
    """Injections still required if we stopped pruning here."""
    return sum(widths[key] for key in units)
