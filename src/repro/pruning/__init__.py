"""Progressive fault-site pruning — the paper's contribution."""

from .adaptive import StabilitySweep, stable_loop_iterations
from .bitwise import BitPlan, plan_bits, sampled_bit_positions
from .instructionwise import (
    BorrowedBlock,
    InstructionwisePruning,
    prune_instructions,
)
from .loopwise import (
    LoopwisePruning,
    StaticLoop,
    build_loop_tree,
    find_static_loops,
    iteration_spans,
    loop_statistics,
    prune_loops,
)
from .progressive import (
    ProgressivePruner,
    PrunedSpace,
    StageReport,
    WeightedSite,
)
from .report import ReductionRow, format_reduction_table, reduction_row
from .threadwise import CTAGroup, ThreadGroup, ThreadwisePruning, prune_threads

__all__ = [
    "BitPlan",
    "BorrowedBlock",
    "CTAGroup",
    "InstructionwisePruning",
    "LoopwisePruning",
    "ProgressivePruner",
    "PrunedSpace",
    "StabilitySweep",
    "ReductionRow",
    "StageReport",
    "StaticLoop",
    "ThreadGroup",
    "ThreadwisePruning",
    "WeightedSite",
    "build_loop_tree",
    "find_static_loops",
    "format_reduction_table",
    "iteration_spans",
    "loop_statistics",
    "plan_bits",
    "prune_instructions",
    "prune_loops",
    "prune_threads",
    "reduction_row",
    "sampled_bit_positions",
    "stable_loop_iterations",
]
