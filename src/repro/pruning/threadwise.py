"""Stage 1 — thread-wise pruning (paper Section III-B, Observations 1-2).

Two-level classification by dynamic instruction count (iCnt):

1. **CTA-wise**: CTAs are grouped by their per-thread iCnt statistics
   (the paper groups on the average thread iCnt per CTA — Fig. 3 /
   Tables III-IV).  One representative CTA is chosen per group.
2. **Thread-wise**: inside each representative CTA, threads are grouped
   by their exact iCnt; one representative thread per group.

Only the representative threads' fault sites survive; each carries the
total site weight of the population it stands for, so exhaustive injection
over representatives estimates the whole kernel's profile.

The paper shows the CTA step cannot be skipped: threads with equal iCnt in
*different* CTAs may execute different instructions (HotSpot, Gaussian
K2).  ``method="signature"`` offers a stricter grouping (exact iCnt
multiset) used by the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PruningError
from ..gpu.simulator import LaunchGeometry
from ..gpu.tracing import ThreadTrace
from ..stats.distributions import group_by_distance


@dataclass(frozen=True)
class CTAGroup:
    """CTAs indistinguishable under the grouping key."""

    key: tuple
    ctas: tuple[int, ...]
    representative: int
    mean_icnt: float


@dataclass(frozen=True)
class ThreadGroup:
    """Threads of one representative CTA sharing an exact iCnt."""

    cta_group: int  # index into ThreadwisePruning.cta_groups
    icnt: int
    threads: tuple[int, ...]  # global thread ids within the representative CTA
    representative: int  # global thread id
    site_weight: float  # exhaustive sites this group stands for
    rep_sites: int  # fault sites of the representative thread

    @property
    def per_site_weight(self) -> float:
        """Weight attached to each of the representative's sites."""
        if self.rep_sites == 0:
            return 0.0
        return self.site_weight / self.rep_sites


@dataclass
class ThreadwisePruning:
    """The outcome of stage 1."""

    cta_groups: list[CTAGroup]
    thread_groups: list[ThreadGroup]
    total_sites: int
    method: str

    @property
    def representatives(self) -> list[int]:
        return [g.representative for g in self.thread_groups]

    @property
    def sites_after(self) -> int:
        """Fault sites left for injection (Fig. 10's thread-wise bar)."""
        return sum(g.rep_sites for g in self.thread_groups)

    def weight_check(self) -> float:
        """Sum of group weights; must equal the exhaustive site count."""
        return sum(g.site_weight for g in self.thread_groups)


def _thread_sites(trace: ThreadTrace) -> int:
    return sum(w for _, w in trace)


def _group_ctas(
    cta_icnts: list[list[int]], method: str, mean_tolerance: float
) -> list[list[int]]:
    """Group CTA indices by the chosen key.

    ``mean`` (the paper's method) groups CTAs whose average thread iCnt
    lies within ``mean_tolerance`` of a group exemplar — the programmatic
    analogue of "these boxplots look the same" in Figs. 2-3.
    ``signature`` requires the exact iCnt multiset to match.
    """
    if method == "mean":
        means = [float(np.mean(icnts)) for icnts in cta_icnts]
        return group_by_distance(
            means, lambda a, b: abs(a - b), threshold=mean_tolerance
        )
    if method == "signature":
        by_key: dict[tuple, list[int]] = {}
        for cta, icnts in enumerate(cta_icnts):
            by_key.setdefault(tuple(sorted(icnts)), []).append(cta)
        return list(by_key.values())
    raise PruningError(f"unknown CTA grouping method {method!r}")


def prune_threads(
    traces: list[ThreadTrace],
    geometry: LaunchGeometry,
    method: str = "mean",
    mean_tolerance: float = 0.6,
    rng: np.random.Generator | None = None,
) -> ThreadwisePruning:
    """Run the two-level iCnt classification.

    Args:
        traces: golden per-thread traces (index = global thread id).
        method: CTA grouping key — ``"mean"`` (paper default) or
            ``"signature"`` (exact iCnt multiset).
        mean_tolerance: how close two CTAs' average iCnts must be to share
            a group under the ``mean`` method.
        rng: optional source of randomness for representative choice;
            ``None`` picks the first member (deterministic).
    """
    tpc = geometry.threads_per_cta
    if len(traces) != geometry.n_threads:
        raise PruningError("trace count does not match launch geometry")

    sites = [_thread_sites(t) for t in traces]
    total_sites = sum(sites)

    # ---- level 1: CTA groups --------------------------------------------
    cta_icnts: list[list[int]] = [
        [len(traces[cta * tpc + s]) for s in range(tpc)]
        for cta in range(geometry.n_ctas)
    ]
    cta_groups: list[CTAGroup] = []
    for ctas in _group_ctas(cta_icnts, method, mean_tolerance):
        rep = ctas[0] if rng is None else int(rng.choice(ctas))
        cta_groups.append(
            CTAGroup(
                key=(round(float(np.mean(cta_icnts[rep])), 3),),
                ctas=tuple(ctas),
                representative=rep,
                mean_icnt=float(np.mean(cta_icnts[rep])),
            )
        )
    cta_groups.sort(key=lambda g: g.ctas[0])

    # ---- level 2: thread groups inside each representative CTA ----------
    thread_groups: list[ThreadGroup] = []
    for gid, cgroup in enumerate(cta_groups):
        rep_cta = cgroup.representative
        group_total_sites = sum(
            sites[cta * tpc + s] for cta in cgroup.ctas for s in range(tpc)
        )
        rep_cta_sites = sum(sites[rep_cta * tpc + s] for s in range(tpc))
        by_icnt: dict[int, list[int]] = {}
        for slot in range(tpc):
            thread = rep_cta * tpc + slot
            by_icnt.setdefault(len(traces[thread]), []).append(thread)
        for icnt in sorted(by_icnt):
            members = by_icnt[icnt]
            rep = members[0] if rng is None else int(rng.choice(members))
            members_sites = sum(sites[t] for t in members)
            if rep_cta_sites == 0:
                share = 0.0
            else:
                share = members_sites / rep_cta_sites
            thread_groups.append(
                ThreadGroup(
                    cta_group=gid,
                    icnt=icnt,
                    threads=tuple(members),
                    representative=rep,
                    site_weight=share * group_total_sites,
                    rep_sites=sites[rep],
                )
            )

    return ThreadwisePruning(
        cta_groups=cta_groups,
        thread_groups=thread_groups,
        total_sites=total_sites,
        method=method,
    )
