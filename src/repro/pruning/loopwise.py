"""Stage 3 — loop-wise pruning (paper Section III-D, Observation 4).

Most dynamic instructions of the loop-heavy kernels come from loop
iterations (Table VII).  The stage:

1. finds static loops by back-edge analysis of the program (a ``bra``
   whose target label is at or before the branch itself; the target is the
   loop header);
2. segments each thread's dynamic trace into iterations (spans between
   consecutive executions of the header pc), recursively for nested loops;
3. randomly samples ``num_iter`` iterations per loop and prunes the rest,
   scaling the kept iterations' site weights by ``total/kept`` so the loop
   keeps its full contribution to the estimated profile.

The sampled-iteration stability sweep of Fig. 6 is
:func:`iteration_stability_sweep` in :mod:`repro.analysis.loops` territory;
here live the mechanics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpu.program import Program
from ..gpu.tracing import ThreadTrace


@dataclass(frozen=True)
class StaticLoop:
    """A static loop: body spans instruction indices [header, backedge]."""

    header: int
    backedge: int

    def contains(self, other: "StaticLoop") -> bool:
        return (
            self.header <= other.header
            and other.backedge <= self.backedge
            and self != other
        )

    def covers_pc(self, pc: int) -> bool:
        return self.header <= pc <= self.backedge


@dataclass
class LoopTree:
    """Loops nested under a parent (root uses ``loop=None``)."""

    loop: StaticLoop | None
    children: list["LoopTree"] = field(default_factory=list)


def find_static_loops(program: Program) -> list[StaticLoop]:
    """Back-edge analysis: every ``bra`` targeting itself or earlier."""
    loops = []
    for index, insn in enumerate(program.instructions):
        if insn.op == "bra":
            target = program.target_index(insn.target)
            if target <= index:
                loops.append(StaticLoop(header=target, backedge=index))
    return loops


def build_loop_tree(program: Program) -> LoopTree:
    loops = sorted(find_static_loops(program), key=lambda l: (l.header, -l.backedge))
    root = LoopTree(loop=None)
    stack = [root]
    for loop in loops:
        while (
            stack[-1].loop is not None
            and not stack[-1].loop.contains(loop)
        ):
            stack.pop()
        node = LoopTree(loop=loop)
        stack[-1].children.append(node)
        stack.append(node)
    return root


@dataclass
class IterationSpan:
    """One dynamic iteration of a loop in one thread's trace: [lo, hi)."""

    lo: int
    hi: int


def iteration_spans(
    trace: ThreadTrace, loop: StaticLoop, lo: int, hi: int
) -> list[IterationSpan]:
    """Iterations of ``loop`` inside the dynamic range [lo, hi).

    An iteration runs from one execution of the header pc to the next.
    The final header execution (the failing exit check) is not an
    iteration; its few instructions stay un-pruned.
    """
    header_hits = [
        i for i in range(lo, hi) if trace[i][0] == loop.header
    ]
    return [
        IterationSpan(a, b) for a, b in zip(header_hits, header_hits[1:])
    ]


@dataclass
class LoopwisePruning:
    """Per-thread kept dynamic indices with extrapolation multipliers."""

    multipliers: dict[int, dict[int, float]]  # thread -> dyn index -> factor
    loop_iteration_counts: dict[int, dict[StaticLoop, int]]  # thread -> totals

    def kept(self, thread: int) -> dict[int, float]:
        return self.multipliers[thread]


def prune_loops(
    program: Program,
    traces: list[ThreadTrace],
    threads: list[int],
    num_iter: int,
    rng: np.random.Generator,
) -> LoopwisePruning:
    """Sample ``num_iter`` iterations of every loop in every given thread."""
    tree = build_loop_tree(program)
    multipliers: dict[int, dict[int, float]] = {}
    totals: dict[int, dict[StaticLoop, int]] = {}

    for thread in threads:
        trace = traces[thread]
        kept: dict[int, float] = {}
        counts: dict[StaticLoop, int] = {}
        _sample_range(trace, tree, 0, len(trace), 1.0, num_iter, rng, kept, counts)
        multipliers[thread] = kept
        totals[thread] = counts
    return LoopwisePruning(multipliers=multipliers, loop_iteration_counts=totals)


def _sample_range(
    trace: ThreadTrace,
    node: LoopTree,
    lo: int,
    hi: int,
    factor: float,
    num_iter: int,
    rng: np.random.Generator,
    kept: dict[int, float],
    counts: dict[StaticLoop, int],
) -> None:
    """Keep sites in [lo, hi); recurse into child loops, sampling spans."""
    covered: list[tuple[int, int]] = []
    for child in node.children:
        loop = child.loop
        spans = iteration_spans(trace, loop, lo, hi)
        if not spans:
            continue
        counts[loop] = counts.get(loop, 0) + len(spans)
        covered.extend((s.lo, s.hi) for s in spans)
        n_keep = min(num_iter, len(spans))
        chosen = rng.choice(len(spans), size=n_keep, replace=False)
        multiplier = factor * len(spans) / n_keep
        for index in sorted(int(i) for i in chosen):
            span = spans[index]
            _sample_range(
                trace, child, span.lo, span.hi, multiplier, num_iter, rng, kept, counts
            )
    # Everything in [lo, hi) not inside a child-loop iteration is kept as-is.
    covered.sort()
    cursor = lo
    for c_lo, c_hi in covered:
        for i in range(cursor, c_lo):
            kept[i] = factor
        cursor = max(cursor, c_hi)
    for i in range(cursor, hi):
        kept[i] = factor


def loop_statistics(
    program: Program, traces: list[ThreadTrace]
) -> tuple[int, float]:
    """Table VII per-kernel numbers: (#loop iterations, % insns in loops).

    Iteration count follows the paper's convention of the maximum per-thread
    flattened iteration total; the instruction share is over all threads.
    """
    tree = build_loop_tree(program)
    if not tree.children:
        return 0, 0.0
    max_iters = 0
    in_loop = 0
    total = 0
    top_loops = [child.loop for child in tree.children]
    all_loops = find_static_loops(program)
    for trace in traces:
        total += len(trace)
        thread_iters = 0
        for loop in all_loops:
            spans = iteration_spans(trace, loop, 0, len(trace))
            thread_iters += len(spans)
        max_iters = max(max_iters, thread_iters)
        for loop in top_loops:
            for span in iteration_spans(trace, loop, 0, len(trace)):
                in_loop += span.hi - span.lo
    share = 100.0 * in_loop / total if total else 0.0
    return max_iters, share
