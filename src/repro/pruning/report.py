"""Reduction reporting (the data behind Fig. 10)."""

from __future__ import annotations

import math
from dataclasses import dataclass

from .progressive import PrunedSpace


@dataclass(frozen=True)
class ReductionRow:
    """One kernel's Fig. 10 bar group."""

    kernel: str
    exhaustive: int
    after_threadwise: int
    after_instructionwise: int
    after_loopwise: int
    after_bitwise: int
    baseline_runs: int

    @property
    def normalized(self) -> dict[str, float]:
        return {
            "thread-wise": self.after_threadwise / self.exhaustive,
            "+insn-wise": self.after_instructionwise / self.exhaustive,
            "+loop-wise": self.after_loopwise / self.exhaustive,
            "+bit-wise": self.after_bitwise / self.exhaustive,
        }

    @property
    def orders_of_magnitude(self) -> float:
        """Total reduction, in powers of ten (the paper's headline metric)."""
        return math.log10(self.exhaustive / max(self.after_bitwise, 1))


def reduction_row(kernel: str, space: PrunedSpace, baseline_runs: int) -> ReductionRow:
    by_name = {s.name: s.sites_after for s in space.stages}
    return ReductionRow(
        kernel=kernel,
        exhaustive=space.total_sites,
        after_threadwise=by_name["thread-wise"],
        after_instructionwise=by_name["instruction-wise"],
        after_loopwise=by_name["loop-wise"],
        after_bitwise=by_name["bit-wise"],
        baseline_runs=baseline_runs,
    )


def format_reduction_table(rows: list[ReductionRow]) -> str:
    header = (
        f"{'kernel':16s} {'exhaustive':>12s} {'thread':>10s} {'+insn':>10s} "
        f"{'+loop':>10s} {'+bit':>8s} {'baseline':>9s} {'log10 red.':>10s}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.kernel:16s} {row.exhaustive:12d} {row.after_threadwise:10d} "
            f"{row.after_instructionwise:10d} {row.after_loopwise:10d} "
            f"{row.after_bitwise:8d} {row.baseline_runs:9d} "
            f"{row.orders_of_magnitude:10.2f}"
        )
    return "\n".join(lines)
