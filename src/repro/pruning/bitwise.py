"""Stage 4 — bit-wise pruning (paper Section III-E, Observation 5).

Destination-register bit positions are sampled at equal intervals —
``n_bits`` of them per register (the paper finds 16 of 32 preserves the
outcome distribution, Fig. 8).  For a 32-bit register and 8 samples the
positions are {3, 7, 11, 15, 19, 23, 27, 31}, exactly the paper's rule.

Predicate destinations are the PTXPlus 4-bit condition code.  Only the
zero flag feeds branch guards in these workloads, so the sign/carry/
overflow bits are pruned and statically accounted as masked (Fig. 7's
".pred" panels show the three upper bits produce only masked outputs).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PruningError


def sampled_bit_positions(width: int, n_bits: int) -> list[int]:
    """Equally spaced bit positions, highest bit always included."""
    if n_bits <= 0:
        raise PruningError("n_bits must be positive")
    if n_bits >= width:
        return list(range(width))
    step = width // n_bits
    positions = [step - 1 + i * step for i in range(n_bits)]
    return [p for p in positions if p < width]


@dataclass(frozen=True)
class BitPlan:
    """Which bits of a ``width``-wide destination to inject, and weights."""

    width: int
    kept_bits: tuple[int, ...]
    weight_per_bit: float  # exhaustive bits each kept bit stands for
    static_masked_bits: int  # bits pruned as provably masked (pred flags)


def plan_bits(width: int, n_bits: int, pred_flags_masked: bool = True) -> BitPlan:
    """Build the sampling plan for one destination register width."""
    if width == 4 and pred_flags_masked:
        # Predicate condition code: inject the zero flag, account the
        # sign/carry/overflow flags as masked.
        return BitPlan(width=4, kept_bits=(0,), weight_per_bit=1.0, static_masked_bits=3)
    kept = tuple(sampled_bit_positions(width, n_bits))
    return BitPlan(
        width=width,
        kept_bits=kept,
        weight_per_bit=width / len(kept),
        static_masked_bits=0,
    )
