"""Confidence intervals for outcome proportions."""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ReproError
from .sampling import z_score


@dataclass(frozen=True)
class ProportionCI:
    """A proportion estimate with its symmetric normal-approximation CI."""

    estimate: float
    low: float
    high: float
    confidence: float

    @property
    def half_width(self) -> float:
        return (self.high - self.low) / 2.0

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def proportion_ci(successes: float, n: float, confidence: float = 0.95) -> ProportionCI:
    """Wald interval, clipped to [0, 1] — what the sizing equations assume."""
    if n <= 0:
        raise ReproError("need at least one observation")
    p = successes / n
    half = z_score(confidence) * math.sqrt(max(p * (1.0 - p), 0.0) / n)
    return ProportionCI(
        estimate=p,
        low=max(0.0, p - half),
        high=min(1.0, p + half),
        confidence=confidence,
    )


def wilson_ci(successes: float, n: float, confidence: float = 0.95) -> ProportionCI:
    """Wilson score interval — better behaved near 0/1, used in reports."""
    if n <= 0:
        raise ReproError("need at least one observation")
    z = z_score(confidence)
    p = successes / n
    z2 = z * z
    denom = 1.0 + z2 / n
    centre = (p + z2 / (2.0 * n)) / denom
    half = (z / denom) * math.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n))
    return ProportionCI(
        estimate=p,
        low=max(0.0, centre - half),
        high=min(1.0, centre + half),
        confidence=confidence,
    )
