"""Statistical fault-injection sample sizing (paper Section II-D).

Implements Leveugle et al.'s equations as used by the paper:

* Eq. 2 — finite-population sample size for estimating the masked-output
  fraction ``p`` with error margin ``e`` at a given confidence;
* Eq. 3 — the infinite-population limit;
* Eq. 4 — the worst case over ``p`` (``p = 0.5``), the number the paper's
  60K-run ground-truth campaigns come from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ReproError

#: Two-sided normal quantiles for the confidence levels the paper uses.
#: (The paper's t-statistic; with n in the hundreds the normal quantile
#: is the appropriate limit.)
_Z_BY_CONFIDENCE = {
    0.90: 1.6449,
    0.95: 1.9600,
    0.98: 2.3263,
    0.99: 2.5758,
    0.995: 2.8070,
    0.998: 3.0902,
    0.999: 3.2905,
}


def z_score(confidence: float) -> float:
    """Two-sided normal quantile for a confidence level in (0, 1)."""
    if confidence in _Z_BY_CONFIDENCE:
        return _Z_BY_CONFIDENCE[confidence]
    if not 0.0 < confidence < 1.0:
        raise ReproError(f"confidence {confidence} outside (0, 1)")
    # Rational approximation (Beasley-Springer-Moro) of the normal inverse
    # CDF, accurate to ~1e-9 — enough for sample sizing.
    return _inverse_normal_cdf(0.5 + confidence / 2.0)


def _inverse_normal_cdf(q: float) -> float:
    a = (
        -3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
        1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00,
    )
    b = (
        -5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
        6.680131188771972e01, -1.328068155288572e01,
    )
    c = (
        -7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
        -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00,
    )
    d = (
        7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
        3.754408661907416e00,
    )
    p_low = 0.02425
    if q < p_low:
        u = math.sqrt(-2.0 * math.log(q))
        return (((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) / (
            (((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0
        )
    if q > 1.0 - p_low:
        return -_inverse_normal_cdf(1.0 - q)
    u = q - 0.5
    t = u * u
    return (
        (((((a[0] * t + a[1]) * t + a[2]) * t + a[3]) * t + a[4]) * t + a[5])
        * u
        / (((((b[0] * t + b[1]) * t + b[2]) * t + b[3]) * t + b[4]) * t + 1.0)
    )


def sample_size_finite(
    population: int, error_margin: float, confidence: float, p: float = 0.5
) -> int:
    """Eq. 2: required injections for a finite fault-site population."""
    if population <= 0:
        raise ReproError("population must be positive")
    _check_margin(error_margin)
    z = z_score(confidence)
    denominator = 1.0 + error_margin**2 * (population - 1) / (z**2 * p * (1.0 - p))
    return math.ceil(population / denominator)


def sample_size_infinite(error_margin: float, confidence: float, p: float = 0.5) -> int:
    """Eq. 3: the infinite-population limit of Eq. 2."""
    _check_margin(error_margin)
    z = z_score(confidence)
    return math.ceil(z**2 * p * (1.0 - p) / error_margin**2)


def sample_size_worst_case(error_margin: float, confidence: float) -> int:
    """Eq. 4: maximise over the unknown p (p = 0.5) -> n = t^2 / (4 e^2)."""
    _check_margin(error_margin)
    z = z_score(confidence)
    return math.ceil(z**2 / (4.0 * error_margin**2))


def _check_margin(error_margin: float) -> None:
    if not 0.0 < error_margin < 1.0:
        raise ReproError(f"error margin {error_margin} outside (0, 1)")


@dataclass(frozen=True)
class BaselinePlan:
    """A (confidence, error margin) baseline campaign plan for one kernel."""

    population: int
    confidence: float
    error_margin: float

    @property
    def n_runs(self) -> int:
        n_inf = sample_size_worst_case(self.error_margin, self.confidence)
        if n_inf >= self.population:
            return self.population
        return min(
            n_inf,
            sample_size_finite(self.population, self.error_margin, self.confidence),
        )

    def estimated_time(self, seconds_per_run: float) -> float:
        return self.n_runs * seconds_per_run


#: The paper's two reference settings (Table II).
PAPER_GROUND_TRUTH = (0.998, 0.0063)  # -> ~60K runs
PAPER_QUICK = (0.95, 0.03)  # -> ~1K runs
