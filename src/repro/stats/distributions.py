"""Distribution summaries used for CTA/thread grouping (Figs. 2-4).

The paper groups CTAs by the *shape* of a per-CTA distribution — first of
masked-output percentages (Fig. 2), then of thread iCnts (Fig. 3) — read
off boxplots.  :class:`BoxStats` captures those salient points and
:func:`box_distance` gives the dissimilarity the grouping algorithms
cluster on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError


@dataclass(frozen=True)
class BoxStats:
    """Boxplot summary: quartiles, whisker ends, mean."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float

    @classmethod
    def from_values(cls, values) -> "BoxStats":
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            raise ReproError("cannot summarise an empty sample")
        q1, median, q3 = np.percentile(arr, [25, 50, 75])
        return cls(
            minimum=float(arr.min()),
            q1=float(q1),
            median=float(median),
            q3=float(q3),
            maximum=float(arr.max()),
            mean=float(arr.mean()),
        )

    def as_tuple(self) -> tuple[float, ...]:
        return (self.minimum, self.q1, self.median, self.q3, self.maximum, self.mean)


def box_distance(a: BoxStats, b: BoxStats) -> float:
    """Max absolute gap across the boxplot's salient points."""
    return max(abs(x - y) for x, y in zip(a.as_tuple(), b.as_tuple()))


def box_core_distance(a: BoxStats, b: BoxStats) -> float:
    """Max absolute gap across quartiles and mean, ignoring the whiskers.

    Min/max are dominated by a handful of outlier threads, while the
    paper's by-eye grouping of Figs. 2-3 keys on the box body; this is the
    distance the CTA-grouping analytics use.
    """
    core = lambda s: (s.q1, s.median, s.q3, s.mean)  # noqa: E731
    return max(abs(x - y) for x, y in zip(core(a), core(b)))


def group_by_distance(items: list, distance, threshold: float) -> list[list[int]]:
    """Greedy single-link grouping: an item joins the first group whose
    exemplar is within ``threshold``; otherwise it founds a new group.

    Deterministic given item order — matching how the paper assigns CTAs
    to groups by comparing boxplot shapes.
    Returns groups as lists of item indices, in first-seen order.
    """
    groups: list[list[int]] = []
    exemplars: list = []
    for index, item in enumerate(items):
        for gid, exemplar in enumerate(exemplars):
            if distance(item, exemplar) <= threshold:
                groups[gid].append(index)
                break
        else:
            groups.append([index])
            exemplars.append(item)
    return groups


def histogram_signature(values, decimals: int = 6) -> tuple:
    """An exact multiset signature (value -> count), for exact grouping."""
    arr = np.asarray(list(values), dtype=float).round(decimals)
    unique, counts = np.unique(arr, return_counts=True)
    return tuple(zip(unique.tolist(), counts.tolist()))
