"""Statistical machinery: sample sizing (Eqs. 2-4), CIs, grouping stats."""

from .distributions import (
    BoxStats,
    box_core_distance,
    box_distance,
    group_by_distance,
    histogram_signature,
)
from .intervals import ProportionCI, proportion_ci, wilson_ci
from .sampling import (
    PAPER_GROUND_TRUTH,
    PAPER_QUICK,
    BaselinePlan,
    sample_size_finite,
    sample_size_infinite,
    sample_size_worst_case,
    z_score,
)

__all__ = [
    "PAPER_GROUND_TRUTH",
    "PAPER_QUICK",
    "BaselinePlan",
    "BoxStats",
    "ProportionCI",
    "box_core_distance",
    "box_distance",
    "group_by_distance",
    "histogram_signature",
    "proportion_ci",
    "sample_size_finite",
    "sample_size_infinite",
    "sample_size_worst_case",
    "wilson_ci",
    "z_score",
]
