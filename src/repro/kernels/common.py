"""Shared emit patterns and input-generation helpers for the workloads."""

from __future__ import annotations

import numpy as np

from ..gpu import KernelBuilder, Reg


def emit_global_tid_x(k: KernelBuilder, dest: Reg, scratch: Reg) -> None:
    """dest = ctaid.x * ntid.x + tid.x (the canonical 1-D global index)."""
    k.cvt("u32", dest, k.ctaid.x)
    k.cvt("u32", scratch, k.ntid.x)
    k.mul("u32", dest, dest, scratch)
    k.cvt("u32", scratch, k.tid.x)
    k.add("u32", dest, dest, scratch)


def emit_global_xy(
    k: KernelBuilder, dest_x: Reg, dest_y: Reg, scratch: Reg
) -> None:
    """2-D global coordinates (x from ctaid.x/tid.x, y from ctaid.y/tid.y)."""
    k.cvt("u32", dest_x, k.ctaid.x)
    k.cvt("u32", scratch, k.ntid.x)
    k.mul("u32", dest_x, dest_x, scratch)
    k.cvt("u32", scratch, k.tid.x)
    k.add("u32", dest_x, dest_x, scratch)
    k.cvt("u32", dest_y, k.ctaid.y)
    k.cvt("u32", scratch, k.ntid.y)
    k.mul("u32", dest_y, dest_y, scratch)
    k.cvt("u32", scratch, k.tid.y)
    k.add("u32", dest_y, dest_y, scratch)


def emit_row_major_addr(
    k: KernelBuilder,
    dest: Reg,
    row: Reg,
    col: Reg | int,
    ncols: int,
    base_param,
    scratch: Reg,
) -> None:
    """dest = base + 4 * (row * ncols + col) for a row-major f32/u32 matrix."""
    k.mul("u32", dest, row, ncols)
    k.add("u32", dest, dest, col)
    k.shl("u32", dest, dest, 2)
    k.ld("u32", scratch, base_param)
    k.add("u32", dest, dest, scratch)


def f32(value) -> np.float32:
    return np.float32(value)


def f32_add(a, b) -> np.float32:
    """Bit-exact mirror of the simulator's f32 add (double op, one rounding)."""
    return np.float32(float(a) + float(b))


def f32_sub(a, b) -> np.float32:
    return np.float32(float(a) - float(b))


def f32_mul(a, b) -> np.float32:
    return np.float32(float(a) * float(b))


def f32_div(a, b) -> np.float32:
    return np.float32(float(a) / float(b))


def f32_mad(a, b, c) -> np.float32:
    """Non-fused multiply-add, matching :func:`repro.gpu.alu._exec_mad`."""
    return f32_add(f32_mul(a, b), c)


def float_inputs(rng: np.random.Generator, shape, lo=0.1, hi=1.0) -> np.ndarray:
    """Deterministic, well-conditioned f32 inputs.

    Values are rounded to a coarse grid so that reference computations in
    float64 NumPy, when cast to f32, agree bit-exactly with the simulator's
    f32 arithmetic on short dependence chains.
    """
    values = rng.uniform(lo, hi, size=shape)
    return np.round(values, 3).astype(np.float32)
