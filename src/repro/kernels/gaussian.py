"""Gaussian Elimination — Rodinia ``Fan1``/``Fan2`` at two pivot steps.

``Fan1`` (1-D) computes the multiplier column for pivot step ``t``;
``Fan2`` (2-D) applies the row updates.  The paper injects into the first
dynamic invocation (K1/K2, step 0) and a late one (K125/K126), where far
fewer threads are active — the thread-group mix shifts accordingly, which
is exactly what thread-wise pruning must track.

Scaling: paper runs a 512-point system; ours is 24x24, with the late
invocation at pivot step 20 (kernel ids keep the paper's K125/K126 names).
"""

from __future__ import annotations

import numpy as np

from ..gpu import GPUSimulator, KernelBuilder, LaunchGeometry, pack_params
from .common import emit_global_tid_x, emit_global_xy, f32_div, f32_mul, f32_sub, float_inputs
from .registry import KernelInstance, KernelSpec, OutputBuffer, register

SIZE = 24
FAN1_BLOCK = (16, 1)
FAN1_GRID = (2, 1)
FAN2_BLOCK = (4, 4)
FAN2_GRID = (SIZE // 4, SIZE // 4)
LATE_STEP = 20
SEED = 0x6755


def build_fan1(step: int) -> KernelBuilder:
    k = KernelBuilder(f"Fan1_t{step}")
    m_ptr, a_ptr, size_p = k.params("m", "a", "size")
    r = k.regs("gid", "t", "row", "addr", "base_a", "pivot", "val")

    emit_global_tid_x(k, r.gid, r.t)
    # if gid >= size - 1 - t: return
    with k.if_lt("u32", r.gid, SIZE - 1 - step):
        # row = gid + 1 + t; element (row, t) of both a and m.
        k.add("u32", r.row, r.gid, 1 + step)
        k.mul("u32", r.addr, r.row, SIZE)
        k.add("u32", r.addr, r.addr, step)
        k.shl("u32", r.addr, r.addr, 2)
        k.ld("u32", r.base_a, a_ptr)
        k.add("u32", r.base_a, r.base_a, r.addr)
        k.ld("f32", r.val, k.global_ref(r.base_a))
        # pivot = a[t][t]
        k.ld("u32", r.t, a_ptr)
        k.ld("f32", r.pivot, k.global_ref(r.t, 4 * (step * SIZE + step)))
        k.div("f32", r.val, r.val, r.pivot)
        k.ld("u32", r.t, m_ptr)
        k.add("u32", r.addr, r.addr, r.t)
        k.st("f32", k.global_ref(r.addr), r.val)
    k.retp()
    return k


def build_fan2(step: int) -> KernelBuilder:
    k = KernelBuilder(f"Fan2_t{step}")
    m_ptr, a_ptr, b_ptr, size_p = k.params("m", "a", "b", "size")
    r = k.regs(
        "xidx", "yidx", "t", "row", "addr", "mult", "av", "pv", "addr_b", "bv"
    )
    p = k.pred("p0")

    emit_global_xy(k, r.xidx, r.yidx, r.t)
    done = k.fresh_label()
    k.set("ge", "u32", p, r.xidx, SIZE - 1 - step)
    k.bra(done, guard=(p, "eq"))
    k.set("ge", "u32", p, r.yidx, SIZE - step)
    k.bra(done, guard=(p, "eq"))

    # row = xidx + 1 + t; mult = m[row][t]
    k.add("u32", r.row, r.xidx, 1 + step)
    k.mul("u32", r.addr, r.row, SIZE)
    k.add("u32", r.addr, r.addr, step)
    k.shl("u32", r.addr, r.addr, 2)
    k.ld("u32", r.t, m_ptr)
    k.add("u32", r.addr, r.addr, r.t)
    k.ld("f32", r.mult, k.global_ref(r.addr))

    # a[row][yidx + t] -= mult * a[t][yidx + t]  (Rodinia's +t column offset)
    k.mul("u32", r.addr, r.row, SIZE)
    k.add("u32", r.addr, r.addr, r.yidx)
    k.shl("u32", r.addr, r.addr, 2)
    k.ld("u32", r.t, a_ptr)
    k.add("u32", r.addr, r.addr, r.t)
    k.ld("f32", r.av, k.global_ref(r.addr, 4 * step))
    # pv = a[t][yidx + t]
    k.shl("u32", r.t, r.yidx, 2)
    k.ld("u32", r.addr_b, a_ptr)
    k.add("u32", r.t, r.t, r.addr_b)
    k.ld("f32", r.pv, k.global_ref(r.t, 4 * (step * SIZE + step)))
    k.mul("f32", r.pv, r.mult, r.pv)
    k.sub("f32", r.av, r.av, r.pv)
    k.st("f32", k.global_ref(r.addr, 4 * step), r.av)

    # if yidx == 0: b[row] -= mult * b[t]
    skip = k.fresh_label()
    k.set("eq", "u32", p, r.yidx, 0)
    k.bra(skip, guard=(p, "ne"))
    k.ld("u32", r.addr_b, b_ptr)
    k.ld("f32", r.bv, k.global_ref(r.addr_b, 4 * step))
    k.mul("f32", r.bv, r.mult, r.bv)
    k.shl("u32", r.t, r.row, 2)
    k.add("u32", r.addr_b, r.addr_b, r.t)
    k.ld("f32", r.av, k.global_ref(r.addr_b))
    k.sub("f32", r.av, r.av, r.bv)
    k.st("f32", k.global_ref(r.addr_b), r.av)
    k.label(skip)
    k.nop()

    k.label(done)
    k.retp()
    return k


def fan1_reference(a: np.ndarray, m: np.ndarray, step: int) -> np.ndarray:
    out = m.copy()
    for gid in range(SIZE - 1 - step):
        row = gid + 1 + step
        out[row, step] = f32_div(a[row, step], a[step, step])
    return out


def fan2_reference(
    a: np.ndarray, b: np.ndarray, m: np.ndarray, step: int
) -> tuple[np.ndarray, np.ndarray]:
    out_a = a.copy()
    out_b = b.copy()
    for xidx in range(SIZE - 1 - step):
        row = xidx + 1 + step
        mult = m[row, step]
        for yidx in range(SIZE - step):
            col = yidx + step
            out_a[row, col] = f32_sub(a[row, col], f32_mul(mult, a[step, col]))
        out_b[row] = f32_sub(b[row], f32_mul(mult, b[step]))
    return out_a, out_b


def _stage_state(step: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """System state after ``step`` completed pivot rounds (Fan1 + Fan2)."""
    rng = np.random.default_rng(SEED)
    a = float_inputs(rng, (SIZE, SIZE), lo=0.5, hi=2.0)
    a += np.eye(SIZE, dtype=np.float32) * np.float32(SIZE)  # diagonally dominant
    b = float_inputs(rng, SIZE)
    m = np.zeros((SIZE, SIZE), dtype=np.float32)
    for t in range(step):
        m = fan1_reference(a, m, t)
        a, b = fan2_reference(a, b, m, t)
    return a, b, m


def _build_fan1_instance(step: int) -> KernelInstance:
    k = build_fan1(step)
    program = k.build()
    a, _b, m = _stage_state(step)

    sim = GPUSimulator()
    m_addr = sim.alloc_array(m)
    a_addr = sim.alloc_array(a)
    params = pack_params(k.param_layout, {"m": m_addr, "a": a_addr, "size": SIZE})
    return KernelInstance(
        spec=None,
        program=program,
        geometry=LaunchGeometry(grid=FAN1_GRID, block=FAN1_BLOCK),
        param_bytes=params,
        initial_memory=sim.memory,
        outputs=(OutputBuffer("m", m_addr, np.dtype(np.float32), SIZE * SIZE),),
        reference={"m": fan1_reference(a, m, step)},
    )


def _build_fan2_instance(step: int) -> KernelInstance:
    k = build_fan2(step)
    program = k.build()
    a, b, m = _stage_state(step)
    m = fan1_reference(a, m, step)  # Fan2 runs after the same step's Fan1

    sim = GPUSimulator()
    m_addr = sim.alloc_array(m)
    a_addr = sim.alloc_array(a)
    b_addr = sim.alloc_array(b)
    params = pack_params(
        k.param_layout, {"m": m_addr, "a": a_addr, "b": b_addr, "size": SIZE}
    )
    ref_a, ref_b = fan2_reference(a, b, m, step)
    return KernelInstance(
        spec=None,
        program=program,
        geometry=LaunchGeometry(grid=FAN2_GRID, block=FAN2_BLOCK),
        param_bytes=params,
        initial_memory=sim.memory,
        outputs=(
            OutputBuffer("a", a_addr, np.dtype(np.float32), SIZE * SIZE),
            OutputBuffer("b", b_addr, np.dtype(np.float32), SIZE),
        ),
        reference={"a": ref_a, "b": ref_b},
    )


SPEC_K1 = register(
    KernelSpec(
        suite="Rodinia",
        app="Gaussian",
        kernel_name="Fan1",
        kernel_id="K1",
        build_fn=lambda: _build_fan1_instance(0),
        paper_threads=512,
        paper_fault_sites=1.63e5,
        scaling_note=f"{SIZE}-point system, pivot step 0",
    )
)

SPEC_K2 = register(
    KernelSpec(
        suite="Rodinia",
        app="Gaussian",
        kernel_name="Fan2",
        kernel_id="K2",
        build_fn=lambda: _build_fan2_instance(0),
        paper_threads=4096,
        paper_fault_sites=4.92e6,
        scaling_note=f"{SIZE}-point system, pivot step 0",
    )
)

SPEC_K125 = register(
    KernelSpec(
        suite="Rodinia",
        app="Gaussian",
        kernel_name="Fan1",
        kernel_id="K125",
        build_fn=lambda: _build_fan1_instance(LATE_STEP),
        paper_threads=512,
        paper_fault_sites=1.09e5,
        scaling_note=f"{SIZE}-point system, pivot step {LATE_STEP} (paper: step 124)",
    )
)

SPEC_K126 = register(
    KernelSpec(
        suite="Rodinia",
        app="Gaussian",
        kernel_name="Fan2",
        kernel_id="K126",
        build_fn=lambda: _build_fan2_instance(LATE_STEP),
        paper_threads=4096,
        paper_fault_sites=8.79e5,
        scaling_note=f"{SIZE}-point system, pivot step {LATE_STEP} (paper: step 124)",
    )
)
