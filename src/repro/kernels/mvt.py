"""MVT — Polybench ``mvt_kernel1`` (K1): x1 = x1 + A @ y1.

One thread per row; the column loop runs the full matrix width, so 99.7 %
of a thread's instructions sit in the loop (Table VII's extreme case) and
the kernel reduces to a single representative thread.

Scaling: paper uses 512 threads / 512 iterations; the default build uses
48 rows with 16-thread CTAs (3 CTAs, 48-iteration loop).  ``scale="paper"``
stages the full 512-row matrix.
"""

from __future__ import annotations

import numpy as np

from ..gpu import GPUSimulator, KernelBuilder, LaunchGeometry, pack_params
from .common import emit_global_tid_x, float_inputs
from .registry import KernelInstance, KernelSpec, OutputBuffer, register

N = 48
BLOCK = (16, 1)
GRID = (N // BLOCK[0], 1)
PAPER_N = 512
SEED = 0x3117


def build_program(n: int = N) -> KernelBuilder:
    k = KernelBuilder("mvt_kernel1")
    a_ptr, x1_ptr, y1_ptr = k.params("a", "x1", "y1")
    r = k.regs("i", "t", "jj", "addr_a", "addr_y", "addr_x", "acc", "av", "yv")

    emit_global_tid_x(k, r.i, r.t)

    # addr_x = x1 + 4*i; addr_a walks row i of A; addr_y walks y1.
    k.shl("u32", r.addr_x, r.i, 2)
    k.ld("u32", r.t, x1_ptr)
    k.add("u32", r.addr_x, r.addr_x, r.t)
    k.mul("u32", r.addr_a, r.i, n)
    k.shl("u32", r.addr_a, r.addr_a, 2)
    k.ld("u32", r.t, a_ptr)
    k.add("u32", r.addr_a, r.addr_a, r.t)
    k.ld("u32", r.addr_y, y1_ptr)

    k.ld("f32", r.acc, k.global_ref(r.addr_x))
    with k.loop("u32", r.jj, 0, n):
        k.ld("f32", r.av, k.global_ref(r.addr_a))
        k.ld("f32", r.yv, k.global_ref(r.addr_y))
        k.mad_op("f32", r.acc, r.av, r.yv, r.acc)
        k.add("u32", r.addr_a, r.addr_a, 4)
        k.add("u32", r.addr_y, r.addr_y, 4)

    k.st("f32", k.global_ref(r.addr_x), r.acc)
    k.retp()
    return k


def reference(a: np.ndarray, x1: np.ndarray, y1: np.ndarray) -> np.ndarray:
    """Bit-exact vectorised mirror: one f32 mul + f32 add per column step."""
    acc = x1.copy()
    for j in range(a.shape[1]):
        acc = a[:, j] * y1[j] + acc
    return acc


def build(n: int = N, block: tuple[int, int] = BLOCK) -> KernelInstance:
    k = build_program(n)
    program = k.build()
    rng = np.random.default_rng(SEED)
    a = float_inputs(rng, (n, n))
    x1 = float_inputs(rng, n)
    y1 = float_inputs(rng, n)

    sim = GPUSimulator(heap_bytes=max(1 << 20, 2 * a.nbytes))
    a_addr = sim.alloc_array(a)
    x1_addr = sim.alloc_array(x1)
    y1_addr = sim.alloc_array(y1)
    params = pack_params(k.param_layout, {"a": a_addr, "x1": x1_addr, "y1": y1_addr})
    return KernelInstance(
        spec=None,
        program=program,
        geometry=LaunchGeometry(grid=(n // block[0], 1), block=block),
        param_bytes=params,
        initial_memory=sim.memory,
        outputs=(OutputBuffer("x1", x1_addr, np.dtype(np.float32), n),),
        reference={"x1": reference(a, x1, y1)},
    )


def build_paper() -> KernelInstance:
    """The paper's Table I grid: 512 threads, 512-iteration column loop."""
    return build(n=PAPER_N)


SPEC = register(
    KernelSpec(
        suite="Polybench",
        app="MVT",
        kernel_name="mvt_kernel1",
        kernel_id="K1",
        build_fn=build,
        paper_threads=512,
        paper_fault_sites=6.83e7,
        scaling_note=f"{N}-row matrix, {GRID[0]} CTAs of {BLOCK[0]} threads",
        paper_build_fn=build_paper,
    )
)
