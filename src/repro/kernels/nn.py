"""NN — Rodinia nearest-neighbor ``euclid`` kernel (K1).

Each thread computes the Euclidean distance from one record's (lat, lng)
to the search target.  Straight-line code, no loops (Table VII's 0-loop
row), minimal divergence (only the tail guard).

Scaling: paper spawns 43008 threads; we use 256 records with 64-thread CTAs.
"""

from __future__ import annotations

import numpy as np

from ..gpu import GPUSimulator, KernelBuilder, LaunchGeometry, pack_params
from .common import emit_global_tid_x, f32_mul, float_inputs
from .registry import KernelInstance, KernelSpec, OutputBuffer, register

N_RECORDS = 256
BLOCK = (64, 1)
GRID = (N_RECORDS // BLOCK[0], 1)
TARGET_LAT = np.float32(0.5)
TARGET_LNG = np.float32(0.25)
SEED = 0x4E4E


def build_program() -> KernelBuilder:
    k = KernelBuilder("euclid")
    loc_ptr, dist_ptr, n, lat, lng = k.params("locations", "distances", "n", "lat_f32", "lng_f32")
    r = k.regs("gid", "t", "addr", "latv", "lngv", "d")

    emit_global_tid_x(k, r.gid, r.t)
    k.ld("u32", r.t, n)
    with k.if_lt("u32", r.gid, r.t):
        # locations is an array of (lat, lng) f32 pairs.
        k.shl("u32", r.addr, r.gid, 3)
        k.ld("u32", r.t, loc_ptr)
        k.add("u32", r.addr, r.addr, r.t)
        k.ld("f32", r.latv, k.global_ref(r.addr))
        k.ld("f32", r.lngv, k.global_ref(r.addr, 4))
        k.ld("f32", r.t, lat)
        k.sub("f32", r.latv, r.latv, r.t)
        k.ld("f32", r.t, lng)
        k.sub("f32", r.lngv, r.lngv, r.t)
        k.mul("f32", r.latv, r.latv, r.latv)
        k.mad_op("f32", r.d, r.lngv, r.lngv, r.latv)
        k.sqrt("f32", r.d, r.d)
        k.shl("u32", r.addr, r.gid, 2)
        k.ld("u32", r.t, dist_ptr)
        k.add("u32", r.addr, r.addr, r.t)
        k.st("f32", k.global_ref(r.addr), r.d)
    k.retp()
    return k


def reference(locations: np.ndarray) -> np.ndarray:
    out = np.empty(N_RECORDS, dtype=np.float32)
    for i in range(N_RECORDS):
        dlat = np.float32(float(locations[i, 0]) - float(TARGET_LAT))
        dlng = np.float32(float(locations[i, 1]) - float(TARGET_LNG))
        s = f32_mul(dlat, dlat)
        s = np.float32(float(f32_mul(dlng, dlng)) + float(s))
        out[i] = np.float32(np.sqrt(np.float64(s)))
    return out


def build() -> KernelInstance:
    k = build_program()
    program = k.build()
    rng = np.random.default_rng(SEED)
    locations = float_inputs(rng, (N_RECORDS, 2))

    sim = GPUSimulator()
    loc_addr = sim.alloc_array(locations)
    dist_addr = sim.alloc_zeros(N_RECORDS * 4)
    params = pack_params(
        k.param_layout,
        {
            "locations": loc_addr,
            "distances": dist_addr,
            "n": N_RECORDS,
            "lat_f32": float(TARGET_LAT),
            "lng_f32": float(TARGET_LNG),
        },
    )
    return KernelInstance(
        spec=None,
        program=program,
        geometry=LaunchGeometry(grid=GRID, block=BLOCK),
        param_bytes=params,
        initial_memory=sim.memory,
        outputs=(OutputBuffer("distances", dist_addr, np.dtype(np.float32), N_RECORDS),),
        reference={"distances": reference(locations)},
    )


SPEC = register(
    KernelSpec(
        suite="Rodinia",
        app="NN",
        kernel_name="euclid",
        kernel_id="K1",
        build_fn=build,
        paper_threads=43008,
        paper_fault_sites=None,
        scaling_note=f"{N_RECORDS} records, {GRID[0]} CTAs of {BLOCK[0]} threads",
    )
)
