"""GEMM — Polybench ``gemm_kernel`` (K1): C = alpha*A@B + beta*C.

Every thread owns one C element, runs the identical k-loop, and the grid
exactly tiles the matrix — so all threads share one iCnt.  The paper finds
exactly one representative thread for GEMM; the loop then dominates its
fault sites (98.2 % of instructions, Table VII).

Scaling: paper uses 16384 threads (128x128 C tiles); the default build
uses 16x16 matrices with 4x4 CTAs (256 threads, 16 CTAs, 16-iteration
k-loop).  ``scale="paper"`` stages the full 16384-thread grid — only the
vectorized backend can golden-run it in reasonable time.
"""

from __future__ import annotations

import numpy as np

from ..gpu import GPUSimulator, KernelBuilder, LaunchGeometry, pack_params
from .common import emit_global_xy, float_inputs
from .registry import KernelInstance, KernelSpec, OutputBuffer, register

NI = 16  # rows of C / A
NJ = 16  # cols of C / B
NK = 16  # inner dimension
BLOCK = (4, 4)
GRID = (NJ // BLOCK[0], NI // BLOCK[1])
PAPER_N = 128  # paper grid: 128x128 C with 16x16 CTAs -> 16384 threads
PAPER_BLOCK = (16, 16)
ALPHA = np.float32(1.5)
BETA = np.float32(1.2)
SEED = 0x6E44


def build_program(ni: int = NI, nj: int = NJ, nk: int = NK) -> KernelBuilder:
    k = KernelBuilder("gemm_kernel")
    a_ptr, b_ptr, c_ptr, alpha, beta = k.params("a", "b", "c", "alpha_f32", "beta_f32")
    r = k.regs("i", "j", "t", "kk", "addr_a", "addr_b", "addr_c", "acc", "av", "bv")

    emit_global_xy(k, r.j, r.i, r.t)

    # addr_c = c + 4 * (i * nj + j)
    k.mul("u32", r.addr_c, r.i, nj)
    k.add("u32", r.addr_c, r.addr_c, r.j)
    k.shl("u32", r.addr_c, r.addr_c, 2)
    k.ld("u32", r.t, c_ptr)
    k.add("u32", r.addr_c, r.addr_c, r.t)

    # addr_a walks row i of A; addr_b walks column j of B.
    k.mul("u32", r.addr_a, r.i, nk)
    k.shl("u32", r.addr_a, r.addr_a, 2)
    k.ld("u32", r.t, a_ptr)
    k.add("u32", r.addr_a, r.addr_a, r.t)
    k.shl("u32", r.addr_b, r.j, 2)
    k.ld("u32", r.t, b_ptr)
    k.add("u32", r.addr_b, r.addr_b, r.t)

    k.mov("f32", r.acc, 0.0)
    with k.loop("u32", r.kk, 0, nk):
        k.ld("f32", r.av, k.global_ref(r.addr_a))
        k.ld("f32", r.bv, k.global_ref(r.addr_b))
        k.mad_op("f32", r.acc, r.av, r.bv, r.acc)
        k.add("u32", r.addr_a, r.addr_a, 4)
        k.add("u32", r.addr_b, r.addr_b, 4 * nj)

    # C[i][j] = alpha * acc + beta * C[i][j]
    k.ld("f32", r.av, k.global_ref(r.addr_c))
    k.ld("f32", r.bv, beta)
    k.mul("f32", r.av, r.av, r.bv)
    k.ld("f32", r.bv, alpha)
    k.mad_op("f32", r.acc, r.acc, r.bv, r.av)
    k.st("f32", k.global_ref(r.addr_c), r.acc)
    k.retp()
    return k


def reference(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Bit-exact vectorised mirror of the kernel's f32 rounding sequence.

    Each k-step is one correctly-rounded f32 multiply then one f32 add —
    exactly ``f32_mad`` — so rank-1 updates in ascending k replay the
    per-thread accumulation order.
    """
    acc = np.zeros(c.shape, dtype=np.float32)
    for kk in range(a.shape[1]):
        acc = a[:, kk, None] * b[None, kk, :] + acc
    return acc * ALPHA + c * BETA


def build(
    ni: int = NI, nj: int = NJ, nk: int = NK, block: tuple[int, int] = BLOCK
) -> KernelInstance:
    k = build_program(ni, nj, nk)
    program = k.build()
    rng = np.random.default_rng(SEED)
    a = float_inputs(rng, (ni, nk))
    b = float_inputs(rng, (nk, nj))
    c = float_inputs(rng, (ni, nj))

    sim = GPUSimulator()
    a_addr = sim.alloc_array(a)
    b_addr = sim.alloc_array(b)
    c_addr = sim.alloc_array(c)
    params = pack_params(
        k.param_layout,
        {"a": a_addr, "b": b_addr, "c": c_addr, "alpha_f32": float(ALPHA), "beta_f32": float(BETA)},
    )
    return KernelInstance(
        spec=None,
        program=program,
        geometry=LaunchGeometry(grid=(nj // block[0], ni // block[1]), block=block),
        param_bytes=params,
        initial_memory=sim.memory,
        outputs=(OutputBuffer("c", c_addr, np.dtype(np.float32), ni * nj),),
        reference={"c": reference(a, b, c)},
    )


def build_paper() -> KernelInstance:
    """The paper's Table I grid: 16384 threads over a 128x128x128 GEMM."""
    return build(ni=PAPER_N, nj=PAPER_N, nk=PAPER_N, block=PAPER_BLOCK)


SPEC = register(
    KernelSpec(
        suite="Polybench",
        app="GEMM",
        kernel_name="gemm_kernel",
        kernel_id="K1",
        build_fn=build,
        paper_threads=16384,
        paper_fault_sites=6.23e8,
        scaling_note=f"{NI}x{NJ}x{NK} matrices, {GRID[0] * GRID[1]} CTAs of {BLOCK[0] * BLOCK[1]} threads",
        paper_build_fn=build_paper,
    )
)
