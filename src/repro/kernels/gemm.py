"""GEMM — Polybench ``gemm_kernel`` (K1): C = alpha*A@B + beta*C.

Every thread owns one C element, runs the identical k-loop, and the grid
exactly tiles the matrix — so all threads share one iCnt.  The paper finds
exactly one representative thread for GEMM; the loop then dominates its
fault sites (98.2 % of instructions, Table VII).

Scaling: paper uses 16384 threads (512x512); we use 16x16 matrices with
4x4 CTAs (256 threads, 16 CTAs, 16-iteration k-loop).
"""

from __future__ import annotations

import numpy as np

from ..gpu import GPUSimulator, KernelBuilder, LaunchGeometry, pack_params
from .common import emit_global_xy, f32_mad, f32_mul, float_inputs
from .registry import KernelInstance, KernelSpec, OutputBuffer, register

NI = 16  # rows of C / A
NJ = 16  # cols of C / B
NK = 16  # inner dimension
BLOCK = (4, 4)
GRID = (NJ // BLOCK[0], NI // BLOCK[1])
ALPHA = np.float32(1.5)
BETA = np.float32(1.2)
SEED = 0x6E44


def build_program() -> KernelBuilder:
    k = KernelBuilder("gemm_kernel")
    a_ptr, b_ptr, c_ptr, alpha, beta = k.params("a", "b", "c", "alpha_f32", "beta_f32")
    r = k.regs("i", "j", "t", "kk", "addr_a", "addr_b", "addr_c", "acc", "av", "bv")

    emit_global_xy(k, r.j, r.i, r.t)

    # addr_c = c + 4 * (i * NJ + j)
    k.mul("u32", r.addr_c, r.i, NJ)
    k.add("u32", r.addr_c, r.addr_c, r.j)
    k.shl("u32", r.addr_c, r.addr_c, 2)
    k.ld("u32", r.t, c_ptr)
    k.add("u32", r.addr_c, r.addr_c, r.t)

    # addr_a walks row i of A; addr_b walks column j of B.
    k.mul("u32", r.addr_a, r.i, NK)
    k.shl("u32", r.addr_a, r.addr_a, 2)
    k.ld("u32", r.t, a_ptr)
    k.add("u32", r.addr_a, r.addr_a, r.t)
    k.shl("u32", r.addr_b, r.j, 2)
    k.ld("u32", r.t, b_ptr)
    k.add("u32", r.addr_b, r.addr_b, r.t)

    k.mov("f32", r.acc, 0.0)
    with k.loop("u32", r.kk, 0, NK):
        k.ld("f32", r.av, k.global_ref(r.addr_a))
        k.ld("f32", r.bv, k.global_ref(r.addr_b))
        k.mad_op("f32", r.acc, r.av, r.bv, r.acc)
        k.add("u32", r.addr_a, r.addr_a, 4)
        k.add("u32", r.addr_b, r.addr_b, 4 * NJ)

    # C[i][j] = alpha * acc + beta * C[i][j]
    k.ld("f32", r.av, k.global_ref(r.addr_c))
    k.ld("f32", r.bv, beta)
    k.mul("f32", r.av, r.av, r.bv)
    k.ld("f32", r.bv, alpha)
    k.mad_op("f32", r.acc, r.acc, r.bv, r.av)
    k.st("f32", k.global_ref(r.addr_c), r.acc)
    k.retp()
    return k


def reference(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    out = np.empty((NI, NJ), dtype=np.float32)
    for i in range(NI):
        for j in range(NJ):
            acc = np.float32(0.0)
            for kk in range(NK):
                acc = f32_mad(a[i, kk], b[kk, j], acc)
            out[i, j] = f32_mad(acc, ALPHA, f32_mul(c[i, j], BETA))
    return out


def build() -> KernelInstance:
    k = build_program()
    program = k.build()
    rng = np.random.default_rng(SEED)
    a = float_inputs(rng, (NI, NK))
    b = float_inputs(rng, (NK, NJ))
    c = float_inputs(rng, (NI, NJ))

    sim = GPUSimulator()
    a_addr = sim.alloc_array(a)
    b_addr = sim.alloc_array(b)
    c_addr = sim.alloc_array(c)
    params = pack_params(
        k.param_layout,
        {"a": a_addr, "b": b_addr, "c": c_addr, "alpha_f32": float(ALPHA), "beta_f32": float(BETA)},
    )
    return KernelInstance(
        spec=None,
        program=program,
        geometry=LaunchGeometry(grid=GRID, block=BLOCK),
        param_bytes=params,
        initial_memory=sim.memory,
        outputs=(OutputBuffer("c", c_addr, np.dtype(np.float32), NI * NJ),),
        reference={"c": reference(a, b, c)},
    )


SPEC = register(
    KernelSpec(
        suite="Polybench",
        app="GEMM",
        kernel_name="gemm_kernel",
        kernel_id="K1",
        build_fn=build,
        paper_threads=16384,
        paper_fault_sites=6.23e8,
        scaling_note=f"{NI}x{NJ}x{NK} matrices, {GRID[0] * GRID[1]} CTAs of {BLOCK[0] * BLOCK[1]} threads",
    )
)
