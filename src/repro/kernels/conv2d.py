"""2DCONV — Polybench ``Convolution2D_kernel`` (K1).

A 3x3 stencil over an ``NI x NJ`` image.  Only interior threads
(``0 < i < NI-1`` and ``0 < j < NJ-1``) compute; the two bound checks are
evaluated sequentially with early-exit branches, which is what produces the
small iCnt classes for border threads that Table III keys on (the paper
observes groups {11, 13, 15, 48}; ours are structurally analogous).

Scaling: paper runs 8192 threads over a large image; we run a 24x24 image
with 8x8 CTAs (576 threads, 9 CTAs).
"""

from __future__ import annotations

import numpy as np

from ..gpu import GPUSimulator, KernelBuilder, LaunchGeometry, pack_params
from .common import emit_global_xy, f32_mad, float_inputs
from .registry import KernelInstance, KernelSpec, OutputBuffer, register

NI = 24
NJ = 24
BLOCK = (8, 8)
GRID = (NI // BLOCK[0], NJ // BLOCK[1])
SEED = 0x2DC0

#: Stencil coefficients from the Polybench source.
COEFFS = (
    (+0.2, -0.3, +0.4),
    (-0.5, +0.6, -0.7),
    (-0.8, -0.9, +0.10),
)


def build_program() -> KernelBuilder:
    k = KernelBuilder("Convolution2D_kernel")
    a_ptr, b_ptr = k.params("a", "b")
    r = k.regs("i", "j", "t", "addr", "acc", "val", "base")
    p = k.pred("p0")

    emit_global_xy(k, r.j, r.i, r.t)

    # Early exits: first the j (x) bounds, then the i (y) bounds — two
    # distinct short paths, like the PTXPlus the paper profiles.
    done = k.fresh_label()
    k.set("lt", "u32", p, r.j, 1)
    k.bra(done, guard=(p, "eq"))
    k.set("ge", "u32", p, r.j, NJ - 1)
    k.bra(done, guard=(p, "eq"))
    k.set("lt", "u32", p, r.i, 1)
    k.bra(done, guard=(p, "eq"))
    k.set("ge", "u32", p, r.i, NI - 1)
    k.bra(done, guard=(p, "eq"))

    # base = a + 4 * ((i-1) * NJ + (j-1)): address of the top-left tap.
    k.sub("u32", r.base, r.i, 1)
    k.mul("u32", r.base, r.base, NJ)
    k.add("u32", r.base, r.base, r.j)
    k.sub("u32", r.base, r.base, 1)
    k.shl("u32", r.base, r.base, 2)
    k.ld("u32", r.t, a_ptr)
    k.add("u32", r.base, r.base, r.t)

    k.mov("f32", r.acc, 0.0)
    for di, row in enumerate(COEFFS):
        for dj, coeff in enumerate(row):
            offset = 4 * (di * NJ + dj)
            k.ld("f32", r.val, k.global_ref(r.base, offset))
            k.mov("f32", r.t, float(np.float32(coeff)))
            k.mad_op("f32", r.acc, r.val, r.t, r.acc)

    # b[i * NJ + j] = acc
    k.mul("u32", r.addr, r.i, NJ)
    k.add("u32", r.addr, r.addr, r.j)
    k.shl("u32", r.addr, r.addr, 2)
    k.ld("u32", r.t, b_ptr)
    k.add("u32", r.addr, r.addr, r.t)
    k.st("f32", k.global_ref(r.addr), r.acc)

    k.label(done)
    k.retp()
    return k


def reference(a: np.ndarray) -> np.ndarray:
    """Float32 reference with the kernel's exact accumulation order."""
    b = np.zeros((NI, NJ), dtype=np.float32)
    coeffs = np.array(COEFFS, dtype=np.float32)
    for i in range(1, NI - 1):
        for j in range(1, NJ - 1):
            acc = np.float32(0.0)
            for di in range(3):
                for dj in range(3):
                    acc = f32_mad(a[i - 1 + di, j - 1 + dj], coeffs[di, dj], acc)
            b[i, j] = acc
    return b


def build() -> KernelInstance:
    k = build_program()
    program = k.build()
    rng = np.random.default_rng(SEED)
    a = float_inputs(rng, (NI, NJ))

    sim = GPUSimulator()
    a_addr = sim.alloc_array(a)
    b_addr = sim.alloc_zeros(NI * NJ * 4)
    params = pack_params(k.param_layout, {"a": a_addr, "b": b_addr})
    geometry = LaunchGeometry(grid=GRID, block=BLOCK)
    return KernelInstance(
        spec=None,  # filled by KernelSpec.build
        program=program,
        geometry=geometry,
        param_bytes=params,
        initial_memory=sim.memory,
        outputs=(OutputBuffer("b", b_addr, np.dtype(np.float32), NI * NJ),),
        reference={"b": reference(a)},
    )


SPEC = register(
    KernelSpec(
        suite="Polybench",
        app="2DCONV",
        kernel_name="Convolution2D_kernel",
        kernel_id="K1",
        build_fn=build,
        paper_threads=8192,
        paper_fault_sites=6.32e6,
        scaling_note=f"image {NI}x{NJ}, {GRID[0] * GRID[1]} CTAs of {BLOCK[0] * BLOCK[1]} threads",
    )
)
