"""Deep-loop microbenchmark kernel for backend throughput comparisons.

Synthetic, deliberately *not* registered in the Table I registry: its job
is to stress the execution backends at a representative paper-scale shape
— wide CTAs (hundreds of lanes), a deep uniform register loop, one global
store per thread — so ``benchmarks/bench_vectorized_backend.py`` can
measure injections/sec where lane-parallel execution matters most.

The kernel stages each thread's input through shared memory (store, one
barrier, read the ring neighbour's slot), which disables the injector's
thread-sliced fast path: every injection re-executes a full CTA, exactly
the regime the vectorized backend accelerates.
"""

from __future__ import annotations

import numpy as np

from ..gpu import GPUSimulator, KernelBuilder, LaunchGeometry, pack_params
from .common import emit_global_tid_x, float_inputs
from .registry import KernelInstance, OutputBuffer

N_THREADS = 2048
BLOCK_THREADS = 1024
ITERS = 200
DECAY = np.float32(0.5)
SEED = 0x0DEE


def build_program(
    block_threads: int = BLOCK_THREADS,
    iters: int = ITERS,
    sync_every: int | None = None,
) -> KernelBuilder:
    k = KernelBuilder("deeploop_kernel")
    x_ptr, out_ptr = k.params("x", "out")
    r = k.regs(
        "gid", "ltid", "t", "ii", "oi", "addr", "saddr", "acc", "seed", "decay"
    )

    emit_global_tid_x(k, r.gid, r.t)
    k.cvt("u32", r.ltid, k.tid.x)
    shared_base = k.shared_alloc(block_threads * 4)

    # Stage x[gid] into this thread's shared slot, barrier, then read the
    # ring neighbour's value — a real cross-lane shared dependence.
    k.shl("u32", r.addr, r.gid, 2)
    k.ld("u32", r.t, x_ptr)
    k.add("u32", r.addr, r.addr, r.t)
    k.ld("f32", r.acc, k.global_ref(r.addr))
    k.shl("u32", r.saddr, r.ltid, 2)
    k.st("f32", k.shared_ref(r.saddr, shared_base), r.acc)
    k.bar()
    k.add("u32", r.saddr, r.ltid, 1)
    k.rem("u32", r.saddr, r.saddr, block_threads)
    k.shl("u32", r.saddr, r.saddr, 2)
    k.ld("f32", r.seed, k.shared_ref(r.saddr, shared_base))

    # Deep uniform register loop: acc = acc * DECAY + seed, `iters` times.
    # ``sync_every`` splits the loop into barrier-fenced rounds (the math
    # is unchanged — every lane always reaches every barrier) so the
    # barrier-granular checkpoint/resync machinery gets restore and
    # splice points *inside* the deep phase instead of one barrier ahead
    # of it.
    k.mov("f32", r.decay, float(DECAY))
    if sync_every:
        if iters % sync_every:
            raise ValueError("iters must be a multiple of sync_every")
        with k.loop("u32", r.oi, 0, iters // sync_every):
            with k.loop("u32", r.ii, 0, sync_every):
                k.mad_op("f32", r.acc, r.acc, r.decay, r.seed)
            k.bar()
    else:
        with k.loop("u32", r.ii, 0, iters):
            k.mad_op("f32", r.acc, r.acc, r.decay, r.seed)

    # out[gid] = acc
    k.shl("u32", r.addr, r.gid, 2)
    k.ld("u32", r.t, out_ptr)
    k.add("u32", r.addr, r.addr, r.t)
    k.st("f32", k.global_ref(r.addr), r.acc)
    k.retp()
    return k


def reference(x: np.ndarray, block_threads: int, iters: int) -> np.ndarray:
    """Bit-exact vectorised mirror of the per-thread recurrence."""
    seed = (
        x.reshape(-1, block_threads)[:, np.r_[1:block_threads, 0]].reshape(-1)
    )
    acc = x.copy()
    for _ in range(iters):
        acc = acc * DECAY + seed
    return acc


def build(
    n_threads: int = N_THREADS,
    block_threads: int = BLOCK_THREADS,
    iters: int = ITERS,
    sync_every: int | None = None,
) -> KernelInstance:
    if n_threads % block_threads:
        raise ValueError("n_threads must be a multiple of block_threads")
    k = build_program(block_threads, iters, sync_every)
    program = k.build()
    rng = np.random.default_rng(SEED)
    x = float_inputs(rng, n_threads)

    sim = GPUSimulator()
    x_addr = sim.alloc_array(x)
    out_addr = sim.alloc_array(np.zeros(n_threads, dtype=np.float32))
    params = pack_params(k.param_layout, {"x": x_addr, "out": out_addr})
    return KernelInstance(
        spec=None,
        program=program,
        geometry=LaunchGeometry(
            grid=(n_threads // block_threads, 1), block=(block_threads, 1)
        ),
        param_bytes=params,
        initial_memory=sim.memory,
        outputs=(OutputBuffer("out", out_addr, np.dtype(np.float32), n_threads),),
        reference={"out": reference(x, block_threads, iters)},
    )
