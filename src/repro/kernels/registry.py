"""Kernel registry: one :class:`KernelSpec` per evaluated application kernel.

A *spec* is the static description (suite, ids, the paper's Table I numbers
for side-by-side reporting, and a factory).  Calling :meth:`KernelSpec.build`
materialises a :class:`KernelInstance`: the program, launch geometry,
deterministic inputs staged into an initial heap, the packed parameter
block, the output buffers to diff, and a NumPy reference of the expected
outputs.

The fault injector runs entirely off a ``KernelInstance``; the registry is
how benchmarks, tests and examples name workloads (e.g. ``"gemm.k1"``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import ReproError
from ..gpu import GlobalMemory, GPUSimulator, LaunchGeometry, Program


@dataclass(frozen=True)
class OutputBuffer:
    """A device buffer whose final contents define the application output."""

    name: str
    address: int
    dtype: np.dtype
    count: int

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize) * self.count


@dataclass
class KernelInstance:
    """A fully staged, launchable kernel."""

    spec: "KernelSpec"
    program: Program
    geometry: LaunchGeometry
    param_bytes: bytes
    initial_memory: GlobalMemory
    outputs: tuple[OutputBuffer, ...]
    reference: dict[str, np.ndarray]

    def golden_memory(self) -> GlobalMemory:
        """A fresh heap holding the staged inputs."""
        return self.initial_memory.snapshot()

    def read_outputs(self, memory: GlobalMemory) -> dict[str, np.ndarray]:
        out = {}
        for buf in self.outputs:
            raw = memory.read_bytes(buf.address, buf.nbytes)
            out[buf.name] = np.frombuffer(raw, dtype=buf.dtype).copy()
        return out

    def output_bytes(self, memory: GlobalMemory) -> bytes:
        """Concatenated raw output regions — the SDC comparison image."""
        return b"".join(
            memory.read_bytes(buf.address, buf.nbytes) for buf in self.outputs
        )

    def verify_reference(self, memory: GlobalMemory) -> None:
        """Assert the simulated outputs match the NumPy reference exactly."""
        actual = self.read_outputs(memory)
        for name, expected in self.reference.items():
            got = actual[name]
            if not np.array_equal(got, expected.ravel()):
                bad = np.flatnonzero(got != expected.ravel())[:8]
                raise ReproError(
                    f"{self.spec.key}: output {name!r} mismatches reference at "
                    f"indices {bad.tolist()} (got {got[bad]}, "
                    f"want {expected.ravel()[bad]})"
                )


#: A builder stages inputs into the simulator and returns the instance parts.
BuildFn = Callable[[], KernelInstance]


#: Input-scale names accepted by :meth:`KernelSpec.build`.
SCALES = ("sim", "paper")


@dataclass(frozen=True)
class KernelSpec:
    """Static identity + paper metadata for one evaluated kernel."""

    suite: str
    app: str
    kernel_name: str
    kernel_id: str
    build_fn: BuildFn = field(repr=False)
    paper_threads: int | None = None
    paper_fault_sites: float | None = None
    scaling_note: str = ""
    #: Optional factory staging the paper's full-size Table I grid.  Paper
    #: grids are orders of magnitude beyond what the interpreter can golden
    #: -run, so they are only reachable on demand (``scale="paper"``) and
    #: never appear in :func:`all_kernels` iteration.
    paper_build_fn: BuildFn | None = field(default=None, repr=False)

    @property
    def key(self) -> str:
        return f"{self.app.lower()}.{self.kernel_id.lower()}"

    def build(self, scale: str = "sim") -> KernelInstance:
        if scale not in SCALES:
            raise ReproError(f"unknown kernel scale {scale!r}; known: {SCALES}")
        if scale == "paper":
            if self.paper_build_fn is None:
                raise ReproError(f"{self.key} has no paper-scale build")
            instance = self.paper_build_fn()
        else:
            instance = self.build_fn()
        object.__setattr__(instance, "spec", self)
        return instance


_REGISTRY: dict[str, KernelSpec] = {}


def register(spec: KernelSpec) -> KernelSpec:
    if spec.key in _REGISTRY:
        raise ReproError(f"duplicate kernel key {spec.key}")
    _REGISTRY[spec.key] = spec
    return spec


def get_kernel(key: str) -> KernelSpec:
    try:
        return _REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ReproError(f"unknown kernel {key!r}; known: {known}") from None


def all_kernels() -> list[KernelSpec]:
    """Specs in the paper's Table I order (registration order)."""
    return list(_REGISTRY.values())


def load_instance(key: str, scale: str = "sim") -> KernelInstance:
    """One-call convenience: build the staged instance for a kernel key."""
    return get_kernel(key).build(scale)


def fresh_simulator(heap_bytes: int = 1 << 20) -> GPUSimulator:
    return GPUSimulator(heap_bytes)
