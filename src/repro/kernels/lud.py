"""LUD — Rodinia blocked LU decomposition: perimeter (K44), internal (K45),
diagonal (K46).

The three kernels keep the paper's structural contrast:

* ``lud_diagonal`` (K46) — tiny CTA, data-dependent nested loops, every
  thread a distinct iCnt class;
* ``lud_perimeter`` (K44) — two half-CTA thread populations running
  different loop nests (row strip vs column strip);
* ``lud_internal`` (K45) — fully unrolled inner product, zero loop
  iterations (Table VII's 0-loop row for K45).

Scaling: paper uses a 16-wide block on a larger matrix (16/32/256
threads); ours is a 16x16 matrix with an 8-wide block (8/16/64 threads),
all three kernels at decomposition step 0.
"""

from __future__ import annotations

import numpy as np

from ..gpu import GPUSimulator, KernelBuilder, LaunchGeometry, pack_params
from .common import f32_div, f32_mul, f32_sub, float_inputs
from .registry import KernelInstance, KernelSpec, OutputBuffer, register

N = 16  # matrix dimension
BS = 8  # LUD block size
SEED = 0x14D4


def _stage_matrix() -> np.ndarray:
    rng = np.random.default_rng(SEED)
    a = float_inputs(rng, (N, N), lo=0.5, hi=1.5)
    a += np.eye(N, dtype=np.float32) * np.float32(2 * N)  # well-conditioned
    return a


# --------------------------------------------------------------------------
# K46: lud_diagonal
# --------------------------------------------------------------------------

def build_diagonal() -> KernelBuilder:
    k = KernelBuilder("lud_diagonal")
    a_ptr, = k.params("a")
    r = k.regs("tx", "t", "i", "j", "rowb", "addr", "pivot", "mult", "v", "w", "jstart")
    dia = k.shared_alloc(BS * BS * 4)

    k.cvt("u32", r.tx, k.tid.x)
    # Load row tx of the diagonal block into shared (unrolled).
    k.mul("u32", r.addr, r.tx, N)
    k.shl("u32", r.addr, r.addr, 2)
    k.ld("u32", r.t, a_ptr)
    k.add("u32", r.addr, r.addr, r.t)
    k.mul("u32", r.rowb, r.tx, BS * 4)
    for j in range(BS):
        k.ld("f32", r.v, k.global_ref(r.addr, 4 * j))
        k.st("f32", k.shared_ref(r.rowb, dia + 4 * j), r.v)
    k.bar()

    with k.loop("u32", r.i, 0, BS, pred_name="pi"):
        with k.if_block("gt", "u32", r.tx, r.i, pred_name="pact"):
            # mult = dia[tx][i] / dia[i][i]
            k.mul("u32", r.addr, r.i, BS * 4 + 4)  # (i*BS + i) * 4
            k.ld("f32", r.pivot, k.shared_ref(r.addr, dia))
            k.shl("u32", r.t, r.i, 2)
            k.add("u32", r.t, r.t, r.rowb)
            k.ld("f32", r.mult, k.shared_ref(r.t, dia))
            k.div("f32", r.mult, r.mult, r.pivot)
            k.st("f32", k.shared_ref(r.t, dia), r.mult)
            # dia[tx][j] -= mult * dia[i][j] for j in (i, BS)
            k.add("u32", r.jstart, r.i, 1)
            with k.loop("u32", r.j, r.jstart, BS, pred_name="pj"):
                k.mul("u32", r.t, r.i, BS)
                k.add("u32", r.t, r.t, r.j)
                k.shl("u32", r.t, r.t, 2)
                k.ld("f32", r.v, k.shared_ref(r.t, dia))
                k.shl("u32", r.t, r.j, 2)
                k.add("u32", r.t, r.t, r.rowb)
                k.ld("f32", r.w, k.shared_ref(r.t, dia))
                k.mul("f32", r.v, r.mult, r.v)
                k.sub("f32", r.w, r.w, r.v)
                k.st("f32", k.shared_ref(r.t, dia), r.w)
        k.bar()

    # Write row tx back (the loop clobbered r.addr; recompute it).
    k.mul("u32", r.addr, r.tx, N)
    k.shl("u32", r.addr, r.addr, 2)
    k.ld("u32", r.t, a_ptr)
    k.add("u32", r.addr, r.addr, r.t)
    for j in range(BS):
        k.ld("f32", r.v, k.shared_ref(r.rowb, dia + 4 * j))
        k.st("f32", k.global_ref(r.addr, 4 * j), r.v)
    k.retp()
    return k


def diagonal_reference(block: np.ndarray) -> np.ndarray:
    """In-place LU of one BSxBS block, mirroring the kernel's f32 ops."""
    dia = block.copy()
    for i in range(BS):
        for tx in range(i + 1, BS):
            mult = f32_div(dia[tx, i], dia[i, i])
            dia[tx, i] = mult
            for j in range(i + 1, BS):
                dia[tx, j] = f32_sub(dia[tx, j], f32_mul(mult, dia[i, j]))
    return dia


# --------------------------------------------------------------------------
# K44: lud_perimeter
# --------------------------------------------------------------------------

def build_perimeter() -> KernelBuilder:
    k = KernelBuilder("lud_perimeter")
    a_ptr, = k.params("a")
    r = k.regs(
        "tx", "t", "i", "j", "idx", "addr", "base", "v", "w", "mult", "acc", "rowb"
    )
    dia = k.shared_alloc(BS * BS * 4)
    peri_row = k.shared_alloc(BS * BS * 4)
    peri_col = k.shared_alloc(BS * BS * 4)

    k.cvt("u32", r.tx, k.tid.x)
    k.ld("u32", r.base, a_ptr)

    half = k.fresh_label()
    join_load = k.fresh_label()
    p = k.pred("p0")
    k.set("ge", "u32", p, r.tx, BS)
    k.bra(half, guard=(p, "eq"))
    # tx < BS: load dia row tx and peri_row row tx (cols BS..2BS of row tx).
    k.mul("u32", r.addr, r.tx, N)
    k.shl("u32", r.addr, r.addr, 2)
    k.add("u32", r.addr, r.addr, r.base)
    k.mul("u32", r.rowb, r.tx, BS * 4)
    for j in range(BS):
        k.ld("f32", r.v, k.global_ref(r.addr, 4 * j))
        k.st("f32", k.shared_ref(r.rowb, dia + 4 * j), r.v)
    for j in range(BS):
        k.ld("f32", r.v, k.global_ref(r.addr, 4 * (BS + j)))
        k.st("f32", k.shared_ref(r.rowb, peri_row + 4 * j), r.v)
    k.bra(join_load)
    # tx >= BS: load peri_col row (tx - BS) (row BS+idx, cols 0..BS).
    k.label(half)
    k.sub("u32", r.idx, r.tx, BS)
    k.add("u32", r.addr, r.idx, BS)
    k.mul("u32", r.addr, r.addr, N)
    k.shl("u32", r.addr, r.addr, 2)
    k.add("u32", r.addr, r.addr, r.base)
    k.mul("u32", r.rowb, r.idx, BS * 4)
    for j in range(BS):
        k.ld("f32", r.v, k.global_ref(r.addr, 4 * j))
        k.st("f32", k.shared_ref(r.rowb, peri_col + 4 * j), r.v)
    k.label(join_load)
    k.bar()

    compute_col = k.fresh_label()
    join_compute = k.fresh_label()
    k.set("ge", "u32", p, r.tx, BS)
    k.bra(compute_col, guard=(p, "eq"))
    # Row strip: thread tx owns column tx of peri_row (forward substitution,
    # unit-diagonal L from dia).  idx = tx.
    with k.loop("u32", r.i, 1, BS, pred_name="pi"):
        # acc = peri_row[i][tx]
        k.mul("u32", r.t, r.i, BS * 4)
        k.shl("u32", r.addr, r.tx, 2)
        k.add("u32", r.addr, r.addr, r.t)
        k.ld("f32", r.acc, k.shared_ref(r.addr, peri_row))
        with k.loop("u32", r.j, 0, r.i, pred_name="pj"):
            # acc -= dia[i][j] * peri_row[j][tx]
            k.mul("u32", r.t, r.i, BS)
            k.add("u32", r.t, r.t, r.j)
            k.shl("u32", r.t, r.t, 2)
            k.ld("f32", r.v, k.shared_ref(r.t, dia))
            k.mul("u32", r.t, r.j, BS)
            k.add("u32", r.t, r.t, r.tx)
            k.shl("u32", r.t, r.t, 2)
            k.ld("f32", r.w, k.shared_ref(r.t, peri_row))
            k.mul("f32", r.v, r.v, r.w)
            k.sub("f32", r.acc, r.acc, r.v)
        k.st("f32", k.shared_ref(r.addr, peri_row), r.acc)
    k.bra(join_compute)
    # Column strip: thread owns row idx of peri_col (solve x * U = c).
    k.label(compute_col)
    with k.loop("u32", r.i, 0, BS, pred_name="pi2"):
        # acc = peri_col[idx][i]
        k.shl("u32", r.addr, r.i, 2)
        k.add("u32", r.addr, r.addr, r.rowb)
        k.ld("f32", r.acc, k.shared_ref(r.addr, peri_col))
        with k.loop("u32", r.j, 0, r.i, pred_name="pj2"):
            # acc -= peri_col[idx][j] * dia[j][i]
            k.shl("u32", r.t, r.j, 2)
            k.add("u32", r.t, r.t, r.rowb)
            k.ld("f32", r.v, k.shared_ref(r.t, peri_col))
            k.mul("u32", r.t, r.j, BS)
            k.add("u32", r.t, r.t, r.i)
            k.shl("u32", r.t, r.t, 2)
            k.ld("f32", r.w, k.shared_ref(r.t, dia))
            k.mul("f32", r.v, r.v, r.w)
            k.sub("f32", r.acc, r.acc, r.v)
        # acc /= dia[i][i]
        k.mul("u32", r.t, r.i, BS * 4 + 4)
        k.ld("f32", r.w, k.shared_ref(r.t, dia))
        k.div("f32", r.acc, r.acc, r.w)
        k.st("f32", k.shared_ref(r.addr, peri_col), r.acc)
    k.label(join_compute)
    k.bar()

    # Write back the strips.
    write_col = k.fresh_label()
    done = k.fresh_label()
    k.set("ge", "u32", p, r.tx, BS)
    k.bra(write_col, guard=(p, "eq"))
    # Thread tx < BS wrote column tx of peri_row; store that column.
    k.shl("u32", r.t, r.tx, 2)
    k.add("u32", r.addr, r.base, r.t)
    for i in range(BS):
        k.ld("f32", r.v, k.shared_ref(r.t, peri_row + 4 * BS * i))
        k.st("f32", k.global_ref(r.addr, 4 * (i * N + BS)), r.v)
    k.bra(done)
    k.label(write_col)
    # Thread tx >= BS wrote row idx of peri_col; store that row.
    k.add("u32", r.addr, r.idx, BS)
    k.mul("u32", r.addr, r.addr, N)
    k.shl("u32", r.addr, r.addr, 2)
    k.add("u32", r.addr, r.addr, r.base)
    for j in range(BS):
        k.ld("f32", r.v, k.shared_ref(r.rowb, peri_col + 4 * j))
        k.st("f32", k.global_ref(r.addr, 4 * j), r.v)
    k.label(done)
    k.retp()
    return k


def perimeter_reference(a_after_diag: np.ndarray) -> np.ndarray:
    out = a_after_diag.copy()
    dia = out[:BS, :BS]
    # Row strip: forward substitution per column.
    for tx in range(BS):
        col = out[:BS, BS + tx].copy()
        for i in range(1, BS):
            acc = col[i]
            for j in range(i):
                acc = f32_sub(acc, f32_mul(dia[i, j], col[j]))
            col[i] = acc
        out[:BS, BS + tx] = col
    # Column strip: solve against U with division by the pivot.
    for idx in range(BS):
        row = out[BS + idx, :BS].copy()
        for i in range(BS):
            acc = row[i]
            for j in range(i):
                acc = f32_sub(acc, f32_mul(row[j], dia[j, i]))
            row[i] = f32_div(acc, dia[i, i])
        out[BS + idx, :BS] = row
    return out


# --------------------------------------------------------------------------
# K45: lud_internal
# --------------------------------------------------------------------------

def build_internal() -> KernelBuilder:
    k = KernelBuilder("lud_internal")
    a_ptr, = k.params("a")
    r = k.regs("tx", "ty", "t", "colb", "rowb", "addr", "acc", "v", "w")

    k.cvt("u32", r.tx, k.tid.x)
    k.cvt("u32", r.ty, k.tid.y)
    k.ld("u32", r.t, a_ptr)
    # rowb -> &a[BS+ty][0]; colb -> &a[0][BS+tx]
    k.add("u32", r.rowb, r.ty, BS)
    k.mul("u32", r.rowb, r.rowb, N)
    k.shl("u32", r.rowb, r.rowb, 2)
    k.add("u32", r.rowb, r.rowb, r.t)
    k.add("u32", r.colb, r.tx, BS)
    k.shl("u32", r.colb, r.colb, 2)
    k.add("u32", r.colb, r.colb, r.t)

    # acc = a[BS+ty][BS+tx]
    k.shl("u32", r.addr, r.tx, 2)
    k.add("u32", r.addr, r.addr, r.rowb)
    k.ld("f32", r.acc, k.global_ref(r.addr, 4 * BS))
    # Fully unrolled inner product (0 run-time loop iterations, Table VII).
    for kk in range(BS):
        k.ld("f32", r.v, k.global_ref(r.rowb, 4 * kk))
        k.ld("f32", r.w, k.global_ref(r.colb, 4 * (kk * N)))
        k.mul("f32", r.v, r.v, r.w)
        k.sub("f32", r.acc, r.acc, r.v)
    k.st("f32", k.global_ref(r.addr, 4 * BS), r.acc)
    k.retp()
    return k


def internal_reference(a_after_perimeter: np.ndarray) -> np.ndarray:
    out = a_after_perimeter.copy()
    for ty in range(BS):
        for tx in range(BS):
            acc = out[BS + ty, BS + tx]
            for kk in range(BS):
                acc = f32_sub(
                    acc, f32_mul(out[BS + ty, kk], out[kk, BS + tx])
                )
            out[BS + ty, BS + tx] = acc
    return out


# --------------------------------------------------------------------------
# Instances
# --------------------------------------------------------------------------

def _make_instance(builder, geometry, staged: np.ndarray, ref: np.ndarray) -> KernelInstance:
    program = builder.build()
    sim = GPUSimulator()
    a_addr = sim.alloc_array(staged)
    params = pack_params(builder.param_layout, {"a": a_addr})
    return KernelInstance(
        spec=None,
        program=program,
        geometry=geometry,
        param_bytes=params,
        initial_memory=sim.memory,
        outputs=(OutputBuffer("a", a_addr, np.dtype(np.float32), N * N),),
        reference={"a": ref},
    )


def build_k46() -> KernelInstance:
    a = _stage_matrix()
    ref = a.copy()
    ref[:BS, :BS] = diagonal_reference(a[:BS, :BS])
    return _make_instance(
        build_diagonal(), LaunchGeometry(grid=(1, 1), block=(BS, 1)), a, ref
    )


def build_k44() -> KernelInstance:
    a = _stage_matrix()
    a[:BS, :BS] = diagonal_reference(a[:BS, :BS])
    ref = perimeter_reference(a)
    return _make_instance(
        build_perimeter(), LaunchGeometry(grid=(1, 1), block=(2 * BS, 1)), a, ref
    )


def build_k45() -> KernelInstance:
    a = _stage_matrix()
    a[:BS, :BS] = diagonal_reference(a[:BS, :BS])
    a = perimeter_reference(a)
    ref = internal_reference(a)
    return _make_instance(
        build_internal(), LaunchGeometry(grid=(1, 1), block=(BS, BS)), a, ref
    )


SPEC_K44 = register(
    KernelSpec(
        suite="Rodinia",
        app="LUD",
        kernel_name="lud_perimeter",
        kernel_id="K44",
        build_fn=build_k44,
        paper_threads=32,
        paper_fault_sites=1.75e6,
        scaling_note=f"{N}x{N} matrix, block size {BS}, step 0",
    )
)

SPEC_K45 = register(
    KernelSpec(
        suite="Rodinia",
        app="LUD",
        kernel_name="lud_internal",
        kernel_id="K45",
        build_fn=build_k45,
        paper_threads=256,
        paper_fault_sites=6.84e5,
        scaling_note=f"{N}x{N} matrix, block size {BS}, step 0",
    )
)

SPEC_K46 = register(
    KernelSpec(
        suite="Rodinia",
        app="LUD",
        kernel_name="lud_diagonal",
        kernel_id="K46",
        build_fn=build_k46,
        paper_threads=16,
        paper_fault_sites=5.26e5,
        scaling_note=f"{N}x{N} matrix, block size {BS}, step 0",
    )
)
