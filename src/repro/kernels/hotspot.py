"""HotSpot — Rodinia ``calculate_temp`` (K1).

A 5-point thermal stencil iterated twice inside one kernel launch
(compile-time unrolled, matching Table VII's 0-loop row for HotSpot).
Each CTA stages its tile in shared memory; a neighbour read resolves in
one of three ways, each a different code path:

* in-tile       -> shared-memory load;
* cross-tile    -> global load of the (stale) input temperature;
* off-grid edge -> reuse the centre value.

Thread position in the tile *and* the CTA's position in the grid both
change which paths run, giving the rich CTA/thread iCnt-group structure
(and the same-iCnt-different-instructions hazard across CTAs) that the
paper observes for HotSpot.

Scaling: paper runs 9216 threads; ours is a 24x24 grid with 8x8 CTAs
(576 threads, 9 CTAs), 2 time steps.
"""

from __future__ import annotations

import numpy as np

from ..gpu import GPUSimulator, KernelBuilder, LaunchGeometry, pack_params
from .common import emit_global_xy, f32_add, f32_mul, f32_sub, float_inputs
from .registry import KernelInstance, KernelSpec, OutputBuffer, register

NX = 24
NY = 24
BLOCK = (8, 8)
GRID = (NX // BLOCK[0], NY // BLOCK[1])
TIME_STEPS = 2
RX1 = np.float32(0.1)
RY1 = np.float32(0.15)
RZ1 = np.float32(0.0625)
STEP_DIV_CAP = np.float32(0.5)
AMB = np.float32(80.0)
BOUNDARY_BLEND = np.float32(0.75)
MIN_TEMP = np.float32(40.0)
MAX_TEMP = np.float32(200.0)
SEED = 0x4075


def _emit_neighbor(k, r, p, tile, temp_ptr, axis: str, delta: int) -> None:
    """Fetch one neighbour into ``r.nbr`` via the three-way path split.

    axis 'x' moves along tx/gx, axis 'y' along ty/gy; delta is -1 or +1.
    """
    t_reg = r.tx if axis == "x" else r.ty
    g_reg = r.gx if axis == "x" else r.gy
    tile_limit = BLOCK[0] - 1 if axis == "x" else BLOCK[1] - 1
    grid_limit = NX - 1 if axis == "x" else NY - 1
    edge_value = 0 if delta < 0 else tile_limit
    grid_edge_value = 0 if delta < 0 else grid_limit
    shared_off = delta * 4 if axis == "x" else delta * BLOCK[0] * 4
    global_off = delta * 4 if axis == "x" else delta * NX * 4

    cross = k.fresh_label()
    have = k.fresh_label()
    # In-tile fast path.
    k.set("eq", "u32", p, t_reg, edge_value)
    k.bra(cross, guard=(p, "eq"))
    k.ld("f32", r.nbr, k.shared_ref(r.saddr, tile + shared_off))
    k.bra(have)
    k.label(cross)
    # Tile edge: either off the whole grid (reuse centre) or a stale
    # global read from the neighbouring CTA's territory.
    off_grid = k.fresh_label()
    k.set("eq", "u32", p, g_reg, grid_edge_value)
    k.bra(off_grid, guard=(p, "eq"))
    k.ld("f32", r.nbr, k.global_ref(r.gaddr, global_off))
    k.bra(have)
    k.label(off_grid)
    k.mov("f32", r.nbr, r.center)
    k.label(have)
    k.nop()


def build_program() -> KernelBuilder:
    k = KernelBuilder("calculate_temp")
    temp_ptr, power_ptr, out_ptr = k.params("temp", "power", "out")
    r = k.regs(
        "tx", "ty", "gx", "gy", "t", "saddr", "gaddr", "center", "nbr",
        "acc", "sum", "c2", "powv", "new",
    )
    p = k.pred("p0")
    tile = k.shared_alloc(BLOCK[0] * BLOCK[1] * 4)

    k.cvt("u32", r.tx, k.tid.x)
    k.cvt("u32", r.ty, k.tid.y)
    emit_global_xy(k, r.gx, r.gy, r.t)

    # gaddr -> &temp[gy][gx]; saddr -> tile[ty][tx].
    k.mul("u32", r.gaddr, r.gy, NX)
    k.add("u32", r.gaddr, r.gaddr, r.gx)
    k.shl("u32", r.gaddr, r.gaddr, 2)
    k.ld("u32", r.t, temp_ptr)
    k.add("u32", r.gaddr, r.gaddr, r.t)
    k.mul("u32", r.saddr, r.ty, BLOCK[0])
    k.add("u32", r.saddr, r.saddr, r.tx)
    k.shl("u32", r.saddr, r.saddr, 2)

    k.ld("f32", r.center, k.global_ref(r.gaddr))
    k.st("f32", k.shared_ref(r.saddr, tile), r.center)

    # Power is read every step from the same address; hoist the address.
    k.mul("u32", r.t, r.gy, NX)
    k.add("u32", r.t, r.t, r.gx)
    k.shl("u32", r.t, r.t, 2)
    k.ld("u32", r.powv, power_ptr)
    k.add("u32", r.powv, r.powv, r.t)
    k.mov("u32", r.t, r.powv)  # r.t holds &power[gy][gx] hereafter? no — keep in gpow
    k.bar()

    gpow = r.t  # alias: r.t is not otherwise live across steps

    for _step in range(TIME_STEPS):
        k.ld("f32", r.center, k.shared_ref(r.saddr, tile))
        # Vertical neighbours.
        _emit_neighbor(k, r, p, tile, temp_ptr, "y", -1)
        k.mov("f32", r.sum, r.nbr)
        _emit_neighbor(k, r, p, tile, temp_ptr, "y", +1)
        k.add("f32", r.sum, r.sum, r.nbr)
        k.add("f32", r.c2, r.center, r.center)
        k.sub("f32", r.sum, r.sum, r.c2)
        k.mov("f32", r.acc, float(RY1))
        k.mul("f32", r.sum, r.sum, r.acc)
        k.ld("f32", r.acc, k.global_ref(gpow))
        k.add("f32", r.acc, r.acc, r.sum)
        # Horizontal neighbours.
        _emit_neighbor(k, r, p, tile, temp_ptr, "x", -1)
        k.mov("f32", r.sum, r.nbr)
        _emit_neighbor(k, r, p, tile, temp_ptr, "x", +1)
        k.add("f32", r.sum, r.sum, r.nbr)
        k.sub("f32", r.sum, r.sum, r.c2)
        k.mov("f32", r.new, float(RX1))
        k.mul("f32", r.sum, r.sum, r.new)
        k.add("f32", r.acc, r.acc, r.sum)
        # Ambient term.
        k.mov("f32", r.sum, float(AMB))
        k.sub("f32", r.sum, r.sum, r.center)
        k.mov("f32", r.new, float(RZ1))
        k.mul("f32", r.sum, r.sum, r.new)
        k.add("f32", r.acc, r.acc, r.sum)
        # new = center + step/Cap * acc
        k.mov("f32", r.new, float(STEP_DIV_CAP))
        k.mul("f32", r.acc, r.acc, r.new)
        k.add("f32", r.new, r.center, r.acc)
        # Grid-boundary cells relax toward ambient (one block per axis, so
        # edge threads run one extra block and corner threads two — the
        # CTA-position-dependent iCnt structure the paper sees in HotSpot).
        for g_reg, limit in ((r.gx, NX - 1), (r.gy, NY - 1)):
            skip = k.fresh_label()
            k.set("eq", "u32", r.c2, g_reg, 0)
            k.set("eq", "u32", r.sum, g_reg, limit)
            k.or_("u32", r.c2, r.c2, r.sum)
            k.set("ne", "u32", p, r.c2, 0)
            k.bra(skip, guard=(p, "ne"))
            k.sub("f32", r.sum, r.new, float(AMB))
            k.mul("f32", r.sum, r.sum, float(BOUNDARY_BLEND))
            k.add("f32", r.new, r.sum, float(AMB))
            k.max("f32", r.new, r.new, float(MIN_TEMP))
            k.min("f32", r.new, r.new, float(MAX_TEMP))
            k.label(skip)
            k.nop()
        # Publish with a double barrier.
        k.bar()
        k.st("f32", k.shared_ref(r.saddr, tile), r.new)
        k.bar()

    # out[gy][gx] = tile[ty][tx]
    k.mul("u32", r.gaddr, r.gy, NX)
    k.add("u32", r.gaddr, r.gaddr, r.gx)
    k.shl("u32", r.gaddr, r.gaddr, 2)
    k.ld("u32", r.c2, out_ptr)
    k.add("u32", r.gaddr, r.gaddr, r.c2)
    k.st("f32", k.global_ref(r.gaddr), r.new)
    k.retp()
    return k


def reference(temp: np.ndarray, power: np.ndarray) -> np.ndarray:
    """Mirror of the kernel: per-CTA tiles, stale cross-tile reads."""
    out = np.zeros((NY, NX), dtype=np.float32)
    bx, by = BLOCK
    for cy in range(GRID[1]):
        for cx in range(GRID[0]):
            tile = temp[cy * by : (cy + 1) * by, cx * bx : (cx + 1) * bx].copy()
            for _step in range(TIME_STEPS):
                new_tile = tile.copy()
                for ty in range(by):
                    for tx in range(bx):
                        gx, gy = cx * bx + tx, cy * by + ty
                        center = tile[ty, tx]

                        def fetch(axis: str, delta: int) -> np.float32:
                            if axis == "x":
                                if (tx == 0 and delta < 0) or (tx == bx - 1 and delta > 0):
                                    if (gx == 0 and delta < 0) or (gx == NX - 1 and delta > 0):
                                        return center
                                    return temp[gy, gx + delta]  # stale global
                                return tile[ty, tx + delta]
                            if (ty == 0 and delta < 0) or (ty == by - 1 and delta > 0):
                                if (gy == 0 and delta < 0) or (gy == NY - 1 and delta > 0):
                                    return center
                                return temp[gy + delta, gx]
                            return tile[ty + delta, tx]

                        s = f32_add(fetch("y", -1), fetch("y", +1))
                        c2 = f32_add(center, center)
                        s = f32_sub(s, c2)
                        s = f32_mul(s, RY1)
                        acc = f32_add(power[gy, gx], s)
                        s = f32_add(fetch("x", -1), fetch("x", +1))
                        s = f32_sub(s, c2)
                        s = f32_mul(s, RX1)
                        acc = f32_add(acc, s)
                        s = f32_sub(AMB, center)
                        s = f32_mul(s, RZ1)
                        acc = f32_add(acc, s)
                        acc = f32_mul(acc, STEP_DIV_CAP)
                        new = f32_add(center, acc)
                        for at_boundary in (gx in (0, NX - 1), gy in (0, NY - 1)):
                            if at_boundary:
                                new = f32_add(
                                    f32_mul(f32_sub(new, AMB), BOUNDARY_BLEND), AMB
                                )
                                new = np.float32(max(float(new), float(MIN_TEMP)))
                                new = np.float32(min(float(new), float(MAX_TEMP)))
                        new_tile[ty, tx] = new
                tile = new_tile
            out[cy * by : (cy + 1) * by, cx * bx : (cx + 1) * bx] = tile
    return out


def build() -> KernelInstance:
    k = build_program()
    program = k.build()
    rng = np.random.default_rng(SEED)
    temp = float_inputs(rng, (NY, NX), lo=70.0, hi=90.0)
    power = float_inputs(rng, (NY, NX), lo=0.0, hi=2.0)

    sim = GPUSimulator()
    temp_addr = sim.alloc_array(temp)
    power_addr = sim.alloc_array(power)
    out_addr = sim.alloc_zeros(NY * NX * 4)
    params = pack_params(
        k.param_layout, {"temp": temp_addr, "power": power_addr, "out": out_addr}
    )
    return KernelInstance(
        spec=None,
        program=program,
        geometry=LaunchGeometry(grid=GRID, block=BLOCK),
        param_bytes=params,
        initial_memory=sim.memory,
        outputs=(OutputBuffer("out", out_addr, np.dtype(np.float32), NY * NX),),
        reference={"out": reference(temp, power)},
    )


SPEC = register(
    KernelSpec(
        suite="Rodinia",
        app="HotSpot",
        kernel_name="calculate_temp",
        kernel_id="K1",
        build_fn=build,
        paper_threads=9216,
        paper_fault_sites=3.44e7,
        scaling_note=f"{NX}x{NY} grid, {GRID[0] * GRID[1]} CTAs of {BLOCK[0] * BLOCK[1]} threads, {TIME_STEPS} steps",
    )
)
