"""2MM — Polybench ``mm2_kernel1`` (K1): tmp = A @ B.

The paper injects into the first of 2MM's two matrix-multiply kernels;
like GEMM it collapses to a single representative thread.
"""

from __future__ import annotations

import numpy as np

from ..gpu import GPUSimulator, KernelBuilder, LaunchGeometry, pack_params
from .common import emit_global_xy, f32_mad, float_inputs
from .registry import KernelInstance, KernelSpec, OutputBuffer, register

NI = 16
NJ = 16
NK = 16
BLOCK = (4, 4)
GRID = (NJ // BLOCK[0], NI // BLOCK[1])
SEED = 0x2AA0


def build_program() -> KernelBuilder:
    k = KernelBuilder("mm2_kernel1")
    a_ptr, b_ptr, tmp_ptr = k.params("a", "b", "tmp")
    r = k.regs("i", "j", "t", "kk", "addr_a", "addr_b", "addr_t", "acc", "av", "bv")

    emit_global_xy(k, r.j, r.i, r.t)

    k.mul("u32", r.addr_t, r.i, NJ)
    k.add("u32", r.addr_t, r.addr_t, r.j)
    k.shl("u32", r.addr_t, r.addr_t, 2)
    k.ld("u32", r.t, tmp_ptr)
    k.add("u32", r.addr_t, r.addr_t, r.t)

    k.mul("u32", r.addr_a, r.i, NK)
    k.shl("u32", r.addr_a, r.addr_a, 2)
    k.ld("u32", r.t, a_ptr)
    k.add("u32", r.addr_a, r.addr_a, r.t)
    k.shl("u32", r.addr_b, r.j, 2)
    k.ld("u32", r.t, b_ptr)
    k.add("u32", r.addr_b, r.addr_b, r.t)

    k.mov("f32", r.acc, 0.0)
    with k.loop("u32", r.kk, 0, NK):
        k.ld("f32", r.av, k.global_ref(r.addr_a))
        k.ld("f32", r.bv, k.global_ref(r.addr_b))
        k.mad_op("f32", r.acc, r.av, r.bv, r.acc)
        k.add("u32", r.addr_a, r.addr_a, 4)
        k.add("u32", r.addr_b, r.addr_b, 4 * NJ)

    k.st("f32", k.global_ref(r.addr_t), r.acc)
    k.retp()
    return k


def reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    out = np.empty((NI, NJ), dtype=np.float32)
    for i in range(NI):
        for j in range(NJ):
            acc = np.float32(0.0)
            for kk in range(NK):
                acc = f32_mad(a[i, kk], b[kk, j], acc)
            out[i, j] = acc
    return out


def build() -> KernelInstance:
    k = build_program()
    program = k.build()
    rng = np.random.default_rng(SEED)
    a = float_inputs(rng, (NI, NK))
    b = float_inputs(rng, (NK, NJ))

    sim = GPUSimulator()
    a_addr = sim.alloc_array(a)
    b_addr = sim.alloc_array(b)
    tmp_addr = sim.alloc_zeros(NI * NJ * 4)
    params = pack_params(k.param_layout, {"a": a_addr, "b": b_addr, "tmp": tmp_addr})
    return KernelInstance(
        spec=None,
        program=program,
        geometry=LaunchGeometry(grid=GRID, block=BLOCK),
        param_bytes=params,
        initial_memory=sim.memory,
        outputs=(OutputBuffer("tmp", tmp_addr, np.dtype(np.float32), NI * NJ),),
        reference={"tmp": reference(a, b)},
    )


SPEC = register(
    KernelSpec(
        suite="Polybench",
        app="2MM",
        kernel_name="mm2_kernel1",
        kernel_id="K1",
        build_fn=build,
        paper_threads=16384,
        paper_fault_sites=5.55e8,
        scaling_note=f"{NI}x{NJ}x{NK}, {GRID[0] * GRID[1]} CTAs of {BLOCK[0] * BLOCK[1]} threads",
    )
)
