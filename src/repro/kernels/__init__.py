"""Workload substrate: the paper's 11 applications (17 kernels).

Importing this package registers every kernel; registration order follows
the paper's Table I (Rodinia first, then Polybench), with NN appended
(it appears in Table VII only).
"""

from .registry import (
    KernelInstance,
    KernelSpec,
    OutputBuffer,
    all_kernels,
    get_kernel,
    load_instance,
)

# Table I order.
from . import hotspot  # noqa: F401  (K1)
from . import kmeans  # noqa: F401  (K1, K2)
from . import gaussian  # noqa: F401  (K1, K2, K125, K126)
from . import pathfinder  # noqa: F401  (K1)
from . import lud  # noqa: F401  (K44, K45, K46)
from . import conv2d  # noqa: F401  (K1)
from . import mvt  # noqa: F401  (K1)
from . import mm2  # noqa: F401  (K1)
from . import gemm  # noqa: F401  (K1)
from . import syrk  # noqa: F401  (K1)
from . import nn  # noqa: F401  (K1, Table VII only)

__all__ = [
    "KernelInstance",
    "KernelSpec",
    "OutputBuffer",
    "all_kernels",
    "get_kernel",
    "load_instance",
]
