"""SYRK — Polybench ``syrk_kernel`` (K1): C = alpha*A@A^T + beta*C.

Same single-thread-group, loop-dominated shape as GEMM (Table VII: 98.1 %
of instructions in the 128-iteration loop; ours is 16 iterations).
"""

from __future__ import annotations

import numpy as np

from ..gpu import GPUSimulator, KernelBuilder, LaunchGeometry, pack_params
from .common import emit_global_xy, f32_mad, f32_mul, float_inputs
from .registry import KernelInstance, KernelSpec, OutputBuffer, register

N = 16  # C is N x N
M = 16  # A is N x M
BLOCK = (4, 4)
GRID = (N // BLOCK[0], N // BLOCK[1])
ALPHA = np.float32(0.75)
BETA = np.float32(1.25)
SEED = 0x5781


def build_program() -> KernelBuilder:
    k = KernelBuilder("syrk_kernel")
    a_ptr, c_ptr, alpha, beta = k.params("a", "c", "alpha_f32", "beta_f32")
    r = k.regs("i", "j", "t", "kk", "addr_ai", "addr_aj", "addr_c", "acc", "av", "bv")

    emit_global_xy(k, r.j, r.i, r.t)

    # addr_c = c + 4 * (i * N + j); scale C by beta first (Polybench order).
    k.mul("u32", r.addr_c, r.i, N)
    k.add("u32", r.addr_c, r.addr_c, r.j)
    k.shl("u32", r.addr_c, r.addr_c, 2)
    k.ld("u32", r.t, c_ptr)
    k.add("u32", r.addr_c, r.addr_c, r.t)
    k.ld("f32", r.av, k.global_ref(r.addr_c))
    k.ld("f32", r.bv, beta)
    k.mul("f32", r.av, r.av, r.bv)
    k.st("f32", k.global_ref(r.addr_c), r.av)

    # Row walks for A[i][*] and A[j][*].
    k.ld("u32", r.t, a_ptr)
    k.mul("u32", r.addr_ai, r.i, M)
    k.shl("u32", r.addr_ai, r.addr_ai, 2)
    k.add("u32", r.addr_ai, r.addr_ai, r.t)
    k.mul("u32", r.addr_aj, r.j, M)
    k.shl("u32", r.addr_aj, r.addr_aj, 2)
    k.add("u32", r.addr_aj, r.addr_aj, r.t)

    k.mov("f32", r.acc, 0.0)
    with k.loop("u32", r.kk, 0, M):
        k.ld("f32", r.av, k.global_ref(r.addr_ai))
        k.ld("f32", r.bv, k.global_ref(r.addr_aj))
        k.mul("f32", r.av, r.av, r.bv)
        k.ld("f32", r.bv, alpha)
        k.mad_op("f32", r.acc, r.av, r.bv, r.acc)
        k.add("u32", r.addr_ai, r.addr_ai, 4)
        k.add("u32", r.addr_aj, r.addr_aj, 4)

    k.ld("f32", r.av, k.global_ref(r.addr_c))
    k.add("f32", r.acc, r.acc, r.av)
    k.st("f32", k.global_ref(r.addr_c), r.acc)
    k.retp()
    return k


def reference(a: np.ndarray, c: np.ndarray) -> np.ndarray:
    out = np.empty((N, N), dtype=np.float32)
    for i in range(N):
        for j in range(N):
            acc = np.float32(0.0)
            for kk in range(M):
                prod = f32_mul(a[i, kk], a[j, kk])
                acc = f32_mad(prod, ALPHA, acc)
            out[i, j] = np.float32(float(acc) + float(f32_mul(c[i, j], BETA)))
    return out


def build() -> KernelInstance:
    k = build_program()
    program = k.build()
    rng = np.random.default_rng(SEED)
    a = float_inputs(rng, (N, M))
    c = float_inputs(rng, (N, N))

    sim = GPUSimulator()
    a_addr = sim.alloc_array(a)
    c_addr = sim.alloc_array(c)
    params = pack_params(
        k.param_layout,
        {"a": a_addr, "c": c_addr, "alpha_f32": float(ALPHA), "beta_f32": float(BETA)},
    )
    return KernelInstance(
        spec=None,
        program=program,
        geometry=LaunchGeometry(grid=GRID, block=BLOCK),
        param_bytes=params,
        initial_memory=sim.memory,
        outputs=(OutputBuffer("c", c_addr, np.dtype(np.float32), N * N),),
        reference={"c": reference(a, c)},
    )


SPEC = register(
    KernelSpec(
        suite="Polybench",
        app="SYRK",
        kernel_name="syrk_kernel",
        kernel_id="K1",
        build_fn=build,
        paper_threads=16384,
        paper_fault_sites=6.23e8,
        scaling_note=f"{N}x{N} output, {GRID[0] * GRID[1]} CTAs of {BLOCK[0] * BLOCK[1]} threads",
    )
)
