"""K-Means — Rodinia ``invert_mapping`` (K1) and ``kmeansPoint`` (K2).

K1 transposes the feature matrix from [point][feature] to [feature][point]
(a short feature loop per thread).  K2 assigns each point to its nearest
cluster centre (nested cluster x feature loops, with a divergent
minimum-update).  Tail threads beyond ``npoints`` exit early, giving the
two-group thread structure the paper reports for K-Means.

Scaling: paper uses 2304 threads, 34 features; we use 120 points (128
threads, 32-thread CTAs), 6 features, 4 clusters.
"""

from __future__ import annotations

import numpy as np

from ..gpu import GPUSimulator, KernelBuilder, LaunchGeometry, pack_params
from .common import emit_global_tid_x, f32_mad, f32_sub, float_inputs
from .registry import KernelInstance, KernelSpec, OutputBuffer, register

NPOINTS = 120
NFEATURES = 6
NCLUSTERS = 4
BLOCK = (32, 1)
GRID = (4, 1)
SEED = 0x6B6D


def build_invert_mapping() -> KernelBuilder:
    k = KernelBuilder("invert_mapping")
    in_ptr, out_ptr, npoints = k.params("input", "output", "npoints")
    r = k.regs("gid", "t", "f", "addr_in", "addr_out", "val")

    emit_global_tid_x(k, r.gid, r.t)
    k.ld("u32", r.t, npoints)
    with k.if_lt("u32", r.gid, r.t):
        # addr_in walks the point's row; addr_out strides by npoints.
        k.mul("u32", r.addr_in, r.gid, NFEATURES)
        k.shl("u32", r.addr_in, r.addr_in, 2)
        k.ld("u32", r.t, in_ptr)
        k.add("u32", r.addr_in, r.addr_in, r.t)
        k.shl("u32", r.addr_out, r.gid, 2)
        k.ld("u32", r.t, out_ptr)
        k.add("u32", r.addr_out, r.addr_out, r.t)
        with k.loop("u32", r.f, 0, NFEATURES):
            k.ld("f32", r.val, k.global_ref(r.addr_in))
            k.st("f32", k.global_ref(r.addr_out), r.val)
            k.add("u32", r.addr_in, r.addr_in, 4)
            k.add("u32", r.addr_out, r.addr_out, 4 * NPOINTS)
    k.retp()
    return k


def build_kmeans_point() -> KernelBuilder:
    k = KernelBuilder("kmeansPoint")
    feat_ptr, clusters_ptr, membership_ptr, npoints = k.params(
        "features", "clusters", "membership", "npoints"
    )
    r = k.regs(
        "gid", "t", "c", "f", "addr_f", "addr_c", "best", "bestidx",
        "dist", "diff", "fv", "cv", "addr_m",
    )
    p = k.pred("pmin")

    emit_global_tid_x(k, r.gid, r.t)
    k.ld("u32", r.t, npoints)
    with k.if_lt("u32", r.gid, r.t):
        k.mov("f32", r.best, 3.4e38)
        k.mov("u32", r.bestidx, 0)
        k.ld("u32", r.addr_c, clusters_ptr)
        with k.loop("u32", r.c, 0, NCLUSTERS, pred_name="pc"):
            k.mov("f32", r.dist, 0.0)
            # features laid out [feature][point] (K1's inverted layout).
            k.shl("u32", r.addr_f, r.gid, 2)
            k.ld("u32", r.t, feat_ptr)
            k.add("u32", r.addr_f, r.addr_f, r.t)
            with k.loop("u32", r.f, 0, NFEATURES, pred_name="pf"):
                k.ld("f32", r.fv, k.global_ref(r.addr_f))
                k.ld("f32", r.cv, k.global_ref(r.addr_c))
                k.sub("f32", r.diff, r.fv, r.cv)
                k.mad_op("f32", r.dist, r.diff, r.diff, r.dist)
                k.add("u32", r.addr_f, r.addr_f, 4 * NPOINTS)
                k.add("u32", r.addr_c, r.addr_c, 4)
            # Divergent minimum update, like the CUDA source's if-block.
            skip = k.fresh_label()
            k.set("lt", "f32", p, r.dist, r.best)
            k.bra(skip, guard=(p, "ne"))
            k.mov("f32", r.best, r.dist)
            k.mov("u32", r.bestidx, r.c)
            k.label(skip)
            k.nop()
        k.shl("u32", r.addr_m, r.gid, 2)
        k.ld("u32", r.t, membership_ptr)
        k.add("u32", r.addr_m, r.addr_m, r.t)
        k.st("u32", k.global_ref(r.addr_m), r.bestidx)
    k.retp()
    return k


def reference_invert(features: np.ndarray) -> np.ndarray:
    return features.T.copy()


def reference_membership(inverted: np.ndarray, clusters: np.ndarray) -> np.ndarray:
    membership = np.empty(NPOINTS, dtype=np.uint32)
    for point in range(NPOINTS):
        best = np.float32(3.4e38)
        best_idx = 0
        for c in range(NCLUSTERS):
            dist = np.float32(0.0)
            for f in range(NFEATURES):
                diff = f32_sub(inverted[f, point], clusters[c, f])
                dist = f32_mad(diff, diff, dist)
            if dist < best:
                best = dist
                best_idx = c
        membership[point] = best_idx
    return membership


def _stage_inputs(rng: np.random.Generator):
    features = float_inputs(rng, (NPOINTS, NFEATURES))
    clusters = float_inputs(rng, (NCLUSTERS, NFEATURES))
    return features, clusters


def build_k1() -> KernelInstance:
    k = build_invert_mapping()
    program = k.build()
    rng = np.random.default_rng(SEED)
    features, _ = _stage_inputs(rng)

    sim = GPUSimulator()
    in_addr = sim.alloc_array(features)
    out_addr = sim.alloc_zeros(NFEATURES * NPOINTS * 4)
    params = pack_params(
        k.param_layout, {"input": in_addr, "output": out_addr, "npoints": NPOINTS}
    )
    return KernelInstance(
        spec=None,
        program=program,
        geometry=LaunchGeometry(grid=GRID, block=BLOCK),
        param_bytes=params,
        initial_memory=sim.memory,
        outputs=(OutputBuffer("output", out_addr, np.dtype(np.float32), NFEATURES * NPOINTS),),
        reference={"output": reference_invert(features)},
    )


def build_k2() -> KernelInstance:
    k = build_kmeans_point()
    program = k.build()
    rng = np.random.default_rng(SEED)
    features, clusters = _stage_inputs(rng)
    inverted = reference_invert(features)

    sim = GPUSimulator()
    feat_addr = sim.alloc_array(inverted)
    clusters_addr = sim.alloc_array(clusters)
    membership_addr = sim.alloc_zeros(NPOINTS * 4)
    params = pack_params(
        k.param_layout,
        {
            "features": feat_addr,
            "clusters": clusters_addr,
            "membership": membership_addr,
            "npoints": NPOINTS,
        },
    )
    return KernelInstance(
        spec=None,
        program=program,
        geometry=LaunchGeometry(grid=GRID, block=BLOCK),
        param_bytes=params,
        initial_memory=sim.memory,
        outputs=(OutputBuffer("membership", membership_addr, np.dtype(np.uint32), NPOINTS),),
        reference={"membership": reference_membership(inverted, clusters)},
    )


SPEC_K1 = register(
    KernelSpec(
        suite="Rodinia",
        app="K-Means",
        kernel_name="invert_mapping",
        kernel_id="K1",
        build_fn=build_k1,
        paper_threads=2304,
        paper_fault_sites=1.47e7,
        scaling_note=f"{NPOINTS} points x {NFEATURES} features, {GRID[0]} CTAs of {BLOCK[0]} threads",
    )
)

SPEC_K2 = register(
    KernelSpec(
        suite="Rodinia",
        app="K-Means",
        kernel_name="kmeansPoint",
        kernel_id="K2",
        build_fn=build_k2,
        paper_threads=2304,
        paper_fault_sites=9.67e7,
        scaling_note=f"{NCLUSTERS} clusters, {NPOINTS} points x {NFEATURES} features",
    )
)
