"""PathFinder — Rodinia ``dynproc_kernel`` (K1).

Dynamic-programming shortest path over a grid of integer weights: each
thread owns one column of its CTA's tile, shared memory holds the running
cost row, and an iteration loop with two barriers per step advances the
front.  CTA-edge threads (tile column 0 / BLOCK-1) skip one neighbour-min
block per iteration, producing exactly the two-representative-thread,
large-common-block structure of the paper's Fig. 5 / Table V.

The CUDA original overlaps CTAs with a halo; we keep tiles disjoint and
clamp at tile edges (the NumPy reference models the same tiling), which
preserves the code structure that matters for pruning.

Scaling: paper uses 1280 threads / 20 DP iterations; ours is 128 columns
(32-thread CTAs) and 8 iterations.
"""

from __future__ import annotations

import numpy as np

from ..gpu import GPUSimulator, KernelBuilder, LaunchGeometry, pack_params
from .registry import KernelInstance, KernelSpec, OutputBuffer, register

COLS = 128
ROWS = 9  # row 0 seeds the DP; ITERATIONS = ROWS - 1 kernel steps
ITERATIONS = ROWS - 1
BLOCK = (32, 1)
GRID = (COLS // BLOCK[0], 1)
SEED = 0x9AFD


def build_program() -> KernelBuilder:
    k = KernelBuilder("dynproc_kernel")
    wall_ptr, result_ptr = k.params("wall", "result")
    r = k.regs("tx", "gid", "t", "it", "addr", "best", "nbr", "wv", "saddr")
    p = k.pred("p0")

    k.cvt("u32", r.tx, k.tid.x)
    k.cvt("u32", r.gid, k.ctaid.x)
    k.cvt("u32", r.t, k.ntid.x)
    k.mul("u32", r.gid, r.gid, r.t)
    k.add("u32", r.gid, r.gid, r.tx)

    prev = k.shared_alloc(BLOCK[0] * 4)

    # prev[tx] = wall[0][gid]
    k.shl("u32", r.addr, r.gid, 2)
    k.ld("u32", r.t, wall_ptr)
    k.add("u32", r.addr, r.addr, r.t)
    k.ld("u32", r.wv, k.global_ref(r.addr))
    k.shl("u32", r.saddr, r.tx, 2)
    k.st("u32", k.shared_ref(r.saddr, prev), r.wv)
    k.bar()

    with k.loop("u32", r.it, 1, ROWS):
        # best = prev[tx]
        k.ld("u32", r.best, k.shared_ref(r.saddr, prev))
        # if tx > 0: best = min(best, prev[tx-1])
        skip_left = k.fresh_label()
        k.set("eq", "u32", p, r.tx, 0)
        k.bra(skip_left, guard=(p, "eq"))
        k.ld("u32", r.nbr, k.shared_ref(r.saddr, prev - 4))
        k.min("u32", r.best, r.best, r.nbr)
        k.label(skip_left)
        k.nop()
        # if tx < BLOCK-1: best = min(best, prev[tx+1])
        skip_right = k.fresh_label()
        k.set("eq", "u32", p, r.tx, BLOCK[0] - 1)
        k.bra(skip_right, guard=(p, "eq"))
        k.ld("u32", r.nbr, k.shared_ref(r.saddr, prev + 4))
        k.min("u32", r.best, r.best, r.nbr)
        k.label(skip_right)
        k.nop()
        # best += wall[it][gid]
        k.mul("u32", r.addr, r.it, COLS)
        k.add("u32", r.addr, r.addr, r.gid)
        k.shl("u32", r.addr, r.addr, 2)
        k.ld("u32", r.t, wall_ptr)
        k.add("u32", r.addr, r.addr, r.t)
        k.ld("u32", r.wv, k.global_ref(r.addr))
        k.add("u32", r.best, r.best, r.wv)
        # Double-barrier hand-off into the shared row.
        k.bar()
        k.st("u32", k.shared_ref(r.saddr, prev), r.best)
        k.bar()

    # result[gid] = prev[tx]
    k.ld("u32", r.best, k.shared_ref(r.saddr, prev))
    k.shl("u32", r.addr, r.gid, 2)
    k.ld("u32", r.t, result_ptr)
    k.add("u32", r.addr, r.addr, r.t)
    k.st("u32", k.global_ref(r.addr), r.best)
    k.retp()
    return k


def reference(wall: np.ndarray) -> np.ndarray:
    """Tile-local DP matching the kernel's disjoint-CTA neighbourhoods."""
    result = np.empty(COLS, dtype=np.uint32)
    bs = BLOCK[0]
    for cta in range(GRID[0]):
        prev = wall[0, cta * bs : (cta + 1) * bs].astype(np.uint64)
        for row in range(1, ROWS):
            cur = np.empty_like(prev)
            for tx in range(bs):
                best = prev[tx]
                if tx > 0:
                    best = min(best, prev[tx - 1])
                if tx < bs - 1:
                    best = min(best, prev[tx + 1])
                cur[tx] = (best + wall[row, cta * bs + tx]) & 0xFFFFFFFF
            prev = cur
        result[cta * bs : (cta + 1) * bs] = prev.astype(np.uint32)
    return result


def build() -> KernelInstance:
    k = build_program()
    program = k.build()
    rng = np.random.default_rng(SEED)
    wall = rng.integers(0, 10, size=(ROWS, COLS), dtype=np.uint32)

    sim = GPUSimulator()
    wall_addr = sim.alloc_array(wall)
    result_addr = sim.alloc_zeros(COLS * 4)
    params = pack_params(k.param_layout, {"wall": wall_addr, "result": result_addr})
    return KernelInstance(
        spec=None,
        program=program,
        geometry=LaunchGeometry(grid=GRID, block=BLOCK),
        param_bytes=params,
        initial_memory=sim.memory,
        outputs=(OutputBuffer("result", result_addr, np.dtype(np.uint32), COLS),),
        reference={"result": reference(wall)},
    )


SPEC = register(
    KernelSpec(
        suite="Rodinia",
        app="PathFinder",
        kernel_name="dynproc_kernel",
        kernel_id="K1",
        build_fn=build,
        paper_threads=1280,
        paper_fault_sites=2.77e7,
        scaling_note=f"{COLS} columns, {ITERATIONS} DP iterations, {GRID[0]} CTAs of {BLOCK[0]} threads",
    )
)
