"""Load campaign telemetry artifacts into one typed handle.

A campaign leaves up to two kinds of files behind: the JSONL event log
(``--telemetry-out``) and the run manifest (``--manifest``).
:func:`load_campaign` accepts any mix of them — multiple event logs
concatenate (a campaign sharded over several invocations), manifests are
matched up by their ``events_path`` when possible — and returns a
:class:`CampaignLog` with the events pre-bucketed by type.

Schema safety lives one layer down: :func:`~repro.telemetry.read_events`
rejects logs written by a newer :data:`~repro.telemetry.EVENTS_SCHEMA_VERSION`
and tolerates older, headerless logs (missing fields fall back to their
dataclass defaults).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ReproError
from ..telemetry import (
    CampaignEvent,
    HeartbeatEvent,
    InjectionEvent,
    RunManifest,
    SimRunEvent,
    StageEvent,
    TelemetryEvent,
    load_manifest,
    read_events,
)


@dataclass
class CampaignLog:
    """Everything recorded about one campaign, ready to analyse."""

    sources: list[str] = field(default_factory=list)
    events: list[TelemetryEvent] = field(default_factory=list)
    injections: list[InjectionEvent] = field(default_factory=list)
    sim_runs: list[SimRunEvent] = field(default_factory=list)
    stages: list[StageEvent] = field(default_factory=list)
    campaigns: list[CampaignEvent] = field(default_factory=list)
    heartbeats: list[HeartbeatEvent] = field(default_factory=list)
    manifests: list[RunManifest] = field(default_factory=list)

    @property
    def kernel(self) -> str:
        for manifest in self.manifests:
            if manifest.kernel:
                return manifest.kernel
        return ""

    def merged_metrics(self) -> dict:
        """Metric totals across every attached manifest (counters and
        histogram stats add, gauges last-write-win — matching
        :meth:`~repro.telemetry.MetricsRegistry.merge`)."""
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for manifest in self.manifests:
            if not manifest.metrics:
                continue
            for name, value in manifest.metrics.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + value
            for name, value in manifest.metrics.get("gauges", {}).items():
                gauges[name] = value
            for name, summary in manifest.metrics.get("histograms", {}).items():
                if not summary.get("count"):
                    continue
                merged = histograms.get(name)
                if merged is None:
                    histograms[name] = dict(summary)
                else:
                    merged["count"] += summary["count"]
                    merged["total"] += summary["total"]
                    merged["min"] = min(merged["min"], summary["min"])
                    merged["max"] = max(merged["max"], summary["max"])
                    merged["mean"] = merged["total"] / merged["count"]
        return {"counters": counters, "gauges": gauges, "histograms": histograms}


def _looks_like_manifest(path: Path) -> bool:
    """Manifest files are single JSON objects with a ``version`` key;
    event logs are JSONL.  Sniff the first non-blank character run."""
    if path.suffix == ".jsonl":
        return False
    try:
        head = path.read_text()[:4096].lstrip()
    except OSError as exc:
        raise ReproError(f"cannot read {path}: {exc}") from None
    if not head.startswith("{"):
        return False
    try:
        first_line = json.loads(head.splitlines()[0])
    except (json.JSONDecodeError, IndexError):
        # Pretty-printed JSON spans lines: a manifest, not JSONL.
        return True
    # One JSON object per line with an "event"/"schema" key = event log.
    return "event" not in first_line and "schema" not in first_line


def load_campaign(
    paths: list[str | Path],
    manifest_paths: list[str | Path] | None = None,
) -> CampaignLog:
    """Load event logs and manifests into one :class:`CampaignLog`.

    ``paths`` may mix event logs and manifests — each file is sniffed.
    Manifests that name an ``events_path`` which was not already given are
    pulled in automatically when that file still exists.
    """
    log = CampaignLog()
    event_paths: list[Path] = []
    seen: set[str] = set()
    for raw in list(paths) + list(manifest_paths or []):
        path = Path(raw)
        if not path.exists():
            raise ReproError(f"no such telemetry file: {path}")
        if _looks_like_manifest(path):
            manifest = load_manifest(path)
            log.manifests.append(manifest)
            if manifest.events_path:
                sibling = Path(manifest.events_path)
                if sibling.exists() and str(sibling) not in seen:
                    seen.add(str(sibling))
                    event_paths.append(sibling)
        elif str(path) not in seen:
            seen.add(str(path))
            event_paths.append(path)
    for path in event_paths:
        log.sources.append(str(path))
        for event in read_events(path):
            log.events.append(event)
            if isinstance(event, InjectionEvent):
                log.injections.append(event)
            elif isinstance(event, SimRunEvent):
                log.sim_runs.append(event)
            elif isinstance(event, StageEvent):
                log.stages.append(event)
            elif isinstance(event, CampaignEvent):
                log.campaigns.append(event)
            elif isinstance(event, HeartbeatEvent):
                log.heartbeats.append(event)
    if not log.events and not log.manifests:
        raise ReproError("no events or manifests found in the given files")
    return log
