"""Campaign observatory: turn telemetry artifacts into answers.

The injection stack *records* richly — JSONL event logs, metric
snapshots, run manifests — but raw JSONL answers no questions.  This
package is the read side:

* :mod:`~repro.observe.loader` — load one or more event logs (plus
  optional manifests) into a typed :class:`CampaignLog`;
* :mod:`~repro.observe.report` — build a campaign report: outcome
  profile with Wilson CIs, per-phase latency attribution, depth-tertile
  splits, checkpoint and compiled-chain cache efficiency, per-worker
  load balance and straggler sites, pruning funnel;
* :mod:`~repro.observe.propagation` — aggregate per-injection
  propagation records into the PC vulnerability map, masking-depth
  histograms, SDC signatures and pruning-group coherence sections
  (``repro report --propagation``, ``repro trace-fault``);
* :mod:`~repro.observe.render` — render a report as text, markdown or
  JSON (the ``repro report`` CLI command);
* :mod:`~repro.observe.diff` — compare two report JSONs side by side
  (``repro report --diff A B``);
* :mod:`~repro.observe.history` — machine-readable benchmark history
  with host-keyed, tolerance-band regression checking
  (``repro bench-check``);
* :mod:`~repro.observe.live` — streaming telemetry plane for *in-flight*
  campaigns: worker delta stream, rolling :class:`LiveAggregator` with
  Wilson-CI convergence signal, crash flight recorder;
* :mod:`~repro.observe.statusd` — live front-ends: the ``--live-port``
  HTTP ``/status`` endpoint, atomic status-file writer, and the
  ``repro watch`` dashboard loop.
"""

from .diff import diff_reports, load_report_json, render_diff_text
from .history import (
    HISTORY_SCHEMA_VERSION,
    append_history,
    check_history,
    load_history,
    write_suite_snapshot,
)
from .live import (
    LIVE_STATUS_VERSION,
    FlightRecorder,
    LiveAggregator,
    LiveChannel,
    QueueDrain,
    check_convergence,
    load_flight_dump,
    max_half_width,
    render_live,
)
from .loader import CampaignLog, load_campaign
from .propagation import build_propagation_section, render_trace_text
from .render import render_json, render_markdown, render_text
from .report import build_report
from .statusd import StatusFileWriter, StatusServer, watch

__all__ = [
    "HISTORY_SCHEMA_VERSION",
    "LIVE_STATUS_VERSION",
    "CampaignLog",
    "FlightRecorder",
    "LiveAggregator",
    "LiveChannel",
    "QueueDrain",
    "StatusFileWriter",
    "StatusServer",
    "append_history",
    "build_propagation_section",
    "build_report",
    "check_convergence",
    "check_history",
    "diff_reports",
    "load_campaign",
    "load_flight_dump",
    "load_history",
    "load_report_json",
    "max_half_width",
    "render_diff_text",
    "render_json",
    "render_live",
    "render_markdown",
    "render_text",
    "render_trace_text",
    "watch",
    "write_suite_snapshot",
]
