"""Machine-readable benchmark history with regression checking.

Every benchmark run appends normalized records to
``benchmarks/results/history.jsonl`` — one JSON object per line carrying
``(suite, kernel, metric, value, unit, direction, git SHA, config,
timestamp)`` — and refreshes a per-suite ``BENCH_<suite>.json`` snapshot
holding the latest value of each metric.  ``repro bench-check`` replays
the history: for every ``(suite, kernel, metric)`` series the *baseline*
is the median of all prior observations, and the newest observation must
stay inside a tolerance band around it (direction-aware — ``lower`` means
smaller is better, e.g. seconds; ``higher`` means larger is better, e.g.
speedup factors).  Single-observation series pass as ``no-baseline``.

Baselines are **host-keyed**: each record carries the hostname it was
measured on, and ``check_history`` only builds series from records of
the checking host (``--host`` overrides, e.g. a stable label for a CI
runner pool).  Timings accumulated on one machine never gate runs on
different hardware.  Records written before the host field existed act
as wildcards — they seed the baseline on every host rather than
invalidating existing history.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from ..errors import ReproError
from ..telemetry.manifest import git_revision

HISTORY_SCHEMA_VERSION = 1

HISTORY_FILENAME = "history.jsonl"

#: Allowed drift around the baseline before a run counts as a regression.
DEFAULT_TOLERANCE = 0.25

#: Prior observations a series needs before a regression verdict is
#: *blocking*.  A median over one or two samples is too noisy to gate a
#: merge on — thinner series still report ``regression`` but carry
#: ``advisory=True`` so callers exit clean (with a warning).
MIN_BLOCKING_SAMPLES = 3

_DIRECTIONS = ("lower", "higher")


def history_path(results_dir: str | Path) -> Path:
    return Path(results_dir) / HISTORY_FILENAME


def append_history(
    results_dir: str | Path,
    suite: str,
    kernel: str,
    metric: str,
    value: float,
    *,
    unit: str = "",
    direction: str = "lower",
    config: dict | None = None,
    host: str | None = None,
) -> dict:
    """Append one normalized benchmark observation; returns the record.

    Also refreshes the suite's ``BENCH_<suite>.json`` snapshot so the
    latest numbers are greppable without replaying the JSONL.  ``host``
    defaults to this machine's hostname; pass a stable label when runs
    from interchangeable machines (a CI runner pool) should share one
    baseline.
    """
    if direction not in _DIRECTIONS:
        raise ReproError(f"direction must be one of {_DIRECTIONS}, got {direction!r}")
    record = {
        "schema": HISTORY_SCHEMA_VERSION,
        "suite": suite,
        "kernel": kernel,
        "metric": metric,
        "value": float(value),
        "unit": unit,
        "direction": direction,
        "host": host if host is not None else platform.node(),
        "git_rev": git_revision(),
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "config": dict(config or {}),
    }
    path = history_path(results_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a") as handle:
        handle.write(json.dumps(record) + "\n")
    write_suite_snapshot(results_dir, suite)
    return record


def load_history(
    results_dir: str | Path, suite: str | None = None
) -> list[dict]:
    """All history records (optionally one suite's), in append order."""
    path = history_path(results_dir)
    if not path.exists():
        return []
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("schema", 0) > HISTORY_SCHEMA_VERSION:
                raise ReproError(
                    f"history record uses schema {record.get('schema')!r}; "
                    f"this build understands up to {HISTORY_SCHEMA_VERSION}"
                )
            if suite is None or record.get("suite") == suite:
                records.append(record)
    return records


def write_suite_snapshot(results_dir: str | Path, suite: str) -> Path:
    """Write ``BENCH_<suite>.json``: the latest value per (kernel, metric)."""
    records = load_history(results_dir, suite)
    latest: dict[tuple[str, str], dict] = {}
    for record in records:
        latest[(record["kernel"], record["metric"])] = record
    snapshot = {
        "schema": HISTORY_SCHEMA_VERSION,
        "suite": suite,
        "entries": [
            {
                "kernel": kernel,
                "metric": metric,
                "value": record["value"],
                "unit": record["unit"],
                "direction": record["direction"],
                "git_rev": record["git_rev"],
                "created_at": record["created_at"],
                "observations": sum(
                    1
                    for r in records
                    if r["kernel"] == kernel and r["metric"] == metric
                ),
            }
            for (kernel, metric), record in sorted(latest.items())
        ],
    }
    path = Path(results_dir) / f"BENCH_{suite}.json"
    path.write_text(json.dumps(snapshot, indent=1) + "\n")
    return path


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def check_history(
    results_dir: str | Path,
    tolerance: float = DEFAULT_TOLERANCE,
    suite: str | None = None,
    host: str | None = None,
) -> list[dict]:
    """Compare each series' newest observation against its history.

    Returns one finding per ``(suite, kernel, metric)`` series:
    ``status`` is ``ok``, ``improved``, ``regression`` or ``no-baseline``;
    ``baseline`` is the median of all observations before the newest and
    ``baseline_samples`` how many observations built it.  A regression
    backed by fewer than :data:`MIN_BLOCKING_SAMPLES` prior observations
    is flagged ``advisory=True`` — report it, don't gate on it.
    An empty history raises — a check against nothing is a misconfigured
    CI job, not a pass.

    Series are restricted to records measured on ``host`` (default: this
    machine) plus legacy records with no host field, which count for
    every host.  A history that holds records for *other* hosts only
    raises with the known hosts listed — silently passing because
    another machine's numbers were ignored would defeat the gate.
    """
    records = load_history(results_dir, suite)
    if not records:
        raise ReproError(f"no benchmark history under {results_dir}")
    wanted = host if host is not None else platform.node()
    matching = [
        r for r in records if r.get("host") is None or r.get("host") == wanted
    ]
    if not matching:
        known = sorted({r.get("host") for r in records if r.get("host")})
        raise ReproError(
            f"no benchmark history for host {wanted!r} under {results_dir} "
            f"(known hosts: {', '.join(known) or 'none'}); run the suite "
            "here first or pass --host"
        )
    records = matching
    series: dict[tuple[str, str, str], list[dict]] = {}
    for record in records:
        key = (record["suite"], record["kernel"], record["metric"])
        series.setdefault(key, []).append(record)
    findings = []
    for (suite_name, kernel, metric), items in sorted(series.items()):
        newest = items[-1]
        prior = [r["value"] for r in items[:-1]]
        finding = {
            "suite": suite_name,
            "kernel": kernel,
            "metric": metric,
            "value": newest["value"],
            "unit": newest["unit"],
            "direction": newest["direction"],
            "observations": len(items),
        }
        finding["baseline_samples"] = len(prior)
        if not prior:
            finding.update(
                status="no-baseline", baseline=None, ratio=None, advisory=False
            )
            findings.append(finding)
            continue
        baseline = _median(prior)
        ratio = newest["value"] / baseline if baseline else None
        finding.update(baseline=baseline, ratio=ratio)
        if baseline == 0:
            finding["status"] = "ok" if newest["value"] == 0 else "regression"
        elif newest["direction"] == "lower":
            if newest["value"] > baseline * (1.0 + tolerance):
                finding["status"] = "regression"
            elif newest["value"] < baseline * (1.0 - tolerance):
                finding["status"] = "improved"
            else:
                finding["status"] = "ok"
        else:
            if newest["value"] < baseline * (1.0 - tolerance):
                finding["status"] = "regression"
            elif newest["value"] > baseline * (1.0 + tolerance):
                finding["status"] = "improved"
            else:
                finding["status"] = "ok"
        finding["advisory"] = (
            finding["status"] == "regression"
            and len(prior) < MIN_BLOCKING_SAMPLES
        )
        findings.append(finding)
    return findings
