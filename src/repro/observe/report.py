"""Build a campaign report from a :class:`~repro.observe.loader.CampaignLog`.

The report is a plain nested dict — renderers (text/markdown/JSON) and
tests consume the same structure.  Sections:

* ``meta``        — kernel, sources, counts, backends, wall-clock span;
* ``outcomes``    — per-outcome counts with Wilson confidence intervals;
* ``latency``     — per-injection duration percentiles;
* ``phases``      — where injection milliseconds go, by pipeline phase;
* ``tertiles``    — latency and phase mix by fault-site depth tertile;
* ``checkpoint``  — snapshot-store hit/miss/skip economics;
* ``resync``      — golden-resync splice rate, memo economics and the
  instructions reconstructed instead of executed;
* ``compiled``    — closure-chain bind-cache efficiency;
* ``workers``     — per-worker utilisation and load imbalance;
* ``stragglers``  — sites slower than the p99, with their phase splits;
* ``funnel``      — the pruning-stage site funnel;
* ``propagation`` — PC vulnerability map, masking-depth histograms, SDC
  signatures and pruning-group coherence (opt-in via ``propagation=True``;
  needs a tracing-enabled campaign — see ``repro.observe.propagation``).

Sections whose inputs were not recorded (no checkpoints, serial run, no
stages) are present but ``None`` so renderers can skip them cleanly.
"""

from __future__ import annotations

from ..stats.intervals import wilson_ci
from ..telemetry.events import PHASE_NAMES
from .loader import CampaignLog
from .propagation import build_propagation_section

#: Straggler list length bound: enough to eyeball, short enough to print.
MAX_STRAGGLERS = 10

TERTILE_LABELS = ("shallow", "middle", "deep")


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile over an ascending list (0 < q <= 100)."""
    if not sorted_values:
        return 0.0
    rank = max(1, round(q / 100.0 * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def _latency_summary(durations: list[float]) -> dict:
    ordered = sorted(durations)
    total = sum(ordered)
    return {
        "count": len(ordered),
        "total_s": total,
        "mean_s": total / len(ordered) if ordered else 0.0,
        "p50_s": _percentile(ordered, 50),
        "p90_s": _percentile(ordered, 90),
        "p99_s": _percentile(ordered, 99),
        "max_s": ordered[-1] if ordered else 0.0,
    }


def _phase_totals(injections) -> dict[str, float]:
    totals: dict[str, float] = {}
    for event in injections:
        if event.phases:
            for name, seconds in event.phases.items():
                totals[name] = totals.get(name, 0.0) + seconds
    return totals


def _phase_section(injections) -> dict | None:
    totals = _phase_totals(injections)
    if not totals:
        return None
    duration_total = sum(e.duration_s for e in injections)
    attributed = sum(totals.values())
    ordered = sorted(PHASE_NAMES, key=list(PHASE_NAMES).index)
    rows = []
    for name in ordered:
        if name not in totals:
            continue
        seconds = totals[name]
        rows.append({
            "phase": name,
            "total_s": seconds,
            "mean_s": seconds / len(injections),
            "share": seconds / duration_total if duration_total else 0.0,
        })
    for name in sorted(set(totals) - set(ordered)):  # future phases
        seconds = totals[name]
        rows.append({
            "phase": name,
            "total_s": seconds,
            "mean_s": seconds / len(injections),
            "share": seconds / duration_total if duration_total else 0.0,
        })
    return {
        "rows": rows,
        "attributed_s": attributed,
        "unattributed_s": max(0.0, duration_total - attributed),
        "duration_total_s": duration_total,
    }


def _tertile_section(injections) -> dict | None:
    if not injections:
        return None
    depths = sorted(e.dyn_index for e in injections)
    n = len(depths)
    cut1 = depths[(n - 1) // 3]
    cut2 = depths[(2 * (n - 1)) // 3]
    buckets: dict[str, list] = {label: [] for label in TERTILE_LABELS}
    for event in injections:
        if event.dyn_index <= cut1:
            buckets["shallow"].append(event)
        elif event.dyn_index <= cut2:
            buckets["middle"].append(event)
        else:
            buckets["deep"].append(event)
    rows = []
    for label in TERTILE_LABELS:
        events = buckets[label]
        if not events:
            continue
        durations = [e.duration_s for e in events]
        totals = _phase_totals(events)
        attributed = sum(totals.values())
        rows.append({
            "tertile": label,
            "depth_max": max(e.dyn_index for e in events),
            **_latency_summary(durations),
            "phase_shares": {
                name: seconds / attributed
                for name, seconds in sorted(totals.items())
            } if attributed > 0 else {},
        })
    return {"cuts": [cut1, cut2], "rows": rows}


def _checkpoint_section(log: CampaignLog, counters, gauges) -> dict | None:
    hits = counters.get("checkpoint.thread_hits", 0) + counters.get(
        "checkpoint.cta_hits", 0
    )
    misses = counters.get("checkpoint.thread_misses", 0) + counters.get(
        "checkpoint.cta_misses", 0
    )
    intervals = {e.checkpoint_interval for e in log.injections}
    intervals.discard(0)
    if hits + misses == 0 and not intervals:
        return None
    lookups = hits + misses
    return {
        "interval": max(intervals) if intervals else 0,
        "thread_hits": counters.get("checkpoint.thread_hits", 0),
        "thread_misses": counters.get("checkpoint.thread_misses", 0),
        "cta_hits": counters.get("checkpoint.cta_hits", 0),
        "cta_misses": counters.get("checkpoint.cta_misses", 0),
        "hit_rate": hits / lookups if lookups else 0.0,
        "skipped_instructions": counters.get("checkpoint.skipped_instructions", 0),
        "store_bytes": gauges.get("checkpoint.bytes", 0.0),
        "store_entries": gauges.get("checkpoint.entries", 0.0),
        "store_evicted": gauges.get("checkpoint.evicted", 0.0),
        "capture_s": gauges.get("checkpoint.capture_s", 0.0),
    }


def _resync_section(log: CampaignLog, counters, gauges) -> dict | None:
    hits = counters.get("resync.hits", 0)
    misses = counters.get("resync.misses", 0)
    spliced = sum(e.spliced_instructions for e in log.injections)
    if hits + misses == 0 and spliced == 0:
        return None
    attempts = hits + misses
    memo_hits = counters.get("resync.memo_hits", 0)
    memo_misses = counters.get("resync.memo_misses", 0)
    memo_lookups = memo_hits + memo_misses
    return {
        "hits": hits,
        "misses": misses,
        "splice_rate": hits / attempts if attempts else 0.0,
        "memo_hits": memo_hits,
        "memo_misses": memo_misses,
        "memo_hit_rate": memo_hits / memo_lookups if memo_lookups else 0.0,
        "skipped_instructions": counters.get("resync.skipped_instructions", 0),
        "window_instructions": counters.get("resync.window_instructions", 0),
        "spliced_instructions": spliced,
        "memo_entries": gauges.get("resync.memo_entries", 0.0),
        "memo_evicted": gauges.get("resync.memo_evicted", 0.0),
        "capture_s": gauges.get("resync.capture_s", 0.0),
        "captures": gauges.get("resync.captures", 0.0),
    }


def _compiled_section(log: CampaignLog, counters) -> dict | None:
    hits = counters.get("compiled.chain_hits", 0)
    misses = counters.get("compiled.chain_misses", 0)
    backends = {e.backend for e in log.injections} | {
        e.backend for e in log.sim_runs
    }
    if hits + misses == 0 and "compiled" not in backends:
        return None
    lookups = hits + misses
    return {
        "chain_hits": hits,
        "chain_misses": misses,
        "hit_rate": hits / lookups if lookups else 0.0,
    }


def _scoped_gauge(gauges, name: str, worker: str) -> float | None:
    """A ``name[worker]`` gauge value, or None when never recorded."""
    return gauges.get(f"{name}[{worker}]")


def _worker_section(log: CampaignLog, counters, gauges, histograms) -> dict | None:
    by_worker: dict[str, list] = {}
    for event in log.injections:
        by_worker.setdefault(event.worker or "serial", []).append(event)
    busy: dict[str, float] = {}
    for name, value in counters.items():
        if name.startswith("parallel.worker.") and name.endswith(".busy_s"):
            busy[name[len("parallel.worker."):-len(".busy_s")]] = value
    workers = sorted(set(by_worker) | set(busy))
    if workers in ([], ["serial"]) and not busy:
        return None
    rows = []
    wait_means: list[float] = []
    for worker in workers:
        events = by_worker.get(worker, [])
        durations = [e.duration_s for e in events]
        splices = sum(1 for e in events if e.spliced_instructions)
        row = {
            "worker": worker,
            "injections": len(events),
            "injection_s": sum(durations),
            "busy_s": busy.get(worker, sum(durations)),
            "splices": splices,
            "splice_rate": splices / len(events) if events else 0.0,
        }
        # Per-worker resource levels from the scoped ``name[worker]``
        # gauges and histograms the merge keeps for each contributor.
        checkpoint_bytes = _scoped_gauge(gauges, "checkpoint.bytes", worker)
        if checkpoint_bytes is not None:
            row["checkpoint_bytes"] = checkpoint_bytes
            row["checkpoint_entries"] = (
                _scoped_gauge(gauges, "checkpoint.entries", worker) or 0.0
            )
        memo_entries = _scoped_gauge(gauges, "resync.memo_entries", worker)
        if memo_entries is not None:
            row["resync_memo_entries"] = memo_entries
            row["resync_capture_s"] = (
                _scoped_gauge(gauges, "resync.capture_s", worker) or 0.0
            )
        wait = histograms.get(f"parallel.queue_wait_s[{worker}]")
        if wait and wait.get("count"):
            row["queue_wait_mean_s"] = wait["total"] / wait["count"]
            wait_means.append(row["queue_wait_mean_s"])
        rows.append(row)
    busy_values = [row["busy_s"] for row in rows if row["busy_s"] > 0]
    mean_busy = sum(busy_values) / len(busy_values) if busy_values else 0.0
    mean_wait = sum(wait_means) / len(wait_means) if wait_means else 0.0
    queue_wait = histograms.get("parallel.queue_wait_s")
    return {
        "rows": rows,
        "imbalance": (max(busy_values) / mean_busy) if mean_busy else 1.0,
        # Skew of mean chunk queue-wait across workers: a straggling
        # worker picks chunks up late, inflating its mean vs the fleet's.
        "queue_wait_skew": (max(wait_means) / mean_wait) if mean_wait else 1.0,
        "queue_wait": queue_wait,
    }


def _straggler_section(log: CampaignLog) -> dict | None:
    if not log.injections:
        return None
    ordered = sorted(e.duration_s for e in log.injections)
    p99 = _percentile(ordered, 99)
    stragglers = sorted(
        (e for e in log.injections if e.duration_s > p99),
        key=lambda e: e.duration_s,
        reverse=True,
    )[:MAX_STRAGGLERS]
    if not stragglers:
        return None
    return {
        "threshold_s": p99,
        "rows": [
            {
                "thread": e.thread,
                "dyn_index": e.dyn_index,
                "bit": e.bit,
                "outcome": e.outcome,
                "fast_path": e.fast_path,
                "duration_s": e.duration_s,
                "worker": e.worker,
                "phases": dict(e.phases) if e.phases else {},
            }
            for e in stragglers
        ],
    }


def build_report(
    log: CampaignLog, confidence: float = 0.95, propagation: bool = False
) -> dict:
    """Assemble the full campaign report dict from a loaded log."""
    injections = log.injections
    metrics = log.merged_metrics()
    counters = metrics["counters"]
    gauges = metrics["gauges"]
    histograms = metrics.get("histograms", {})

    n = len(injections)
    outcomes: dict[str, int] = {}
    for event in injections:
        outcomes[event.outcome] = outcomes.get(event.outcome, 0) + 1
    outcome_rows = []
    for outcome in ("masked", "sdc", "crash", "hang"):
        count = outcomes.pop(outcome, 0)
        if count == 0 and n == 0:
            continue
        ci = wilson_ci(count, n, confidence) if n else None
        outcome_rows.append({
            "outcome": outcome,
            "count": count,
            "share": count / n if n else 0.0,
            "ci_low": ci.low if ci else None,
            "ci_high": ci.high if ci else None,
        })
    for outcome, count in sorted(outcomes.items()):  # future outcome kinds
        ci = wilson_ci(count, n, confidence) if n else None
        outcome_rows.append({
            "outcome": outcome,
            "count": count,
            "share": count / n if n else 0.0,
            "ci_low": ci.low if ci else None,
            "ci_high": ci.high if ci else None,
        })

    timestamps = [e.ts for e in log.events]
    backends = sorted({e.backend for e in injections})
    fast = sum(1 for e in injections if e.fast_path)
    return {
        "meta": {
            "kernel": log.kernel,
            "sources": list(log.sources),
            "n_injections": n,
            "n_sim_runs": len(log.sim_runs),
            "backends": backends,
            "fast_path_rate": fast / n if n else 0.0,
            "suffix_instructions": sum(e.suffix_instructions for e in injections),
            # Effective dynamic coverage: executed + checkpoint-skipped +
            # resync-spliced instructions the campaign accounted for.
            "effective_instructions": sum(
                e.effective_instructions for e in injections
            ),
            "spliced_instructions": sum(
                e.spliced_instructions for e in injections
            ),
            "wall_span_s": (max(timestamps) - min(timestamps)) if timestamps else 0.0,
            "confidence": confidence,
        },
        "outcomes": outcome_rows,
        "latency": _latency_summary([e.duration_s for e in injections])
        if injections
        else None,
        "phases": _phase_section(injections),
        "tertiles": _tertile_section(injections),
        "checkpoint": _checkpoint_section(log, counters, gauges),
        "resync": _resync_section(log, counters, gauges),
        "compiled": _compiled_section(log, counters),
        "workers": _worker_section(log, counters, gauges, histograms),
        "stragglers": _straggler_section(log),
        "funnel": [
            {
                "stage": s.stage,
                "sites_before": s.sites_before,
                "sites_after": s.sites_after,
                "factor": s.sites_before / s.sites_after if s.sites_after else 0.0,
                "duration_s": s.duration_s,
            }
            for s in log.stages
        ]
        or None,
        # Opt-in: the key is always present (keeping untraced reports
        # structurally stable) but only populated on request.
        "propagation": build_propagation_section(log) if propagation else None,
    }
