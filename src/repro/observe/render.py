"""Render a campaign report dict as text, markdown or JSON.

All three renderers consume the exact structure
:func:`~repro.observe.report.build_report` produces; the text form is
what ``repro report`` prints by default, markdown suits CI artifacts and
PR comments, JSON feeds downstream tooling.
"""

from __future__ import annotations

import json


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.2f}ms"


def _pct(fraction: float) -> str:
    return f"{fraction * 100.0:.1f}%"


def _outcome_lines(report: dict) -> list[str]:
    lines = []
    for row in report["outcomes"]:
        ci = ""
        if row["ci_low"] is not None:
            ci = f"  [{_pct(row['ci_low'])}, {_pct(row['ci_high'])}]"
        lines.append(
            f"  {row['outcome']:<7s} {row['count']:>7d}  {_pct(row['share']):>6s}{ci}"
        )
    return lines


def render_text(report: dict) -> str:
    meta = report["meta"]
    lines: list[str] = []
    kernel = meta["kernel"] or "(unknown kernel)"
    lines.append(f"campaign report — {kernel}")
    lines.append(
        f"  injections={meta['n_injections']}  sim_runs={meta['n_sim_runs']}"
        f"  backends={','.join(meta['backends']) or '-'}"
        f"  fast-path={_pct(meta['fast_path_rate'])}"
    )
    if meta["suffix_instructions"]:
        lines.append(
            f"  suffix instructions executed: {meta['suffix_instructions']:,}"
        )
    if meta.get("effective_instructions"):
        lines.append(
            f"  effective instructions covered:"
            f" {meta['effective_instructions']:,}"
            f" (spliced {meta.get('spliced_instructions', 0):,})"
        )

    lines.append("")
    lines.append(f"outcomes (Wilson {_pct(meta['confidence'])} CI):")
    lines.extend(_outcome_lines(report))

    latency = report["latency"]
    if latency:
        lines.append("")
        lines.append(
            f"latency: mean={_ms(latency['mean_s'])} p50={_ms(latency['p50_s'])}"
            f" p90={_ms(latency['p90_s'])} p99={_ms(latency['p99_s'])}"
            f" max={_ms(latency['max_s'])}"
        )

    phases = report["phases"]
    if phases:
        lines.append("")
        lines.append("phase breakdown (per injection):")
        for row in phases["rows"]:
            lines.append(
                f"  {row['phase']:<19s} {_ms(row['mean_s']):>10s}"
                f"  {_pct(row['share']):>6s} of wall"
            )
        lines.append(
            f"  {'(unattributed)':<19s} "
            f"{_ms(phases['unattributed_s'] / max(1, meta['n_injections'])):>10s}"
        )

    tertiles = report["tertiles"]
    if tertiles:
        lines.append("")
        lines.append("latency by fault-site depth tertile:")
        for row in tertiles["rows"]:
            top = sorted(
                row["phase_shares"].items(), key=lambda kv: kv[1], reverse=True
            )[:2]
            mix = " ".join(f"{name}={_pct(share)}" for name, share in top)
            lines.append(
                f"  {row['tertile']:<8s} n={row['count']:<6d}"
                f" mean={_ms(row['mean_s'])} p99={_ms(row['p99_s'])}"
                + (f"  [{mix}]" if mix else "")
            )

    checkpoint = report["checkpoint"]
    if checkpoint:
        lines.append("")
        lines.append(
            f"checkpoints (interval {checkpoint['interval']}):"
            f" hit-rate={_pct(checkpoint['hit_rate'])}"
            f" (thread {checkpoint['thread_hits']}/{checkpoint['thread_hits'] + checkpoint['thread_misses']},"
            f" cta {checkpoint['cta_hits']}/{checkpoint['cta_hits'] + checkpoint['cta_misses']})"
        )
        lines.append(
            f"  skipped {checkpoint['skipped_instructions']:,.0f} golden instructions;"
            f" store {checkpoint['store_entries']:.0f} entries"
            f" / {checkpoint['store_bytes'] / (1 << 20):.1f} MiB"
            f" ({checkpoint['store_evicted']:.0f} evicted,"
            f" capture {checkpoint['capture_s']:.3f}s)"
        )

    resync = report.get("resync")
    if resync:
        lines.append("")
        lines.append(
            f"resync: splice-rate={_pct(resync['splice_rate'])}"
            f" ({resync['hits']}/{resync['hits'] + resync['misses']})"
            f"  memo hit-rate={_pct(resync['memo_hit_rate'])}"
            f" ({resync['memo_hits']}/{resync['memo_hits'] + resync['memo_misses']})"
        )
        lines.append(
            f"  spliced {resync['spliced_instructions']:,.0f} /"
            f" skipped {resync['skipped_instructions']:,.0f} golden"
            f" instructions; scanned"
            f" {resync['window_instructions']:,.0f} in-window"
            f" (memo {resync['memo_entries']:.0f} entries,"
            f" {resync['memo_evicted']:.0f} evicted;"
            f" capture {resync['capture_s']:.3f}s"
            f" / {resync['captures']:.0f} streams)"
        )

    compiled = report["compiled"]
    if compiled:
        lines.append("")
        lines.append(
            f"compiled backend: chain-cache hit-rate={_pct(compiled['hit_rate'])}"
            f" ({compiled['chain_hits']}/{compiled['chain_hits'] + compiled['chain_misses']})"
        )

    workers = report["workers"]
    if workers:
        lines.append("")
        header = f"workers (imbalance {workers['imbalance']:.2f}x"
        if workers.get("queue_wait_skew", 1.0) > 1.0:
            header += f", queue-wait skew {workers['queue_wait_skew']:.2f}x"
        lines.append(header + "):")
        for row in workers["rows"]:
            line = (
                f"  {row['worker']:<18s} injections={row['injections']:<7d}"
                f" busy={row['busy_s']:.3f}s"
            )
            if row.get("splices"):
                line += f" splices={_pct(row['splice_rate'])}"
            if row.get("queue_wait_mean_s") is not None:
                line += f" wait={_ms(row['queue_wait_mean_s'])}"
            if row.get("checkpoint_bytes") is not None:
                line += (
                    f" ckpt={row['checkpoint_bytes'] / 1e6:.1f}MB"
                    f"/{row.get('checkpoint_entries', 0):.0f}"
                )
            if row.get("resync_memo_entries") is not None:
                line += f" memo={row['resync_memo_entries']:.0f}"
            lines.append(line)
        wait = workers["queue_wait"]
        if wait and wait.get("count"):
            lines.append(
                f"  chunk queue wait: mean={_ms(wait['mean'])}"
                f" max={_ms(wait['max'])} over {wait['count']} chunks"
            )

    stragglers = report["stragglers"]
    if stragglers:
        lines.append("")
        lines.append(
            f"stragglers (> p99 = {_ms(stragglers['threshold_s'])}):"
        )
        for row in stragglers["rows"]:
            top = sorted(row["phases"].items(), key=lambda kv: kv[1], reverse=True)[:2]
            mix = " ".join(f"{name}={_ms(seconds)}" for name, seconds in top)
            lines.append(
                f"  t{row['thread']}/i{row['dyn_index']}b{row['bit']}"
                f" {row['outcome']:<6s} {_ms(row['duration_s'])}"
                + (f"  [{mix}]" if mix else "")
            )

    funnel = report["funnel"]
    if funnel:
        lines.append("")
        lines.append("pruning funnel:")
        for row in funnel:
            lines.append(
                f"  {row['stage']:<17s} {row['sites_before']:>9,d} ->"
                f" {row['sites_after']:>9,d}  ({row['factor']:.1f}x)"
            )

    propagation = report.get("propagation")
    if propagation:
        lines.extend(_propagation_text_lines(propagation))
    return "\n".join(lines) + "\n"


def _propagation_text_lines(propagation: dict) -> list[str]:
    lines: list[str] = []
    pc_map = propagation.get("pc_map")
    if pc_map:
        lines.append("")
        lines.append(
            f"PC vulnerability map ({propagation['n_traced']} traced"
            f" injections over {pc_map['n_pcs']} static instructions):"
        )
        lines.append(
            "  pc        n    sdc%   div%   esc%   mean-mask"
        )
        for row in pc_map["rows"]:
            depth = row["mean_masking_depth"]
            mask = f"{depth:.1f}" if depth is not None else "-"
            lines.append(
                f"  {row['pc']:<7d} {row['n']:>4d}  {_pct(row['sdc_rate']):>6s}"
                f" {_pct(row['diverged_rate']):>6s}"
                f" {_pct(row['escaped_rate']):>6s}   {mask}"
            )

    masking = propagation.get("masking")
    if masking:
        lines.append("")
        lines.append("masking depth by fault model (dynamic instructions to drain):")
        for model, row in masking.items():
            buckets = " ".join(
                f"{label}:{count}" for label, count in row["buckets"].items()
            )
            lines.append(
                f"  {model:<4s} n={row['n']:<6d}"
                f" unmasked={row['unmasked']:<6d} {buckets}"
            )

    signatures = propagation.get("signatures")
    if signatures and signatures["n_sdc"]:
        lines.append("")
        lines.append(
            f"SDC propagation signatures ({signatures['n_signatures']}"
            f" distinct over {signatures['n_sdc']} SDCs):"
        )
        for row in signatures["rows"]:
            lines.append(
                f"  {row['count']:>5d}  {_pct(row['share']):>6s}"
                f"  {row['signature']}"
            )

    coherence = propagation.get("coherence")
    if coherence:
        lines.append("")
        lines.append(
            f"pruning-group coherence (overall agreement"
            f" {_pct(coherence['overall'])} across"
            f" {coherence['n_groups']} audited groups):"
        )
        for row in coherence["rows"]:
            lines.append(
                f"  {row['group']:<6s} members={row['members']:<3d}"
                f" sites={row['sites']:<3d} probes={row['probes']:<4d}"
                f" agreement={_pct(row['agreement'])}"
            )
            for site in row["disagreements"]:
                lines.append(
                    f"    i{site['dyn_index']}/b{site['bit']}:"
                    f" {' vs '.join(site['signatures'])}"
                )
    return lines


def render_markdown(report: dict) -> str:
    meta = report["meta"]
    kernel = meta["kernel"] or "(unknown kernel)"
    out: list[str] = [f"# Campaign report — {kernel}", ""]
    out.append(
        f"{meta['n_injections']} injections, {meta['n_sim_runs']} sim runs, "
        f"backends: {', '.join(meta['backends']) or '-'}, "
        f"fast-path rate {_pct(meta['fast_path_rate'])}."
    )

    out += ["", "## Outcomes", "", "| outcome | count | share | CI |", "|---|---|---|---|"]
    for row in report["outcomes"]:
        ci = (
            f"[{_pct(row['ci_low'])}, {_pct(row['ci_high'])}]"
            if row["ci_low"] is not None
            else "-"
        )
        out.append(
            f"| {row['outcome']} | {row['count']} | {_pct(row['share'])} | {ci} |"
        )

    latency = report["latency"]
    if latency:
        out += ["", "## Latency", ""]
        out.append("| mean | p50 | p90 | p99 | max |")
        out.append("|---|---|---|---|---|")
        out.append(
            f"| {_ms(latency['mean_s'])} | {_ms(latency['p50_s'])} |"
            f" {_ms(latency['p90_s'])} | {_ms(latency['p99_s'])} |"
            f" {_ms(latency['max_s'])} |"
        )

    phases = report["phases"]
    if phases:
        out += ["", "## Phases", "", "| phase | mean | share |", "|---|---|---|"]
        for row in phases["rows"]:
            out.append(
                f"| {row['phase']} | {_ms(row['mean_s'])} | {_pct(row['share'])} |"
            )

    tertiles = report["tertiles"]
    if tertiles:
        out += [
            "", "## Depth tertiles", "",
            "| tertile | n | mean | p99 |", "|---|---|---|---|",
        ]
        for row in tertiles["rows"]:
            out.append(
                f"| {row['tertile']} | {row['count']} | {_ms(row['mean_s'])} |"
                f" {_ms(row['p99_s'])} |"
            )

    checkpoint = report["checkpoint"]
    if checkpoint:
        out += ["", "## Checkpoints", ""]
        out.append(
            f"Interval {checkpoint['interval']}, hit rate "
            f"{_pct(checkpoint['hit_rate'])}, skipped "
            f"{checkpoint['skipped_instructions']:,.0f} golden instructions, "
            f"store {checkpoint['store_entries']:.0f} entries / "
            f"{checkpoint['store_bytes'] / (1 << 20):.1f} MiB."
        )

    resync = report.get("resync")
    if resync:
        out += ["", "## Resync", ""]
        out.append(
            f"Splice rate {_pct(resync['splice_rate'])} "
            f"({resync['hits']} splices / {resync['misses']} misses), "
            f"memo hit rate {_pct(resync['memo_hit_rate'])}, "
            f"spliced {resync['spliced_instructions']:,.0f} and skipped "
            f"{resync['skipped_instructions']:,.0f} golden instructions."
        )

    compiled = report["compiled"]
    if compiled:
        out += ["", "## Compiled backend", ""]
        out.append(
            f"Chain-cache hit rate {_pct(compiled['hit_rate'])} "
            f"({compiled['chain_hits']} hits / {compiled['chain_misses']} misses)."
        )

    workers = report["workers"]
    if workers:
        title = f"## Workers (imbalance {workers['imbalance']:.2f}x"
        if workers.get("queue_wait_skew", 1.0) > 1.0:
            title += f", queue-wait skew {workers['queue_wait_skew']:.2f}x"
        out += [
            "", title + ")", "",
            "| worker | injections | busy | splice rate | queue wait |"
            " ckpt store | resync memo |",
            "|---|---|---|---|---|---|---|",
        ]
        for row in workers["rows"]:
            wait = row.get("queue_wait_mean_s")
            ckpt = row.get("checkpoint_bytes")
            memo = row.get("resync_memo_entries")
            out.append(
                f"| {row['worker']} | {row['injections']} | {row['busy_s']:.3f}s"
                f" | {_pct(row.get('splice_rate', 0.0))}"
                f" | {_ms(wait) if wait is not None else '—'}"
                f" | {f'{ckpt / 1e6:.1f}MB' if ckpt is not None else '—'}"
                f" | {f'{memo:.0f}' if memo is not None else '—'} |"
            )

    stragglers = report["stragglers"]
    if stragglers:
        out += [
            "", f"## Stragglers (> {_ms(stragglers['threshold_s'])})", "",
            "| site | outcome | duration |", "|---|---|---|",
        ]
        for row in stragglers["rows"]:
            out.append(
                f"| t{row['thread']}/i{row['dyn_index']}b{row['bit']} |"
                f" {row['outcome']} | {_ms(row['duration_s'])} |"
            )

    funnel = report["funnel"]
    if funnel:
        out += [
            "", "## Pruning funnel", "",
            "| stage | before | after | factor |", "|---|---|---|---|",
        ]
        for row in funnel:
            out.append(
                f"| {row['stage']} | {row['sites_before']:,} |"
                f" {row['sites_after']:,} | {row['factor']:.1f}x |"
            )

    propagation = report.get("propagation")
    if propagation:
        pc_map = propagation.get("pc_map")
        if pc_map:
            out += [
                "", "## PC vulnerability map", "",
                "| pc | n | sdc | diverged | escaped | mean mask depth |",
                "|---|---|---|---|---|---|",
            ]
            for row in pc_map["rows"]:
                depth = row["mean_masking_depth"]
                mask = f"{depth:.1f}" if depth is not None else "-"
                out.append(
                    f"| {row['pc']} | {row['n']} | {_pct(row['sdc_rate'])} |"
                    f" {_pct(row['diverged_rate'])} |"
                    f" {_pct(row['escaped_rate'])} | {mask} |"
                )
        masking = propagation.get("masking")
        if masking:
            out += [
                "", "## Masking depth by fault model", "",
                "| model | n | unmasked | depth buckets |", "|---|---|---|---|",
            ]
            for model, row in masking.items():
                buckets = " ".join(
                    f"{label}:{count}" for label, count in row["buckets"].items()
                )
                out.append(
                    f"| {model} | {row['n']} | {row['unmasked']} | {buckets} |"
                )
        signatures = propagation.get("signatures")
        if signatures and signatures["n_sdc"]:
            out += [
                "", "## SDC signatures", "",
                "| count | share | signature |", "|---|---|---|",
            ]
            for row in signatures["rows"]:
                out.append(
                    f"| {row['count']} | {_pct(row['share'])} |"
                    f" `{row['signature']}` |"
                )
        coherence = propagation.get("coherence")
        if coherence:
            out += [
                "",
                f"## Pruning-group coherence "
                f"({_pct(coherence['overall'])} agreement)",
                "",
                "| group | members | sites | probes | agreement |",
                "|---|---|---|---|---|",
            ]
            for row in coherence["rows"]:
                out.append(
                    f"| {row['group']} | {row['members']} | {row['sites']} |"
                    f" {row['probes']} | {_pct(row['agreement'])} |"
                )
    return "\n".join(out) + "\n"


def render_json(report: dict) -> str:
    return json.dumps(report, indent=1, sort_keys=True) + "\n"
