"""Side-by-side comparison of two campaign report JSONs.

``repro report --diff A B`` feeds two files produced by
``repro report ... --format json`` through :func:`diff_reports`:

* **outcome profiles** — per-outcome share deltas, with each delta
  flagged ``significant`` only when the two Wilson intervals do *not*
  overlap (overlapping CIs mean the difference is indistinguishable
  from sampling noise at the reports' confidence level);
* **latency** — mean/p50/p99 deltas and the B-vs-A speedup;
* **phases** — per-phase mean-seconds deltas, so a speedup PR shows
  *where* the milliseconds went, not just that they went.

The intended use is ROADMAP item 5's "every speedup PR ships a
before/after report": A is the baseline configuration, B the candidate
(same kernel, different backend/checkpoint/worker settings).
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import ReproError


def load_report_json(path: str | Path) -> dict:
    """One report dict from a ``repro report --format json`` file."""
    try:
        with open(path) as handle:
            report = json.load(handle)
    except FileNotFoundError:
        raise ReproError(f"report file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ReproError(f"{path} is not valid JSON: {exc}") from None
    if not isinstance(report, dict) or "meta" not in report or "outcomes" not in report:
        raise ReproError(
            f"{path} is not a campaign report (expected the JSON written by"
            " 'repro report --format json')"
        )
    return report


def _ci_overlap(row_a: dict, row_b: dict) -> bool | None:
    """Do the two outcome rows' Wilson CIs overlap?  None = no CIs."""
    if row_a.get("ci_low") is None or row_b.get("ci_low") is None:
        return None
    return not (
        row_a["ci_high"] < row_b["ci_low"] or row_b["ci_high"] < row_a["ci_low"]
    )


def diff_reports(a: dict, b: dict) -> dict:
    """Structured delta of two report dicts (A = baseline, B = candidate)."""
    meta_a, meta_b = a["meta"], b["meta"]
    outcomes_a = {r["outcome"]: r for r in a["outcomes"]}
    outcomes_b = {r["outcome"]: r for r in b["outcomes"]}
    outcome_rows = []
    for outcome in list(outcomes_a) + [
        o for o in outcomes_b if o not in outcomes_a
    ]:
        row_a = outcomes_a.get(outcome)
        row_b = outcomes_b.get(outcome)
        share_a = row_a["share"] if row_a else 0.0
        share_b = row_b["share"] if row_b else 0.0
        overlap = _ci_overlap(row_a, row_b) if row_a and row_b else None
        outcome_rows.append({
            "outcome": outcome,
            "share_a": share_a,
            "share_b": share_b,
            "delta": share_b - share_a,
            "count_a": row_a["count"] if row_a else 0,
            "count_b": row_b["count"] if row_b else 0,
            "ci_overlap": overlap,
            # A delta is only *evidence* of a real profile change when
            # the intervals are disjoint; unknown when CIs are absent.
            "significant": None if overlap is None else not overlap,
        })

    latency = None
    if a.get("latency") and b.get("latency"):
        lat_a, lat_b = a["latency"], b["latency"]
        latency = {
            metric: {
                "a": lat_a[metric],
                "b": lat_b[metric],
                "delta": lat_b[metric] - lat_a[metric],
            }
            for metric in ("mean_s", "p50_s", "p99_s", "max_s")
        }
        latency["speedup"] = (
            lat_a["mean_s"] / lat_b["mean_s"] if lat_b["mean_s"] else None
        )

    phases = None
    if a.get("phases") and b.get("phases"):
        means_a = {r["phase"]: r["mean_s"] for r in a["phases"]["rows"]}
        means_b = {r["phase"]: r["mean_s"] for r in b["phases"]["rows"]}
        phases = [
            {
                "phase": phase,
                "mean_a": means_a.get(phase, 0.0),
                "mean_b": means_b.get(phase, 0.0),
                "delta": means_b.get(phase, 0.0) - means_a.get(phase, 0.0),
            }
            for phase in list(means_a)
            + [p for p in means_b if p not in means_a]
        ]

    return {
        "meta": {
            "kernel_a": meta_a.get("kernel"),
            "kernel_b": meta_b.get("kernel"),
            "same_kernel": meta_a.get("kernel") == meta_b.get("kernel"),
            "backends_a": meta_a.get("backends", []),
            "backends_b": meta_b.get("backends", []),
            "n_injections_a": meta_a.get("n_injections", 0),
            "n_injections_b": meta_b.get("n_injections", 0),
        },
        "outcomes": outcome_rows,
        "latency": latency,
        "phases": phases,
    }


def _pct(fraction: float) -> str:
    return f"{fraction * 100.0:.1f}%"


def _signed_pct(fraction: float) -> str:
    return f"{fraction * 100.0:+.1f}%"


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.2f}ms"


def render_diff_text(diff: dict) -> str:
    meta = diff["meta"]
    lines = [
        f"report diff — A: {meta['kernel_a'] or '(unknown)'}"
        f" ({meta['n_injections_a']} injections,"
        f" {','.join(meta['backends_a']) or '-'})"
    ]
    lines.append(
        f"              B: {meta['kernel_b'] or '(unknown)'}"
        f" ({meta['n_injections_b']} injections,"
        f" {','.join(meta['backends_b']) or '-'})"
    )
    if not meta["same_kernel"]:
        lines.append("  WARNING: reports cover different kernels")

    lines.append("")
    lines.append("outcome profile (B - A):")
    for row in diff["outcomes"]:
        if row["significant"] is None:
            verdict = "no CI"
        elif row["significant"]:
            verdict = "SIGNIFICANT (CIs disjoint)"
        else:
            verdict = "within noise (CIs overlap)"
        lines.append(
            f"  {row['outcome']:<7s} {_pct(row['share_a']):>6s} ->"
            f" {_pct(row['share_b']):>6s}  {_signed_pct(row['delta']):>7s}"
            f"  {verdict}"
        )

    latency = diff["latency"]
    if latency:
        lines.append("")
        speedup = latency["speedup"]
        headline = f"{speedup:.2f}x" if speedup else "n/a"
        lines.append(f"latency (mean speedup {headline}):")
        for metric in ("mean_s", "p50_s", "p99_s", "max_s"):
            row = latency[metric]
            lines.append(
                f"  {metric[:-2]:<5s} {_ms(row['a']):>10s} ->"
                f" {_ms(row['b']):>10s}  ({row['delta'] * 1e3:+.2f}ms)"
            )

    phases = diff["phases"]
    if phases:
        lines.append("")
        lines.append("phase means (B - A):")
        for row in phases:
            lines.append(
                f"  {row['phase']:<19s} {_ms(row['mean_a']):>10s} ->"
                f" {_ms(row['mean_b']):>10s}  ({row['delta'] * 1e3:+.2f}ms)"
            )
    return "\n".join(lines) + "\n"
