"""Streaming telemetry plane for in-flight campaigns.

Finished campaigns are well served by the event log + ``repro report``
pipeline; an *in-flight* paper-scale campaign (hours at ~14 inj/s) is
not.  This module is the live side:

* workers (or the serial executor) push compact per-injection delta
  records through a :class:`LiveChannel` — outcome, duration, effective
  and spliced instruction deltas, checkpoint/resync hit deltas — plus
  periodic heartbeats, so the parent sees progress *as it happens*
  instead of at chunk/exit merges;
* a :class:`LiveAggregator` folds those records into rolling campaign
  state: outcome shares with Wilson CIs, a sequential convergence signal
  (max CI half-width vs an ``until_ci`` target), injections/sec and
  effective-instruction throughput, per-worker liveness and stall
  detection, and depth-tertile latency;
* :func:`render_live` turns one :meth:`LiveAggregator.snapshot` into the
  in-terminal dashboard both ``repro watch`` and the ``--live-port``
  HTML page display;
* a :class:`FlightRecorder` persists a post-mortem dump (recent-event
  ring buffers + crash context + manifest snapshot) when a campaign
  dies, so a dead 6-hour run is diagnosable without rerunning.

The plane is strictly advisory: records travel outside the in-order
outcome path, pushes never raise into the injection loop, and a campaign
with the plane enabled produces a byte-identical profile to one without
(``tests/observe/test_live.py`` pins this on all three backends).
"""

from __future__ import annotations

import json
import threading
import time
import traceback as traceback_module
from collections import deque
from pathlib import Path
from queue import Empty

from ..errors import ReproError
from ..stats.intervals import wilson_ci

#: Version stamped on ``/status`` JSON snapshots and flight-recorder
#: dumps so downstream consumers (the future ``repro.serve`` layer, CI
#: pollers) can detect incompatible shapes.
LIVE_STATUS_VERSION = 1

#: Canonical outcome order for shares/convergence (matches reports).
OUTCOME_ORDER = ("masked", "sdc", "crash", "hang")

#: Per-process ring-buffer length for the flight recorder: enough recent
#: injections to see what a dead worker was doing, small enough to ship
#: in one crash record.
DEFAULT_RING_SIZE = 64

#: Seconds without any record from a worker before it is flagged stalled.
DEFAULT_STALL_AFTER_S = 10.0

#: Minimum seconds between heartbeat records from one worker.
HEARTBEAT_INTERVAL_S = 1.0

#: Rolling-rate window (seconds of recent samples kept).
RATE_WINDOW_S = 30.0

#: Bounded sample of (dyn_index, duration) pairs for live depth tertiles.
_RESERVOIR_CAP = 4096

_TERTILE_LABELS = ("shallow", "middle", "deep")


def max_half_width(
    counts: dict[str, int], n: int, confidence: float = 0.95
) -> float | None:
    """Widest Wilson CI half-width across the four outcome proportions."""
    if n <= 0:
        return None
    return max(
        wilson_ci(counts.get(outcome, 0), n, confidence).half_width
        for outcome in OUTCOME_ORDER
    )


def check_convergence(
    counts: dict[str, int], n: int, until_ci: float, confidence: float = 0.95
) -> bool:
    """True once every outcome share is pinned to ``±until_ci``.

    This is the sequential convergence signal: the campaign's profile has
    stabilised when the *widest* Wilson interval half-width over the four
    outcome proportions drops to the target.  Computed from plain counts
    so the early-stop decision in :func:`~repro.faults.campaign.run_campaign`
    depends only on the in-order outcome stream — deterministic for a
    fixed seed regardless of worker count or backend.
    """
    width = max_half_width(counts, n, confidence)
    return width is not None and width <= until_ci


class LiveChannel:
    """Per-process producer side of the live stream.

    Builds the compact delta records the aggregator consumes and hands
    them to ``push`` — a multiprocessing-queue put in pool workers,
    :meth:`LiveAggregator.record` directly on the serial path.  Keeps the
    flight-recorder ring of this process's recent records, per-injection
    counter deltas (effective/spliced instructions, checkpoint/resync
    hits) read from the process-local metrics registry, and the heartbeat
    cadence.  Every push is wrapped: a broken queue degrades the live
    view, never the campaign.
    """

    _COUNTER_NAMES = (
        "work.effective_instructions",
        "work.spliced_instructions",
        "checkpoint.thread_hits",
        "checkpoint.cta_hits",
        "resync.hits",
    )

    def __init__(
        self,
        push,
        worker: str,
        metrics=None,
        ring_size: int = DEFAULT_RING_SIZE,
        heartbeat_s: float = HEARTBEAT_INTERVAL_S,
    ) -> None:
        self._push_fn = push
        self.worker = worker
        self.metrics = metrics
        self.ring: deque = deque(maxlen=max(ring_size, 1))
        self.heartbeat_s = heartbeat_s
        self.done = 0
        self._last_beat = -float("inf")
        self._last_values = self._counter_values()

    def _counter_values(self) -> tuple:
        if self.metrics is None:
            return (0, 0, 0, 0, 0)
        value = self.metrics.counter_value
        return tuple(value(name) for name in self._COUNTER_NAMES)

    def resync_counters(self) -> None:
        """Re-anchor the delta baseline after a registry reset (workers
        reset their metrics after shipping each chunk snapshot)."""
        self._last_values = self._counter_values()

    def _push(self, record: dict) -> None:
        try:
            self._push_fn(record)
        except Exception:
            pass  # advisory plane: never let a dead queue kill a campaign

    def online(self) -> None:
        self._push({
            "kind": "heartbeat",
            "worker": self.worker,
            "ts": time.time(),
            "done": 0,
            "state": "online",
        })
        self._last_beat = time.monotonic()

    def note(self, site, outcome, duration_s: float) -> None:
        """One classified injection: ship its delta, maybe a heartbeat."""
        values = self._counter_values()
        last = self._last_values
        self._last_values = values
        effective, spliced, thread_hits, cta_hits, resync_hits = (
            values[i] - last[i] for i in range(5)
        )
        self.done += 1
        record = {
            "kind": "injection",
            "worker": self.worker,
            "ts": time.time(),
            "outcome": outcome.value,
            "thread": site.thread,
            "dyn_index": site.dyn_index,
            "duration_s": duration_s,
            "effective_instructions": int(effective),
            "spliced_instructions": int(spliced),
            "checkpoint_hits": int(thread_hits + cta_hits),
            "resync_hits": int(resync_hits),
        }
        self.ring.append(record)
        self._push(record)
        now = time.monotonic()
        if now - self._last_beat >= self.heartbeat_s:
            self._push({
                "kind": "heartbeat",
                "worker": self.worker,
                "ts": time.time(),
                "done": self.done,
                "state": "beat",
            })
            self._last_beat = now

    def crash(self, site, exc: BaseException) -> None:
        """Ship this process's ring + crash context before re-raising."""
        self._push({
            "kind": "crash",
            "worker": self.worker,
            "ts": time.time(),
            "site": str(site) if site is not None else None,
            "error": repr(exc),
            "traceback": traceback_module.format_exc(),
            "ring": list(self.ring),
        })


class LiveAggregator:
    """Rolling campaign state built from streamed delta records.

    Thread-safe: the parent's queue-drain thread, the serial injection
    loop and HTTP/status-file snapshotters all go through one lock.
    ``clock`` (wall) and ``monotonic`` are injectable for tests.
    """

    def __init__(
        self,
        total: int | None = None,
        kernel: str = "",
        label: str = "",
        until_ci: float | None = None,
        confidence: float = 0.95,
        stall_after_s: float = DEFAULT_STALL_AFTER_S,
        ring_size: int = DEFAULT_RING_SIZE,
        clock=time.time,
        monotonic=time.monotonic,
    ) -> None:
        self.total = total
        self.kernel = kernel
        self.label = label
        self.until_ci = until_ci
        self.confidence = confidence
        self.stall_after_s = stall_after_s
        self.ring_size = ring_size
        self.flight_recorder: FlightRecorder | None = None
        self._clock = clock
        self._monotonic = monotonic
        self._lock = threading.Lock()
        self._telemetry = None
        self.state = "pending"  # running | converged | done | crashed
        self.done = 0
        self.outcome_counts: dict[str, int] = {}
        self.duration_total_s = 0.0
        self.effective_instructions = 0
        self.spliced_instructions = 0
        self.checkpoint_hits = 0
        self.resync_hits = 0
        self.started_at: float | None = None
        self._started_mono: float | None = None
        self.converged = False
        self.stopped_early = False
        #: (monotonic, done, effective) samples for rolling rates.
        self._window: deque[tuple[float, int, int]] = deque()
        #: worker name -> {"done", "last_seen" (monotonic), "busy_s",
        #: "splices", "crashed"}
        self.workers: dict[str, dict] = {}
        #: Parent-side ring of recent records (all workers interleaved).
        self.ring: deque = deque(maxlen=max(ring_size, 1))
        #: Crash records, ring buffers included, as shipped by workers.
        self.crashes: list[dict] = []
        #: Bounded (dyn_index, duration_s) sample for live depth tertiles.
        self._reservoir: list[tuple[int, float]] = []
        self._seen = 0

    # --------------------------------------------------------- lifecycle

    def begin(
        self,
        total: int | None = None,
        kernel: str | None = None,
        label: str | None = None,
        telemetry=None,
    ) -> None:
        with self._lock:
            if total is not None:
                self.total = total
            if kernel:
                self.kernel = kernel
            if label:
                self.label = label
            if telemetry is not None and getattr(telemetry, "enabled", False):
                self._telemetry = telemetry
            if self.started_at is None:
                self.started_at = self._clock()
                self._started_mono = self._monotonic()
            self.state = "running"

    def finish(self, converged: bool = False, stopped_early: bool = False) -> None:
        with self._lock:
            self.converged = self.converged or converged
            self.stopped_early = self.stopped_early or stopped_early
            if self.state != "crashed":
                self.state = "converged" if self.converged else "done"

    def note_converged(self) -> None:
        with self._lock:
            self.converged = True

    def abort(self, exc: BaseException | None = None) -> Path | None:
        """Campaign died: flip state and flush the flight dump, if any."""
        with self._lock:
            self.state = "crashed"
        if self.flight_recorder is None:
            return None
        return self.flight_recorder.dump(self, error=exc)

    # ----------------------------------------------------------- records

    def record(self, record: dict) -> None:
        """Fold one delta record in (the queue-drain/serial entry point)."""
        kind = record.get("kind")
        if kind == "injection":
            self._record_injection(record)
        elif kind == "heartbeat":
            self._record_heartbeat(record)
        elif kind == "crash":
            self._record_crash(record)

    def _worker_state(self, name: str) -> dict:
        state = self.workers.get(name)
        if state is None:
            state = self.workers[name] = {
                "done": 0,
                "last_seen": self._monotonic(),
                "busy_s": 0.0,
                "splices": 0,
                "crashed": False,
            }
        return state

    def _record_injection(self, record: dict) -> None:
        with self._lock:
            if self.started_at is None:
                self.started_at = self._clock()
                self._started_mono = self._monotonic()
                self.state = "running"
            now = self._monotonic()
            self.done += 1
            outcome = record.get("outcome", "")
            self.outcome_counts[outcome] = self.outcome_counts.get(outcome, 0) + 1
            duration = float(record.get("duration_s", 0.0))
            self.duration_total_s += duration
            self.effective_instructions += int(
                record.get("effective_instructions", 0)
            )
            self.spliced_instructions += int(record.get("spliced_instructions", 0))
            self.checkpoint_hits += int(record.get("checkpoint_hits", 0))
            self.resync_hits += int(record.get("resync_hits", 0))
            worker = self._worker_state(record.get("worker") or "serial")
            worker["done"] += 1
            worker["last_seen"] = now
            worker["busy_s"] += duration
            if record.get("spliced_instructions"):
                worker["splices"] += 1
            self._window.append((now, self.done, self.effective_instructions))
            while (
                len(self._window) > 2
                and now - self._window[0][0] > RATE_WINDOW_S
            ):
                self._window.popleft()
            self.ring.append(record)
            # Deterministic bounded reservoir for the tertile split: fill,
            # then overwrite via a multiplicative-hash slot (no RNG so
            # resumed/replayed streams behave identically).
            sample = (int(record.get("dyn_index", 0)), duration)
            self._seen += 1
            if len(self._reservoir) < _RESERVOIR_CAP:
                self._reservoir.append(sample)
            else:
                self._reservoir[(self._seen * 2654435761) % _RESERVOIR_CAP] = sample

    def _record_heartbeat(self, record: dict) -> None:
        with self._lock:
            worker = self._worker_state(record.get("worker") or "serial")
            worker["last_seen"] = self._monotonic()
            worker["done"] = max(worker["done"], int(record.get("done", 0)))
            telemetry = self._telemetry
            effective = self.effective_instructions
        if telemetry is not None:
            from ..telemetry.events import HeartbeatEvent

            telemetry.emit(
                HeartbeatEvent(
                    record.get("ts", self._clock()),
                    worker=record.get("worker"),
                    state=record.get("state", "beat"),
                    done=int(record.get("done", 0)),
                    rate=self.rolling_rate,
                    effective_instructions=effective,
                )
            )

    def _record_crash(self, record: dict) -> None:
        with self._lock:
            worker = self._worker_state(record.get("worker") or "serial")
            worker["crashed"] = True
            self.crashes.append(record)

    # ------------------------------------------------------------- state

    @property
    def elapsed_s(self) -> float:
        if self._started_mono is None:
            return 0.0
        return self._monotonic() - self._started_mono

    @property
    def rolling_rate(self) -> float:
        """Injections/second over the recent window."""
        if len(self._window) >= 2:
            (t0, d0, _), (t1, d1, _) = self._window[0], self._window[-1]
            if t1 > t0:
                return (d1 - d0) / (t1 - t0)
        elapsed = self.elapsed_s
        return self.done / elapsed if elapsed > 0 else 0.0

    @property
    def rolling_effective_rate(self) -> float:
        """Effective instructions/second over the recent window."""
        if len(self._window) >= 2:
            (t0, _, w0), (t1, _, w1) = self._window[0], self._window[-1]
            if t1 > t0:
                return (w1 - w0) / (t1 - t0)
        elapsed = self.elapsed_s
        return self.effective_instructions / elapsed if elapsed > 0 else 0.0

    def is_converged(self) -> bool:
        if self.until_ci is None:
            return False
        return check_convergence(
            self.outcome_counts, self.done, self.until_ci, self.confidence
        )

    def _tertile_rows(self) -> list[dict]:
        if not self._reservoir:
            return []
        depths = sorted(depth for depth, _ in self._reservoir)
        n = len(depths)
        cut1 = depths[(n - 1) // 3]
        cut2 = depths[(2 * (n - 1)) // 3]
        buckets: dict[str, list[float]] = {label: [] for label in _TERTILE_LABELS}
        for depth, duration in self._reservoir:
            if depth <= cut1:
                buckets["shallow"].append(duration)
            elif depth <= cut2:
                buckets["middle"].append(duration)
            else:
                buckets["deep"].append(duration)
        rows = []
        for label in _TERTILE_LABELS:
            durations = buckets[label]
            if not durations:
                continue
            rows.append({
                "tertile": label,
                "n": len(durations),
                "mean_s": sum(durations) / len(durations),
                "max_s": max(durations),
            })
        return rows

    def snapshot(self) -> dict:
        """One JSON-ready view of the rolling state (the ``/status`` body)."""
        with self._lock:
            now_mono = self._monotonic()
            n = self.done
            outcome_rows = []
            for outcome in OUTCOME_ORDER:
                count = self.outcome_counts.get(outcome, 0)
                ci = wilson_ci(count, n, self.confidence) if n else None
                outcome_rows.append({
                    "outcome": outcome,
                    "count": count,
                    "share": count / n if n else 0.0,
                    "ci_low": ci.low if ci else None,
                    "ci_high": ci.high if ci else None,
                    "half_width": ci.half_width if ci else None,
                })
            width = max_half_width(self.outcome_counts, n, self.confidence)
            converged = self.converged or (
                self.until_ci is not None
                and width is not None
                and width <= self.until_ci
            )
            rate = self.rolling_rate
            remaining = (
                max(self.total - n, 0) if self.total is not None else None
            )
            eta = (
                remaining / rate
                if remaining is not None and rate > 0
                else None
            )
            worker_rows = []
            for name in sorted(self.workers):
                state = self.workers[name]
                idle = now_mono - state["last_seen"]
                worker_rows.append({
                    "worker": name,
                    "done": state["done"],
                    "busy_s": state["busy_s"],
                    "splices": state["splices"],
                    "last_seen_s": idle,
                    "crashed": state["crashed"],
                    "stalled": (
                        not state["crashed"]
                        and self.state == "running"
                        and idle > self.stall_after_s
                    ),
                })
            return {
                "version": LIVE_STATUS_VERSION,
                "ts": self._clock(),
                "state": self.state,
                "kernel": self.kernel,
                "label": self.label,
                "done": n,
                "total": self.total,
                "pct": (100.0 * n / self.total) if self.total else None,
                "elapsed_s": self.elapsed_s,
                "eta_s": eta,
                "outcomes": outcome_rows,
                "convergence": {
                    "target": self.until_ci,
                    "confidence": self.confidence,
                    "max_half_width": width,
                    "converged": converged,
                    "stopped_early": self.stopped_early,
                },
                "throughput": {
                    "injections_per_s": rate,
                    "effective_instructions_per_s": self.rolling_effective_rate,
                    "effective_instructions": self.effective_instructions,
                    "spliced_instructions": self.spliced_instructions,
                    "checkpoint_hits": self.checkpoint_hits,
                    "resync_hits": self.resync_hits,
                },
                "workers": worker_rows,
                "tertiles": self._tertile_rows(),
                "crashes": [
                    {
                        "worker": crash.get("worker"),
                        "site": crash.get("site"),
                        "error": crash.get("error"),
                    }
                    for crash in self.crashes
                ],
            }

    def render(self, width: int = 78) -> str:
        return render_live(self.snapshot(), width=width)


def _format_duration(seconds: float) -> str:
    seconds = int(round(seconds))
    if seconds < 60:
        return f"{seconds}s"
    if seconds < 3600:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"


def render_live(snapshot: dict, width: int = 78) -> str:
    """The in-terminal dashboard for one status snapshot.

    Shared by ``repro watch``, the aggregator's own ``render`` and the
    ``--live-port`` HTML page — one layout everywhere.
    """
    lines: list[str] = []
    kernel = snapshot.get("kernel") or "(campaign)"
    label = snapshot.get("label") or ""
    head = f"repro live — {kernel}" + (f" [{label}]" if label else "")
    state = snapshot.get("state", "?")
    lines.append(f"{head:<{max(width - 16, 0)}s} state: {state}")
    done = snapshot.get("done", 0)
    total = snapshot.get("total")
    progress = f"  {done:,}"
    if total:
        progress += f"/{total:,} ({snapshot.get('pct') or 0.0:5.1f}%)"
    progress += f"  elapsed {_format_duration(snapshot.get('elapsed_s') or 0.0)}"
    eta = snapshot.get("eta_s")
    if eta is not None and state == "running":
        progress += f"  eta {_format_duration(eta)}"
    lines.append(progress)
    throughput = snapshot.get("throughput") or {}
    rate = throughput.get("injections_per_s") or 0.0
    line = f"  rate {rate:.1f} inj/s"
    effective_rate = throughput.get("effective_instructions_per_s") or 0.0
    if effective_rate:
        line += f"  {effective_rate / 1e6:.2f} Minsn/s effective"
    spliced = throughput.get("spliced_instructions") or 0
    if spliced:
        line += f"  spliced {spliced:,}"
    lines.append(line)

    convergence = snapshot.get("convergence") or {}
    target = convergence.get("target")
    confidence = convergence.get("confidence", 0.95)
    lines.append("")
    suffix = f", target ±{100 * target:.1f}pp" if target is not None else ""
    lines.append(f"outcomes (Wilson {100 * confidence:.0f}% CI{suffix}):")
    for row in snapshot.get("outcomes", ()):
        ci = ""
        if row.get("ci_low") is not None:
            ci = (
                f"  [{100 * row['ci_low']:5.1f}%, {100 * row['ci_high']:5.1f}%]"
                f"  ±{100 * row['half_width']:.1f}pp"
            )
        lines.append(
            f"  {row['outcome']:<7s} {row['count']:>8,d}"
            f"  {100 * row['share']:5.1f}%{ci}"
        )
    width_now = convergence.get("max_half_width")
    if width_now is not None:
        verdict = ""
        if target is not None:
            verdict = (
                "  -> converged"
                if convergence.get("converged")
                else f"  -> want ±{100 * target:.1f}pp"
            )
        lines.append(
            f"  convergence: max half-width ±{100 * width_now:.2f}pp{verdict}"
        )

    workers = snapshot.get("workers") or ()
    if workers:
        lines.append("")
        lines.append("workers:")
        for row in workers:
            if row.get("crashed"):
                liveness = "CRASHED"
            elif row.get("stalled"):
                liveness = f"STALLED ({row['last_seen_s']:.0f}s silent)"
            else:
                liveness = f"alive ({row['last_seen_s']:.1f}s ago)"
            line = (
                f"  {row['worker']:<18s} done={row['done']:<8,d}"
                f" busy={row['busy_s']:.1f}s"
            )
            if row.get("splices"):
                line += f" splices={row['splices']}"
            lines.append(f"{line}  {liveness}")

    tertiles = snapshot.get("tertiles") or ()
    if tertiles:
        parts = [
            f"{row['tertile']} {1e3 * row['mean_s']:.2f}ms (n={row['n']})"
            for row in tertiles
        ]
        lines.append("")
        lines.append("latency by depth tertile: " + " · ".join(parts))

    crashes = snapshot.get("crashes") or ()
    for crash in crashes:
        lines.append("")
        lines.append(
            f"worker crash: {crash.get('worker')} at {crash.get('site')}: "
            f"{crash.get('error')}"
        )
    return "\n".join(lines) + "\n"


class QueueDrain:
    """Parent-side daemon thread pumping the live queue into an aggregator.

    The campaign parent blocks in ``handle.get()`` between chunk drains,
    so records must be consumed off-thread for ``/status`` to stay fresh.
    ``stop`` drains whatever the queue feeder already shipped (bounded by
    ``settle_s``) — crash records pushed just before a worker exception
    re-raised in the parent still make it into the flight dump.
    """

    def __init__(self, queue, aggregator: LiveAggregator, poll_s: float = 0.2):
        self.queue = queue
        self.aggregator = aggregator
        self.poll_s = poll_s
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._loop, name="repro-live-drain", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                record = self.queue.get(timeout=self.poll_s)
            except Empty:
                continue
            except (OSError, EOFError, ValueError):  # queue torn down
                return
            self.aggregator.record(record)

    def stop(self, settle_s: float = 1.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=settle_s + 2.0)
            self._thread = None
        deadline = time.monotonic() + settle_s
        while time.monotonic() < deadline:
            try:
                record = self.queue.get(timeout=0.05)
            except Empty:
                break
            except (OSError, EOFError, ValueError):
                break
            self.aggregator.record(record)


class FlightRecorder:
    """Post-mortem dump writer for dead campaigns.

    Attached to a :class:`LiveAggregator` (``live.flight_recorder = ...``);
    :meth:`~LiveAggregator.abort` calls :meth:`dump` when the campaign
    raises.  The dump carries the parent's interleaved recent-record
    ring, every crashing worker's own ring + site + traceback, the final
    status snapshot, and the run-manifest snapshot when one was being
    written — everything needed to diagnose the death without rerunning.
    """

    def __init__(self, path: str | Path, manifest=None) -> None:
        self.path = Path(path)
        self.manifest = manifest
        self.written: Path | None = None

    def dump(self, aggregator: LiveAggregator, error=None, reason: str = "") -> Path:
        crashes = [dict(crash) for crash in aggregator.crashes]
        manifest_snapshot = None
        if self.manifest is not None:
            try:
                manifest_snapshot = self.manifest.to_dict()
            except Exception:
                manifest_snapshot = None
        payload = {
            "version": LIVE_STATUS_VERSION,
            "kind": "flight-recorder",
            "reason": reason or "campaign aborted",
            "error": repr(error) if error is not None else None,
            "traceback": (
                "".join(
                    traceback_module.format_exception(
                        type(error), error, error.__traceback__
                    )
                )
                if isinstance(error, BaseException)
                else None
            ),
            "status": aggregator.snapshot(),
            "ring": list(aggregator.ring),
            "crashes": crashes,
            "manifest": manifest_snapshot,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        tmp.replace(self.path)
        self.written = self.path
        return self.path


def load_flight_dump(path: str | Path) -> dict:
    """Read + sanity-check a flight-recorder dump."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read flight dump {path}: {exc}") from None
    if payload.get("kind") != "flight-recorder":
        raise ReproError(f"{path} is not a flight-recorder dump")
    if payload.get("version", 0) > LIVE_STATUS_VERSION:
        raise ReproError(
            f"flight dump {path} uses version {payload.get('version')!r}; "
            f"this build understands up to {LIVE_STATUS_VERSION}"
        )
    return payload
