"""Status front-ends over a :class:`~repro.observe.live.LiveAggregator`.

Three consumers of the same rolling snapshot:

* :class:`StatusServer` — stdlib HTTP endpoint (``--live-port``) serving
  ``/status`` JSON and a minimal self-refreshing HTML page.  This is the
  exact surface a future ``repro.serve`` layer mounts: CI pollers hit
  ``/status``, humans open ``/``.
* :class:`StatusFileWriter` — periodically rewrites a JSON status file
  atomically (``--live-status``), for campaigns on machines where
  opening a port is unwanted.
* :func:`watch` — the ``repro watch`` loop: resolve a target (status
  file, port, ``host:port`` or URL), fetch snapshots, re-render the
  dashboard until the campaign reaches a terminal state.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from ..errors import ReproError
from .live import LiveAggregator, render_live

_HTML_PAGE = """<!doctype html>
<html>
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="2">
<title>repro live — {kernel}</title>
<style>
body {{ background: #111; color: #ddd; font-family: monospace; }}
pre {{ font-size: 14px; line-height: 1.35; }}
</style>
</head>
<body>
<pre>{dashboard}</pre>
<p><a href="/status" style="color:#8cf">/status</a> (JSON)</p>
</body>
</html>
"""

#: States after which a watcher stops polling.
TERMINAL_STATES = frozenset({"done", "converged", "crashed"})


class _StatusHandler(BaseHTTPRequestHandler):
    server_version = "repro-statusd/1"

    def _send(self, body: bytes, content_type: str, code: int = 200) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        aggregator: LiveAggregator = self.server.aggregator  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        if path == "/status":
            body = json.dumps(aggregator.snapshot()).encode()
            self._send(body, "application/json")
        elif path in ("/", "/index.html"):
            snapshot = aggregator.snapshot()
            page = _HTML_PAGE.format(
                kernel=snapshot.get("kernel") or "campaign",
                dashboard=render_live(snapshot),
            )
            self._send(page.encode(), "text/html; charset=utf-8")
        elif path == "/healthz":
            self._send(b"ok\n", "text/plain")
        else:
            self._send(b"not found\n", "text/plain", code=404)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # campaign stderr belongs to the progress reporter


class StatusServer:
    """Background HTTP server exposing one aggregator's snapshots.

    ``port=0`` binds an ephemeral port; read ``.port`` after ``start()``
    (it is resolved at construction, when the socket binds).
    """

    def __init__(
        self,
        aggregator: LiveAggregator,
        port: int = 0,
        host: str = "127.0.0.1",
    ) -> None:
        self.aggregator = aggregator
        try:
            self._server = ThreadingHTTPServer((host, port), _StatusHandler)
        except OSError as exc:
            raise ReproError(f"cannot bind live status port {port}: {exc}") from None
        self._server.aggregator = aggregator  # type: ignore[attr-defined]
        self._server.daemon_threads = True
        self.host = host
        self.port = self._server.server_address[1]
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.2},
            name="repro-statusd",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        self._server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()


class StatusFileWriter:
    """Periodic atomic JSON snapshots of an aggregator to a file."""

    def __init__(
        self,
        aggregator: LiveAggregator,
        path: str | Path,
        interval_s: float = 1.0,
    ) -> None:
        self.aggregator = aggregator
        self.path = Path(path)
        self.interval_s = interval_s
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def write_once(self) -> None:
        snapshot = self.aggregator.snapshot()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(snapshot) + "\n")
        os.replace(tmp, self.path)

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._loop, name="repro-statusfile", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.write_once()
            except OSError:
                return
        # Final write so the file records the terminal state.
        try:
            self.write_once()
        except OSError:
            pass

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


def _file_fetcher(path: Path):
    def fetch() -> dict | None:
        try:
            text = path.read_text()
        except OSError:
            return None
        if not text.strip():
            return None
        try:
            return json.loads(text)
        except json.JSONDecodeError:
            return None  # mid-replace on a non-atomic filesystem; retry

    return fetch


def _http_fetcher(url: str):
    def fetch() -> dict | None:
        try:
            with urllib.request.urlopen(url, timeout=5.0) as response:
                return json.loads(response.read())
        except (urllib.error.URLError, OSError, json.JSONDecodeError, ValueError):
            return None

    return fetch


def resolve_target(target: str):
    """Map a ``repro watch`` target to a snapshot fetcher.

    Accepts a status-file path, a bare port (local campaign), a
    ``host:port`` pair, or a full ``http(s)://`` URL with or without the
    ``/status`` suffix.
    """
    if target.startswith(("http://", "https://")):
        url = target.rstrip("/")
        if not url.endswith("/status"):
            url += "/status"
        return _http_fetcher(url)
    if target.isdigit():
        return _http_fetcher(f"http://127.0.0.1:{int(target)}/status")
    host, sep, port = target.rpartition(":")
    if sep and port.isdigit() and host and "/" not in host and "\\" not in host:
        return _http_fetcher(f"http://{host}:{int(port)}/status")
    return _file_fetcher(Path(target))


def watch(
    target: str,
    interval_s: float = 1.0,
    stream=None,
    once: bool = False,
    as_json: bool = False,
    timeout_s: float | None = None,
    clock=time.monotonic,
    sleep=time.sleep,
) -> int:
    """The ``repro watch`` loop; returns a process exit code.

    Polls ``target`` until the campaign reports a terminal state
    (``done``/``converged``/``crashed``), re-rendering the dashboard on
    each fetch.  ``once`` renders a single snapshot and exits.  While the
    target does not resolve yet (campaign still starting), keeps retrying
    until ``timeout_s``.
    """
    stream = stream if stream is not None else sys.stdout
    fetch = resolve_target(target)
    started = clock()
    is_tty = getattr(stream, "isatty", lambda: False)()
    rendered_before = False
    while True:
        snapshot = fetch()
        if snapshot is None:
            if once or (
                timeout_s is not None and clock() - started > timeout_s
            ):
                print(f"repro watch: no live status at {target!r}", file=sys.stderr)
                return 1
            sleep(interval_s)
            continue
        if as_json:
            stream.write(json.dumps(snapshot, indent=1, sort_keys=True) + "\n")
        else:
            if is_tty and rendered_before:
                stream.write("\x1b[2J\x1b[H")
            stream.write(render_live(snapshot))
        stream.flush()
        rendered_before = True
        state = snapshot.get("state")
        if once or state in TERMINAL_STATES:
            return 0 if state != "crashed" else 2
        sleep(interval_s)
