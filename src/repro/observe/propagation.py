"""Campaign-level aggregation of fault-propagation provenance.

Consumes the ``propagation`` payloads that a tracing-enabled campaign
attaches to its :class:`~repro.telemetry.InjectionEvent` stream and
distils them into the report's ``--propagation`` sections:

* **PC vulnerability map** — per static instruction (the PC where the
  corruption entered architectural state): outcome mix, SDC rate,
  control-flow divergence rate, cross-CTA escape rate, and the mean
  masking depth of the flips it absorbed;
* **masking-depth histograms by fault model** — how many dynamic
  instructions a corruption survives before draining, in log2 buckets,
  split by fault model (value vs store-address vs register-file upsets
  mask very differently);
* **SDC pattern signatures** — the distinct propagation signatures
  behind the campaign's SDCs, ranked by frequency: two SDCs sharing a
  signature corrupted the same PC and propagated the same way;
* **pruning-group coherence** — for group-tagged events (emitted by
  :func:`~repro.faults.audit.run_coherence_audit`), the per-group
  signature-agreement rate: the fraction of probes at each audited site
  that match the site's modal signature.

Everything here is pure aggregation over event dicts — no simulator
access — so it works identically on live campaigns and on logs loaded
from disk.
"""

from __future__ import annotations

#: Distinct SDC signatures listed in the report (counts always cover all).
MAX_SIGNATURE_ROWS = 10

#: PC rows listed in the report, most-vulnerable first.
MAX_PC_ROWS = 20


def _depth_bucket(depth: int) -> str:
    """Log2 bucket label for a masking depth (1, 2, 3-4, 5-8, ...)."""
    if depth <= 1:
        return "1"
    exponent = (depth - 1).bit_length()
    low = (1 << (exponent - 1)) + 1
    high = 1 << exponent
    return str(high) if low == high else f"{low}-{high}"


def _pc_map(payloads: list[dict]) -> dict:
    per_pc: dict[int, dict] = {}
    for p in payloads:
        row = per_pc.setdefault(
            p["first_corrupted_pc"],
            {"n": 0, "outcomes": {}, "diverged": 0, "escaped": 0, "depths": []},
        )
        row["n"] += 1
        row["outcomes"][p["outcome"]] = row["outcomes"].get(p["outcome"], 0) + 1
        if p.get("divergence_dyn") is not None:
            row["diverged"] += 1
        if p.get("escaped_cta"):
            row["escaped"] += 1
        if p.get("masking_depth") is not None:
            row["depths"].append(p["masking_depth"])
    rows = []
    for pc, row in per_pc.items():
        n = row["n"]
        sdc = row["outcomes"].get("sdc", 0)
        depths = row.pop("depths")
        rows.append({
            "pc": pc,
            "n": n,
            "outcomes": dict(sorted(row["outcomes"].items())),
            "sdc_rate": sdc / n,
            "diverged_rate": row["diverged"] / n,
            "escaped_rate": row["escaped"] / n,
            "mean_masking_depth": sum(depths) / len(depths) if depths else None,
        })
    # Most vulnerable first: SDC rate, then sample size, then PC for
    # deterministic rendering.
    rows.sort(key=lambda r: (-r["sdc_rate"], -r["n"], r["pc"]))
    return {"n_pcs": len(rows), "rows": rows[:MAX_PC_ROWS]}


def _masking_section(payloads: list[dict]) -> dict:
    models: dict[str, dict] = {}
    for p in payloads:
        row = models.setdefault(
            p.get("model", "iov"), {"buckets": {}, "unmasked": 0, "n": 0}
        )
        row["n"] += 1
        depth = p.get("masking_depth")
        if depth is None:
            row["unmasked"] += 1
        else:
            bucket = _depth_bucket(depth)
            row["buckets"][bucket] = row["buckets"].get(bucket, 0) + 1
    for row in models.values():
        # Buckets in ascending numeric order ("1", "2", "3-4", "5-8"...).
        row["buckets"] = dict(
            sorted(row["buckets"].items(), key=lambda kv: int(kv[0].split("-")[0]))
        )
    return dict(sorted(models.items()))


def _signature_section(payloads: list[dict]) -> dict:
    counts: dict[str, int] = {}
    for p in payloads:
        if p["outcome"] != "sdc":
            continue
        signature = p.get("signature") or "?"
        counts[signature] = counts.get(signature, 0) + 1
    total = sum(counts.values())
    rows = [
        {"signature": sig, "count": count, "share": count / total}
        for sig, count in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    ]
    return {
        "n_sdc": total,
        "n_signatures": len(rows),
        "rows": rows[:MAX_SIGNATURE_ROWS],
    }


def _coherence_section(events) -> dict | None:
    """Per-group signature agreement from group-tagged injection events."""
    groups: dict[str, dict] = {}
    for event in events:
        if not event.group or not event.propagation:
            continue
        group = groups.setdefault(
            event.group, {"sites": {}, "threads": set()}
        )
        group["threads"].add(event.thread)
        site = (event.dyn_index, event.bit)
        signature = event.propagation.get("signature") or "?"
        group["sites"].setdefault(site, []).append(signature)
    if not groups:
        return None
    rows = []
    total_probes = total_agreed = 0
    for tag in sorted(groups, key=lambda t: (len(t), t)):
        group = groups[tag]
        probes = agreed = 0
        disagreeing_sites = []
        for site, signatures in sorted(group["sites"].items()):
            modal = max(set(signatures), key=signatures.count)
            matching = sum(1 for s in signatures if s == modal)
            probes += len(signatures)
            agreed += matching
            if matching != len(signatures):
                disagreeing_sites.append(
                    {"dyn_index": site[0], "bit": site[1],
                     "signatures": sorted(set(signatures))}
                )
        total_probes += probes
        total_agreed += agreed
        rows.append({
            "group": tag,
            "members": len(group["threads"]),
            "sites": len(group["sites"]),
            "probes": probes,
            "agreement": agreed / probes if probes else 1.0,
            "disagreements": disagreeing_sites,
        })
    return {
        "overall": total_agreed / total_probes if total_probes else 1.0,
        "n_groups": len(rows),
        "rows": rows,
    }


def build_propagation_section(log) -> dict | None:
    """The report's ``propagation`` section; None when nothing was traced."""
    payloads = [e.propagation for e in log.injections if e.propagation]
    coherence = _coherence_section(log.injections)
    if not payloads and coherence is None:
        return None
    return {
        "n_traced": len(payloads),
        "pc_map": _pc_map(payloads) if payloads else None,
        "masking": _masking_section(payloads) if payloads else None,
        "signatures": _signature_section(payloads) if payloads else None,
        "coherence": coherence,
    }


def render_trace_text(record: dict) -> str:
    """Human-readable deep dive for ``repro trace-fault`` (one record)."""
    lines = [
        f"propagation trace — thread {record['thread']}"
        f" / dyn {record['dyn_index']} / bit {record['bit']}"
        f" ({record['model']})",
        f"  outcome: {record['outcome']}"
        f"   replay: {record['replay_outcome']}"
        f"   backend: {record['backend']}",
        f"  first corrupted PC: {record['first_corrupted_pc']}",
        f"  signature: {record['signature']}",
    ]
    if record.get("divergence_dyn") is not None:
        lines.append(
            f"  control flow diverged at dyn {record['divergence_dyn']}"
            f" (pc {record['divergence_pc']})"
        )
    else:
        lines.append("  control flow: followed the golden path")
    depth = record.get("masking_depth")
    if depth is not None:
        lines.append(
            f"  masked after {depth} dynamic instruction(s)"
            f" (drained at dyn {record['masking_dyn']})"
        )
    else:
        lines.append("  corruption never drained from the register set")
    lines.append(
        f"  register lineage: {record['n_corruption_events']} change(s),"
        f" widest set {record['max_corrupted_regs']} register(s)"
    )
    for dyn, regs in record.get("corruption_events", [])[:12]:
        shown = ",".join(regs) if regs else "(clean)"
        lines.append(f"    dyn {dyn:>6}: {shown}")
    remaining = record["n_corruption_events"] - len(
        record.get("corruption_events", [])
    )
    if remaining > 0:
        lines.append(f"    ... {remaining} further change(s) not recorded")
    if record["heap_corrupt_bytes"]:
        lines.append(
            f"  heap: {record['heap_corrupt_bytes']} byte(s) corrupted,"
            f" extent {record['heap_extent']},"
            f" first at window offset {record['heap_first_offset']}"
        )
    else:
        lines.append("  heap: no corrupted bytes")
    escapes = []
    if record.get("escaped_thread"):
        escapes.append("crossed thread ownership")
    if record.get("escaped_cta"):
        escapes.append("crossed CTA ownership")
    lines.append(f"  escape: {'; '.join(escapes) if escapes else 'contained'}")
    if record["output_corrupt_bytes"]:
        lines.append(
            f"  output: {record['output_corrupt_bytes']} byte(s) corrupted,"
            f" extent {record['output_extent']},"
            f" max byte magnitude {record['output_max_magnitude']}"
        )
    else:
        lines.append("  output: identical to golden")
    lines.append(
        f"  faulty thread executed {record['faulty_icnt']}"
        " dynamic instruction(s)"
    )
    return "\n".join(lines) + "\n"
