"""Process-pool campaign execution.

Fault injections are embarrassingly parallel: each one is an independent
sliced re-execution against immutable golden state.  This module fans a
campaign's sites out over a pool of worker processes, each of which
builds its own :class:`~repro.faults.FaultInjector` **once** (in the pool
initializer, amortising the golden run over the worker's lifetime) and
then classifies chunks of sites.

Determinism guarantee: outcomes stream back to the caller in exact site
order regardless of which worker finished first, the parent applies the
site weights itself, and every worker classifies with the same injector
the serial path would use — so for a fixed seed the resulting
:class:`~repro.faults.ResilienceProfile` is byte-identical to a serial
run, and worker ``fallback_count`` deltas sum to the serial total.

Telemetry: when the parent campaign is instrumented, each worker records
into a private in-memory :class:`~repro.telemetry.Telemetry`; the deltas
(events, counters, histograms, spans) ship back with each chunk and are
absorbed into the parent handle (counters add, gauges last-write-win,
histogram/span stats combine).

Degradation: ``workers <= 1``, an unpicklable kernel instance, or a
platform without usable process pools all fall back to the serial
in-process path — same results, no pool.

Live streaming: when the campaign runs with a
:class:`~repro.observe.live.LiveAggregator`, each worker additionally
pushes compact per-injection delta records (outcome, duration,
effective/spliced instructions, checkpoint/resync hits) plus periodic
heartbeats over a multiprocessing queue as injections complete — the
parent's drain thread folds them into rolling state *while* chunks are
still in flight.  The stream is advisory and rides outside the in-order
outcome path, so live-on campaigns stay byte-identical to live-off.

See ``docs/performance.md`` for measured scaling and chunk-size guidance.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
from collections import deque
from typing import TYPE_CHECKING, Iterable, Iterator

from .faults.resync import DEFAULT_RESYNC_WINDOW
from .telemetry import NULL_TELEMETRY, MemorySink, NullSink, Telemetry, event_to_dict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults -> parallel)
    from .faults.injector import FaultInjector
    from .faults.outcome import Outcome
    from .faults.site import FaultSite

#: Default number of sites per worker task: large enough that IPC and
#: chunk bookkeeping are noise next to ~ms-scale injections, small enough
#: that a pool stays busy near a campaign's tail.
DEFAULT_CHUNK_SIZE = 32

#: Default serial ordering-batch size when the injector checkpoints: sites
#: are buffered in windows of this many, *executed* sorted by
#: ``(thread, dyn_index)`` so consecutive injections share warm snapshots,
#: and *emitted* in original order so profiles stay byte-identical.
DEFAULT_ORDER_BATCH = 64


def _inject_noted(injector, site, note=None, crash=None):
    """One injection, optionally reporting to a live channel.

    ``note(site, outcome, duration_s)`` fires after classification;
    ``crash(site, exc)`` fires (then re-raises) when the injection dies,
    so the live plane's flight recorder sees the failing site + this
    process's recent-event ring before the exception crosses back to the
    parent.
    """
    if note is None and crash is None:
        return injector.inject(site)
    t0 = time.perf_counter()
    try:
        outcome = injector.inject(site)
    except BaseException as exc:
        if crash is not None:
            crash(site, exc)
        raise
    if note is not None:
        note(site, outcome, time.perf_counter() - t0)
    return outcome


def _ordered_outcomes(
    injector: "FaultInjector",
    sites: list["FaultSite"],
    note=None,
    crash=None,
) -> list["Outcome"]:
    """Classify ``sites`` sorted by ``(thread, dyn_index)``; return them
    in original order.

    Sorting maximises checkpoint locality (each deeper site of a thread
    resumes from snapshots its shallower predecessors just stored), and is
    outcome-safe: injections share no mutable state beyond the checkpoint
    store, which holds only golden snapshots, so per-site outcomes are
    independent of execution order.  Live ``note`` callbacks fire in
    *execution* (sorted) order — the live plane is advisory, while the
    returned list preserves input order for the deterministic drain.
    """
    order = sorted(
        range(len(sites)), key=lambda i: (sites[i].thread, sites[i].dyn_index)
    )
    outcomes: list = [None] * len(sites)
    for i in order:
        outcomes[i] = _inject_noted(injector, sites[i], note, crash)
    return outcomes


class SerialExecutor:
    """The in-process reference executor: inject sites one by one.

    ``order_batch`` controls the checkpoint-locality ordering stage:
    ``None`` (the default) auto-enables :data:`DEFAULT_ORDER_BATCH`-site
    windows when the injector has a checkpoint store and stays fully
    streaming otherwise; ``0`` disables ordering; any positive value sets
    the window size explicitly.  Outcomes always stream back in exact
    input order.
    """

    workers = 1

    def __init__(self, order_batch: int | None = None) -> None:
        if order_batch is not None and order_batch < 0:
            raise ValueError("order_batch must be >= 0")
        self.order_batch = order_batch

    def imap(
        self,
        injector: "FaultInjector",
        pairs: Iterable[tuple["FaultSite", float]],
        telemetry: Telemetry | None = None,
        live=None,
    ) -> Iterator[tuple["FaultSite", float, "Outcome"]]:
        note = crash = None
        if live is not None:
            from .observe.live import LiveChannel

            injector_telemetry = injector.telemetry
            channel = LiveChannel(
                live.record,
                "serial",
                metrics=(
                    injector_telemetry.metrics
                    if injector_telemetry.enabled
                    else None
                ),
                ring_size=live.ring_size,
            )
            channel.online()
            note, crash = channel.note, channel.crash
        batch = self.order_batch
        if batch is None:
            batch = (
                DEFAULT_ORDER_BATCH
                if getattr(injector, "checkpoints", None) is not None
                else 0
            )
        if batch <= 1:
            for site, weight in pairs:
                yield site, weight, _inject_noted(injector, site, note, crash)
            return
        window: list[tuple] = []
        for pair in pairs:
            window.append(pair)
            if len(window) >= batch:
                yield from self._drain(injector, window, note, crash)
                window = []
        if window:
            yield from self._drain(injector, window, note, crash)

    @staticmethod
    def _drain(injector, window, note=None, crash=None):
        outcomes = _ordered_outcomes(
            injector, [site for site, _w in window], note, crash
        )
        for (site, weight), outcome in zip(window, outcomes):
            yield site, weight, outcome


# ----------------------------------------------------------- worker side
#
# Pool workers hold one injector for their whole lifetime.  Module-level
# globals are the standard multiprocessing idiom: the initializer runs
# once per worker process, and every task reads the same globals.

_WORKER_INJECTOR: "FaultInjector | None" = None
_WORKER_TELEMETRY: Telemetry = NULL_TELEMETRY
#: LiveChannel pushing this worker's per-injection deltas; None when the
#: campaign runs without the live plane.
_WORKER_LIVE = None
#: Whether chunk results carry full telemetry snapshots back to the
#: parent.  True only for *instrumented* campaigns (MemorySink); a
#: live-only worker keeps an enabled NullSink telemetry — counters exist
#: for delta reads but there are no events to ship.
_WORKER_SHIP_SNAPSHOTS = False


def _build_payload(injector: "FaultInjector") -> dict | None:
    """A picklable recipe for rebuilding ``injector`` in a worker.

    Registered kernels travel as their registry key (workers rebuild the
    deterministic instance themselves — cheap and always picklable);
    ad-hoc instances travel pickled.  ``None`` means the injector cannot
    cross a process boundary and the campaign must run serially.
    """
    payload: dict = {
        "hang_factor": injector.hang_factor,
        "thread_slicing": injector.thread_slicing,
        "instrumented": injector.telemetry.enabled,
        # Ship the *resolved* interval: "auto" was already collapsed to a
        # concrete int in the parent, so every worker uses the same plan.
        "checkpoint_interval": injector.checkpoint_interval,
        "checkpoint_budget_mb": injector.checkpoint_budget_mb,
        "backend": injector.backend,
        # Provenance tracing travels with the campaign: records stream
        # back inside each worker's InjectionEvents (snapshot absorb).
        "propagation": injector.propagation,
        # Resync travels too: each worker keeps its own divergence-window
        # memo (keys are deterministic, so verdicts agree across workers).
        "resync": injector.resync,
        "resync_window": injector.resync_window,
    }
    try:
        # Golden handoff: workers rebuild the final heap from these logs
        # instead of each re-running a traced-and-logged golden launch.
        payload["golden"] = pickle.dumps(injector.golden_state())
    except Exception:  # pragma: no cover - exotic unpicklable golden data
        pass  # workers fall back to running their own golden capture
    spec = injector.instance.spec
    if spec is not None:
        from .kernels.registry import get_kernel

        try:
            if get_kernel(spec.key) is spec:
                payload["kernel"] = spec.key
                return payload
        except Exception:  # pragma: no cover - unregistered ad-hoc spec
            pass
    try:
        payload["instance"] = pickle.dumps(injector.instance)
    except Exception:
        return None
    return payload


def _init_worker(payload: dict, live_queue=None) -> None:
    """Pool initializer: build this worker's injector once.

    ``live_queue`` (a context-matched ``multiprocessing.Queue``) arrives
    via ``initargs`` — queues may cross process boundaries during pool
    setup, just not inside task arguments — and turns on this worker's
    live delta stream.
    """
    global _WORKER_INJECTOR, _WORKER_TELEMETRY, _WORKER_LIVE, _WORKER_SHIP_SNAPSHOTS
    from .faults.injector import FaultInjector

    if "kernel" in payload:
        from .kernels.registry import load_instance

        instance = load_instance(payload["kernel"])
    else:
        instance = pickle.loads(payload["instance"])
    if payload["instrumented"]:
        telemetry = Telemetry(sink=MemorySink())
    elif payload.get("live"):
        # Enabled-but-discarding: per-injection counters (effective /
        # spliced instructions, checkpoint/resync hits) accumulate for
        # the live channel's delta reads, events are never built up.
        telemetry = Telemetry(sink=NullSink())
    else:
        telemetry = NULL_TELEMETRY
    golden = pickle.loads(payload["golden"]) if "golden" in payload else None
    _WORKER_INJECTOR = FaultInjector(
        instance,
        hang_factor=payload["hang_factor"],
        verify_golden=False,  # the parent already verified this instance
        telemetry=telemetry,
        thread_slicing=payload["thread_slicing"],
        checkpoint_interval=payload.get("checkpoint_interval", 0),
        checkpoint_budget_mb=payload.get("checkpoint_budget_mb", 64.0),
        backend=payload.get("backend", "interpreter"),
        golden=golden,
        propagation=payload.get("propagation", False),
        resync=payload.get("resync", False),
        resync_window=payload.get("resync_window", DEFAULT_RESYNC_WINDOW),
    )
    _WORKER_TELEMETRY = telemetry
    _WORKER_SHIP_SNAPSHOTS = bool(payload["instrumented"])
    if live_queue is not None:
        from .observe.live import DEFAULT_RING_SIZE, LiveChannel

        channel = LiveChannel(
            live_queue.put,
            multiprocessing.current_process().name,
            metrics=telemetry.metrics if telemetry.enabled else None,
            ring_size=payload.get("ring", DEFAULT_RING_SIZE),
        )
        # Injector construction may have bumped counters (golden rebuild);
        # re-anchor so the first injection's delta is its own.
        channel.resync_counters()
        channel.online()
        _WORKER_LIVE = channel
    else:
        _WORKER_LIVE = None


def _run_chunk(
    sites: list["FaultSite"], submitted_at: float | None = None
) -> tuple[list[str], int, dict | None]:
    """Classify one chunk; ship outcome values + telemetry/fallback deltas."""
    injector = _WORKER_INJECTOR
    assert injector is not None, "worker initializer did not run"
    telemetry = _WORKER_TELEMETRY
    live = _WORKER_LIVE
    note = live.note if live is not None else None
    crash = live.crash if live is not None else None
    if telemetry.enabled and submitted_at is not None:
        # Wall-clock spent queued between parent submit and worker pickup:
        # the chunk-granularity face of the ``queue_wait`` phase.
        telemetry.observe(
            "parallel.queue_wait_s", max(0.0, time.time() - submitted_at)
        )
    busy_t0 = time.perf_counter()
    fallbacks_before = injector.fallback_count
    if injector.checkpoints is not None:
        # Execute the chunk in (thread, dyn_index) order for checkpoint
        # locality; the returned outcome list stays in input order, so the
        # parent's in-order drain (and therefore the profile) is unchanged.
        outcomes = [o.value for o in _ordered_outcomes(injector, sites, note, crash)]
    else:
        outcomes = [
            _inject_noted(injector, site, note, crash).value for site in sites
        ]
    fallback_delta = injector.fallback_count - fallbacks_before
    snapshot = None
    if telemetry.enabled:
        name = multiprocessing.current_process().name
        telemetry.count(f"parallel.worker.{name}.busy_s",
                        time.perf_counter() - busy_t0)
        telemetry.count(f"parallel.worker.{name}.chunks")
        telemetry.count(f"parallel.worker.{name}.injections", len(sites))
        if _WORKER_SHIP_SNAPSHOTS:
            sink = telemetry.sink
            snapshot = {
                "events": [event_to_dict(e) for e in sink.events],
                "metrics": telemetry.metrics.snapshot(),
                "spans": telemetry.spans.snapshot(),
                "worker": name,
            }
            # Reset so the next chunk ships deltas, not cumulative state.
            sink.events.clear()
            telemetry.metrics.__init__()
            telemetry.spans.__init__()
            if live is not None:
                live.resync_counters()
    return outcomes, fallback_delta, snapshot


# ----------------------------------------------------------- parent side


class ParallelCampaignRunner:
    """Fan campaign sites over a process pool, stream outcomes in order.

    Args:
        workers: pool size; ``<= 1`` degrades to the serial path.
        chunk_size: sites per worker task.
        start_method: multiprocessing start method (``"fork"``/``"spawn"``/
            ``"forkserver"``); default prefers ``fork`` where available
            (cheap worker start) and falls back to the platform default.
        max_pending: in-flight task bound; defaults to ``4 * workers`` so
            site iterables stream instead of materialising.
    """

    def __init__(
        self,
        workers: int,
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        start_method: str | None = None,
        max_pending: int | None = None,
    ) -> None:
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.workers = workers
        self.chunk_size = chunk_size
        self.start_method = start_method
        self.max_pending = max_pending if max_pending is not None else 4 * max(workers, 1)

    def _context(self):
        if self.start_method is not None:
            return multiprocessing.get_context(self.start_method)
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            return multiprocessing.get_context()

    def imap(
        self,
        injector: "FaultInjector",
        pairs: Iterable[tuple["FaultSite", float]],
        telemetry: Telemetry | None = None,
        live=None,
    ) -> Iterator[tuple["FaultSite", float, "Outcome"]]:
        """Yield ``(site, weight, outcome)`` in exact input order.

        ``live`` (a :class:`~repro.observe.live.LiveAggregator`) turns on
        the worker delta stream: a context-matched queue rides into each
        worker via the pool initializer and a parent-side drain thread
        folds records into the aggregator while chunks are in flight.
        """
        telemetry = telemetry if telemetry is not None else injector.telemetry
        if self.workers <= 1:
            yield from SerialExecutor().imap(injector, pairs, telemetry, live=live)
            return
        payload = _build_payload(injector)
        if payload is None:
            if telemetry.enabled:
                telemetry.count("parallel.serial_fallback")
            yield from SerialExecutor().imap(injector, pairs, telemetry, live=live)
            return
        ctx = self._context()
        live_queue = None
        if live is not None:
            payload["live"] = True
            payload["ring"] = live.ring_size
            live_queue = ctx.Queue()
        initargs = (payload,) if live_queue is None else (payload, live_queue)
        try:
            pool = ctx.Pool(
                processes=self.workers,
                initializer=_init_worker,
                initargs=initargs,
            )
        except (OSError, ValueError):  # pragma: no cover - pool-less platforms
            if telemetry.enabled:
                telemetry.count("parallel.serial_fallback")
            yield from SerialExecutor().imap(injector, pairs, telemetry, live=live)
            return
        drain = None
        if live is not None:
            from .observe.live import QueueDrain

            drain = QueueDrain(live_queue, live)
            drain.start()
        if telemetry.enabled:
            telemetry.set_gauge("parallel.workers", self.workers)
        try:
            yield from self._drive(pool, injector, pairs, telemetry)
        finally:
            # Drain before terminate: records the feeder already shipped
            # (including crash rings pushed just before a worker exception
            # re-raised here) must land in the aggregator, and terminating
            # the pool can tear the queue down mid-get.
            if drain is not None:
                drain.stop()
            pool.terminate()
            pool.join()

    def _drive(self, pool, injector, pairs, telemetry):
        """Submit chunks up to ``max_pending``; drain strictly in order."""
        from .faults.outcome import Outcome

        pending: deque = deque()

        def drain_one():
            chunk, handle = pending.popleft()
            # .get() re-raises any worker exception in the parent, so a
            # crash inside a worker surfaces exactly like a serial one.
            outcomes, fallback_delta, snapshot = handle.get()
            injector.fallback_count += fallback_delta
            if telemetry.enabled:
                telemetry.count("parallel.chunks")
                if snapshot is not None:
                    telemetry.absorb(snapshot)
            for (site, weight), value in zip(chunk, outcomes, strict=True):
                yield site, weight, Outcome(value)

        instrumented = telemetry.enabled
        for chunk in self._chunked(pairs):
            sites = [site for site, _weight in chunk]
            submitted_at = time.time() if instrumented else None
            pending.append(
                (chunk, pool.apply_async(_run_chunk, (sites, submitted_at)))
            )
            if len(pending) >= self.max_pending:
                yield from drain_one()
        while pending:
            yield from drain_one()

    def _chunked(self, pairs):
        chunk: list = []
        for pair in pairs:
            chunk.append(pair)
            if len(chunk) >= self.chunk_size:
                yield chunk
                chunk = []
        if chunk:
            yield chunk


def resolve_executor(
    workers: int | None,
    *,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    start_method: str | None = None,
) -> ParallelCampaignRunner | None:
    """``--workers N`` semantics: ``None``/``<=1`` means plain serial."""
    if workers is None or workers <= 1:
        return None
    return ParallelCampaignRunner(
        workers, chunk_size=chunk_size, start_method=start_method
    )
