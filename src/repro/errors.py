"""Exception hierarchy shared by every layer of the reproduction.

The fault injector relies on this hierarchy to classify run outcomes:
``MemoryFault`` and ``InvalidProgram`` raised *during a faulty run* are
classified as crashes, while ``HangDetected`` maps to the hang bucket.
Errors raised during a golden (fault-free) run always indicate a bug in a
kernel or in the simulator and are re-raised.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class SimulatorError(ReproError):
    """Base class for errors raised by the GPU functional simulator."""


class InvalidProgram(SimulatorError):
    """A program failed static validation (unknown label, bad operand, ...)."""


class MemoryFault(SimulatorError):
    """An access touched an address outside every live allocation.

    During fault injection this is the signature of a crashed kernel
    (the hardware analogue is an Xid/MMU fault aborting the launch).
    """

    def __init__(self, space: str, address: int, size: int) -> None:
        super().__init__(f"invalid {space} access of {size} bytes at 0x{address:x}")
        self.space = space
        self.address = address
        self.size = size


class HangDetected(SimulatorError):
    """A thread exceeded its dynamic-instruction budget or a CTA deadlocked."""


class ExecutionFault(SimulatorError):
    """A non-memory dynamic fault (e.g. corrupted operand state)."""


class ResyncReached(Exception):
    """Control-flow signal: a faulty run reconverged with golden state.

    Raised by the resync monitor (``repro.faults.resync``) from inside a
    per-instruction sink once the injected thread's architectural state
    and write stream are provably byte-identical to the golden run — the
    remaining suffix is then spliced from golden artifacts instead of
    being executed.  Deliberately *not* a :class:`ReproError`: it is a
    non-error unwind that must never be classified as a crash or hang.
    """

    def __init__(
        self, resync_dyn: int, flip_dyn: int, from_memo: bool = False,
        window_reads: tuple = (),
    ) -> None:
        super().__init__(f"resynchronised with golden at dyn {resync_dyn}")
        self.resync_dyn = resync_dyn
        self.flip_dyn = flip_dyn
        self.from_memo = from_memo
        #: ``(address, nbytes)`` loads issued inside the divergence window
        #: (memo-hit splices replay these into the caller's read log so
        #: thread-slice interference checks stay byte-identical).
        self.window_reads = window_reads


class FaultInjectionError(ReproError):
    """Misuse of the fault-injection API (site out of range, no dest, ...)."""


class PruningError(ReproError):
    """Misuse of the pruning API or an internally inconsistent pruned space."""


class KernelAuthoringError(ReproError):
    """A kernel builder was used incorrectly while authoring a workload."""
