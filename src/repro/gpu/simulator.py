"""Kernel launches over the functional GPU model.

:class:`GPUSimulator` owns the device heap and launches programs over a
(grid, block) geometry, executing CTAs sequentially (CTAs within one launch
cannot communicate, per the CUDA execution model, so sequential order is
exact).  It exposes the three facilities the fault-injection layer builds
on:

* **golden runs** with per-thread dynamic traces, per-CTA write/read logs
  and optional per-thread write attribution;
* **sliced runs** (``only_cta=`` / ``only_thread=``) that re-execute a
  single CTA — or a single thread of a communication-free CTA — against a
  heap snapshot: the injector's fast paths;
* **injected runs** that flip one destination-register bit in one dynamic
  instruction of one thread.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..errors import FaultInjectionError, HangDetected, MemoryFault, SimulatorError
from ..telemetry import NULL_TELEMETRY, SimRunEvent, Telemetry
from .checkpoint import CheckpointPlan, CTACheckpoint, ThreadCheckpoint
from .cta import run_cta
from .memory import GlobalMemory, ParamMemory, SharedMemory
from .program import Program
from .thread import ThreadContext
from .tracing import ThreadTrace

#: Generous per-thread budget for golden runs; catches authoring bugs only.
DEFAULT_MAX_STEPS = 1_000_000

#: Execution backends: ``interpreter`` is the decoded-tuple loop in
#: :mod:`~repro.gpu.thread`; ``compiled`` specialises programs into
#: closure chains (:mod:`~repro.gpu.compiler`) with identical semantics;
#: ``vectorized`` executes lane-masked SIMD over a numpy register file
#: (:mod:`~repro.gpu.vector`), falling back to the compiled path whenever
#: lockstep execution cannot prove classic-identical results.
BACKENDS = ("interpreter", "compiled", "vectorized")

#: Cache-size bound for pooled contexts / bound chains / specials dicts;
#: cleared wholesale on overflow (campaigns touch far fewer keys).
_POOL_LIMIT = 4096

Dim2 = tuple[int, int]


@dataclass(frozen=True)
class LaunchGeometry:
    """Grid and block dimensions (x, y) of a kernel launch."""

    grid: Dim2
    block: Dim2

    @property
    def n_ctas(self) -> int:
        return self.grid[0] * self.grid[1]

    @property
    def threads_per_cta(self) -> int:
        return self.block[0] * self.block[1]

    @property
    def n_threads(self) -> int:
        return self.n_ctas * self.threads_per_cta

    def cta_of_thread(self, thread_id: int) -> int:
        return thread_id // self.threads_per_cta

    def specials_for(self, cta: int, slot: int) -> dict[tuple[str, str], int]:
        gx, _gy = self.grid
        bx, _by = self.block
        return {
            ("tid", "x"): slot % bx,
            ("tid", "y"): slot // bx,
            ("tid", "z"): 0,
            ("ntid", "x"): self.block[0],
            ("ntid", "y"): self.block[1],
            ("ntid", "z"): 1,
            ("ctaid", "x"): cta % gx,
            ("ctaid", "y"): cta // gx,
            ("ctaid", "z"): 0,
            ("nctaid", "x"): self.grid[0],
            ("nctaid", "y"): self.grid[1],
            ("nctaid", "z"): 1,
        }


@dataclass
class LaunchResult:
    """Artifacts of one launch."""

    geometry: LaunchGeometry
    traces: list[ThreadTrace] | None
    cta_write_logs: list[list[tuple[int, bytes]]] | None
    injection_applied: bool
    instructions: int = 0
    barrier_rounds: int = 0
    #: Per-thread global-write attribution (``record_thread_write_logs``).
    thread_write_logs: list[list[tuple[int, bytes]]] | None = None
    #: Per-CTA ``(address, size)`` load logs (``record_read_logs``).
    cta_read_logs: list[list[tuple[int, int]]] | None = None


class GPUSimulator:
    """Device state plus the launch entry point."""

    def __init__(
        self,
        heap_bytes: int = 1 << 20,
        telemetry: Telemetry | None = None,
        backend: str = "interpreter",
    ) -> None:
        if backend not in BACKENDS:
            raise SimulatorError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        self.memory = GlobalMemory(heap_bytes)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.backend = backend
        # Per-(program, params, geometry, cta, slot) reuse caches for the
        # sliced fast paths: bound closure chains, read-only specials
        # dicts, pooled ThreadContexts and shared scratchpads.  Values pin
        # the program object so an id() collision can never alias.
        self._bind_cache: dict = {}
        self._specials_cache: dict = {}
        self._context_pool: dict = {}
        self._shared_pool: dict = {}
        self._vector_pool: dict = {}

    # ------------------------------------------------------------- pooling

    def _cached_specials(self, geometry, cta: int, slot: int):
        key = (geometry, cta, slot)
        specials = self._specials_cache.get(key)
        if specials is None:
            if len(self._specials_cache) >= _POOL_LIMIT:
                self._specials_cache.clear()
            specials = geometry.specials_for(cta, slot)
            self._specials_cache[key] = specials
        return specials

    def _cached_chain(self, program, compiled_program, key, specials):
        entry = self._bind_cache.get(key)
        if entry is not None and entry[0] is program:
            if self.telemetry.enabled:
                self.telemetry.count("compiled.chain_hits")
            return entry[1]
        chain = compiled_program.bind(specials)
        if len(self._bind_cache) >= _POOL_LIMIT:
            self._bind_cache.clear()
        self._bind_cache[key] = (program, chain)
        if self.telemetry.enabled:
            self.telemetry.count("compiled.chain_misses")
        return chain

    def _pooled_shared(self, program, cta: int):
        key = (id(program), cta)
        entry = self._shared_pool.get(key)
        if entry is not None and entry[0] is program:
            shared = entry[1]
            shared.clear()
            return shared
        shared = SharedMemory(program.shared_bytes)
        if len(self._shared_pool) >= _POOL_LIMIT:
            self._shared_pool.clear()
        self._shared_pool[key] = (program, shared)
        return shared

    def _note_restore(self, seconds: float) -> None:
        """Attribute in-launch snapshot-restore time to its own phase.

        The injector's ``suffix_exec`` phase brackets the whole launch
        call, so restore cost is moved out of it and into
        ``checkpoint_restore`` via a negative delta — the two phases keep
        summing to the bracketed wall clock.
        """
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.add_phase("checkpoint_restore", seconds)
            telemetry.add_phase("suffix_exec", -seconds)
            telemetry.observe("checkpoint.restore_s", seconds)

    # ------------------------------------------------------------- buffers

    def alloc_array(self, array: np.ndarray) -> int:
        """Copy a host array to a fresh device buffer; returns its address."""
        raw = np.ascontiguousarray(array).tobytes()
        base = self.memory.alloc(len(raw))
        self.memory.write_bytes(base, raw)
        return base

    def alloc_zeros(self, nbytes: int) -> int:
        return self.memory.alloc(nbytes)

    def read_array(self, base: int, dtype: np.dtype, count: int) -> np.ndarray:
        nbytes = int(np.dtype(dtype).itemsize) * count
        return np.frombuffer(self.memory.read_bytes(base, nbytes), dtype=dtype).copy()

    # -------------------------------------------------------------- launch

    def launch(
        self,
        program: Program,
        geometry: LaunchGeometry,
        param_bytes: bytes,
        *,
        memory: GlobalMemory | None = None,
        record_traces: bool = False,
        record_write_logs: bool = False,
        record_read_logs: bool = False,
        record_thread_write_logs: bool = False,
        only_cta: int | None = None,
        only_thread: int | None = None,
        injection: tuple | None = None,
        max_steps: int = DEFAULT_MAX_STEPS,
        checkpoint: CheckpointPlan | None = None,
        step_trace: tuple | None = None,
    ) -> LaunchResult:
        """Run ``program`` over ``geometry``.

        Args:
            param_bytes: packed kernel-parameter block.
            memory: heap to run against (defaults to the simulator's own).
            record_read_logs: log every global load as ``(address, size)``
                per CTA (golden runs; powers thread-sliced injection).
            record_thread_write_logs: attribute global writes to the
                issuing thread (requires ``record_write_logs``).
            only_cta: execute just this CTA (the injection fast path).
            only_thread: execute just this global thread — valid only for
                kernels whose CTA threads provably do not communicate;
                the caller (the injector) is responsible for that proof.
            injection: either the legacy ``(global_thread_id, dyn_index,
                bit)`` destination-value flip, or ``(global_thread_id,
                InjectionSpec)`` for the extended fault models.
            max_steps: per-thread dynamic-instruction budget; exceeded →
                :class:`~repro.errors.HangDetected` propagates to the caller.
            checkpoint: a :class:`~repro.gpu.checkpoint.CheckpointPlan` for
                sliced runs — restore golden state before executing and/or
                capture snapshots along the golden prefix.  The caller owns
                the heap contract: a resumed run's heap must already hold
                the golden write prefix up to the snapshot.
            step_trace: ``(global_thread_id, sink)`` — observe that one
                thread at *every* dynamic instruction via the existing
                checkpoint-sink plumbing (``sink(dyn, pc, regs)`` fires at
                the loop head, before the instruction at ``dyn`` issues
                and before any register-file flip).  Powers the
                propagation tracer; exclusive with ``checkpoint`` because
                both ride the same per-context sink slot.
        """
        if len(param_bytes) != program.param_bytes:
            raise SimulatorError(
                f"{program.name}: expected {program.param_bytes} param bytes, "
                f"got {len(param_bytes)}"
            )
        heap = memory if memory is not None else self.memory
        param_mem = ParamMemory(param_bytes)
        compiled_program = (
            program.compiled(param_mem) if self.backend == "compiled" else None
        )
        injection_thread = None
        injection_spec = None
        if injection is not None:
            if len(injection) == 3:
                injection_thread = injection[0]
                injection_spec = (injection[1], injection[2])
            else:
                injection_thread, injection_spec = injection
        tpc = geometry.threads_per_cta
        if only_thread is not None:
            if only_cta is not None:
                raise SimulatorError("only_cta and only_thread are exclusive")
            if not 0 <= only_thread < geometry.n_threads:
                raise SimulatorError(f"thread {only_thread} outside grid")
            only_slot = only_thread % tpc
            ctas: tuple[int, ...] | range = (geometry.cta_of_thread(only_thread),)
        else:
            only_slot = None
            ctas = range(geometry.n_ctas) if only_cta is None else (only_cta,)
        if only_cta is not None and not 0 <= only_cta < geometry.n_ctas:
            raise SimulatorError(f"CTA {only_cta} outside grid")
        if checkpoint is not None and only_thread is None and only_cta is None:
            raise SimulatorError("checkpoint plans require a sliced run")
        if step_trace is not None:
            if checkpoint is not None:
                raise SimulatorError("step_trace and checkpoint plans are exclusive")
            if not 0 <= step_trace[0] < geometry.n_threads:
                raise SimulatorError(f"step_trace thread {step_trace[0]} outside grid")

        if self.backend == "vectorized":
            # Thread-sliced and step-traced runs need per-instruction
            # observation of a single thread; they stay on the compiled
            # path, which is already exact for them.
            if only_thread is None and step_trace is None:
                from .vector import VectorFallback, launch_vectorized

                try:
                    return launch_vectorized(
                        self,
                        program,
                        geometry,
                        param_mem,
                        heap,
                        record_traces=record_traces,
                        record_write_logs=record_write_logs,
                        record_read_logs=record_read_logs,
                        record_thread_write_logs=record_thread_write_logs,
                        only_cta=only_cta,
                        injection_thread=injection_thread,
                        injection_spec=injection_spec,
                        max_steps=max_steps,
                        checkpoint=checkpoint,
                    )
                except VectorFallback:
                    if self.telemetry.enabled:
                        self.telemetry.count("vector.fallbacks")
            compiled_program = program.compiled(param_mem)

        traces: list[ThreadTrace] | None = None
        trace_map: dict[int, ThreadTrace] = {}
        write_logs: list[list[tuple[int, bytes]]] | None = (
            [[] for _ in range(geometry.n_ctas)] if record_write_logs else None
        )
        read_logs: list[list[tuple[int, int]]] | None = (
            [[] for _ in range(geometry.n_ctas)] if record_read_logs else None
        )
        thread_write_logs: list[list[tuple[int, bytes]]] | None = (
            [[] for _ in range(geometry.n_threads)]
            if record_thread_write_logs and record_write_logs
            else None
        )
        injection_applied = False
        telemetry = self.telemetry
        t0 = time.perf_counter() if telemetry.enabled else 0.0
        instructions = 0
        barrier_rounds = 0
        total_skipped = 0
        hang = memory_fault = False

        # Sliced runs (the per-injection hot path) reuse pooled contexts,
        # shared scratchpads, specials dicts and bound closure chains;
        # full-grid runs (golden capture) build everything fresh.
        use_pool = only_cta is not None or only_thread is not None
        param_key = param_mem.raw
        try:
            for cta in ctas:
                if not program.shared_bytes:
                    shared = None
                elif use_pool:
                    shared = self._pooled_shared(program, cta)
                else:
                    shared = SharedMemory(program.shared_bytes)
                slots = range(tpc) if only_slot is None else (only_slot,)
                threads = []
                for slot in slots:
                    thread_id = cta * tpc + slot
                    thread_injection = None
                    if injection_thread == thread_id:
                        thread_injection = injection_spec
                    if use_pool:
                        key = (id(program), param_key, geometry, cta, slot)
                        specials = self._cached_specials(geometry, cta, slot)
                        chain = (
                            self._cached_chain(
                                program, compiled_program, key, specials
                            )
                            if compiled_program is not None
                            else None
                        )
                        entry = self._context_pool.get(key)
                        if entry is not None and entry[0] is program:
                            ctx = entry[1]
                            ctx.reset(
                                specials,
                                heap,
                                shared,
                                param_mem,
                                max_steps=max_steps,
                                record_trace=record_traces,
                                injection=thread_injection,
                                compiled=chain,
                            )
                            threads.append(ctx)
                            continue
                    else:
                        specials = geometry.specials_for(cta, slot)
                        chain = (
                            compiled_program.bind(specials)
                            if compiled_program is not None
                            else None
                        )
                    ctx = ThreadContext(
                        program,
                        specials,
                        heap,
                        shared,
                        param_mem,
                        max_steps=max_steps,
                        record_trace=record_traces,
                        injection=thread_injection,
                        compiled=chain,
                    )
                    if use_pool:
                        if len(self._context_pool) >= _POOL_LIMIT:
                            self._context_pool.clear()
                        self._context_pool[key] = (program, ctx)
                    threads.append(ctx)
                if step_trace is not None:
                    for slot, ctx in zip(slots, threads):
                        if cta * tpc + slot == step_trace[0]:
                            # every=1 on the absolute dyn grid, alive for
                            # the whole run — per-instruction observation
                            # with zero hot-loop changes.
                            ctx.plan_checkpoints(1, max_steps, step_trace[1])
                barrier_hook = None
                rounds_start = 0
                skipped = 0
                if checkpoint is not None:
                    resume = checkpoint.resume
                    if only_thread is not None:
                        if resume is not None:
                            if not isinstance(resume, ThreadCheckpoint):
                                raise SimulatorError(
                                    "thread-sliced runs resume from ThreadCheckpoint"
                                )
                            restore_t0 = time.perf_counter()
                            threads[0].resume_from(resume)
                            self._note_restore(time.perf_counter() - restore_t0)
                            skipped = resume.dyn_index
                        if checkpoint.sink is not None and (
                            checkpoint.interval > 0 or checkpoint.start is not None
                        ):
                            threads[0].plan_checkpoints(
                                checkpoint.interval,
                                checkpoint.limit,
                                checkpoint.sink,
                                start=checkpoint.start,
                            )
                    else:
                        if resume is not None:
                            if not isinstance(resume, CTACheckpoint):
                                raise SimulatorError(
                                    "CTA-sliced runs resume from CTACheckpoint"
                                )
                            restore_t0 = time.perf_counter()
                            resume.restore(threads, shared)
                            self._note_restore(time.perf_counter() - restore_t0)
                            rounds_start = resume.barrier_rounds
                            skipped = resume.instructions
                        if checkpoint.sink is not None:

                            def barrier_hook(
                                rounds, cta_threads,
                                _sink=checkpoint.sink, _shared=shared,
                            ):
                                _sink(rounds, cta_threads, _shared)

                        if checkpoint.step_sink is not None:
                            # Per-instruction observation of one thread
                            # (the resync monitor) — the per-context sink
                            # slot is free in CTA-sliced runs, whose
                            # checkpoint captures ride the barrier hook.
                            threads[checkpoint.step_slot].plan_checkpoints(
                                0, -1, checkpoint.step_sink,
                                start=checkpoint.step_start,
                            )

                caller_write_log = heap.write_log
                caller_read_log = heap.read_log
                if write_logs is not None:
                    heap.write_log = write_logs[cta]
                if read_logs is not None:
                    heap.read_log = read_logs[cta]
                segment_logs = (
                    [thread_write_logs[cta * tpc + slot] for slot in slots]
                    if thread_write_logs is not None
                    else None
                )
                try:
                    barrier_rounds += run_cta(
                        threads,
                        segment_logs,
                        barrier_hook=barrier_hook,
                        barrier_rounds_start=rounds_start,
                    )
                finally:
                    heap.write_log = caller_write_log if write_logs is None else None
                    if read_logs is not None:
                        heap.read_log = caller_read_log
                    for thread in threads:
                        instructions += thread.dyn_count
                    # A resumed slice reports only the instructions it
                    # actually executed, not the skipped golden prefix.
                    instructions -= skipped
                    total_skipped += skipped
                for slot, thread in zip(slots, threads):
                    if record_traces:
                        trace_map[cta * tpc + slot] = thread.trace  # type: ignore[assignment]
                    if injection_thread == cta * tpc + slot:
                        injection_applied = thread.injection is None
        except HangDetected:
            hang = True
            raise
        except MemoryFault:
            memory_fault = True
            raise
        finally:
            if telemetry.enabled:
                if only_thread is not None:
                    kind = "thread-sliced"
                elif only_cta is not None:
                    kind = "sliced"
                else:
                    kind = "golden" if injection_thread is None else "full"
                telemetry.count("sim.launches")
                telemetry.count("sim.instructions", instructions)
                telemetry.count("sim.barrier_rounds", barrier_rounds)
                if hang:
                    telemetry.count("sim.hangs")
                if memory_fault:
                    telemetry.count("sim.memory_faults")
                telemetry.emit(
                    SimRunEvent(
                        time.time(),
                        kind=kind,
                        n_ctas=len(ctas),
                        instructions=instructions,
                        barrier_rounds=barrier_rounds,
                        hang=hang,
                        memory_fault=memory_fault,
                        duration_s=time.perf_counter() - t0,
                        backend=self.backend,
                        checkpoint_interval=(
                            checkpoint.interval if checkpoint is not None else 0
                        ),
                        skipped_instructions=total_skipped,
                    )
                )

        if injection_thread is not None and only_cta is None and only_thread is None:
            owner = geometry.cta_of_thread(injection_thread)
            if owner not in ctas:  # pragma: no cover - defensive
                raise FaultInjectionError("injection thread outside launched CTAs")
        if record_traces:
            if only_cta is None and only_thread is None:
                traces = [trace_map[t] for t in range(geometry.n_threads)]
            else:
                traces = [trace_map[t] for t in sorted(trace_map)]
        return LaunchResult(
            geometry=geometry,
            traces=traces,
            cta_write_logs=write_logs,
            injection_applied=injection_applied,
            instructions=instructions,
            barrier_rounds=barrier_rounds,
            thread_write_logs=thread_write_logs,
            cta_read_logs=read_logs,
        )
