"""Injection specifications consumed by the interpreter.

Defined at the GPU layer (the interpreter executes them); the
fault-injection layer re-exports them as :mod:`repro.faults.model`
with the reliability-methodology documentation.
"""


from __future__ import annotations

import enum
from dataclasses import dataclass


class FaultModel(enum.Enum):
    VALUE = "iov"  # destination-register value (paper default)
    STORE_ADDRESS = "ioa"  # store effective address
    REGISTER_FILE = "rf"  # arbitrary register, arbitrary point


@dataclass(frozen=True, slots=True)
class InjectionSpec:
    """A single-thread injection plan handed to the interpreter.

    ``dyn_index`` counts issued dynamic instructions of the thread.
    For ``VALUE`` the destination register of that instruction has ``bit``
    flipped after the write; for ``STORE_ADDRESS`` the instruction must be
    a store, whose effective address has ``bit`` flipped; for
    ``REGISTER_FILE`` register ``reg`` has ``bit`` flipped immediately
    *before* the instruction issues.
    """

    dyn_index: int
    bit: int
    model: FaultModel = FaultModel.VALUE
    reg: str | None = None

    def __post_init__(self) -> None:
        if self.model is FaultModel.REGISTER_FILE and self.reg is None:
            raise ValueError("REGISTER_FILE injections need a register name")


@dataclass(frozen=True, slots=True)
class StoreAddressSite:
    """An IOA fault site: one bit of one store's effective address."""

    thread: int
    dyn_index: int
    bit: int

    def spec(self) -> InjectionSpec:
        return InjectionSpec(self.dyn_index, self.bit, FaultModel.STORE_ADDRESS)

    def __str__(self) -> str:
        return f"ioa:t{self.thread}/i{self.dyn_index}/b{self.bit}"


@dataclass(frozen=True, slots=True)
class RegisterFileSite:
    """An RF fault site: one bit of one register at one dynamic point."""

    thread: int
    dyn_index: int
    reg: str
    bit: int

    def spec(self) -> InjectionSpec:
        return InjectionSpec(
            self.dyn_index, self.bit, FaultModel.REGISTER_FILE, reg=self.reg
        )

    def __str__(self) -> str:
        return f"rf:t{self.thread}/i{self.dyn_index}/{self.reg}/b{self.bit}"
