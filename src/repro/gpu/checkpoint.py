"""Checkpoint/restore for sliced faulty re-execution.

Every injection's execution *before* the flip fires is, by construction,
identical to the golden run: the fault model alters state only at the
instant it strikes.  Re-interpreting that golden prefix per injection is
the dominant cost for deep fault sites, so the injector snapshots
architectural state along the prefix and later resumes from the nearest
snapshot at or below the fault's dynamic index, executing only the suffix.

Two snapshot granularities match the injector's two slicing rungs:

* :class:`ThreadCheckpoint` — one thread's register file, program counter
  and dynamic-instruction cursor, captured every ``interval`` dynamic
  instructions during a thread-sliced run (sliceable CTAs only).
* :class:`CTACheckpoint` — every thread of a CTA plus the shared-memory
  scratchpad, captured at barrier-release boundaries during a CTA-sliced
  run (the only points where a run-to-barrier schedule is resumable).

Neither snapshot copies the heap.  Instead it records how many entries of
the run's global **write log** had been issued at capture time; the golden
write logs recorded at construction replay that prefix onto the scratch
heap in O(bytes written), and the same prefix is prepended to the faulty
run's log so interference/escape/classification checks see byte-identical
input to an un-checkpointed run.

:class:`CheckpointStore` bounds total snapshot memory with an LRU keyed by
``(owner, interval)``; lookups exploit that both snapshot families are
monotone in their interval key, so "nearest checkpoint at or below a
dynamic index" is a binary search over the owner's stored intervals.
"""

from __future__ import annotations

import bisect
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (thread -> checkpoint)
    from .memory import SharedMemory
    from .thread import ThreadContext

#: Default snapshot-memory budget (``--checkpoint-budget-mb``).
DEFAULT_BUDGET_MB = 64.0

#: Kernels whose deep tertile is shallower than this skip checkpointing:
#: measured on the built-in kernels, snapshot capture overhead only pays
#: for itself once the skippable golden prefix is a few hundred
#: instructions deep (k-means/hotspot/2dconv see no win; pathfinder does).
MIN_AUTO_DEPTH = 192


def derive_checkpoint_interval(traces) -> int:
    """Per-kernel default ``checkpoint_interval`` from trace-length tertiles.

    The revenue of a snapshot is the golden prefix it lets deep faults
    skip, so the decision statistic is the *deep tertile* (the 67th
    percentile of non-empty trace lengths): shallow kernels return 0
    (layer disabled), deep kernels get an interval of roughly one
    sixteenth of the deep-tertile depth, rounded up to a power of two and
    floored at 16 — dense enough that deep faults resume near their
    strike point, coarse enough that capture stays a few percent of run
    time.  An explicit ``checkpoint_interval`` always wins over this.
    """
    lengths = sorted(len(t) for t in traces if t)
    if not lengths:
        return 0
    deep = lengths[min(len(lengths) - 1, (2 * len(lengths)) // 3)]
    if deep < MIN_AUTO_DEPTH:
        return 0
    raw = max(16, deep // 16)
    interval = 1
    while interval < raw:
        interval <<= 1
    return interval

# Rough CPython costs for budget accounting: a register entry is a short
# interned key plus one boxed int/float; a snapshot adds dict + dataclass
# overhead.  Estimates only — the budget bounds order of magnitude, not
# exact RSS.
_REG_NBYTES = 112
_SNAPSHOT_OVERHEAD = 232


def _regs_nbytes(n_regs: int) -> int:
    return _SNAPSHOT_OVERHEAD + _REG_NBYTES * n_regs


@dataclass(slots=True)
class ThreadCheckpoint:
    """Golden architectural state of one thread at one dynamic index.

    ``write_count`` is the number of entries of the thread's golden global
    write log issued strictly before ``dyn_index`` — the heap-repair and
    log-prefix cursor.
    """

    dyn_index: int
    pc: int
    regs: dict[str, int | float]
    write_count: int
    nbytes: int

    @classmethod
    def capture(
        cls, dyn_index: int, pc: int, regs: dict, write_count: int
    ) -> "ThreadCheckpoint":
        return cls(
            dyn_index=dyn_index,
            pc=pc,
            regs=dict(regs),
            write_count=write_count,
            nbytes=_regs_nbytes(len(regs)),
        )

    def restore(self, ctx: "ThreadContext") -> None:
        ctx.regs.values = dict(self.regs)
        ctx.pc = self.pc
        ctx.dyn_count = self.dyn_index


@dataclass(slots=True)
class CTACheckpoint:
    """Golden state of a whole CTA at one barrier-release boundary.

    Barrier boundaries are the only resumable points of the run-to-barrier
    schedule: every live thread has just been released (or has exited), so
    restoring thread states and re-entering the scheduler loop reproduces
    the original interleaving exactly.  ``write_count`` indexes the CTA's
    golden write log; ``instructions`` is the total dynamic instructions
    executed across the CTA at capture (the work a resume skips).
    """

    barrier_rounds: int
    write_count: int
    instructions: int
    thread_dyn: tuple[int, ...]
    thread_pcs: tuple[int, ...]
    thread_exited: tuple[bool, ...]
    thread_regs: tuple[dict[str, int | float], ...]
    shared_data: bytes | None
    nbytes: int

    @classmethod
    def capture(
        cls,
        barrier_rounds: int,
        threads: list["ThreadContext"],
        shared: "SharedMemory | None",
        write_count: int,
    ) -> "CTACheckpoint":
        from .thread import ThreadState

        # Vector-backend lane views snapshot whole register-file planes in
        # a few array copies instead of materialising per-lane dicts.
        native = getattr(threads, "capture_native", None)
        if native is not None:
            return native(barrier_rounds, shared, write_count)

        regs = tuple(dict(t.regs.values) for t in threads)
        shared_data = shared.snapshot_bytes() if shared is not None else None
        nbytes = sum(_regs_nbytes(len(r)) for r in regs)
        nbytes += len(shared_data) if shared_data is not None else 0
        nbytes += 64 * len(threads) + _SNAPSHOT_OVERHEAD
        return cls(
            barrier_rounds=barrier_rounds,
            write_count=write_count,
            instructions=sum(t.dyn_count for t in threads),
            thread_dyn=tuple(t.dyn_count for t in threads),
            thread_pcs=tuple(t.pc for t in threads),
            thread_exited=tuple(t.state is ThreadState.EXITED for t in threads),
            thread_regs=regs,
            shared_data=shared_data,
            nbytes=nbytes,
        )

    def restore(
        self, threads: list["ThreadContext"], shared: "SharedMemory | None"
    ) -> None:
        from .thread import ThreadState

        for slot, ctx in enumerate(threads):
            ctx.regs.values = dict(self.thread_regs[slot])
            ctx.pc = self.thread_pcs[slot]
            ctx.dyn_count = self.thread_dyn[slot]
            ctx.state = (
                ThreadState.EXITED
                if self.thread_exited[slot]
                else ThreadState.RUNNING
            )
        if shared is not None and self.shared_data is not None:
            shared.restore_bytes(self.shared_data)


@dataclass(slots=True)
class CheckpointPlan:
    """Per-launch checkpoint instructions handed to the simulator.

    ``resume`` (when set) is restored before execution starts; ``sink``
    receives capture callbacks — ``sink(dyn, pc, regs)`` every ``interval``
    dynamic instructions up to ``limit`` for thread-sliced runs,
    ``sink(barrier_rounds, threads, shared)`` at every barrier release for
    CTA-sliced runs.  The sink owns all golden-validity and dedup policy;
    the simulator only reports reachable capture points.

    ``start`` overrides the first fire index of a thread-sliced ``sink``
    (required when ``interval`` is 0 — a return-driven sink with no
    checkpoint grid, e.g. a resync monitor with checkpointing disabled).

    The ``step_*`` fields install a second, *per-instruction* sink on one
    thread of a CTA-sliced run — the resync monitor's observation hook.
    ``step_sink(dyn, pc, regs)`` fires at every loop head of the thread in
    CTA slot ``step_slot`` from dynamic index ``step_start`` onwards, and
    schedules itself by returning the next fire index (``-1`` disarms).
    It rides the same per-context sink slot as thread-sliced checkpoint
    capture, which CTA-sliced runs leave free (their captures ride the
    barrier hook instead).
    """

    interval: int
    resume: ThreadCheckpoint | CTACheckpoint | None = None
    sink: Callable | None = None
    limit: int = -1
    start: int | None = None
    step_slot: int | None = None
    step_sink: Callable | None = None
    step_start: int = 0


class CheckpointStore:
    """Budget-bounded LRU over thread- and CTA-level checkpoints.

    Entries are keyed ``(owner, interval)`` where the owner is a thread or
    CTA and the interval key is the snapshot's dynamic index (threads) or
    barrier round (CTAs).  Per-owner interval lists stay sorted so the
    "deepest snapshot usable for dynamic index d" lookup is a binary
    search — valid because both families are monotone in their key: a
    thread snapshot's ``dyn_index`` is its key, and a CTA snapshot's
    per-slot ``thread_dyn`` never decreases across rounds.
    """

    def __init__(self, budget_bytes: int) -> None:
        if budget_bytes <= 0:
            raise ValueError("checkpoint budget must be positive")
        self.budget_bytes = budget_bytes
        self._entries: "OrderedDict[tuple, ThreadCheckpoint | CTACheckpoint]" = (
            OrderedDict()
        )
        self._intervals: dict[tuple, list[int]] = {}
        self.nbytes = 0
        self.hits = 0
        self.misses = 0
        self.stored = 0
        self.evicted = 0
        self.rejected = 0  # single snapshots larger than the whole budget
        #: Cumulative seconds spent capturing snapshots (accumulated by
        #: the injector's capture sinks — one timer pair per capture, so
        #: the per-instruction hot loops stay uninstrumented).
        self.capture_s = 0.0

    def __len__(self) -> int:
        return len(self._entries)

    # ----------------------------------------------------------- mutation

    def _put(self, owner: tuple, interval: int, checkpoint) -> None:
        key = (owner, interval)
        if key in self._entries:  # pragma: no cover - sinks dedup via has_*
            return
        if checkpoint.nbytes > self.budget_bytes:
            self.rejected += 1
            return
        self._entries[key] = checkpoint
        bisect.insort(self._intervals.setdefault(owner, []), interval)
        self.nbytes += checkpoint.nbytes
        self.stored += 1
        while self.nbytes > self.budget_bytes:
            old_key, old = self._entries.popitem(last=False)
            self._intervals[old_key[0]].remove(old_key[1])
            self.nbytes -= old.nbytes
            self.evicted += 1

    def put_thread(self, thread: int, checkpoint: ThreadCheckpoint) -> None:
        self._put(("t", thread), checkpoint.dyn_index, checkpoint)

    def put_cta(self, cta: int, checkpoint: CTACheckpoint) -> None:
        self._put(("c", cta), checkpoint.barrier_rounds, checkpoint)

    # ------------------------------------------------------------ lookup

    def has_thread(self, thread: int, dyn_index: int) -> bool:
        return (("t", thread), dyn_index) in self._entries

    def has_cta(self, cta: int, barrier_rounds: int) -> bool:
        return (("c", cta), barrier_rounds) in self._entries

    def _best(self, owner: tuple, usable: Callable) -> object | None:
        """Deepest stored snapshot for which ``usable`` holds (monotone)."""
        intervals = self._intervals.get(owner)
        best = None
        if intervals:
            entries = self._entries
            lo, hi = 0, len(intervals)
            while lo < hi:  # rightmost interval whose snapshot is usable
                mid = (lo + hi) // 2
                if usable(entries[(owner, intervals[mid])]):
                    lo = mid + 1
                else:
                    hi = mid
            if lo:
                key = (owner, intervals[lo - 1])
                best = entries[key]
                entries.move_to_end(key)  # LRU recency
        if best is None:
            self.misses += 1
        else:
            self.hits += 1
        return best

    def best_thread(self, thread: int, dyn_index: int) -> ThreadCheckpoint | None:
        """Deepest thread snapshot with ``dyn_index`` at or below the fault's."""
        return self._best(("t", thread), lambda cp: cp.dyn_index <= dyn_index)

    def best_cta(self, cta: int, slot: int, dyn_index: int) -> CTACheckpoint | None:
        """Deepest CTA snapshot where ``slot`` has not yet passed the fault."""
        return self._best(("c", cta), lambda cp: cp.thread_dyn[slot] <= dyn_index)

    # --------------------------------------------------------- reporting

    def counters(self) -> dict[str, int | float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stored": self.stored,
            "evicted": self.evicted,
            "rejected": self.rejected,
            "entries": len(self._entries),
            "nbytes": self.nbytes,
            "capture_s": self.capture_s,
        }
