"""Per-thread functional execution.

A :class:`ThreadContext` interprets the program for one thread, running
until it blocks at a barrier, exits, or exceeds its dynamic-instruction
budget (:class:`~repro.errors.HangDetected`).  The CTA scheduler in
:mod:`~repro.gpu.cta` interleaves threads at barrier granularity, which is
exact for data-race-free kernels.

Fault injection hooks in here: when ``injection=(dyn_index, bit)`` is set,
the destination register of the dynamic instruction with that issue index
has one bit flipped immediately after the instruction writes it — the
paper's single-bit-flip model for soft errors in functional-unit outputs.

The interpreter runs off :meth:`Program.decoded` — pre-decoded tuples with
labels resolved, widths precomputed and executors bound — and keeps the
hot loop monolithic; fault-injection campaigns execute this loop tens of
millions of times.
"""

from __future__ import annotations

import enum

from ..errors import ExecutionFault, HangDetected
from .injection import FaultModel, InjectionSpec
from .alu import condition_code, to_int, _exec_set_general
from .isa import DataType, Imm, MemRef, Param, Reg, Special
from .memory import GlobalMemory, ParamMemory, SharedMemory
from .program import Program
from .registers import RegisterFile, flip_bit
from .tracing import ThreadTrace


def _normalize_injection(injection) -> InjectionSpec | None:
    """Accept the legacy ``(dyn_index, bit)`` tuple or a full spec."""
    if injection is None or isinstance(injection, InjectionSpec):
        return injection
    dyn_index, bit = injection
    return InjectionSpec(dyn_index, bit)


class ThreadState(enum.Enum):
    RUNNING = "running"
    AT_BARRIER = "at_barrier"
    EXITED = "exited"


#: Opcode groups the interpreter special-cases outside the ALU table.
_CONTROL = frozenset(("nop", "ssy"))
_EXITS = frozenset(("exit", "retp"))


class ThreadContext:
    """Architectural state and interpreter loop for a single thread."""

    __slots__ = (
        "program",
        "regs",
        "pc",
        "state",
        "dyn_count",
        "max_steps",
        "trace",
        "injection",
        "specials",
        "global_mem",
        "shared_mem",
        "param_mem",
        "cp_every",
        "cp_limit",
        "cp_next",
        "cp_sink",
        "compiled",
    )

    def __init__(
        self,
        program: Program,
        specials: dict[tuple[str, str], int],
        global_mem: GlobalMemory,
        shared_mem: SharedMemory | None,
        param_mem: ParamMemory,
        max_steps: int,
        record_trace: bool = False,
        injection: tuple[int, int] | InjectionSpec | None = None,
        compiled=None,
    ) -> None:
        self.program = program
        self.regs = RegisterFile()
        self.pc = 0
        self.state = ThreadState.RUNNING
        self.dyn_count = 0
        self.max_steps = max_steps
        self.trace: ThreadTrace | None = [] if record_trace else None
        self.injection = _normalize_injection(injection)
        self.specials = specials
        self.global_mem = global_mem
        self.shared_mem = shared_mem
        self.param_mem = param_mem
        self.cp_every = 0
        self.cp_limit = -1
        self.cp_next = -1
        self.cp_sink = None
        self.compiled = compiled

    def reset(
        self,
        specials: dict[tuple[str, str], int],
        global_mem: GlobalMemory,
        shared_mem: SharedMemory | None,
        param_mem: ParamMemory,
        max_steps: int,
        record_trace: bool = False,
        injection: tuple[int, int] | InjectionSpec | None = None,
        compiled=None,
    ) -> None:
        """Re-arm a pooled context for a fresh launch of the same program.

        Clears the register dict in place (the expensive part of context
        construction) and reassigns every per-launch field; equivalent to
        building a new :class:`ThreadContext` from scratch.
        """
        self.regs.values.clear()
        self.pc = 0
        self.state = ThreadState.RUNNING
        self.dyn_count = 0
        self.max_steps = max_steps
        self.trace = [] if record_trace else None
        self.injection = _normalize_injection(injection)
        self.specials = specials
        self.global_mem = global_mem
        self.shared_mem = shared_mem
        self.param_mem = param_mem
        self.cp_every = 0
        self.cp_limit = -1
        self.cp_next = -1
        self.cp_sink = None
        self.compiled = compiled

    # ----------------------------------------------------------- checkpoint

    def resume_from(self, checkpoint) -> None:
        """Restore golden architectural state captured along this thread.

        ``run_until_block`` then continues at dynamic index
        ``checkpoint.dyn_index`` exactly as if the prefix had executed;
        the caller is responsible for the heap (the thread's golden write
        prefix must already be applied).
        """
        checkpoint.restore(self)

    def plan_checkpoints(
        self, every: int, limit: int, sink, start: int | None = None
    ) -> None:
        """Capture ``sink(dyn, pc, regs)`` every ``every`` dynamic
        instructions, on the absolute dyn-index grid, up to ``limit``
        (inclusive) — the last dynamic index still untouched by a pending
        injection.  Captures happen at the loop head, before the
        instruction at ``dyn`` issues and before any register-file flip.

        A sink that returns ``None`` keeps the grid cadence above.  A sink
        may instead *return the next fire index* (an int; ``-1`` disarms),
        taking over its own scheduling — the resync monitor rides this to
        observe every instruction of a divergence window without the hot
        loops gaining any new per-step conditionals.  ``start`` (when
        given) overrides the first fire index — required when ``every`` is
        0, i.e. a return-driven sink with no checkpoint grid at all.

        Cost attribution: the sink itself times each capture into
        ``CheckpointStore.capture_s`` — both hot loops (compiled and
        interpreted) stay free of per-instruction instrumentation, so
        phase-attributed profiles charge capture to the sink, not the loop.
        """
        self.cp_every = every
        self.cp_limit = limit
        self.cp_sink = sink
        if start is not None:
            self.cp_next = start
            return
        nxt = (self.dyn_count // every + 1) * every
        self.cp_next = nxt if nxt <= limit else -1

    # ------------------------------------------------------------------ run

    def run_until_block(self) -> None:
        """Execute until a barrier, thread exit, or the hang budget trips."""
        if self.compiled is not None:
            self._run_compiled()
        else:
            self._run_interpreted()

    def _run_compiled(self) -> None:
        """Drive a :class:`~repro.gpu.compiler.BoundChain` closure chain.

        Each iteration is one indexed closure call; hang, checkpoint and
        injection-arming checks stay in the driver so closures carry no
        per-step conditionals.  The single dynamic instruction holding a
        pending fault runs through :meth:`_armed_step` (interpreter
        semantics) so outcomes, traces and write logs stay byte-identical
        to :meth:`_run_interpreted`.
        """
        bound = self.compiled
        end = bound.end
        regs = self.regs.values
        trace = self.trace
        max_steps = self.max_steps
        injection = self.injection
        arm_at = -1 if injection is None else injection.dyn_index
        consumed = False
        pc = self.pc
        dyn = self.dyn_count
        cp_next = self.cp_next
        cp_sink = self.cp_sink
        cp_every = self.cp_every
        cp_limit = self.cp_limit
        try:
            if trace is None:
                chain = bound.plain
                while True:
                    if pc >= end:
                        self.state = ThreadState.EXITED
                        return
                    if dyn >= max_steps:
                        raise HangDetected(
                            f"thread exceeded {max_steps} dynamic instructions"
                        )
                    if dyn == cp_next:
                        r = cp_sink(dyn, pc, regs)
                        if r is None:
                            cp_next += cp_every
                            if cp_next > cp_limit:
                                cp_next = -1
                        else:
                            cp_next = r
                    if dyn == arm_at:
                        arm_at = -1
                        dyn += 1
                        pc, fired, blocked = self._armed_step(pc)
                        if fired:
                            consumed = True
                        if blocked:
                            return
                        continue
                    dyn += 1
                    r = chain[pc](regs, self)
                    if r >= 0:
                        pc = r
                    else:
                        pc = -1 - r
                        return
            else:
                chain = bound.traced
                while True:
                    if pc >= end:
                        self.state = ThreadState.EXITED
                        return
                    if dyn >= max_steps:
                        raise HangDetected(
                            f"thread exceeded {max_steps} dynamic instructions"
                        )
                    if dyn == cp_next:
                        r = cp_sink(dyn, pc, regs)
                        if r is None:
                            cp_next += cp_every
                            if cp_next > cp_limit:
                                cp_next = -1
                        else:
                            cp_next = r
                    if dyn == arm_at:
                        arm_at = -1
                        dyn += 1
                        pc, fired, blocked = self._armed_step(pc)
                        if fired:
                            consumed = True
                        if blocked:
                            return
                        continue
                    dyn += 1
                    r = chain[pc](regs, self, trace)
                    if r >= 0:
                        pc = r
                    else:
                        pc = -1 - r
                        return
        finally:
            self.pc = pc
            self.dyn_count = dyn
            self.cp_next = cp_next
            if consumed:
                self.injection = None

    def _armed_step(self, pc: int) -> tuple[int, bool, bool]:
        """One dynamic instruction through interpreter semantics with the
        pending injection applied — the compiled backend's slow path.

        The caller has already counted this dynamic instruction; on a
        fault the exception propagates with ``pc`` still at the crashing
        instruction, exactly like the interpreter.  Returns
        ``(next_pc, fired, blocked)``.
        """
        (
            op, dtype, dest_name, dest_is_pred, width,
            srcs, guard, target, cmp, executor,
        ) = self.program.decoded()[pc]
        regs = self.regs.values
        specials = self.specials
        param_mem = self.param_mem
        trace = self.trace
        injection = self.injection
        bit = injection.bit
        model = injection.model
        flip_value = model is FaultModel.VALUE
        fired = False
        if model is FaultModel.REGISTER_FILE:
            reg = injection.reg
            regs[reg] = _flip_register_value(regs.get(reg, 0), bit)
            fired = True
        if guard is not None:
            zero = to_int(regs.get(guard[0], 0)) & 1
            executed = (zero == 1) if guard[1] else (zero == 0)
            if not executed:
                if trace is not None:
                    trace.append((pc, 0))
                return pc + 1, fired, False
        if trace is not None:
            trace.append((pc, width))
        if executor is not None:
            values = [
                regs.get(s.name, 0) if type(s) is Reg
                else s.value if type(s) is Imm
                else specials[(s.name, s.axis)] if type(s) is Special
                else param_mem.load(s.offset, dtype)
                for s in srcs
            ]
            value = executor(dtype, *values)
            if dest_is_pred:
                value = to_int(value) & 0xF
            regs[dest_name] = value
            if flip_value:
                self._flip_dest(regs, dest_name, dest_is_pred, dtype, bit)
                fired = True
            return pc + 1, fired, False
        if op == "bra":
            return target, fired, False
        if op == "ld":
            value = self._load(regs, srcs[0], dtype)
            if dest_is_pred:
                value = to_int(value) & 0xF
            regs[dest_name] = value
            if flip_value:
                self._flip_dest(regs, dest_name, dest_is_pred, dtype, bit)
                fired = True
            return pc + 1, fired, False
        if op == "st":
            addr_xor = 0
            if model is FaultModel.STORE_ADDRESS:
                addr_xor = 1 << bit
                fired = True
            self._store(
                regs, srcs[0], self._value(regs, srcs[1], dtype), dtype, addr_xor
            )
            return pc + 1, fired, False
        if op in ("set", "setp"):
            a = self._value(regs, srcs[0], dtype)
            b = self._value(regs, srcs[1], dtype)
            if dest_is_pred:
                value = condition_code(cmp, dtype, a, b)
            else:
                value = _exec_set_general(dtype, cmp, a, b)
            regs[dest_name] = value
            if flip_value:
                self._flip_dest(regs, dest_name, dest_is_pred, dtype, bit)
                fired = True
            return pc + 1, fired, False
        if op == "selp":
            pred = srcs[2]
            if not (type(pred) is Reg and pred.is_pred):
                raise ExecutionFault("selp selector must be a predicate register")
            zero = to_int(regs.get(pred.name, 0)) & 1
            chosen = srcs[0] if zero else srcs[1]
            value = self._value(regs, chosen, dtype)
            if dest_is_pred:
                value = to_int(value) & 0xF
            regs[dest_name] = value
            if flip_value:
                self._flip_dest(regs, dest_name, dest_is_pred, dtype, bit)
                fired = True
            return pc + 1, fired, False
        if op == "bar.sync":
            self.state = ThreadState.AT_BARRIER
            return pc + 1, fired, True
        if op in _EXITS:
            self.state = ThreadState.EXITED
            return pc + 1, fired, True
        if op in _CONTROL:
            return pc + 1, fired, False
        raise ExecutionFault(f"unhandled opcode {op!r}")  # pragma: no cover

    def _run_interpreted(self) -> None:
        decoded = self.program.decoded()
        end = len(decoded)
        regs = self.regs.values
        specials = self.specials
        global_mem = self.global_mem
        shared_mem = self.shared_mem
        param_mem = self.param_mem
        trace = self.trace
        max_steps = self.max_steps
        injection = self.injection
        # Injection plan, unpacked per model so the hot loop pays one int
        # comparison for inactive modes.
        inject_at = -1  # VALUE: flip dest after the write at this index
        store_at = -1  # STORE_ADDRESS: xor the effective address
        rf_at = -1  # REGISTER_FILE: flip a register before issue
        inject_bit = 0
        rf_reg = None
        if injection is not None:
            inject_bit = injection.bit
            if injection.model is FaultModel.VALUE:
                inject_at = injection.dyn_index
            elif injection.model is FaultModel.STORE_ADDRESS:
                store_at = injection.dyn_index
            else:
                rf_at = injection.dyn_index
                rf_reg = injection.reg
        consumed = False
        pc = self.pc
        dyn = self.dyn_count
        cp_next = self.cp_next
        cp_sink = self.cp_sink
        cp_every = self.cp_every
        cp_limit = self.cp_limit

        try:
            while True:
                if pc >= end:
                    self.state = ThreadState.EXITED
                    return
                if dyn >= max_steps:
                    raise HangDetected(
                        f"thread exceeded {max_steps} dynamic instructions"
                    )
                if dyn == cp_next:
                    # Checkpoint capture: state here is golden — the
                    # instruction at ``dyn`` has not issued and any
                    # register-file flip below has not fired.
                    r = cp_sink(dyn, pc, regs)
                    if r is None:
                        cp_next += cp_every
                        if cp_next > cp_limit:
                            cp_next = -1
                    else:
                        cp_next = r
                (
                    op, dtype, dest_name, dest_is_pred, width,
                    srcs, guard, target, cmp, executor,
                ) = decoded[pc]

                if dyn == rf_at:
                    # Register-file upset: strikes between instructions,
                    # regardless of predication.
                    regs[rf_reg] = _flip_register_value(
                        regs.get(rf_reg, 0), inject_bit
                    )
                    rf_at = -1
                    consumed = True

                if guard is not None:
                    zero = to_int(regs.get(guard[0], 0)) & 1
                    executed = (zero == 1) if guard[1] else (zero == 0)
                    if not executed:
                        if trace is not None:
                            trace.append((pc, 0))
                        dyn += 1
                        pc += 1
                        continue

                if trace is not None:
                    trace.append((pc, width))
                dyn_index = dyn
                dyn += 1

                if executor is not None:
                    # Plain ALU operation (the common case).
                    values = [
                        regs.get(s.name, 0) if type(s) is Reg
                        else s.value if type(s) is Imm
                        else specials[(s.name, s.axis)] if type(s) is Special
                        else param_mem.load(s.offset, dtype)
                        for s in srcs
                    ]
                    value = executor(dtype, *values)
                    if dest_is_pred:
                        value = to_int(value) & 0xF
                    regs[dest_name] = value
                    if dyn_index == inject_at:
                        self._flip_dest(regs, dest_name, dest_is_pred, dtype, inject_bit)
                        inject_at = -1
                        consumed = True
                    pc += 1
                    continue

                if op == "bra":
                    pc = target
                    continue
                if op == "ld":
                    value = self._load(regs, srcs[0], dtype)
                    if dest_is_pred:
                        value = to_int(value) & 0xF
                    regs[dest_name] = value
                    if dyn_index == inject_at:
                        self._flip_dest(regs, dest_name, dest_is_pred, dtype, inject_bit)
                        inject_at = -1
                        consumed = True
                    pc += 1
                    continue
                if op == "st":
                    addr_xor = 0
                    if dyn_index == store_at:
                        addr_xor = 1 << inject_bit
                        store_at = -1
                        consumed = True
                    self._store(
                        regs, srcs[0], self._value(regs, srcs[1], dtype), dtype,
                        addr_xor,
                    )
                    pc += 1
                    continue
                if op in ("set", "setp"):
                    a = self._value(regs, srcs[0], dtype)
                    b = self._value(regs, srcs[1], dtype)
                    if dest_is_pred:
                        value = condition_code(cmp, dtype, a, b)
                    else:
                        value = _exec_set_general(dtype, cmp, a, b)
                    regs[dest_name] = value
                    if dyn_index == inject_at:
                        self._flip_dest(regs, dest_name, dest_is_pred, dtype, inject_bit)
                        inject_at = -1
                        consumed = True
                    pc += 1
                    continue
                if op == "selp":
                    pred = srcs[2]
                    if not (type(pred) is Reg and pred.is_pred):
                        raise ExecutionFault("selp selector must be a predicate register")
                    zero = to_int(regs.get(pred.name, 0)) & 1
                    chosen = srcs[0] if zero else srcs[1]
                    value = self._value(regs, chosen, dtype)
                    if dest_is_pred:
                        value = to_int(value) & 0xF
                    regs[dest_name] = value
                    if dyn_index == inject_at:
                        self._flip_dest(regs, dest_name, dest_is_pred, dtype, inject_bit)
                        inject_at = -1
                        consumed = True
                    pc += 1
                    continue
                if op == "bar.sync":
                    self.state = ThreadState.AT_BARRIER
                    pc += 1
                    return
                if op in _EXITS:
                    self.state = ThreadState.EXITED
                    pc += 1
                    return
                if op in _CONTROL:
                    pc += 1
                    continue
                raise ExecutionFault(f"unhandled opcode {op!r}")  # pragma: no cover
        finally:
            self.pc = pc
            self.dyn_count = dyn
            self.cp_next = cp_next
            if consumed:
                self.injection = None

    # ------------------------------------------------------------- operands

    def _value(self, regs, operand, dtype: DataType):
        kind = type(operand)
        if kind is Reg:
            return regs.get(operand.name, 0)
        if kind is Imm:
            return operand.value
        if kind is Special:
            return self.specials[(operand.name, operand.axis)]
        if kind is Param:
            return self.param_mem.load(operand.offset, dtype)
        raise ExecutionFault(f"operand {operand!r} not readable here")

    def _load(self, regs, operand, dtype: DataType):
        if type(operand) is Param:
            return self.param_mem.load(operand.offset, dtype)
        if type(operand) is MemRef:
            address = operand.offset
            if operand.base is not None:
                address += to_int(regs.get(operand.base.name, 0))
            if operand.space == "shared":
                return self.shared_mem.load(address, dtype)  # type: ignore[union-attr]
            return self.global_mem.load(address, dtype)
        raise ExecutionFault(f"ld source {operand!r} is not a memory operand")

    def _store(self, regs, operand, value, dtype: DataType, addr_xor: int = 0) -> None:
        if type(operand) is not MemRef:
            raise ExecutionFault(f"st target {operand!r} is not a memory operand")
        address = operand.offset
        if operand.base is not None:
            address += to_int(regs.get(operand.base.name, 0))
        address ^= addr_xor  # STORE_ADDRESS fault model (no-op when 0)
        if operand.space == "shared":
            self.shared_mem.store(address, value, dtype)  # type: ignore[union-attr]
        else:
            self.global_mem.store(address, value, dtype)

    def _flip_dest(self, regs, dest_name, dest_is_pred, dtype, bit: int) -> None:
        flip_type = DataType.PRED if dest_is_pred else dtype
        regs[dest_name] = flip_bit(regs[dest_name], flip_type, bit)


def _flip_register_value(value, bit: int):
    """Register-file upset on a dynamically typed register.

    Float-valued registers flip in their IEEE-754 single image; integer
    registers flip as 32-bit cells (the RF model targets the 32-bit
    architected register file, so bits are restricted to [0, 32)).
    """
    if isinstance(value, float):
        return flip_bit(value, DataType.F32, bit)
    return flip_bit(value, DataType.U32, bit)
