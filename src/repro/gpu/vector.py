"""Vectorised warp execution: lane-masked SIMD over an array register file.

The third execution backend (``backend="vectorized"``).  Instead of one
Python closure call per thread per dynamic instruction, every CTA holds a
``(registers, lanes)`` numpy register file and each *static* instruction
executes once across all active lanes with boolean masks for guards and
divergence.  Exactness contract with the interpreter:

* integer arithmetic runs in the uint64 bits domain (values mod 2**64 plus
  a sign plane), wrapped to the operation width exactly like
  :func:`repro.gpu.registers.canonical_int`;
* ``f32`` arithmetic computes in float64 and double-rounds through
  ``float32`` — bit-identical to ``clamp_f32`` on every finite, infinite
  and NaN input;
* loads/stores resolve through numpy views over the heap, with write logs
  reconstructed from masked scatter records in run-to-barrier slot order,
  so tracing/pruning inputs stay byte-identical to the classic backends;
* any lane whose value leaves the exactly-vectorisable envelope (huge
  integers, NaN in integer stores, out-of-range addresses, ``ex2``/``lg2``
  libm calls) is demoted for that instruction to a per-lane scalar step
  with interpreter semantics.

The run-to-barrier schedule is only observationally equivalent to the
min-PC lockstep schedule used here when the CTA is data-race-free within
each barrier segment.  A versioned paint board detects any cross-lane
overlap on heap or shared bytes and raises :class:`VectorFallback`; the
simulator then silently re-runs the launch on the classic compiled path,
so racy programs (the differential fuzzer generates them) keep their
classic semantics.

Fault injection stays exact by demoting only the flip-carrying thread to a
compiled :class:`~repro.gpu.thread.ThreadContext` for the whole launch;
its segments interleave with the vector lanes at barrier granularity and
its writes splice into the logs at its slot position.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..errors import ExecutionFault, HangDetected, MemoryFault, SimulatorError
from ..telemetry import SimRunEvent
from .alu import EXECUTORS, condition_code, to_int, _exec_set_general
from .checkpoint import CTACheckpoint
from .injection import FaultModel
from .isa import (
    DataType,
    Imm,
    MemRef,
    Param,
    PRED_CARRY,
    PRED_OVERFLOW,
    PRED_SIGN,
    Reg,
    Special,
)
from .memory import SharedMemory, decode_value, encode_value
from .thread import ThreadContext, ThreadState

__all__ = ["VectorFallback", "CompactTrace", "VectorProgram", "launch_vectorized"]

_U64_MASK = (1 << 64) - 1
_U64 = np.uint64
_I64 = np.int64
_TWO63 = np.uint64(1 << 63)
_TWO63F = float(1 << 63)
_TWO53F = float(1 << 53)
_ZERO64 = np.uint64(0)
_ONES64 = np.uint64(_U64_MASK)
_F32_MAX = float(np.finfo(np.float32).max)


class VectorFallback(Exception):
    """The lockstep schedule cannot reproduce classic semantics here.

    Deliberately *not* a :class:`~repro.errors.SimulatorError`: the
    injector classifies those as campaign outcomes, whereas a fallback
    must stay invisible — the simulator catches it and re-runs the launch
    on the classic path.
    """


class CompactTrace:
    """A per-thread dynamic trace stored as parallel numpy arrays.

    List-compatible with the classic ``[(pc, width), ...]`` traces for
    every consumer in the tree (``len``, iteration, indexing, equality,
    pickling), at a fraction of the memory — the difference between a
    paper-scale 16384-thread golden trace fitting in a few hundred MB and
    not fitting at all.
    """

    __slots__ = ("pcs", "widths")

    def __init__(self, pcs: np.ndarray, widths: np.ndarray) -> None:
        self.pcs = pcs
        self.widths = widths

    def __len__(self) -> int:
        return len(self.pcs)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(zip(self.pcs[index].tolist(), self.widths[index].tolist()))
        return (int(self.pcs[index]), int(self.widths[index]))

    def __iter__(self):
        return iter(zip(self.pcs.tolist(), self.widths.tolist()))

    def __eq__(self, other):
        if isinstance(other, CompactTrace):
            return np.array_equal(self.pcs, other.pcs) and np.array_equal(
                self.widths, other.widths
            )
        if isinstance(other, (list, tuple)):
            if len(other) != len(self.pcs):
                return False
            return all(
                p == op and w == ow
                for (p, w), (op, ow) in zip(self, other)
            )
        return NotImplemented

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    __hash__ = None  # type: ignore[assignment]

    def __reduce__(self):
        return (CompactTrace, (self.pcs, self.widths))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompactTrace({len(self.pcs)} entries)"


# ------------------------------------------------------------------ operands

#: Operand kinds after vector decode.
_K_REG = 0
_K_CONST = 1
_K_SPECIAL = 2

#: Instruction kinds (``_Desc.kind``).
_ALU = 0
_LD = 1
_ST = 2
_SET = 3
_SELP = 4
_SLCT = 5
_BRA = 6
_BAR = 7
_EXIT = 8
_NOP = 9
_FAULT = 10

_VEC_INT_DTYPES = frozenset(
    (DataType.U16, DataType.U32, DataType.S32, DataType.U64, DataType.S64)
)
_VEC_FLOAT_DTYPES = frozenset((DataType.F32, DataType.F64))

_LOAD_NP = {
    DataType.U16: "<u2",
    DataType.U32: "<u4",
    DataType.S32: "<i4",
    DataType.U64: "<u8",
    DataType.S64: "<i8",
    DataType.F32: "<f4",
    DataType.F64: "<f8",
}

#: Store image dtype: the memory image of any integer store is the value
#: masked to width, written little-endian — an unsigned cast.
_STORE_NP = {
    DataType.U16: "<u2",
    DataType.U32: "<u4",
    DataType.S32: "<u4",
    DataType.U64: "<u8",
    DataType.S64: "<u8",
    DataType.F32: "<f4",
    DataType.F64: "<f8",
}

#: Ops whose scalar semantics route through libm / Python-float paths that
#: numpy does not reproduce bit-exactly on every input.
_SCALAR_ONLY_OPS = frozenset(("ex2", "lg2"))


class _Desc:
    """One statically decoded instruction, specialised for vector issue."""

    __slots__ = (
        "pc", "op", "kind", "dtype", "width", "trace_width", "wmask", "half",
        "is_signed", "is_float", "f32", "dest_col", "dest_is_pred", "guard_col",
        "guard_want_one", "srcs", "target", "cmp", "vop", "scalar_only",
        "space", "base_col", "mem_offset", "mem_size", "np_load", "np_store",
        "fault_exc", "true_bits", "true_neg", "sel_col", "executor", "raw_srcs",
    )

    def __init__(self, pc: int, op: str) -> None:
        self.pc = pc
        self.op = op
        self.kind = _NOP
        self.dtype = None
        self.width = 0
        self.trace_width = 0
        self.wmask = _ONES64
        self.half = _TWO63
        self.is_signed = False
        self.is_float = False
        self.f32 = False
        self.dest_col = -1
        self.dest_is_pred = False
        self.guard_col = -1
        self.guard_want_one = False
        self.srcs = ()
        self.target = -1
        self.cmp = None
        self.vop = None
        self.scalar_only = False
        self.space = None
        self.base_col = -1
        self.mem_offset = 0
        self.mem_size = 0
        self.np_load = None
        self.np_store = None
        self.fault_exc = None
        self.true_bits = _ZERO64
        self.true_neg = False
        self.sel_col = -1
        self.executor = None
        self.raw_srcs = ()


def _const_operand(value):
    """Precompute every read domain of an immediate at compile time.

    Python-side ``to_int``/``float`` conversions are exact, so constants
    never hazard at run time regardless of magnitude.
    """
    iv = to_int(value)
    bits = np.uint64(iv & _U64_MASK)
    neg = iv < 0
    try:
        fv = float(value)
    except OverflowError:  # pragma: no cover - absurd immediates
        fv = float("inf") if iv > 0 else float("-inf")
    return (_K_CONST, bits, neg, np.float64(fv), isinstance(value, float))


class VectorProgram:
    """A program decoded into :class:`_Desc` records plus a register map."""

    def __init__(self, program, param_mem) -> None:
        self.program = program
        decoded = program.decoded()
        self.end = len(decoded)
        # One column per distinct register *name*: general and predicate
        # registers share the interpreter's single per-thread dict.
        colmap: dict[str, int] = {}

        def col(name: str) -> int:
            c = colmap.get(name)
            if c is None:
                c = len(colmap)
                colmap[name] = c
            return c

        for insn in program.instructions:
            if insn.dest is not None:
                col(insn.dest.name)
            if insn.guard is not None:
                col(insn.guard.reg.name)
            for s in insn.srcs:
                if isinstance(s, Reg):
                    col(s.name)
                elif isinstance(s, MemRef) and s.base is not None:
                    col(s.base.name)
        self.colmap = colmap
        self.ncols = max(1, len(colmap))
        self.descs = [
            self._decode_one(pc, entry, colmap, param_mem)
            for pc, entry in enumerate(decoded)
        ]
        # Trace pc dtype: int16 comfortably covers every real program and
        # halves golden-trace memory at paper scale.
        self.pc_dtype = np.int16 if self.end < 32767 else np.int32

    # ------------------------------------------------------------- decoding

    def _operand(self, s, dtype, colmap, param_mem):
        if type(s) is Reg:
            return (_K_REG, colmap[s.name])
        if type(s) is Imm:
            return _const_operand(s.value)
        if type(s) is Special:
            return (_K_SPECIAL, (s.name, s.axis))
        if type(s) is MemRef:
            # Address operands resolve through base_col/mem_offset; the
            # slot is never read as a value.
            return None
        if type(s) is Param:
            # Interpreter semantics evaluate the param load per use; the
            # block is immutable so folding to a constant is exact.  A
            # load that would fault at run time becomes a faulting desc.
            value = param_mem.load(s.offset, dtype)
            return _const_operand(value)
        raise ExecutionFault(f"operand {s!r} not readable here")

    def _decode_one(self, pc, entry, colmap, param_mem):
        (
            op, dtype, dest_name, dest_is_pred, width,
            srcs, guard, target, cmp, executor,
        ) = entry
        d = _Desc(pc, op)
        d.dtype = dtype
        d.trace_width = width
        d.cmp = cmp
        d.executor = executor
        d.raw_srcs = srcs
        d.dest_is_pred = dest_is_pred
        if dest_name is not None:
            d.dest_col = colmap[dest_name]
        if guard is not None:
            d.guard_col = colmap[guard[0]]
            d.guard_want_one = guard[1]
        if dtype is not None and dtype is not DataType.PRED:
            d.width = dtype.width
            d.wmask = np.uint64((1 << dtype.width) - 1)
            d.half = np.uint64(1 << (dtype.width - 1))
            d.is_signed = dtype.is_signed
            d.is_float = dtype.is_float
            d.f32 = dtype is DataType.F32

        if op == "bra":
            d.kind = _BRA
            d.target = target
            return d
        if op == "bar.sync":
            d.kind = _BAR
            return d
        if op in ("exit", "retp"):
            d.kind = _EXIT
            return d
        if op in ("nop", "ssy"):
            d.kind = _NOP
            return d

        vectorizable = dtype in _VEC_INT_DTYPES or dtype in _VEC_FLOAT_DTYPES
        try:
            d.srcs = tuple(self._operand(s, dtype, colmap, param_mem) for s in srcs)
        except MemoryFault as exc:
            d.kind = _FAULT
            d.fault_exc = exc
            return d

        if op == "ld":
            d.kind = _LD
            src = srcs[0]
            if type(src) is Param:
                # Folded above: emit a constant move.
                d.kind = _ALU
                d.vop = _vop_const_move
                d.scalar_only = dest_is_pred or not vectorizable
                return d
            if type(src) is not MemRef or dest_is_pred or not vectorizable:
                d.scalar_only = True
                return d
            d.space = src.space
            d.base_col = colmap[src.base.name] if src.base is not None else -1
            d.mem_offset = src.offset
            d.mem_size = dtype.width // 8
            d.np_load = np.dtype(_LOAD_NP[dtype])
            return d
        if op == "st":
            d.kind = _ST
            tgt = srcs[0]
            if type(tgt) is not MemRef or not vectorizable:
                d.scalar_only = True
                return d
            d.space = tgt.space
            d.base_col = colmap[tgt.base.name] if tgt.base is not None else -1
            d.mem_offset = tgt.offset
            d.mem_size = dtype.width // 8
            d.np_store = np.dtype(_STORE_NP[dtype])
            return d
        if op in ("set", "setp"):
            d.kind = _SET
            if not vectorizable:
                d.scalar_only = True
                return d
            if not dest_is_pred:
                # PTX `set` into a general register: all-ones on true, in
                # the *operation* dtype's integer image (even for float
                # dtypes — ``_wrap(-1, f32)`` is the int 0xFFFFFFFF).
                from .registers import canonical_int

                true_value = canonical_int(-1, dtype)
                d.true_bits = np.uint64(true_value & _U64_MASK)
                d.true_neg = true_value < 0
            return d
        if op == "selp":
            d.kind = _SELP
            pred = srcs[2]
            if not (type(pred) is Reg and pred.is_pred):
                d.scalar_only = True  # raises ExecutionFault, per lane
                return d
            d.sel_col = colmap[pred.name]
            return d
        if op == "slct":
            d.kind = _SLCT
            if not vectorizable:
                d.scalar_only = True
            return d

        d.kind = _ALU
        if (
            executor is None
            or op in _SCALAR_ONLY_OPS
            or dest_is_pred
            or not vectorizable
        ):
            d.scalar_only = True
            return d
        key = (op, bool(dtype.is_float))
        d.vop = _VOPS.get(key)
        if d.vop is None:
            d.scalar_only = True
        return d


# ----------------------------------------------------------- vector ALU ops
#
# Each ``_vop_*`` executes one static instruction for the lane-index array
# ``idx`` (post-guard, post-trace, dyn already counted), reading operands
# through the runner's domain readers (which demote hazardous lanes to the
# scalar path) and returns the surviving lane indices whose pc should
# advance by one.  Integer math runs in the uint64 bits domain; float math
# in float64 with explicit double-rounding for f32.


def _vop_cvt_int(rn, d, idx):
    idx, (a,) = rn._operands(d, idx, "b")
    if idx.size:
        rn._store_int_bits(d, idx, a)
    return idx


def _vop_cvt_float(rn, d, idx):
    idx, (a,) = rn._operands(d, idx, "f")
    if idx.size:
        rn._store_float(d, idx, rn._fround(d, a))
    return idx


def _vop_const_move(rn, d, idx):
    if d.is_float:
        return _vop_cvt_float(rn, d, idx)
    return _vop_cvt_int(rn, d, idx)


def _vop_add_int(rn, d, idx):
    idx, (a, b) = rn._operands(d, idx, "bb")
    if idx.size:
        rn._store_int_bits(d, idx, a + b)
    return idx


def _vop_sub_int(rn, d, idx):
    idx, (a, b) = rn._operands(d, idx, "bb")
    if idx.size:
        rn._store_int_bits(d, idx, a - b)
    return idx


def _vop_mul_int(rn, d, idx):
    idx, (a, b) = rn._operands(d, idx, "bb")
    if idx.size:
        rn._store_int_bits(d, idx, a * b)
    return idx


def _vop_mul_wide(rn, d, idx):
    idx, (a, b) = rn._operands(d, idx, "bb")
    if idx.size:
        m = np.uint64(0xFFFF)
        rn._store_int_bits(d, idx, (a & m) * (b & m))
    return idx


def _vop_mad_int(rn, d, idx):
    idx, (a, b, c) = rn._operands(d, idx, "bbb")
    if idx.size:
        rn._store_int_bits(d, idx, a * b + c)
    return idx


def _vop_and(rn, d, idx):
    idx, (a, b) = rn._operands(d, idx, "bb")
    if idx.size:
        rn._store_int_bits(d, idx, a & b)
    return idx


def _vop_or(rn, d, idx):
    idx, (a, b) = rn._operands(d, idx, "bb")
    if idx.size:
        rn._store_int_bits(d, idx, a | b)
    return idx


def _vop_xor(rn, d, idx):
    idx, (a, b) = rn._operands(d, idx, "bb")
    if idx.size:
        rn._store_int_bits(d, idx, a ^ b)
    return idx


def _vop_not(rn, d, idx):
    idx, (a,) = rn._operands(d, idx, "b")
    if idx.size:
        rn._store_int_bits(d, idx, ~a)
    return idx


def _vop_shl(rn, d, idx):
    idx, (a, amt) = rn._operands(d, idx, "bl")
    if idx.size:
        big = amt >= np.uint64(d.width)
        safe = np.where(big, _ZERO64, amt)
        rn._store_int_bits(d, idx, np.where(big, _ZERO64, a << safe))
    return idx


def _vop_shr(rn, d, idx):
    idx, (ab, amt) = rn._operands(d, idx, "il" if d.is_signed else "bl")
    if not idx.size:
        return idx
    big = amt >= np.uint64(d.width)
    if d.is_signed:
        bits, neg = ab
        # The int64 bit-view equals the true value for every lane except
        # huge non-negative u64 residues, which the reader demoted.
        haz = ~neg & (bits >= _TWO63)
        if haz.any():
            idx = rn._demote(d, idx, haz)
            keep = ~haz
            bits, neg, big, amt = bits[keep], neg[keep], big[keep], amt[keep]
            if not idx.size:
                return idx
        v = bits.view(np.int64)
        safe = np.where(big, _ZERO64, amt).astype(np.int64)
        shifted = (v >> safe).view(np.uint64)
        fill = np.where(v < 0, _ONES64, _ZERO64)
        rn._store_int_bits(d, idx, np.where(big, fill, shifted))
    else:
        a = ab
        safe = np.where(big, _ZERO64, amt)
        rn._store_int_bits(d, idx, np.where(big, _ZERO64, (a & d.wmask) >> safe))
    return idx


def _vop_div_int(rn, d, idx):
    idx, ((ab, an), (bb, bn)) = rn._operands(d, idx, "ii")
    if not idx.size:
        return idx
    absa = np.where(an, np.negative(ab), ab)
    absb = np.where(bn, np.negative(bb), bb)
    bz = absb == _ZERO64
    q = absa // np.where(bz, np.uint64(1), absb)
    q = np.where(an ^ bn, np.negative(q), q)
    rn._store_int_bits(d, idx, np.where(bz, _ONES64, q))
    return idx


def _vop_rem_int(rn, d, idx):
    idx, ((ab, an), (bb, bn)) = rn._operands(d, idx, "ii")
    if not idx.size:
        return idx
    absa = np.where(an, np.negative(ab), ab)
    absb = np.where(bn, np.negative(bb), bb)
    bz = absb == _ZERO64
    r = absa % np.where(bz, np.uint64(1), absb)
    r = np.where(an, np.negative(r), r)
    rn._store_int_bits(d, idx, np.where(bz, ab, r))
    return idx


def _full_lt(ab, an, bb, bn):
    """``value(a) < value(b)`` on (bits mod 2**64, negative) planes."""
    return (an & ~bn) | ((an == bn) & (ab < bb))


def _vop_min_int(rn, d, idx):
    idx, ((ab, an), (bb, bn)) = rn._operands(d, idx, "ii")
    if idx.size:
        # Python ``min(a, b)`` returns b only when b < a (first on ties).
        take_b = _full_lt(bb, bn, ab, an)
        rn._store_int_bits(d, idx, np.where(take_b, bb, ab))
    return idx


def _vop_max_int(rn, d, idx):
    idx, ((ab, an), (bb, bn)) = rn._operands(d, idx, "ii")
    if idx.size:
        take_b = _full_lt(ab, an, bb, bn)
        rn._store_int_bits(d, idx, np.where(take_b, bb, ab))
    return idx


def _vop_neg_int(rn, d, idx):
    idx, (a,) = rn._operands(d, idx, "b")
    if idx.size:
        rn._store_int_bits(d, idx, np.negative(a))
    return idx


def _vop_abs_int(rn, d, idx):
    idx, ((ab, an),) = rn._operands(d, idx, "i")
    if idx.size:
        rn._store_int_bits(d, idx, np.where(an, np.negative(ab), ab))
    return idx


def _vop_add_float(rn, d, idx):
    idx, (a, b) = rn._operands(d, idx, "ff")
    if idx.size:
        rn._store_float(d, idx, rn._fround(d, a + b))
    return idx


def _vop_sub_float(rn, d, idx):
    idx, (a, b) = rn._operands(d, idx, "ff")
    if idx.size:
        rn._store_float(d, idx, rn._fround(d, a - b))
    return idx


def _vop_mul_float(rn, d, idx):
    idx, (a, b) = rn._operands(d, idx, "ff")
    if idx.size:
        rn._store_float(d, idx, rn._fround(d, a * b))
    return idx


def _vop_mad_float(rn, d, idx):
    idx, (a, b, c) = rn._operands(d, idx, "fff")
    if idx.size:
        product = rn._fround(d, a * b)
        rn._store_float(d, idx, rn._fround(d, product + c))
    return idx


def _vop_div_float(rn, d, idx):
    idx, (a, b) = rn._operands(d, idx, "ff")
    if idx.size:
        # IEEE division reproduces the interpreter's x/±0 → signed-inf
        # case bit-exactly, but hardware 0/0 and nan/0 NaNs carry the
        # sign bit / input payload where the interpreter returns the
        # canonical positive ``math.nan`` — force those lanes.
        q = np.divide(a, b)
        bad = (b == 0.0) & ((a == 0.0) | np.isnan(a))
        if bad.any():
            q = np.where(bad, np.float64(np.nan), q)
        rn._store_float(d, idx, rn._fround(d, q))
    return idx


def _vop_rem_float(rn, d, idx):
    idx, (a, b) = rn._operands(d, idx, "ff")
    if idx.size:
        # The interpreter returns canonical ``math.nan`` for a zero
        # divisor, infinite dividend or any NaN operand; C fmod would
        # propagate input payloads / set the sign bit.
        r = np.fmod(a, b)
        bad = (b == 0.0) | np.isinf(a) | np.isnan(a) | np.isnan(b)
        if bad.any():
            r = np.where(bad, np.float64(np.nan), r)
        rn._store_float(d, idx, rn._fround(d, r))
    return idx


def _vop_min_float(rn, d, idx):
    idx, (a, b) = rn._operands(d, idx, "ff")
    if idx.size:
        nan_a = np.isnan(a)
        nan_b = np.isnan(b)
        res = np.where(b < a, b, a)  # first operand on ties (Python min)
        rn._store_float(d, idx, np.where(nan_a, b, np.where(nan_b, a, res)))
    return idx


def _vop_max_float(rn, d, idx):
    idx, (a, b) = rn._operands(d, idx, "ff")
    if idx.size:
        nan_a = np.isnan(a)
        nan_b = np.isnan(b)
        res = np.where(b > a, b, a)
        rn._store_float(d, idx, np.where(nan_a, b, np.where(nan_b, a, res)))
    return idx


def _vop_neg_float(rn, d, idx):
    idx, (a,) = rn._operands(d, idx, "f")
    if idx.size:
        rn._store_float(d, idx, np.negative(a))
    return idx


def _vop_abs_float(rn, d, idx):
    idx, (a,) = rn._operands(d, idx, "f")
    if idx.size:
        rn._store_float(d, idx, np.fabs(a))
    return idx


def _vop_rcp(rn, d, idx):
    idx, (a,) = rn._operands(d, idx, "f")
    if idx.size:
        # NaN input → canonical ``math.nan`` (the interpreter does not
        # propagate the input payload); 1/±0 → signed inf matches IEEE.
        r = np.divide(1.0, a)
        bad = np.isnan(a)
        if bad.any():
            r = np.where(bad, np.float64(np.nan), r)
        rn._store_float(d, idx, rn._fround(d, r))
    return idx


def _vop_sqrt(rn, d, idx):
    idx, (a,) = rn._operands(d, idx, "f")
    if idx.size:
        # Strictly negative input → canonical ``math.nan`` (hardware
        # sqrt returns the sign-set indefinite NaN); sqrt(-0.0) is -0.0
        # and NaN inputs propagate, identically on both paths.
        s = np.sqrt(a)
        bad = a < 0.0
        if bad.any():
            s = np.where(bad, np.float64(np.nan), s)
        rn._store_float(d, idx, rn._fround(d, s))
    return idx


_VOPS = {
    ("mov", False): _vop_cvt_int,
    ("mov", True): _vop_cvt_float,
    ("cvt", False): _vop_cvt_int,
    ("cvt", True): _vop_cvt_float,
    ("add", False): _vop_add_int,
    ("add", True): _vop_add_float,
    ("sub", False): _vop_sub_int,
    ("sub", True): _vop_sub_float,
    ("mul", False): _vop_mul_int,
    ("mul", True): _vop_mul_float,
    ("mul.wide", False): _vop_mul_wide,
    ("mad", False): _vop_mad_int,
    ("mad", True): _vop_mad_float,
    ("fma", True): _vop_mad_float,
    ("div", False): _vop_div_int,
    ("div", True): _vop_div_float,
    ("rem", False): _vop_rem_int,
    ("rem", True): _vop_rem_float,
    ("min", False): _vop_min_int,
    ("min", True): _vop_min_float,
    ("max", False): _vop_max_int,
    ("max", True): _vop_max_float,
    ("neg", False): _vop_neg_int,
    ("neg", True): _vop_neg_float,
    ("abs", False): _vop_abs_int,
    ("abs", True): _vop_abs_float,
    ("rcp", True): _vop_rcp,
    ("sqrt", True): _vop_sqrt,
    ("and", False): _vop_and,
    ("or", False): _vop_or,
    ("xor", False): _vop_xor,
    ("not", False): _vop_not,
    ("shl", False): _vop_shl,
    ("shr", False): _vop_shr,
}


_NP_COMPARE = {
    "eq": np.equal,
    "ne": np.not_equal,
    "lt": np.less,
    "le": np.less_equal,
    "gt": np.greater,
    "ge": np.greater_equal,
}


def _int_compare(cmp, ab, an, bb, bn):
    eq = (an == bn) & (ab == bb)
    if cmp == "eq":
        return eq
    if cmp == "ne":
        return ~eq
    lt = _full_lt(ab, an, bb, bn)
    if cmp == "lt":
        return lt
    if cmp == "le":
        return lt | eq
    if cmp == "gt":
        return ~(lt | eq)
    return ~lt  # ge


def _vop_set(rn, d, idx):
    if d.is_float:
        idx, (a, b) = rn._operands(d, idx, "ff")
        if not idx.size:
            return idx
        nanm = np.isnan(a) | np.isnan(b)
        res = np.where(nanm, d.cmp == "ne", _NP_COMPARE[d.cmp](a, b))
        if d.dest_is_pred:
            code = res.astype(np.uint64)
            code |= ((~nanm & (a < b)).astype(np.uint64)) << np.uint64(PRED_SIGN)
            rn._store_small_int(d.dest_col, idx, code)
        else:
            rn._store_cells_int(
                d.dest_col, idx,
                np.where(res, d.true_bits, _ZERO64),
                res & d.true_neg,
            )
        return idx
    idx, ((ab, an), (bb, bn)) = rn._operands(d, idx, "ii")
    if not idx.size:
        return idx
    res = _int_compare(d.cmp, ab, an, bb, bn)
    if d.dest_is_pred:
        code = res.astype(np.uint64)
        sign = _full_lt(ab, an, bb, bn)
        code |= sign.astype(np.uint64) << np.uint64(PRED_SIGN)
        carry = (ab & d.wmask) < (bb & d.wmask)
        code |= carry.astype(np.uint64) << np.uint64(PRED_CARRY)
        if d.is_signed:
            # k-decomposition of ``a - b`` over the (bits, neg) planes:
            # diff = d0 - 2**64 * m with m = borrow + neg_a - neg_b.
            d0 = ab - bb
            borrow = ab < bb
            m = (
                borrow.astype(np.int8)
                + an.astype(np.int8)
                - bn.astype(np.int8)
            )
            ovf = (
                ((m == 0) & (d0 >= d.half))
                | ((m == 1) & (d0 < (_ZERO64 - d.half)))
                | (m == -1)
                | (m == 2)
            )
            code |= ovf.astype(np.uint64) << np.uint64(PRED_OVERFLOW)
        rn._store_small_int(d.dest_col, idx, code)
    else:
        rn._store_cells_int(
            d.dest_col, idx,
            np.where(res, d.true_bits, _ZERO64),
            res & d.true_neg,
        )
    return idx


def _vop_selp(rn, d, idx):
    zero = rn._odd_bit(d.sel_col, idx)
    a = rn._operand_cells(d.srcs[0], idx)
    b = rn._operand_cells(d.srcs[1], idx)
    cells = tuple(np.where(zero, xa, xb) for xa, xb in zip(a, b))
    rn._store_cells(d.dest_col, idx, cells)
    return idx


def _vop_slct(rn, d, idx):
    ge0 = rn._selector_ge0(d.srcs[2], idx)
    if d.is_float:
        idx2, (a, b), (ge0,) = rn._operands(
            d, idx, "ff", srcs=d.srcs[:2], carry=(ge0,)
        )
        if idx2.size:
            rn._store_float(d, idx2, rn._fround(d, np.where(ge0, a, b)))
        return idx2
    idx2, (a, b), (ge0,) = rn._operands(
        d, idx, "bb", srcs=d.srcs[:2], carry=(ge0,)
    )
    if idx2.size:
        rn._store_int_bits(d, idx2, np.where(ge0, a, b))
    return idx2


# ------------------------------------------------------------ memory vops


def _vop_ld(rn, d, idx):
    idx, addr, _ = rn._addresses(d, idx)
    if not idx.size:
        return idx
    size = d.mem_size
    pos = addr[:, None] + np.arange(size, dtype=np.int64)
    if d.space == "shared":
        if rn.paint:
            rn._paint_read(rn.shared_board, idx, pos)
        raw = rn.shared_view[pos]
    else:
        if rn.paint:
            rn._paint_read(rn.heap_board, idx, pos)
        if rn.record_reads:
            rn.segment_records.append(("R", idx, addr, size))
        raw = rn.heap_view[pos]
    vals = raw.view(d.np_load).ravel()
    kind = d.np_load.kind
    if kind == "f":
        rn._store_float(d, idx, vals.astype(np.float64))
    elif kind == "i":
        v = vals.astype(np.int64)
        rn._store_cells_int(d.dest_col, idx, v.view(np.uint64), v < 0)
    else:
        rn._store_cells_int(
            d.dest_col, idx, vals.astype(np.uint64), np.zeros(idx.size, bool)
        )
    return idx


def _vop_st(rn, d, idx):
    # Value operand first — classic evaluation order puts value-conversion
    # exceptions (ValueError/OverflowError from encode) before the
    # address fault, so value hazards must demote before address hazards.
    if d.is_float:
        f, haz = rn._read_one(d.srcs[1], idx, "f")
        if d.f32:
            # struct.pack('<f', x) raises OverflowError for finite
            # |x| > f32max where the vector cast would produce inf.
            over = np.isfinite(f) & (np.fabs(f) > _F32_MAX)
            haz = over if haz is None else (haz | over)
        if haz is not None and haz.any():
            idx = rn._demote(d, idx, haz)
            f = f[~haz]
            if not idx.size:
                return idx
        idx, addr, (f,) = rn._addresses(d, idx, carry=(f,))
        if not idx.size:
            return idx
        raw = f.astype(d.np_store).view(np.uint8).reshape(idx.size, d.mem_size)
    else:
        bits, haz = rn._read_one(d.srcs[1], idx, "s")
        if haz is not None and haz.any():
            idx = rn._demote(d, idx, haz)
            bits = bits[~haz]
            if not idx.size:
                return idx
        idx, addr, (bits,) = rn._addresses(d, idx, carry=(bits,))
        if not idx.size:
            return idx
        raw = (
            bits.astype(d.np_store).view(np.uint8).reshape(idx.size, d.mem_size)
        )
    pos = addr[:, None] + np.arange(d.mem_size, dtype=np.int64)
    if d.space == "shared":
        if rn.paint:
            rn._paint_write(rn.shared_board, idx, pos)
        rn.shared_view[pos] = raw
    else:
        if rn.paint:
            rn._paint_write(rn.heap_board, idx, pos)
        rn.heap_view[pos] = raw
        rn.segment_records.append(("W", idx, addr, raw))
    return idx


# ------------------------------------------------------------ paint boards


class _PaintBoard:
    """Per-byte last-writer/last-reader versioned paint.

    Conflict definition (either triggers :class:`VectorFallback`): two
    distinct lanes touch the same byte within one run-to-barrier segment
    with at least one writer.  Lockstep issue is only equivalent to the
    classic slot-sequential schedule when segments are conflict-free, so
    any hit abandons the vector attempt rather than guessing an order.
    """

    __slots__ = ("wver", "wlane", "rver", "rlane", "cur")

    def __init__(self, nbytes: int) -> None:
        self.wver = np.zeros(nbytes, np.int64)
        self.wlane = np.full(nbytes, -1, np.int32)
        self.rver = np.zeros(nbytes, np.int64)
        self.rlane = np.full(nbytes, -1, np.int32)
        self.cur = 0


def _board_for(mem, nbytes: int) -> _PaintBoard:
    board = getattr(mem, "_vector_paint", None)
    if board is None or len(board.wver) != nbytes:
        board = _PaintBoard(nbytes)
        mem._vector_paint = board
    return board


#: Lane status codes.
_RUNNING = 0
_AT_BARRIER = 1
_EXITED = 2
_PARKED = 3
_SCALAR = 4

_LOW8 = np.uint64(0xFF)
_ONE64 = np.uint64(1)
_TWO62 = np.uint64(1 << 62)
_TWO53U = np.uint64(1 << 53)


class _VectorCTARunner:
    """Lockstep executor for one CTA over a 4-plane lane register file.

    Register value domain: each (column, lane) cell is either a float
    (``isf`` set, value in ``fval``) or a canonical int (``ibits`` holds
    value mod 2**64, ``neg`` marks values below zero) — an injective
    encoding of the interpreter's dynamically typed register dict, with
    the all-zero planes equal to the dict's ``get(name, 0)`` default.
    """

    def __init__(self, vprog, nlanes: int, specials_list) -> None:
        self.vprog = vprog
        self.nlanes = nlanes
        ncols = vprog.ncols
        self.ibits = np.zeros((ncols, nlanes), np.uint64)
        self.neg = np.zeros((ncols, nlanes), bool)
        self.isf = np.zeros((ncols, nlanes), bool)
        self.fval = np.zeros((ncols, nlanes), np.float64)
        self.pcs = np.zeros(nlanes, np.int64)
        self.dyn = np.zeros(nlanes, np.int64)
        self.status = np.zeros(nlanes, np.int8)
        self.specials_list = specials_list
        self.special_u64 = {
            key: np.array(
                [specials_list[lane][key] for lane in range(nlanes)],
                dtype=np.uint64,
            )
            for key in specials_list[0]
        }
        self.paint = nlanes > 1
        self.parked: dict[int, BaseException] = {}
        self.segment_records: list = []
        self.flushed: list[tuple[int, bytes]] = []
        self.trace_chunks: list = []
        self.scalar_slot = -1
        self.scalar_ctx = None
        #: Per-column "may hold floats" flag — conservative fast path that
        #: lets operand reads skip the isf-plane gather for int columns.
        self.colf = np.zeros(ncols, bool)
        self.status_dirty = False
        self.lane_view = _LaneView(self)

    # ----------------------------------------------------------- operands

    def _read_one(self, o, idx, mode):
        kind = o[0]
        n = idx.size
        if kind == _K_REG:
            col = o[1]
            bits = self.ibits[col, idx]
            if not self.colf[col]:
                # Column has never held a float: skip the isf gather.
                if mode == "f":
                    neg = self.neg[col, idx]
                    mag = np.where(neg, np.negative(bits), bits)
                    haz = mag > _TWO53U
                    fi = mag.astype(np.float64)
                    f = np.where(neg, np.negative(fi), fi)
                    return f, (haz if haz.any() else None)
                if mode == "b" or mode == "s":
                    return bits, None
                if mode == "i":
                    return (bits, self.neg[col, idx]), None
                return bits & _LOW8, None
            isf = self.isf[col, idx]
            anyf = isf.any()
            if mode == "f":
                neg = self.neg[col, idx]
                mag = np.where(neg, np.negative(bits), bits)
                haz = ~isf & (mag > _TWO53U)
                fi = mag.astype(np.float64)
                f = np.where(neg, np.negative(fi), fi)
                if anyf:
                    f = np.where(isf, self.fval[col, idx], f)
                return f, (haz if haz.any() else None)
            if not anyf:
                if mode == "b" or mode == "s":
                    return bits, None
                if mode == "i":
                    return (bits, self.neg[col, idx]), None
                return bits & _LOW8, None
            fv = self.fval[col, idx]
            finite = np.isfinite(fv)
            small = finite & (np.fabs(fv) < _TWO63F)
            ti = np.trunc(np.where(isf & small, fv, 0.0)).astype(np.int64)
            tbits = ti.view(np.uint64)
            if mode == "b":
                haz = isf & finite & ~small
                bits = np.where(isf, tbits, bits)
                return bits, (haz if haz.any() else None)
            if mode == "s":
                # int-image store: float lanes with non-finite values
                # raise ValueError in ``int(value)`` on the classic path.
                haz = isf & ~small
                bits = np.where(isf, tbits, bits)
                return bits, (haz if haz.any() else None)
            if mode == "i":
                haz = isf & finite & ~small
                neg = self.neg[col, idx]
                bits = np.where(isf, tbits, bits)
                neg = np.where(isf, ti < 0, neg)
                return (bits, neg), (haz if haz.any() else None)
            # mode == "l": the low byte of trunc(f) is provably zero for
            # every finite |f| >= 2**63 (53-bit mantissa), so this read
            # never hazards.
            return np.where(isf, tbits, bits) & _LOW8, None
        if kind == _K_CONST:
            _, cbits, cneg, cf, cisf = o
            if mode == "f":
                return np.full(n, cf, np.float64), None
            if mode == "i":
                return (
                    np.full(n, cbits, np.uint64),
                    np.full(n, cneg, bool),
                ), None
            if mode == "l":
                return np.full(n, cbits & _LOW8, np.uint64), None
            if mode == "s" and cisf and not np.isfinite(cf):
                # ``int(nan)`` raises on the classic store path while
                # ``to_int`` folded the immediate to 0 — demote.
                return np.full(n, cbits, np.uint64), np.ones(n, bool)
            return np.full(n, cbits, np.uint64), None
        arr = self.special_u64[o[1]][idx]
        if mode == "f":
            return arr.astype(np.float64), None
        if mode == "i":
            return (arr, np.zeros(n, bool)), None
        if mode == "l":
            return arr & _LOW8, None
        return arr, None

    def _operands(self, d, idx, modes, srcs=None, carry=()):
        srcs = d.srcs if srcs is None else srcs
        outs = []
        haz = None
        for o, mode in zip(srcs, modes):
            v, h = self._read_one(o, idx, mode)
            outs.append(v)
            if h is not None:
                haz = h if haz is None else (haz | h)
        if haz is not None:
            idx = self._demote(d, idx, haz)
            keep = ~haz
            outs = [
                (v[0][keep], v[1][keep]) if type(v) is tuple else v[keep]
                for v in outs
            ]
            carry = tuple(c[keep] for c in carry)
        if carry:
            return idx, outs, carry
        return idx, outs

    def _odd_bit(self, col, idx):
        """``to_int(value) & 1`` as a boolean lane vector (never hazards)."""
        bits = self.ibits[col, idx]
        if self.colf[col]:
            isf = self.isf[col, idx]
            if isf.any():
                fv = self.fval[col, idx]
                small = np.isfinite(fv) & (np.fabs(fv) < _TWO63F)
                ti = np.trunc(np.where(isf & small, fv, 0.0)).astype(np.int64)
                bits = np.where(isf, ti.view(np.uint64), bits)
        return (bits & _ONE64).astype(bool)

    def _selector_ge0(self, o, idx):
        kind = o[0]
        if kind == _K_REG:
            col = o[1]
            isf = self.isf[col, idx]
            return np.where(isf, self.fval[col, idx] >= 0.0, ~self.neg[col, idx])
        if kind == _K_CONST:
            _, _, cneg, cf, cisf = o
            value = (cf >= 0.0) if cisf else (not cneg)
            return np.full(idx.size, value, bool)
        return np.ones(idx.size, bool)

    def _operand_cells(self, o, idx):
        kind = o[0]
        n = idx.size
        if kind == _K_REG:
            col = o[1]
            return (
                self.ibits[col, idx],
                self.neg[col, idx],
                self.isf[col, idx],
                self.fval[col, idx],
            )
        if kind == _K_CONST:
            _, cbits, cneg, cf, cisf = o
            return (
                np.full(n, cbits, np.uint64),
                np.full(n, cneg, bool),
                np.full(n, cisf, bool),
                np.full(n, cf, np.float64),
            )
        arr = self.special_u64[o[1]][idx]
        return (arr, np.zeros(n, bool), np.zeros(n, bool), arr.astype(np.float64))

    # ------------------------------------------------------------- stores

    def _fround(self, d, vals):
        if d.f32:
            return vals.astype(np.float32).astype(np.float64)
        return vals

    def _store_int_bits(self, d, idx, raw):
        m = raw & d.wmask
        col = d.dest_col
        if d.is_signed:
            negv = (m & d.half) != _ZERO64
            if d.width < 64:
                bits = np.where(negv, m | (_ONES64 ^ d.wmask), m)
            else:
                bits = m
            self.neg[col, idx] = negv
        else:
            bits = m
            self.neg[col, idx] = False
        self.ibits[col, idx] = bits
        self.isf[col, idx] = False

    def _store_float(self, d, idx, vals):
        col = d.dest_col
        self.fval[col, idx] = vals
        self.isf[col, idx] = True
        self.colf[col] = True

    def _store_small_int(self, col, idx, vals):
        self.ibits[col, idx] = vals
        self.neg[col, idx] = False
        self.isf[col, idx] = False

    def _store_cells_int(self, col, idx, bits, neg):
        self.ibits[col, idx] = bits
        self.neg[col, idx] = neg
        self.isf[col, idx] = False

    def _store_cells(self, col, idx, cells):
        self.ibits[col, idx] = cells[0]
        self.neg[col, idx] = cells[1]
        self.isf[col, idx] = cells[2]
        self.fval[col, idx] = cells[3]
        if cells[2].any():
            self.colf[col] = True

    # ------------------------------------------------- scalar lane access

    def _lane_get(self, col, lane):
        if self.isf[col, lane]:
            return float(self.fval[col, lane])
        value = int(self.ibits[col, lane])
        if self.neg[col, lane]:
            value -= 1 << 64
        return value

    def _lane_set(self, col, lane, value):
        if isinstance(value, float):
            self.isf[col, lane] = True
            self.fval[col, lane] = value
            self.colf[col] = True
        else:
            self.isf[col, lane] = False
            self.ibits[col, lane] = value & _U64_MASK
            self.neg[col, lane] = value < 0

    # --------------------------------------------------- scalar slow path

    def _demote(self, d, idx, haz):
        for lane in idx[haz].tolist():
            self._scalar_op(d, lane)
        return idx[~haz]

    def _park(self, lane, exc):
        self.status[lane] = _PARKED
        self.status_dirty = True
        self.parked[lane] = exc

    def _scalar_op(self, d, lane):
        try:
            self._scalar_op_body(d, lane)
        except VectorFallback:
            raise
        except Exception as exc:  # noqa: BLE001 - classified by the injector
            self._park(lane, exc)
        else:
            self.pcs[lane] += 1

    def _scalar_value(self, s, dtype, lane):
        kind = type(s)
        if kind is Reg:
            return self._lane_get(self.vprog.colmap[s.name], lane)
        if kind is Imm:
            return s.value
        if kind is Special:
            return self.specials_list[lane][(s.name, s.axis)]
        if kind is Param:
            return self.param_mem.load(s.offset, dtype)
        raise ExecutionFault(f"operand {s!r} not readable here")

    def _scalar_load(self, d, s, lane):
        if type(s) is Param:
            return self.param_mem.load(s.offset, d.dtype)
        if type(s) is MemRef:
            address = s.offset
            if s.base is not None:
                address += to_int(
                    self._lane_get(self.vprog.colmap[s.base.name], lane)
                )
            size = d.dtype.width // 8
            if s.space == "shared":
                value = self.shared.load(address, d.dtype)
                if self.paint and size:
                    self._paint_read_scalar(self.shared_board, lane, address, size)
                return value
            value = self.heap.load(address, d.dtype)
            if self.paint and size:
                self._paint_read_scalar(self.heap_board, lane, address, size)
            if self.record_reads:
                self.segment_records.append(("r", lane, address, size))
            return value
        raise ExecutionFault(f"ld source {s!r} is not a memory operand")

    def _scalar_store(self, d, s, lane, value):
        if type(s) is not MemRef:
            raise ExecutionFault(f"st target {s!r} is not a memory operand")
        address = s.offset
        if s.base is not None:
            address += to_int(self._lane_get(self.vprog.colmap[s.base.name], lane))
        if s.space == "shared":
            self.shared.store(address, value, d.dtype)
            if self.paint:
                self._paint_write_scalar(
                    self.shared_board, lane, address, d.dtype.width // 8
                )
            return
        raw = encode_value(value, d.dtype)
        self.heap._check(address, len(raw))
        self.heap._data[address : address + len(raw)] = raw
        if self.paint:
            self._paint_write_scalar(self.heap_board, lane, address, len(raw))
        self.segment_records.append(("w", lane, address, raw))

    def _scalar_op_body(self, d, lane):
        op = d.op
        dtype = d.dtype
        srcs = d.raw_srcs
        if d.executor is not None:
            values = [self._scalar_value(s, dtype, lane) for s in srcs]
            value = d.executor(dtype, *values)
            if d.dest_is_pred:
                value = to_int(value) & 0xF
            self._lane_set(d.dest_col, lane, value)
            return
        if op == "ld":
            value = self._scalar_load(d, srcs[0], lane)
            if d.dest_is_pred:
                value = to_int(value) & 0xF
            self._lane_set(d.dest_col, lane, value)
            return
        if op == "st":
            self._scalar_store(
                d, srcs[0], lane, self._scalar_value(srcs[1], dtype, lane)
            )
            return
        if op in ("set", "setp"):
            a = self._scalar_value(srcs[0], dtype, lane)
            b = self._scalar_value(srcs[1], dtype, lane)
            if d.dest_is_pred:
                value = condition_code(d.cmp, dtype, a, b)
            else:
                value = _exec_set_general(dtype, d.cmp, a, b)
            self._lane_set(d.dest_col, lane, value)
            return
        if op == "selp":
            pred = srcs[2]
            if not (type(pred) is Reg and pred.is_pred):
                raise ExecutionFault("selp selector must be a predicate register")
            zero = to_int(self._lane_get(self.vprog.colmap[pred.name], lane)) & 1
            chosen = srcs[0] if zero else srcs[1]
            value = self._scalar_value(chosen, dtype, lane)
            if d.dest_is_pred:
                value = to_int(value) & 0xF
            self._lane_set(d.dest_col, lane, value)
            return
        raise ExecutionFault(f"unhandled opcode {op!r}")  # pragma: no cover

    # --------------------------------------------------------- addressing

    def _addresses(self, d, idx, carry=()):
        n = idx.size
        if d.base_col < 0:
            addr = np.full(n, d.mem_offset, np.int64)
        else:
            col = d.base_col
            bits = self.ibits[col, idx]
            neg = self.neg[col, idx]
            isf = self.isf[col, idx]
            haz = np.zeros(n, bool)
            if isf.any():
                fv = self.fval[col, idx]
                finite = np.isfinite(fv)
                small = finite & (np.fabs(fv) < _TWO63F)
                ti = np.trunc(np.where(isf & small, fv, 0.0)).astype(np.int64)
                haz |= isf & finite & ~small
                bits = np.where(isf, ti.view(np.uint64), bits)
                neg = np.where(isf, ti < 0, neg)
            # Margin so ``base + offset`` cannot overflow the int64 view.
            haz |= ~neg & (bits >= _TWO62)
            if haz.any():
                idx = self._demote(d, idx, haz)
                keep = ~haz
                bits = bits[keep]
                carry = tuple(c[keep] for c in carry)
                if not idx.size:
                    return idx, bits.view(np.int64), carry
            addr = bits.view(np.int64) + np.int64(d.mem_offset)
        size = d.mem_size
        if d.space == "shared":
            ok = (addr >= 0) & (addr + size <= self.shared_len)
        else:
            bases, ends = self.heap_bounds
            j = np.searchsorted(bases, addr, side="right") - 1
            jn = np.maximum(j, 0)
            ok = (j >= 0) & (addr >= bases[jn]) & (addr + size <= ends[jn])
        if not ok.all():
            idx = self._demote(d, idx, ~ok)
            addr = addr[ok]
            carry = tuple(c[ok] for c in carry)
        return idx, addr, carry

    # -------------------------------------------------------------- paint

    def _paint_write(self, board, idx, pos):
        lanes = idx.astype(np.int32)[:, None]
        cur = board.cur
        conflict = (
            (board.wver[pos] == cur) & (board.wlane[pos] != lanes)
        ) | ((board.rver[pos] == cur) & (board.rlane[pos] != lanes))
        if conflict.any():
            raise VectorFallback("cross-lane write conflict in segment")
        board.wver[pos] = cur
        board.wlane[pos] = np.broadcast_to(lanes, pos.shape)
        if not (board.wlane[pos] == lanes).all():
            raise VectorFallback("intra-step write overlap")

    def _paint_read(self, board, idx, pos):
        lanes = idx.astype(np.int32)[:, None]
        cur = board.cur
        if ((board.wver[pos] == cur) & (board.wlane[pos] != lanes)).any():
            raise VectorFallback("cross-lane read-after-write in segment")
        other = (board.rver[pos] == cur) & (board.rlane[pos] != lanes)
        board.rver[pos] = cur
        board.rlane[pos] = np.where(
            other, np.int32(-2), np.broadcast_to(lanes, pos.shape)
        )
        got = board.rlane[pos]
        fix = (got != lanes) & (got != -2)
        if fix.any():
            board.rlane[pos[fix]] = -2

    def _paint_write_scalar(self, board, lane, address, size):
        if size:
            pos = np.arange(address, address + size, dtype=np.int64)[None, :]
            self._paint_write(board, np.array([lane]), pos)

    def _paint_read_scalar(self, board, lane, address, size):
        if size:
            pos = np.arange(address, address + size, dtype=np.int64)[None, :]
            self._paint_read(board, np.array([lane]), pos)

    # ------------------------------------------------------------- launch

    def prepare(
        self, heap, shared, param_mem, max_steps, tracing,
        write_target, read_target, thread_targets,
    ):
        """Rebind one launch's memories/logs and zero all lane state."""
        self.heap = heap
        self.shared = shared
        self.param_mem = param_mem
        self.max_steps = max_steps
        self.tracing = tracing
        self.write_target = write_target
        self.read_target = read_target
        self.thread_targets = thread_targets
        self.record_reads = read_target is not None
        self.heap_view = heap.array_view()
        self.heap_bounds = heap.allocation_arrays()
        self.heap_board = _board_for(heap, len(heap._data)) if self.paint else None
        if shared is not None:
            self.shared_view = shared.array_view()
            self.shared_len = len(shared._data)
            self.shared_board = (
                _board_for(shared, self.shared_len) if self.paint else None
            )
        else:
            self.shared_view = None
            self.shared_len = 0
            self.shared_board = None
        self.ibits[:] = 0
        self.neg[:] = False
        self.isf[:] = False
        self.fval[:] = 0.0
        self.pcs[:] = 0
        self.dyn[:] = 0
        self.status[:] = _RUNNING
        self.colf[:] = False
        self.status_dirty = False
        self.parked.clear()
        self.segment_records = []
        self.flushed = []
        self.trace_chunks = []
        self.scalar_slot = -1
        self.scalar_ctx = None

    def attach_scalar(self, slot, ctx):
        """Demote ``slot`` to a real ThreadContext for the whole launch.

        The flip-carrying thread runs interpreter/compiled semantics; its
        shared-memory traffic is painted through a recording proxy so the
        race detector still sees it.
        """
        self.scalar_slot = slot
        self.scalar_ctx = ctx
        self.status[slot] = _SCALAR
        if self.shared is not None:
            ctx.shared_mem = _RecordingShared(self.shared, self, slot)

    # ------------------------------------------------------------ stepping

    def _step(self, d, idx):
        self.dyn[idx] += 1
        pc = d.pc
        if d.guard_col >= 0:
            odd = self._odd_bit(d.guard_col, idx)
            executed = odd if d.guard_want_one else ~odd
            off = idx[~executed]
            if off.size:
                if self.tracing:
                    self.trace_chunks.append((off, pc, 0))
                self.pcs[off] += 1
            idx = idx[executed]
            if not idx.size:
                return
        if self.tracing:
            self.trace_chunks.append((idx, pc, d.trace_width))
        kind = d.kind
        if kind == _BRA:
            self.pcs[idx] = d.target
            return
        if kind == _BAR:
            self.status[idx] = _AT_BARRIER
            self.status_dirty = True
            self.pcs[idx] += 1
            return
        if kind == _EXIT:
            self.status[idx] = _EXITED
            self.status_dirty = True
            self.pcs[idx] += 1
            return
        if kind == _NOP:
            self.pcs[idx] += 1
            return
        if kind == _FAULT:
            for lane in idx.tolist():
                self._park(lane, d.fault_exc)
            return
        if d.scalar_only:
            for lane in idx.tolist():
                self._scalar_op(d, lane)
            return
        if kind == _ALU:
            ok = d.vop(self, d, idx)
        elif kind == _LD:
            ok = _vop_ld(self, d, idx)
        elif kind == _ST:
            ok = _vop_st(self, d, idx)
        elif kind == _SET:
            ok = _vop_set(self, d, idx)
        elif kind == _SELP:
            ok = _vop_selp(self, d, idx)
        else:
            ok = _vop_slct(self, d, idx)
        if ok.size:
            self.pcs[ok] += 1

    def _run_vector(self):
        """Min-PC lockstep until no vector lane is RUNNING.

        The running-lane index is cached across steps — status only
        changes at barriers, exits and parks, which set ``status_dirty``.
        The hang check runs on a countdown: after observing the deepest
        lane at ``m`` dynamic instructions, no lane can reach
        ``max_steps`` for another ``max_steps - m`` steps.
        """
        pcs = self.pcs
        status = self.status
        dyn = self.dyn
        descs = self.vprog.descs
        end = self.vprog.end
        max_steps = self.max_steps
        ridx = None
        countdown = 0
        while True:
            if ridx is None or self.status_dirty:
                self.status_dirty = False
                ridx = np.flatnonzero(status == _RUNNING)
                if not ridx.size:
                    return
                countdown = 0
            rpcs = pcs[ridx]
            fin = rpcs >= end
            if fin.any():
                status[ridx[fin]] = _EXITED
                keep = ~fin
                ridx = ridx[keep]
                if not ridx.size:
                    ridx = None
                    continue
                rpcs = rpcs[keep]
            if countdown <= 0:
                over = dyn[ridx] >= max_steps
                if over.any():
                    msg = f"thread exceeded {max_steps} dynamic instructions"
                    for lane in ridx[over].tolist():
                        self._park(lane, HangDetected(msg))
                    ridx = None
                    continue
                countdown = int(max_steps - dyn[ridx].max())
            countdown -= 1
            cur = int(rpcs.min())
            self._step(descs[cur], ridx[rpcs == cur])

    def _run_scalar_segment(self):
        """One run-to-barrier segment of the demoted (injected) thread.

        The heap's write/read logs are swapped to temporaries so the
        thread's entries can be painted and spliced into the segment
        records at its slot position.
        """
        ctx = self.scalar_ctx
        heap = self.heap
        lane = self.scalar_slot
        temp_w: list = []
        temp_r: list | None = [] if self.record_reads else None
        heap.write_log = temp_w
        heap.read_log = temp_r
        try:
            ctx.run_until_block()
        except VectorFallback:
            raise
        except Exception as exc:  # noqa: BLE001 - classified by the injector
            self._park(lane, exc)
        finally:
            heap.write_log = None
            heap.read_log = None
            records = self.segment_records
            for address, raw in temp_w:
                if self.paint:
                    self._paint_write_scalar(self.heap_board, lane, address, len(raw))
                records.append(("w", lane, address, raw))
            if temp_r:
                for address, size in temp_r:
                    if self.paint:
                        self._paint_read_scalar(self.heap_board, lane, address, size)
                    records.append(("r", lane, address, size))

    # ------------------------------------------------------------ flushing

    def _flush_segment(self, limit=None):
        """Replay the segment's scatter records into the logs, slot-major.

        The lockstep schedule executes instructions across lanes; classic
        logs are per-thread segments in slot order.  Bucketing by lane and
        flushing slots in order reconstructs byte-identical logs.  On an
        abort, ``limit`` is the lowest parked slot: classically no slot
        above it started this segment, so their records are dropped (their
        heap bytes are repaired from the CTA entry image).
        """
        records = self.segment_records
        self.segment_records = []
        if not records:
            return
        n = self.nlanes
        wbuckets: list[list | None] = [None] * n
        rbuckets: list[list | None] | None = (
            [None] * n if self.record_reads else None
        )
        for rec in records:
            tag = rec[0]
            if tag == "W":
                _, lidx, addrs, raw = rec
                al = addrs.tolist()
                for j, lane in enumerate(lidx.tolist()):
                    b = wbuckets[lane]
                    if b is None:
                        b = wbuckets[lane] = []
                    b.append((al[j], raw[j].tobytes()))
            elif tag == "w":
                _, lane, address, raw = rec
                b = wbuckets[lane]
                if b is None:
                    b = wbuckets[lane] = []
                b.append((address, raw))
            elif tag == "R":
                _, lidx, addrs, size = rec
                al = addrs.tolist()
                for lane, address in zip(lidx.tolist(), al):
                    b = rbuckets[lane]
                    if b is None:
                        b = rbuckets[lane] = []
                    b.append((address, size))
            else:  # "r"
                _, lane, address, size = rec
                b = rbuckets[lane]
                if b is None:
                    b = rbuckets[lane] = []
                b.append((address, size))
        wt = self.write_target
        rt = self.read_target
        tt = self.thread_targets
        flushed = self.flushed
        stop = n if limit is None else limit + 1
        for slot in range(stop):
            wb = wbuckets[slot]
            if wb:
                flushed.extend(wb)
                if wt is not None:
                    wt.extend(wb)
                if tt is not None:
                    tt[slot].extend(wb)
            if rbuckets is not None:
                rb = rbuckets[slot]
                if rb and rt is not None:
                    rt.extend(rb)

    def _abort(self):
        """Classic-exact abort: repair the heap, raise the lowest slot's exc.

        Lanes above the lowest parked slot ran vector steps that classically
        never happened; restoring the CTA-entry image and replaying every
        flushed (logged) write leaves the heap exactly as the interpreter
        would have left it at the raise point.
        """
        limit = min(self.parked)
        self._flush_segment(limit)
        lo, hi = self.entry_span
        data = self.heap._data
        if hi > lo:
            data[lo:hi] = self.entry_image
        for address, raw in self.flushed:
            data[address : address + len(raw)] = raw
        raise self.parked[limit]

    def run(self, barrier_hook, rounds_start):
        """Drive the CTA to completion; returns absolute barrier rounds."""
        lo, hi = self.heap.allocation_span()
        self.entry_span = (lo, hi)
        self.entry_image = bytes(self.heap._data[lo:hi])
        rounds = rounds_start
        sc = self.scalar_ctx
        with np.errstate(all="ignore"):
            while True:
                if self.paint:
                    self.heap_board.cur += 1
                    if self.shared_board is not None:
                        self.shared_board.cur += 1
                self._run_vector()
                if sc is not None and sc.state is ThreadState.RUNNING:
                    # Classic slot order: a fault in a lower slot means the
                    # scalar thread never started this segment.
                    if not self.parked or min(self.parked) > self.scalar_slot:
                        self._run_scalar_segment()
                if self.parked:
                    self._abort()
                self._flush_segment()
                waiting = self.status == _AT_BARRIER
                sc_wait = sc is not None and sc.state is ThreadState.AT_BARRIER
                if waiting.any() or sc_wait:
                    rounds += 1
                    self.status[waiting] = _RUNNING
                    if sc_wait:
                        sc.state = ThreadState.RUNNING
                    if barrier_hook is not None:
                        barrier_hook(rounds, self.lane_view)
                    continue
                return rounds

    # -------------------------------------------------------------- traces

    def traces_by_slot(self):
        """Per-slot traces assembled from the step-ordered chunk log.

        A stable sort by lane groups each lane's entries while preserving
        step order within the lane — exactly the order the interpreter
        appends them.
        """
        n = self.nlanes
        pc_dtype = self.vprog.pc_dtype
        chunks = self.trace_chunks
        if chunks:
            lanes = np.concatenate([c[0] for c in chunks])
            pcs = np.concatenate(
                [np.full(c[0].size, c[1], pc_dtype) for c in chunks]
            )
            widths = np.concatenate(
                [np.full(c[0].size, c[2], np.int16) for c in chunks]
            )
            order = np.argsort(lanes, kind="stable")
            lanes = lanes[order]
            pcs = pcs[order]
            widths = widths[order]
            bounds = np.cumsum(np.bincount(lanes, minlength=n))
        else:
            pcs = np.empty(0, pc_dtype)
            widths = np.empty(0, np.int16)
            bounds = np.zeros(n, np.int64)
        out = []
        start = 0
        for slot in range(n):
            stop = int(bounds[slot])
            if slot == self.scalar_slot:
                out.append(self.scalar_ctx.trace)
            else:
                out.append(CompactTrace(pcs[start:stop], widths[start:stop]))
            start = stop
        return out


# ------------------------------------------------------- checkpoint shims
#
# ``CTACheckpoint.capture``/``restore`` speak the ThreadContext protocol:
# ``t.regs.values`` (a dict), ``t.pc``, ``t.dyn_count`` and ``t.state``.
# These views present one lane of the register file through that protocol,
# so the existing checkpoint machinery (and the injector's barrier sink)
# works against the vector backend without modification.


class _SlotRegs:
    __slots__ = ("_runner", "_lane")

    def __init__(self, runner, lane):
        self._runner = runner
        self._lane = lane

    @property
    def values(self):
        runner = self._runner
        lane = self._lane
        return {
            name: runner._lane_get(col, lane)
            for name, col in runner.vprog.colmap.items()
        }

    @values.setter
    def values(self, mapping):
        runner = self._runner
        lane = self._lane
        colmap = runner.vprog.colmap
        runner.ibits[:, lane] = 0
        runner.neg[:, lane] = False
        runner.isf[:, lane] = False
        runner.fval[:, lane] = 0.0
        for name, value in mapping.items():
            col = colmap.get(name)
            if col is None:
                if value == 0:
                    continue  # zero default: absent column reads as zero
                raise VectorFallback(f"unknown register {name!r} in checkpoint")
            runner._lane_set(col, lane, value)


class _SlotView:
    __slots__ = ("_runner", "_lane", "regs")

    def __init__(self, runner, lane):
        self._runner = runner
        self._lane = lane
        self.regs = _SlotRegs(runner, lane)

    @property
    def pc(self):
        return int(self._runner.pcs[self._lane])

    @pc.setter
    def pc(self, value):
        self._runner.pcs[self._lane] = value

    @property
    def dyn_count(self):
        return int(self._runner.dyn[self._lane])

    @dyn_count.setter
    def dyn_count(self, value):
        self._runner.dyn[self._lane] = value

    @property
    def state(self):
        s = self._runner.status[self._lane]
        if s == _EXITED:
            return ThreadState.EXITED
        if s == _AT_BARRIER:
            return ThreadState.AT_BARRIER
        return ThreadState.RUNNING

    @state.setter
    def state(self, value):
        if value is ThreadState.EXITED:
            s = _EXITED
        elif value is ThreadState.AT_BARRIER:
            s = _AT_BARRIER
        else:
            s = _RUNNING
        self._runner.status[self._lane] = s


class _LaneView:
    """List-like CTA view; the demoted slot resolves to its real context."""

    __slots__ = ("_runner", "_views")

    def __init__(self, runner):
        self._runner = runner
        self._views = [_SlotView(runner, lane) for lane in range(runner.nlanes)]

    def __len__(self):
        return len(self._views)

    def __getitem__(self, slot):
        runner = self._runner
        if slot == runner.scalar_slot:
            return runner.scalar_ctx
        return self._views[slot]

    def __iter__(self):
        for slot in range(len(self._views)):
            yield self[slot]

    def capture_native(self, barrier_rounds, shared, write_count):
        """Whole-CTA snapshot as register-file plane copies (no dicts).

        ``CTACheckpoint.capture`` dispatches here for vector runners; the
        demoted scalar lane (if any) is folded in dict-form since its live
        state is a ThreadContext, with its status normalised so the arrays
        describe a plain vector CTA.
        """
        runner = self._runner
        dyn = runner.dyn.copy()
        pcs = runner.pcs.copy()
        status = runner.status.copy()
        sc = runner.scalar_slot
        scalar_regs = None
        if sc >= 0:
            ctx = runner.scalar_ctx
            dyn[sc] = ctx.dyn_count
            pcs[sc] = ctx.pc
            status[sc] = _EXITED if ctx.state is ThreadState.EXITED else _RUNNING
            scalar_regs = dict(ctx.regs.values)
        shared_data = shared.snapshot_bytes() if shared is not None else None
        nbytes = int(
            runner.ibits.nbytes + runner.neg.nbytes + runner.isf.nbytes
            + runner.fval.nbytes + pcs.nbytes + dyn.nbytes + status.nbytes
        ) + 256
        if shared_data is not None:
            nbytes += len(shared_data)
        if scalar_regs is not None:
            nbytes += 64 * len(scalar_regs)
        return VectorCTACheckpoint(
            barrier_rounds=barrier_rounds,
            write_count=write_count,
            instructions=int(dyn.sum()),
            thread_dyn=tuple(int(d) for d in dyn),
            thread_pcs=(),
            thread_exited=(),
            thread_regs=(),
            shared_data=shared_data,
            nbytes=nbytes,
            lane_ibits=runner.ibits.copy(),
            lane_neg=runner.neg.copy(),
            lane_isf=runner.isf.copy(),
            lane_fval=runner.fval.copy(),
            lane_pcs=pcs,
            lane_dyn=dyn,
            lane_status=status,
            scalar_lane=sc,
            scalar_regs=scalar_regs,
            colmap=runner.vprog.colmap,
        )


@dataclass(slots=True)
class VectorCTACheckpoint(CTACheckpoint):
    """Vector-native CTA snapshot: plane slices instead of per-lane dicts.

    Capture and restore against a vector runner are a handful of array
    copies, so checkpointed fast-forwarding costs O(planes) instead of
    O(lanes x registers) Python work per injection.  The dict-protocol
    fields of the base class stay empty; ``restore`` also accepts a plain
    ThreadContext list (classic fallback rerun) by materialising each
    lane's dict from the planes via ``colmap``.
    """

    lane_ibits: "np.ndarray"
    lane_neg: "np.ndarray"
    lane_isf: "np.ndarray"
    lane_fval: "np.ndarray"
    lane_pcs: "np.ndarray"
    lane_dyn: "np.ndarray"
    lane_status: "np.ndarray"
    scalar_lane: int
    scalar_regs: dict | None
    colmap: dict

    def _lane_dict(self, lane):
        out = {}
        for name, col in self.colmap.items():
            if self.lane_isf[col, lane]:
                out[name] = float(self.lane_fval[col, lane])
            else:
                value = int(self.lane_ibits[col, lane])
                if self.lane_neg[col, lane]:
                    value -= 1 << 64
                out[name] = value
        return out

    def restore(self, threads, shared) -> None:
        if isinstance(threads, _LaneView):
            runner = threads._runner
            runner.ibits[:] = self.lane_ibits
            runner.neg[:] = self.lane_neg
            runner.isf[:] = self.lane_isf
            runner.fval[:] = self.lane_fval
            runner.pcs[:] = self.lane_pcs
            runner.dyn[:] = self.lane_dyn
            runner.status[:] = self.lane_status
            runner.status_dirty = True
            # The may-hold-floats column flags must cover the restored
            # planes, not whatever the runner saw since prepare().
            runner.colf[:] = self.lane_isf.any(axis=1)
            s1 = self.scalar_lane
            s2 = runner.scalar_slot
            if s1 >= 0 and s1 != s2:
                # The snapshot's demoted lane has no plane state; rehydrate
                # its planes from the captured dict.
                threads._views[s1].regs.values = self.scalar_regs
            if s2 >= 0:
                ctx = runner.scalar_ctx
                if s1 == s2:
                    ctx.regs.values = dict(self.scalar_regs)
                else:
                    ctx.regs.values = threads._views[s2].regs.values
                ctx.pc = int(self.lane_pcs[s2])
                ctx.dyn_count = int(self.lane_dyn[s2])
                ctx.state = (
                    ThreadState.EXITED
                    if self.lane_status[s2] == _EXITED
                    else ThreadState.RUNNING
                )
                runner.status[s2] = _SCALAR
            if shared is not None and self.shared_data is not None:
                shared.restore_bytes(self.shared_data)
            return
        for slot, ctx in enumerate(threads):
            if slot == self.scalar_lane:
                ctx.regs.values = dict(self.scalar_regs)
            else:
                ctx.regs.values = self._lane_dict(slot)
            ctx.pc = int(self.lane_pcs[slot])
            ctx.dyn_count = int(self.lane_dyn[slot])
            ctx.state = (
                ThreadState.EXITED
                if self.lane_status[slot] == _EXITED
                else ThreadState.RUNNING
            )
        if shared is not None and self.shared_data is not None:
            shared.restore_bytes(self.shared_data)


class _RecordingShared:
    """Shared-memory proxy that paints the demoted thread's accesses."""

    __slots__ = ("_shared", "_runner", "_lane")

    def __init__(self, shared, runner, lane):
        self._shared = shared
        self._runner = runner
        self._lane = lane

    def load(self, address, dtype):
        value = self._shared.load(address, dtype)
        runner = self._runner
        if runner.paint:
            runner._paint_read_scalar(
                runner.shared_board, self._lane, address, dtype.width // 8
            )
        return value

    def store(self, address, value, dtype):
        self._shared.store(address, value, dtype)
        runner = self._runner
        if runner.paint:
            runner._paint_write_scalar(
                runner.shared_board, self._lane, address, dtype.width // 8
            )


# --------------------------------------------------------------- launcher


def launch_vectorized(
    sim,
    program,
    geometry,
    param_mem,
    heap,
    *,
    record_traces,
    record_write_logs,
    record_read_logs,
    record_thread_write_logs,
    only_cta,
    injection_thread,
    injection_spec,
    max_steps,
    checkpoint,
):
    """Run one launch on the vector backend with classic-identical results.

    Raises :class:`VectorFallback` (after rolling the heap and caller logs
    back to their launch-entry state) when lockstep execution cannot prove
    equivalence; the simulator then re-runs on the compiled path.
    """
    from .simulator import _POOL_LIMIT, LaunchResult

    telemetry = sim.telemetry
    vprog = program.vectorized(param_mem)
    tpc = geometry.threads_per_cta
    ctas = range(geometry.n_ctas) if only_cta is None else (only_cta,)
    use_pool = only_cta is not None
    param_key = param_mem.raw
    write_logs = (
        [[] for _ in range(geometry.n_ctas)] if record_write_logs else None
    )
    read_logs = (
        [[] for _ in range(geometry.n_ctas)] if record_read_logs else None
    )
    thread_write_logs = (
        [[] for _ in range(geometry.n_threads)]
        if record_thread_write_logs and record_write_logs
        else None
    )
    trace_map: dict = {}
    injection_applied = False
    t0 = time.perf_counter() if telemetry.enabled else 0.0
    instructions = 0
    barrier_rounds = 0
    total_skipped = 0
    hang = False
    memory_fault = False
    fell_back = False
    caller_write_log = heap.write_log
    caller_read_log = heap.read_log
    caller_wlen = len(caller_write_log) if caller_write_log is not None else 0
    caller_rlen = len(caller_read_log) if caller_read_log is not None else 0
    span_lo, span_hi = heap.allocation_span()
    launch_image = bytes(heap._data[span_lo:span_hi])
    heap.write_log = None
    heap.read_log = None
    try:
        for cta in ctas:
            if not program.shared_bytes:
                shared = None
            elif use_pool:
                shared = sim._pooled_shared(program, cta)
            else:
                shared = SharedMemory(program.shared_bytes)
            runner = None
            if use_pool:
                rkey = (id(program), param_key, geometry, cta)
                entry = sim._vector_pool.get(rkey)
                if entry is not None and entry[0] is program:
                    runner = entry[1]
            if runner is None:
                specials_list = [
                    sim._cached_specials(geometry, cta, slot)
                    if use_pool
                    else geometry.specials_for(cta, slot)
                    for slot in range(tpc)
                ]
                runner = _VectorCTARunner(vprog, tpc, specials_list)
                if use_pool:
                    if len(sim._vector_pool) >= _POOL_LIMIT:
                        sim._vector_pool.clear()
                    sim._vector_pool[rkey] = (program, runner)
            write_target = (
                write_logs[cta] if write_logs is not None else caller_write_log
            )
            read_target = (
                read_logs[cta] if read_logs is not None else caller_read_log
            )
            thread_targets = (
                [thread_write_logs[cta * tpc + slot] for slot in range(tpc)]
                if thread_write_logs is not None
                else None
            )
            runner.prepare(
                heap, shared, param_mem, max_steps, record_traces,
                write_target, read_target, thread_targets,
            )
            sc_ctx = None
            if (
                injection_thread is not None
                and geometry.cta_of_thread(injection_thread) == cta
            ):
                sc_slot = injection_thread % tpc
                compiled_program = program.compiled(param_mem)
                if use_pool:
                    key = (id(program), param_key, geometry, cta, sc_slot)
                    specials = sim._cached_specials(geometry, cta, sc_slot)
                    chain = sim._cached_chain(
                        program, compiled_program, key, specials
                    )
                    entry = sim._context_pool.get(key)
                    if entry is not None and entry[0] is program:
                        sc_ctx = entry[1]
                        sc_ctx.reset(
                            specials, heap, shared, param_mem,
                            max_steps=max_steps, record_trace=record_traces,
                            injection=injection_spec, compiled=chain,
                        )
                    else:
                        sc_ctx = ThreadContext(
                            program, specials, heap, shared, param_mem,
                            max_steps=max_steps, record_trace=record_traces,
                            injection=injection_spec, compiled=chain,
                        )
                        if len(sim._context_pool) >= _POOL_LIMIT:
                            sim._context_pool.clear()
                        sim._context_pool[key] = (program, sc_ctx)
                else:
                    specials = geometry.specials_for(cta, sc_slot)
                    sc_ctx = ThreadContext(
                        program, specials, heap, shared, param_mem,
                        max_steps=max_steps, record_trace=record_traces,
                        injection=injection_spec,
                        compiled=compiled_program.bind(specials),
                    )
                runner.attach_scalar(sc_slot, sc_ctx)
            barrier_hook = None
            rounds_start = 0
            skipped = 0
            if checkpoint is not None:
                resume = checkpoint.resume
                if resume is not None:
                    if not isinstance(resume, CTACheckpoint):
                        raise SimulatorError(
                            "CTA-sliced runs resume from CTACheckpoint"
                        )
                    restore_t0 = time.perf_counter()
                    resume.restore(runner.lane_view, shared)
                    sim._note_restore(time.perf_counter() - restore_t0)
                    rounds_start = resume.barrier_rounds
                    skipped = resume.instructions
                if checkpoint.sink is not None:

                    def barrier_hook(
                        rounds, cta_threads, _sink=checkpoint.sink, _shared=shared
                    ):
                        _sink(rounds, cta_threads, _shared)

                if checkpoint.step_sink is not None and sc_ctx is not None:
                    # Per-instruction observation of the demoted scalar lane
                    # (the resync monitor); vector lanes stay untouched.
                    sc_ctx.plan_checkpoints(
                        0, -1, checkpoint.step_sink,
                        start=checkpoint.step_start,
                    )
            try:
                barrier_rounds += runner.run(barrier_hook, rounds_start)
            finally:
                executed = int(runner.dyn.sum())
                if sc_ctx is not None:
                    executed += sc_ctx.dyn_count - int(runner.dyn[runner.scalar_slot])
                instructions += executed - skipped
                total_skipped += skipped
            if record_traces:
                for slot, trace in enumerate(runner.traces_by_slot()):
                    trace_map[cta * tpc + slot] = trace
            if sc_ctx is not None:
                injection_applied = sc_ctx.injection is None
    except VectorFallback:
        fell_back = True
        heap._data[span_lo:span_hi] = launch_image
        if caller_write_log is not None:
            del caller_write_log[caller_wlen:]
        if caller_read_log is not None:
            del caller_read_log[caller_rlen:]
        raise
    except HangDetected:
        hang = True
        raise
    except MemoryFault:
        memory_fault = True
        raise
    finally:
        if fell_back:
            heap.write_log = caller_write_log
            heap.read_log = caller_read_log
        else:
            heap.write_log = caller_write_log if write_logs is None else None
            heap.read_log = caller_read_log
            if telemetry.enabled:
                if only_cta is not None:
                    kind = "sliced"
                elif injection_thread is None:
                    kind = "golden"
                else:
                    kind = "full"
                telemetry.count("sim.launches")
                telemetry.count("sim.instructions", instructions)
                telemetry.count("sim.barrier_rounds", barrier_rounds)
                if hang:
                    telemetry.count("sim.hangs")
                if memory_fault:
                    telemetry.count("sim.memory_faults")
                telemetry.emit(
                    SimRunEvent(
                        time.time(),
                        kind=kind,
                        n_ctas=len(ctas),
                        instructions=instructions,
                        barrier_rounds=barrier_rounds,
                        hang=hang,
                        memory_fault=memory_fault,
                        duration_s=time.perf_counter() - t0,
                        backend=sim.backend,
                        checkpoint_interval=(
                            checkpoint.interval if checkpoint is not None else 0
                        ),
                        skipped_instructions=total_skipped,
                    )
                )
    traces = None
    if record_traces:
        if only_cta is None:
            traces = [trace_map[t] for t in range(geometry.n_threads)]
        else:
            traces = [trace_map[t] for t in sorted(trace_map)]
    return LaunchResult(
        geometry=geometry,
        traces=traces,
        cta_write_logs=write_logs,
        injection_applied=injection_applied,
        instructions=instructions,
        barrier_rounds=barrier_rounds,
        thread_write_logs=thread_write_logs,
        cta_read_logs=read_logs,
    )
