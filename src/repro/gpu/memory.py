"""Simulated memory spaces.

Three spaces exist, mirroring what the workloads need:

* **global** — byte-addressed heap shared by all CTAs.  Allocations are
  tracked so that an access outside every live allocation raises
  :class:`~repro.errors.MemoryFault`, which the injector classifies as a
  crash (the hardware analogue of an MMU/Xid fault).
* **shared** — per-CTA scratchpad of a size declared by the program.
* **param** — the read-only kernel-parameter block (PTXPlus ``s[...]``).

All values are stored little-endian.  Loads and stores move 2, 4 or 8 bytes
depending on the instruction data type; floats are bit-cast via
:mod:`struct`.
"""

from __future__ import annotations

import struct

from ..errors import MemoryFault
from .isa import DataType

#: First valid global address; keeps small corrupted pointers (e.g. 0) faulting.
GLOBAL_BASE = 0x1000

_INT_FORMATS = {16: "<H", 32: "<I", 64: "<Q"}
_FLOAT_FORMATS = {DataType.F32: "<f", DataType.F64: "<d"}


def encode_value(value: int | float, dtype: DataType) -> bytes:
    """Encode a register value into its little-endian memory image."""
    if dtype.is_float:
        return struct.pack(_FLOAT_FORMATS[dtype], value)
    width = dtype.width
    mask = (1 << width) - 1
    return struct.pack(_INT_FORMATS[width], int(value) & mask)


def decode_value(raw: bytes, dtype: DataType) -> int | float:
    """Decode a little-endian memory image into a register value."""
    if dtype.is_float:
        return struct.unpack(_FLOAT_FORMATS[dtype], raw)[0]
    value = int.from_bytes(raw, "little")
    if dtype.is_signed:
        sign_bit = 1 << (dtype.width - 1)
        if value & sign_bit:
            value -= 1 << dtype.width
    return value


class GlobalMemory:
    """The device heap with allocation tracking and write logging.

    The write log is the mechanism behind the injector's CTA-sliced fast
    path: a faulty CTA re-executes against a copy of the *initial* heap, and
    its logged writes are overlaid onto the golden final heap.  The read
    log records ``(address, size)`` of every ``ld`` so the injector can
    prove that a sliced re-execution observed no bytes another thread
    produced.
    """

    def __init__(self, size: int = 1 << 20) -> None:
        self._data = bytearray(size)
        self._allocations: list[tuple[int, int]] = []
        self._next = GLOBAL_BASE
        self.write_log: list[tuple[int, bytes]] | None = None
        self.read_log: list[tuple[int, int]] | None = None

    def __getstate__(self):
        # Zero-copy views, bounds arrays, and conflict paint boards are
        # process-local caches over ``_data``; pickling them would break
        # aliasing on unpickle (spawn-pool golden-state handoff).
        state = self.__dict__.copy()
        for key in ("_array_view", "_alloc_arrays", "_vector_paint"):
            state.pop(key, None)
        return state

    @property
    def size(self) -> int:
        return len(self._data)

    def alloc(self, nbytes: int) -> int:
        """Reserve ``nbytes`` and return the base address."""
        if nbytes <= 0:
            raise ValueError("allocation size must be positive")
        base = self._next
        end = base + nbytes
        if end > len(self._data):
            raise MemoryError("simulated heap exhausted")
        self._allocations.append((base, nbytes))
        self._next = (end + 0xFF) & ~0xFF  # 256-byte alignment between buffers
        return base

    def _check(self, address: int, size: int) -> None:
        for base, nbytes in self._allocations:
            if base <= address and address + size <= base + nbytes:
                return
        raise MemoryFault("global", address, size)

    def load(self, address: int, dtype: DataType) -> int | float:
        size = dtype.width // 8
        self._check(address, size)
        if self.read_log is not None:
            self.read_log.append((address, size))
        return decode_value(bytes(self._data[address : address + size]), dtype)

    def store(self, address: int, value: int | float, dtype: DataType) -> None:
        raw = encode_value(value, dtype)
        self._check(address, len(raw))
        self._data[address : address + len(raw)] = raw
        if self.write_log is not None:
            self.write_log.append((address, raw))

    def read_bytes(self, address: int, nbytes: int) -> bytes:
        self._check(address, nbytes)
        return bytes(self._data[address : address + nbytes])

    def write_bytes(self, address: int, raw: bytes) -> None:
        self._check(address, len(raw))
        self._data[address : address + len(raw)] = raw
        if self.write_log is not None:
            self.write_log.append((address, bytes(raw)))

    def snapshot(self) -> "GlobalMemory":
        """An independent copy sharing the allocation map (logs cleared)."""
        clone = GlobalMemory.__new__(GlobalMemory)
        clone._data = bytearray(self._data)
        clone._allocations = list(self._allocations)
        clone._next = self._next
        clone.write_log = None
        clone.read_log = None
        return clone

    def apply_writes(self, writes: list[tuple[int, bytes]]) -> None:
        """Replay a write log onto this heap (bounds re-checked)."""
        for address, raw in writes:
            self._check(address, len(raw))
            self._data[address : address + len(raw)] = raw

    def revert_writes(
        self, writes: list[tuple[int, bytes]], source: "GlobalMemory"
    ) -> None:
        """Reset every logged span back to ``source``'s bytes.

        The injector's scratch-heap reuse depends on this: instead of
        copying the full golden heap per injection, one scratch heap is
        repaired in O(bytes actually written) after every faulty run.
        """
        data = self._data
        src = source._data
        for address, raw in writes:
            end = address + len(raw)
            data[address:end] = src[address:end]

    def array_view(self):
        """A zero-copy writable ``uint8`` numpy view over the whole heap.

        The backing ``bytearray`` is allocated once and never resized
        (:meth:`alloc` only bump-allocates within it), so the view stays
        valid for the lifetime of this memory object and is cached.
        Writes through the view bypass allocation checks and logging —
        callers (the vectorized backend) are responsible for validating
        addresses and reconstructing equivalent write-log entries.
        """
        view = getattr(self, "_array_view", None)
        if view is None:
            import numpy as np

            view = np.frombuffer(self._data, dtype=np.uint8)
            self._array_view = view
        return view

    def allocation_arrays(self):
        """``(bases, ends)`` int64 arrays sorted by base, for vector bounds.

        An address range ``[a, a + size)`` is valid iff the allocation
        found by ``searchsorted(bases, a, "right") - 1`` contains it —
        equivalent to the linear scan in :meth:`_check` because
        allocations never overlap.  Cached per allocation count.
        """
        cached = getattr(self, "_alloc_arrays", None)
        if cached is not None and cached[0] == len(self._allocations):
            return cached[1], cached[2]
        import numpy as np

        pairs = sorted(self._allocations)
        bases = np.array([b for b, _ in pairs], dtype=np.int64)
        ends = np.array([b + n for b, n in pairs], dtype=np.int64)
        self._alloc_arrays = (len(self._allocations), bases, ends)
        return bases, ends

    def raw_window(self, lo: int, hi: int) -> bytes:
        """Raw heap bytes in ``[lo, hi)`` without allocation checks.

        The allocation span contains alignment gaps between buffers, so
        whole-window reads (the injector's ownership masks) cannot go
        through :meth:`read_bytes`.
        """
        return bytes(self._data[lo:hi])

    def allocation_span(self) -> tuple[int, int]:
        """``(lo, hi)`` byte bounds covering every live allocation."""
        if not self._allocations:
            return (GLOBAL_BASE, GLOBAL_BASE)
        lo = min(base for base, _ in self._allocations)
        hi = max(base + nbytes for base, nbytes in self._allocations)
        return lo, hi


class SharedMemory:
    """Per-CTA scratchpad; out-of-range accesses crash like global ones."""

    def __init__(self, nbytes: int) -> None:
        self._data = bytearray(nbytes)

    def __getstate__(self):
        state = self.__dict__.copy()
        for key in ("_array_view", "_vector_paint"):
            state.pop(key, None)
        return state

    def snapshot_bytes(self) -> bytes:
        """The full scratchpad image (CTA-checkpoint capture)."""
        return bytes(self._data)

    def restore_bytes(self, raw: bytes) -> None:
        """Overwrite the scratchpad with a captured image."""
        if len(raw) != len(self._data):
            raise MemoryFault("shared", 0, len(raw))
        self._data[:] = raw

    def clear(self) -> None:
        """Zero the scratchpad in place (context-pool reuse between launches)."""
        self._data[:] = bytes(len(self._data))

    def array_view(self):
        """A zero-copy writable ``uint8`` numpy view over the scratchpad."""
        view = getattr(self, "_array_view", None)
        if view is None:
            import numpy as np

            view = np.frombuffer(self._data, dtype=np.uint8)
            self._array_view = view
        return view

    def load(self, address: int, dtype: DataType) -> int | float:
        size = dtype.width // 8
        if address < 0 or address + size > len(self._data):
            raise MemoryFault("shared", address, size)
        return decode_value(bytes(self._data[address : address + size]), dtype)

    def store(self, address: int, value: int | float, dtype: DataType) -> None:
        raw = encode_value(value, dtype)
        if address < 0 or address + len(raw) > len(self._data):
            raise MemoryFault("shared", address, len(raw))
        self._data[address : address + len(raw)] = raw


class ParamMemory:
    """The read-only kernel-parameter block, 4-byte slots."""

    def __init__(self, raw: bytes) -> None:
        self._data = bytes(raw)

    @property
    def raw(self) -> bytes:
        """The immutable parameter image (compiled-backend cache key)."""
        return self._data

    def load(self, offset: int, dtype: DataType) -> int | float:
        size = dtype.width // 8
        if offset < 0 or offset + size > len(self._data):
            raise MemoryFault("param", offset, size)
        return decode_value(self._data[offset : offset + size], dtype)
