"""The :class:`Instruction` encoding executed by the simulator.

An instruction mirrors one PTXPlus line, e.g.::

    @$p0.eq bra l0x228            Instruction("bra", guard=Guard(p0, "eq"), target="L1")
    set.ne.s32 $p1, $r2, $r124    Instruction("set", S32, dest=p1, srcs=(r2, r124), cmp="ne")
    mad.wide.u16 $r4, ...         Instruction("mad", U32, dest=r4, srcs=(a, b, c))

Instructions are immutable; a :class:`~repro.gpu.program.Program` owns a
tuple of them plus the label table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .isa import CMP_OPS, DataType, Operand, Reg, opcode_exists

#: Guard conditions test the predicate's *zero flag* only, mirroring the
#: PTXPlus observation the paper leans on for bit-wise pruning: ``eq``
#: executes when the zero flag is set, ``ne`` when it is clear.
GUARD_CONDS = ("eq", "ne")


@dataclass(frozen=True, slots=True)
class Guard:
    """A predication guard ``@$p0.eq`` / ``@$p0.ne``."""

    reg: Reg
    cond: str

    def __post_init__(self) -> None:
        if self.cond not in GUARD_CONDS:
            raise ValueError(f"bad guard condition {self.cond!r}")
        if not self.reg.is_pred:
            raise ValueError(f"guard register {self.reg} is not a predicate")

    def __str__(self) -> str:
        return f"@{self.reg}.{self.cond}"


@dataclass(frozen=True, slots=True)
class Instruction:
    """One static instruction.

    Attributes:
        op: opcode key into :data:`repro.gpu.isa.OPCODES`.
        dtype: operation type; determines the destination width used for
            fault-site enumeration (``None`` for control instructions).
        dest: destination register, or ``None``.
        srcs: source operands (registers, immediates, specials, mem refs).
        guard: optional predication guard.
        target: branch-target label for ``bra``.
        cmp: comparison operator for ``set``/``setp``.
        label: optional label naming this instruction's location.
    """

    op: str
    dtype: DataType | None = None
    dest: Reg | None = None
    srcs: tuple[Operand, ...] = field(default=())
    guard: Guard | None = None
    target: str | None = None
    cmp: str | None = None
    label: str | None = None

    def __post_init__(self) -> None:
        if not opcode_exists(self.op):
            raise ValueError(f"unknown opcode {self.op!r}")
        if self.cmp is not None and self.cmp not in CMP_OPS:
            raise ValueError(f"unknown comparison {self.cmp!r}")

    @property
    def dest_width(self) -> int:
        """Bits in the destination register (the paper's ``bit(t, i)``).

        Instructions without a destination contribute zero fault sites.
        A predicate destination is the 4-bit condition code regardless of
        the operation type.
        """
        if self.dest is None:
            return 0
        if self.dest.is_pred:
            return DataType.PRED.width
        if self.dtype is None:
            return 0
        return self.dtype.width

    def static_key(self) -> tuple:
        """A structural identity key ignoring the label.

        Two instructions with equal keys perform the same operation on the
        same operands; instruction-wise pruning matches *sequences* of these
        keys across threads.
        """
        return (self.op, self.dtype, self.dest, self.srcs, self.guard, self.cmp, self.target)

    def __str__(self) -> str:
        parts = []
        if self.label:
            parts.append(f"{self.label}:")
        if self.guard:
            parts.append(str(self.guard))
        mnemonic = self.op
        if self.cmp:
            mnemonic += f".{self.cmp}"
        if self.dtype is not None:
            mnemonic += str(self.dtype)
        parts.append(mnemonic)
        operands = []
        if self.dest is not None:
            operands.append(str(self.dest))
        operands.extend(str(s) for s in self.srcs)
        if self.target is not None:
            operands.append(self.target)
        if operands:
            parts.append(", ".join(operands))
        return " ".join(parts)
