"""CTA-granularity scheduling.

Threads within a CTA are interleaved at barrier granularity: each thread
runs until it reaches a ``bar.sync``, exits, or hangs; once every live
thread has blocked, the barrier releases.  For data-race-free kernels (all
the workloads here synchronise shared-memory phases with barriers) this
run-to-barrier schedule is observationally equivalent to any hardware
interleaving.

A thread that exits without reaching a barrier other threads are waiting at
does not deadlock the CTA — the barrier releases over the remaining live
threads, mirroring how hardware barrier counts drop when warps retire.
Fault-induced infinite loops are caught by the per-thread hang budget
instead.
"""

from __future__ import annotations

from .thread import ThreadContext, ThreadState


def run_cta(
    threads: list[ThreadContext],
    thread_write_logs: list[list[tuple[int, bytes]]] | None = None,
    barrier_hook=None,
    barrier_rounds_start: int = 0,
) -> int:
    """Drive every thread of one CTA to completion.

    Returns the number of barrier-release rounds (a telemetry counter for
    how often the CTA synchronised).  Raises whatever the threads raise
    (``MemoryFault``, ``HangDetected``); callers decide whether that is a
    crash under injection or a kernel bug.

    When ``thread_write_logs`` (one list per thread) is given, global
    writes are additionally attributed to the thread that issued them by
    swapping the heap's write log around each run-to-barrier segment; the
    CTA-level log keeps its schedule order.

    ``barrier_hook(barrier_rounds, threads)`` fires right after each
    barrier release — the only points where thread states are mutually
    consistent and the schedule is resumable, which is what CTA-level
    checkpointing captures.  ``barrier_rounds_start`` seeds the round
    counter when the CTA resumes from such a checkpoint, so round indices
    (and therefore checkpoint keys) match an un-resumed run.
    """
    barrier_rounds = barrier_rounds_start
    heap = threads[0].global_mem if threads else None
    while True:
        progressed = False
        for slot, thread in enumerate(threads):
            if thread.state is ThreadState.RUNNING:
                if thread_write_logs is None or heap.write_log is None:
                    thread.run_until_block()
                else:
                    cta_log = heap.write_log
                    segment: list[tuple[int, bytes]] = []
                    heap.write_log = segment
                    try:
                        thread.run_until_block()
                    finally:
                        heap.write_log = cta_log
                        cta_log.extend(segment)
                        thread_write_logs[slot].extend(segment)
                progressed = True
        waiting = [t for t in threads if t.state is ThreadState.AT_BARRIER]
        if waiting:
            barrier_rounds += 1
            for thread in waiting:
                thread.state = ThreadState.RUNNING
            if barrier_hook is not None:
                barrier_hook(barrier_rounds, threads)
            continue
        if all(t.state is ThreadState.EXITED for t in threads):
            return barrier_rounds
        if not progressed:  # pragma: no cover - defensive; unreachable by design
            raise AssertionError("CTA scheduler made no progress")
