"""Opcode semantics for the functional interpreter.

Each executor takes the operation :class:`~repro.gpu.isa.DataType` and the
already-evaluated source values, and returns the destination value.  Integer
results wrap to the operation width (two's complement); ``f32`` results are
rounded through IEEE-754 single precision so the simulated math matches what
a real GPU (and the NumPy references) produce.

Deliberate hardware-flavoured choices, relevant under fault injection:

* integer division / remainder by zero produce the CUDA ``0xFFFF...`` /
  dividend results instead of trapping — GPUs do not raise on this;
* shift amounts at or beyond the operation width shift out to zero (or the
  sign fill for arithmetic right shifts), so a corrupted shift count cannot
  materialise a million-bit Python integer;
* float overflow saturates to ±inf, and NaNs propagate.
"""

from __future__ import annotations

import math
from typing import Callable

from .isa import DataType, PRED_CARRY, PRED_OVERFLOW, PRED_SIGN, PRED_ZERO
from .registers import canonical_int, clamp_f32

Number = int | float


def to_int(value: Number) -> int:
    """Coerce a register value to the integer domain (truncating floats)."""
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            return 0
        return int(value)
    return value


def to_float(value: Number) -> float:
    return float(value)


def _wrap(value: int, dtype: DataType) -> int:
    return canonical_int(value, dtype)


def _round(value: float, dtype: DataType) -> float:
    if dtype is DataType.F32:
        return clamp_f32(value)
    return value


def _binary_int(fn: Callable[[int, int], int]):
    def run(dtype: DataType, a: Number, b: Number) -> int:
        return _wrap(fn(to_int(a), to_int(b)), dtype)

    return run


def _arith(int_fn: Callable[[int, int], int], float_fn: Callable[[float, float], float]):
    def run(dtype: DataType, a: Number, b: Number) -> Number:
        if dtype.is_float:
            return _round(float_fn(to_float(a), to_float(b)), dtype)
        return _wrap(int_fn(to_int(a), to_int(b)), dtype)

    return run


def _exec_add(dtype, a, b):
    if dtype.is_float:
        return _round(to_float(a) + to_float(b), dtype)
    return _wrap(to_int(a) + to_int(b), dtype)


def _exec_sub(dtype, a, b):
    if dtype.is_float:
        return _round(to_float(a) - to_float(b), dtype)
    return _wrap(to_int(a) - to_int(b), dtype)


def _exec_mul(dtype, a, b):
    if dtype.is_float:
        return _round(to_float(a) * to_float(b), dtype)
    return _wrap(to_int(a) * to_int(b), dtype)


def _exec_mul_wide(dtype, a, b):
    # PTXPlus mul.wide.u16: 16-bit halves multiplied into a 32-bit result.
    return _wrap((to_int(a) & 0xFFFF) * (to_int(b) & 0xFFFF), dtype)


def _exec_mad(dtype, a, b, c):
    if dtype.is_float:
        # Non-fused multiply-add: the product is rounded before the addition,
        # so NumPy float32 references can mirror the arithmetic bit-exactly.
        product = _round(to_float(a) * to_float(b), dtype)
        return _round(product + to_float(c), dtype)
    return _wrap(to_int(a) * to_int(b) + to_int(c), dtype)


def _exec_div(dtype, a, b):
    if dtype.is_float:
        fa, fb = to_float(a), to_float(b)
        if fb == 0.0:
            if fa == 0.0 or math.isnan(fa):
                return math.nan
            return math.copysign(math.inf, fa) * math.copysign(1.0, fb)
        return _round(fa / fb, dtype)
    ia, ib = to_int(a), to_int(b)
    if ib == 0:
        # CUDA integer division by zero yields an undefined (all-ones) value.
        return _wrap(-1, dtype)
    quotient = abs(ia) // abs(ib)
    if (ia < 0) != (ib < 0):
        quotient = -quotient
    return _wrap(quotient, dtype)


def _exec_rem(dtype, a, b):
    if dtype.is_float:
        fa, fb = to_float(a), to_float(b)
        # IEEE-754: fmod is NaN for a zero divisor, an infinite dividend,
        # or any NaN operand (Python's math.fmod raises instead).
        if fb == 0.0 or math.isinf(fa) or math.isnan(fa) or math.isnan(fb):
            return math.nan
        return _round(math.fmod(fa, fb), dtype)
    ia, ib = to_int(a), to_int(b)
    if ib == 0:
        return _wrap(ia, dtype)
    remainder = abs(ia) % abs(ib)
    return _wrap(-remainder if ia < 0 else remainder, dtype)


def _exec_min(dtype, a, b):
    if dtype.is_float:
        fa, fb = to_float(a), to_float(b)
        if math.isnan(fa):
            return fb
        if math.isnan(fb):
            return fa
        return min(fa, fb)
    return _wrap(min(to_int(a), to_int(b)), dtype)


def _exec_max(dtype, a, b):
    if dtype.is_float:
        fa, fb = to_float(a), to_float(b)
        if math.isnan(fa):
            return fb
        if math.isnan(fb):
            return fa
        return max(fa, fb)
    return _wrap(max(to_int(a), to_int(b)), dtype)


def _exec_neg(dtype, a):
    if dtype.is_float:
        return -to_float(a)
    return _wrap(-to_int(a), dtype)


def _exec_abs(dtype, a):
    if dtype.is_float:
        return abs(to_float(a))
    return _wrap(abs(to_int(a)), dtype)


def _exec_rcp(dtype, a):
    fa = to_float(a)
    if fa == 0.0:
        return math.copysign(math.inf, fa)
    if math.isnan(fa):
        return math.nan
    return _round(1.0 / fa, dtype)


def _exec_sqrt(dtype, a):
    fa = to_float(a)
    if fa < 0.0:
        return math.nan
    return _round(math.sqrt(fa), dtype)


def _exec_ex2(dtype, a):
    try:
        return _round(2.0 ** to_float(a), dtype)
    except OverflowError:
        return math.inf


def _exec_lg2(dtype, a):
    fa = to_float(a)
    if fa < 0.0 or math.isnan(fa):
        return math.nan
    if fa == 0.0:
        return -math.inf
    return _round(math.log2(fa), dtype)


def _shift_amount(b: Number) -> int:
    return to_int(b) & 0xFF


def _exec_shl(dtype, a, b):
    amount = _shift_amount(b)
    if amount >= dtype.width:
        return 0
    return _wrap(to_int(a) << amount, dtype)


def _exec_shr(dtype, a, b):
    amount = _shift_amount(b)
    value = to_int(a)
    if dtype.is_signed:
        if amount >= dtype.width:
            return -1 if value < 0 else 0
        return _wrap(value >> amount, dtype)
    unsigned = value & ((1 << dtype.width) - 1)
    if amount >= dtype.width:
        return 0
    return _wrap(unsigned >> amount, dtype)


def _exec_cvt(dtype, a):
    if dtype.is_float:
        return _round(to_float(a), dtype)
    return _wrap(to_int(a), dtype)


_COMPARATORS = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}


def compare(cmp: str, dtype: DataType, a: Number, b: Number) -> bool:
    """Evaluate a comparison in the operation's domain (NaN compares false)."""
    if dtype.is_float:
        fa, fb = to_float(a), to_float(b)
        if math.isnan(fa) or math.isnan(fb):
            return cmp == "ne"
        return _COMPARATORS[cmp](fa, fb)
    return _COMPARATORS[cmp](to_int(a), to_int(b))


def condition_code(cmp: str, dtype: DataType, a: Number, b: Number) -> int:
    """Pack the PTXPlus 4-bit condition code for ``set`` with a predicate dest.

    Bit 0 (zero flag) carries the comparison outcome — the only flag branch
    guards consult.  Sign/carry/overflow are derived from ``a - b`` so that
    flipping them is architecturally possible yet (as the paper observes)
    inconsequential for these workloads.
    """
    code = 0
    if compare(cmp, dtype, a, b):
        code |= 1 << PRED_ZERO
    if dtype.is_float:
        fa, fb = to_float(a), to_float(b)
        if not (math.isnan(fa) or math.isnan(fb)) and fa < fb:
            code |= 1 << PRED_SIGN
        return code
    ia, ib = to_int(a), to_int(b)
    diff = ia - ib
    if diff < 0:
        code |= 1 << PRED_SIGN
    width = dtype.width
    ua = ia & ((1 << width) - 1)
    ub = ib & ((1 << width) - 1)
    if ua < ub:
        code |= 1 << PRED_CARRY
    wrapped = canonical_int(diff, dtype)
    if wrapped != diff and not dtype.is_signed:
        pass  # unsigned wrap is the carry flag, already set above
    elif dtype.is_signed and wrapped != diff:
        code |= 1 << PRED_OVERFLOW
    return code


def _exec_set_general(dtype, cmp, a, b):
    # PTX `set` into a general register produces all-ones on true.
    return _wrap(-1, dtype) if compare(cmp, dtype, a, b) else 0


def _exec_slct(dtype, a, b, c):
    selector = to_float(c) if isinstance(c, float) else to_int(c)
    chosen = a if selector >= 0 else b
    return _round(to_float(chosen), dtype) if dtype.is_float else _wrap(to_int(chosen), dtype)


#: opcode -> executor taking (dtype, *source values).
EXECUTORS: dict[str, Callable[..., Number]] = {
    "mov": _exec_cvt,
    "cvt": _exec_cvt,
    "add": _exec_add,
    "sub": _exec_sub,
    "mul": _exec_mul,
    "mul.wide": _exec_mul_wide,
    "mad": _exec_mad,
    "fma": _exec_mad,
    "div": _exec_div,
    "rem": _exec_rem,
    "min": _exec_min,
    "max": _exec_max,
    "neg": _exec_neg,
    "abs": _exec_abs,
    "rcp": _exec_rcp,
    "sqrt": _exec_sqrt,
    "ex2": _exec_ex2,
    "lg2": _exec_lg2,
    "and": _binary_int(lambda a, b: a & b),
    "or": _binary_int(lambda a, b: a | b),
    "xor": _binary_int(lambda a, b: a ^ b),
    "not": lambda dtype, a: _wrap(~to_int(a), dtype),
    "shl": _exec_shl,
    "shr": _exec_shr,
    "slct": _exec_slct,
}
