"""Per-thread register state and the fault model's bit-flip primitive.

Registers are dynamically created on first write (PTXPlus programs declare
register usage implicitly).  Integer registers hold Python ints already
masked to the operation width at write time; float registers hold Python
floats; predicate registers hold a 4-bit condition code packed into an int
(bit 0 = zero flag, 1 = sign, 2 = carry, 3 = overflow).

:func:`flip_bit` implements the paper's single-bit-flip fault model on a
destination register *after* the instruction writes it.
"""

from __future__ import annotations

import math
import struct

from ..errors import FaultInjectionError
from .isa import DataType


class RegisterFile:
    """The general + predicate register state of one thread."""

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: dict[str, int | float] = {}

    def read(self, name: str) -> int | float:
        # Unwritten registers read as zero, like a freshly allocated
        # hardware register file in the functional simulator.
        return self.values.get(name, 0)

    def write(self, name: str, value: int | float) -> None:
        self.values[name] = value

    def copy(self) -> "RegisterFile":
        clone = RegisterFile()
        clone.values = dict(self.values)
        return clone


def _float_bits(value: float, dtype: DataType) -> int:
    if dtype is DataType.F32:
        return struct.unpack("<I", struct.pack("<f", value))[0]
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def _bits_float(bits: int, dtype: DataType) -> float:
    if dtype is DataType.F32:
        return struct.unpack("<f", struct.pack("<I", bits))[0]
    return struct.unpack("<d", struct.pack("<Q", bits))[0]


def clamp_f32(value: float) -> float:
    """Round a Python float through IEEE-754 single precision."""
    if math.isnan(value) or math.isinf(value):
        return value
    try:
        return struct.unpack("<f", struct.pack("<f", value))[0]
    except (OverflowError, ValueError):
        return math.inf if value > 0 else -math.inf


def flip_bit(value: int | float, dtype: DataType, bit: int) -> int | float:
    """Return ``value`` with bit ``bit`` of its storage image inverted.

    For float types the flip happens in the IEEE-754 bit pattern, so flips
    can produce NaN/Inf exactly as a hardware upset would.  For the 4-bit
    predicate condition code, ``bit`` selects one of the four flags.
    """
    width = dtype.width
    if not 0 <= bit < width:
        raise FaultInjectionError(f"bit {bit} out of range for {dtype}")
    if dtype.is_float:
        bits = _float_bits(float(value), dtype) ^ (1 << bit)
        return _bits_float(bits, dtype)
    mask = (1 << width) - 1
    flipped = (int(value) & mask) ^ (1 << bit)
    if dtype.is_signed and flipped & (1 << (width - 1)):
        return flipped - (1 << width)
    return flipped


def canonical_int(value: int, dtype: DataType) -> int:
    """Wrap an arbitrary Python int to the representable range of ``dtype``."""
    mask = (1 << dtype.width) - 1
    value &= mask
    if dtype.is_signed and value & (1 << (dtype.width - 1)):
        value -= 1 << dtype.width
    return value
