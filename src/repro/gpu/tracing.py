"""Dynamic-instruction traces.

A thread trace is the ordered list of instructions the thread *issued*
(including predicated-off ones, which occupy an issue slot but write no
destination).  Each entry is the compact tuple ``(pc, dest_width)``:

* ``pc`` — static instruction index, enough to recover the opcode, operand
  structure and loop membership from the program;
* ``dest_width`` — bits written by this dynamic instruction (0 for stores,
  branches, barriers and predicated-off slots).

Everything the pruning stages need derives from these traces:

* the paper's iCnt (dynamic instruction count) is ``len(trace)``;
* the exhaustive fault-site count (Eq. 1) is ``sum(width for _, width in trace)``;
* loop detection walks the pc sequence looking for back-edges.
"""

from __future__ import annotations

from dataclasses import dataclass

from .program import Program

TraceEntry = tuple[int, int]
ThreadTrace = list[TraceEntry]


@dataclass(frozen=True)
class TraceSummary:
    """Per-thread aggregates used by thread-wise pruning."""

    icnt: int
    fault_sites: int


def summarize(trace: ThreadTrace) -> TraceSummary:
    return TraceSummary(
        icnt=len(trace),
        fault_sites=sum(width for _, width in trace),
    )


def static_key_sequence(program: Program, trace: ThreadTrace) -> list[tuple]:
    """The thread's dynamic instruction stream as structural identity keys.

    Instruction-wise pruning matches these sequences across representative
    threads to find common code blocks (paper Fig. 5 / Table V).
    """
    instructions = program.instructions
    return [instructions[pc].static_key() for pc, _ in trace]
