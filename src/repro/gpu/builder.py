"""Assembler DSL for authoring kernels in the PTXPlus-flavoured ISA.

The builder keeps kernel sources close to the PTXPlus listings in the paper
(Fig. 5) while removing the bookkeeping: register allocation, parameter
slot layout, label placement and run-time loop scaffolding.

Example::

    k = KernelBuilder("saxpy")
    x_ptr, y_ptr, n, a = k.params("x", "y", "n", "a_f32")
    i, addr, xv, yv = k.regs("i", "addr", "xv", "yv")
    k.cvt("u32", i, k.tid.x)
    with k.if_lt("u32", i, n):
        k.shl("u32", addr, i, 2)
        k.add("u32", addr, addr, x_ptr)
        ...
    program = k.build()

Run-time loops (``with k.loop(...)``) emit the canonical compare +
guarded-branch pattern, so traces contain real back-edges for the loop-wise
pruning stage to find.  Compile-time unrolling is just a Python ``for``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from types import SimpleNamespace

from ..errors import KernelAuthoringError
from .instruction import Guard, Instruction
from .isa import DataType, Imm, MemRef, Operand, Param, Reg, Special
from .program import Program

_DTYPE_BY_NAME = {dt.value: dt for dt in DataType}


def _dtype(name: str | DataType) -> DataType:
    if isinstance(name, DataType):
        return name
    try:
        return _DTYPE_BY_NAME[name]
    except KeyError:
        raise KernelAuthoringError(f"unknown data type {name!r}") from None


def _operand(value) -> Operand:
    """Accept raw Python numbers as immediates."""
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return Imm(value)
    if isinstance(value, (Reg, Imm, Special, MemRef, Param)):
        return value
    raise KernelAuthoringError(f"cannot use {value!r} as an operand")


@dataclass(frozen=True)
class _SpecialAxes:
    name: str

    @property
    def x(self) -> Special:
        return Special(self.name, "x")

    @property
    def y(self) -> Special:
        return Special(self.name, "y")

    @property
    def z(self) -> Special:
        return Special(self.name, "z")


class KernelBuilder:
    """Incrementally assembles a :class:`~repro.gpu.program.Program`."""

    tid = _SpecialAxes("tid")
    ntid = _SpecialAxes("ntid")
    ctaid = _SpecialAxes("ctaid")
    nctaid = _SpecialAxes("nctaid")

    def __init__(self, name: str) -> None:
        self.name = name
        self._instructions: list[Instruction] = []
        self._labels: dict[str, int] = {}
        self._pending_label: str | None = None
        self._param_slots: list[tuple[str, DataType]] = []
        self._shared_bytes = 0
        self._reg_names: set[str] = set()
        self._pred_names: set[str] = set()
        self._label_counter = 0

    # -------------------------------------------------------- declarations

    def reg(self, name: str) -> Reg:
        """Declare a general-purpose register ``$<name>``."""
        if name in self._pred_names:
            raise KernelAuthoringError(f"{name!r} is already a predicate register")
        self._reg_names.add(name)
        return Reg(name)

    def regs(self, *names: str) -> SimpleNamespace:
        """Declare several registers at once: ``r = k.regs('i', 'j')``."""
        return SimpleNamespace(**{n: self.reg(n) for n in names})

    def pred(self, name: str = "p0") -> Reg:
        """Declare a predicate (4-bit condition-code) register.

        Predicates share the register-file namespace with general registers,
        so a name may not be used for both.
        """
        if name in self._reg_names:
            raise KernelAuthoringError(f"{name!r} is already a general register")
        self._pred_names.add(name)
        return Reg(name, kind="p")

    def param(self, name: str, dtype: str | DataType = "u32") -> Param:
        """Declare the next 4-byte kernel-parameter slot."""
        dt = _dtype(dtype)
        if dt.width != 32:
            raise KernelAuthoringError("parameter slots are 4 bytes wide")
        offset = 4 * len(self._param_slots)
        self._param_slots.append((name, dt))
        return Param(offset)

    def params(self, *names: str) -> tuple[Param, ...]:
        """Declare several params; a ``_f32``/``_s32`` suffix picks the type."""
        out = []
        for name in names:
            if name.endswith("_f32"):
                out.append(self.param(name, "f32"))
            elif name.endswith("_s32"):
                out.append(self.param(name, "s32"))
            else:
                out.append(self.param(name, "u32"))
        return tuple(out)

    def shared_alloc(self, nbytes: int) -> int:
        """Reserve CTA shared memory; returns the base byte offset."""
        base = self._shared_bytes
        self._shared_bytes += nbytes
        return base

    @property
    def param_layout(self) -> tuple[tuple[str, DataType], ...]:
        return tuple(self._param_slots)

    # --------------------------------------------------------------- labels

    def label(self, name: str | None = None) -> str:
        """Attach a label to the *next* emitted instruction."""
        if name is None:
            name = f"L{self._label_counter}"
            self._label_counter += 1
        if name in self._labels or name == self._pending_label:
            raise KernelAuthoringError(f"duplicate label {name!r}")
        if self._pending_label is not None:
            raise KernelAuthoringError("two labels on the same instruction")
        self._pending_label = name
        return name

    def fresh_label(self) -> str:
        name = f"L{self._label_counter}"
        self._label_counter += 1
        return name

    # ----------------------------------------------------------------- emit

    def emit(
        self,
        op: str,
        dtype: str | DataType | None = None,
        dest: Reg | None = None,
        srcs: tuple = (),
        *,
        guard: tuple[Reg, str] | None = None,
        target: str | None = None,
        cmp: str | None = None,
    ) -> None:
        label, self._pending_label = self._pending_label, None
        if label is not None:
            self._labels[label] = len(self._instructions)
        self._instructions.append(
            Instruction(
                op=op,
                dtype=_dtype(dtype) if dtype is not None else None,
                dest=dest,
                srcs=tuple(_operand(s) for s in srcs),
                guard=Guard(*guard) if guard is not None else None,
                target=target,
                cmp=cmp,
                label=label,
            )
        )

    def _alu(self, op: str):
        def emit_alu(dtype, dest, *srcs, guard=None):
            self.emit(op, dtype, dest, tuple(srcs), guard=guard)

        return emit_alu

    def __getattr__(self, item: str):
        # ALU opcodes become emit methods: k.add("u32", d, a, b)
        from .isa import OPCODES, opcode_has_dest

        if item in OPCODES and opcode_has_dest(item) and item not in (
            "ld",
            "set",
            "setp",
        ):
            return self._alu(item)
        raise AttributeError(item)

    # Named emitters for the irregular shapes --------------------------------

    def mad_op(self, dtype, dest, a, b, c, guard=None):
        self.emit("mad", dtype, dest, (a, b, c), guard=guard)

    # Aliases for opcodes that collide with Python keywords.
    def or_(self, dtype, dest, a, b, guard=None):
        self.emit("or", dtype, dest, (a, b), guard=guard)

    def and_(self, dtype, dest, a, b, guard=None):
        self.emit("and", dtype, dest, (a, b), guard=guard)

    def not_(self, dtype, dest, a, guard=None):
        self.emit("not", dtype, dest, (a,), guard=guard)

    def ld(self, dtype, dest, src, guard=None):
        self.emit("ld", dtype, dest, (src,), guard=guard)

    def st(self, dtype, ref, value, guard=None):
        self.emit("st", dtype, None, (ref, value), guard=guard)

    def set(self, cmp: str, dtype, dest, a, b, guard=None):
        self.emit("set", dtype, dest, (a, b), cmp=cmp, guard=guard)

    def bra(self, target: str, guard: tuple[Reg, str] | None = None) -> None:
        self.emit("bra", target=target, guard=guard)

    def bar(self) -> None:
        self.emit("bar.sync")

    def nop(self) -> None:
        self.emit("nop")

    def retp(self, guard=None) -> None:
        self.emit("retp", guard=guard)

    def exit(self, guard=None) -> None:
        self.emit("exit", guard=guard)

    def global_ref(self, base: Reg | None, offset: int = 0) -> MemRef:
        return MemRef("global", base, offset)

    def shared_ref(self, base: Reg | None, offset: int = 0) -> MemRef:
        return MemRef("shared", base, offset)

    # -------------------------------------------------------- control sugar

    @contextmanager
    def loop(self, dtype, counter: Reg, start, bound, pred_name: str = "ploop"):
        """A run-time counted loop ``for counter in [start, bound)``.

        Emits the canonical pattern: init, top label, ``set.ge`` + guarded
        exit branch, body, increment, back-edge.  The back-edge is what the
        loop-wise pruning stage detects in traces.
        """
        pred = self.pred(pred_name)
        top = self.fresh_label()
        end = self.fresh_label()
        self.mov(dtype, counter, start)
        self.label(top)
        self.set("ge", dtype, pred, counter, bound)
        self.bra(end, guard=(pred, "eq"))
        yield
        self.add(dtype, counter, counter, 1)
        self.bra(top)
        self.label(end)
        self.nop()

    @contextmanager
    def if_block(self, cmp: str, dtype, a, b, pred_name: str = "pif"):
        """Execute the body only when ``a <cmp> b`` holds (skip-branch)."""
        pred = self.pred(pred_name)
        skip = self.fresh_label()
        # Guarded skip: branch over the body when the condition FAILS.
        self.set(cmp, dtype, pred, a, b)
        self.bra(skip, guard=(pred, "ne"))
        yield
        self.label(skip)
        self.nop()

    def if_lt(self, dtype, a, b, pred_name: str = "pif"):
        return self.if_block("lt", dtype, a, b, pred_name=pred_name)

    # ---------------------------------------------------------------- build

    def build(self) -> Program:
        if self._pending_label is not None:
            # A trailing label needs an instruction to land on.
            self.nop()
        return Program(
            name=self.name,
            instructions=tuple(self._instructions),
            labels=dict(self._labels),
            shared_bytes=self._shared_bytes,
            param_bytes=4 * len(self._param_slots),
        )
