"""Functional GPU simulator substrate (PTXPlus-flavoured ISA).

This package stands in for GPGPU-Sim's PTXPlus mode: it executes kernels at
the level the paper injects faults at, producing per-thread dynamic traces,
per-CTA write logs, and deterministic outputs.
"""

from .builder import KernelBuilder
from .checkpoint import (
    DEFAULT_BUDGET_MB,
    MIN_AUTO_DEPTH,
    CheckpointPlan,
    CheckpointStore,
    CTACheckpoint,
    ThreadCheckpoint,
    derive_checkpoint_interval,
)
from .compiler import BoundChain, CompiledProgram, compile_program
from .instruction import Guard, Instruction
from .isa import DataType, Imm, MemRef, Param, Reg, Special
from .memory import GLOBAL_BASE, GlobalMemory, ParamMemory, SharedMemory
from .packing import pack_params
from .program import Program
from .registers import RegisterFile, flip_bit
from .simulator import (
    BACKENDS,
    DEFAULT_MAX_STEPS,
    GPUSimulator,
    LaunchGeometry,
    LaunchResult,
)
from .tracing import ThreadTrace, TraceSummary, static_key_sequence, summarize
from .vector import CompactTrace, VectorFallback, VectorProgram

__all__ = [
    "BACKENDS",
    "BoundChain",
    "CTACheckpoint",
    "CheckpointPlan",
    "CheckpointStore",
    "CompactTrace",
    "CompiledProgram",
    "DEFAULT_BUDGET_MB",
    "DEFAULT_MAX_STEPS",
    "MIN_AUTO_DEPTH",
    "compile_program",
    "derive_checkpoint_interval",
    "DataType",
    "GLOBAL_BASE",
    "GPUSimulator",
    "GlobalMemory",
    "Guard",
    "Imm",
    "Instruction",
    "KernelBuilder",
    "LaunchGeometry",
    "LaunchResult",
    "MemRef",
    "Param",
    "ParamMemory",
    "Program",
    "Reg",
    "RegisterFile",
    "SharedMemory",
    "Special",
    "ThreadCheckpoint",
    "ThreadTrace",
    "TraceSummary",
    "VectorFallback",
    "VectorProgram",
    "flip_bit",
    "pack_params",
    "static_key_sequence",
    "summarize",
]
