"""Program specialisation into closure chains (the compiled backend).

The interpreter in :mod:`repro.gpu.thread` pays a fixed CPython toll per
dynamic instruction: a 10-field decode-tuple unpack, ``type()`` dispatch
over every operand, guard re-tests and a fresh operand list — about one
microsecond per instruction, the measured floor of injection campaigns
once slicing, checkpointing and process pools have removed everything
else.  This module removes the toll by compiling each *static*
instruction once into a pre-bound closure: operand readers are resolved
to direct ``regs`` lookups or folded constants, parameter loads are
pre-fetched, guard checks are emitted only for guarded instructions, and
the executor, destination slot, trace width and branch target are baked
into the closure's default arguments.  The hot loop becomes an indexed
closure call.

Two stages:

* :func:`compile_program` — per (program, parameter block): classify
  every operand, fold parameter loads and immediates, and emit closures
  for every instruction that does not read a special register.
  Instructions that *do* read specials (``tid``/``ctaid``/…) become
  factories, finished per thread at bind time.
* :meth:`CompiledProgram.bind` — per (cta, slot): resolve the
  special-reading instructions against that thread's specials dict and
  return a :class:`BoundChain` whose ``plain``/``traced`` tuples the
  thread driver indexes by program counter.

Closure protocol (the contract with ``ThreadContext._run_compiled``):

* ``plain[pc](regs, ctx) -> r`` and ``traced[pc](regs, ctx, trace) -> r``;
* ``r >= 0`` — the next program counter;
* ``r < 0``  — the thread blocked: the closure has already set
  ``ctx.state`` (barrier or exit) and ``-1 - r`` is the resume pc.

Traced closures append ``(pc, width)`` — or ``(pc, 0)`` when a guard
skips — *before* executing, exactly like the interpreter, so traces stay
byte-identical even for runs that crash mid-instruction.

Constant folding never skips the destination write: a folded
instruction's result is precomputed, but the store still happens every
execution, because a fault model may have corrupted the register the
instruction is about to overwrite.

The arming layer in :mod:`repro.gpu.thread` keeps injection exact: the
single dynamic instruction carrying a flip runs through the
interpreter's slow-path semantics; every other instruction runs
compiled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import ExecutionFault
from .alu import _exec_set_general, condition_code, to_int
from .isa import DataType, Imm, MemRef, Param, Reg, Special
from .registers import clamp_f32
from .thread import ThreadState

#: Opcode groups mirrored from the interpreter.
_CONTROL = frozenset(("nop", "ssy"))
_EXITS = frozenset(("exit", "retp"))


# --------------------------------------------------------------- operands
#
# Classified operands: ("r", register name), ("c", folded constant),
# ("s", specials key — resolved per thread at bind time), or
# ("f", reader) for the rare operand that must be evaluated at run time
# (e.g. a parameter load whose fault should surface at execution, not at
# compile time, matching the interpreter).


def _classify(operand, dtype, param_mem):
    kind = type(operand)
    if kind is Reg:
        return ("r", operand.name)
    if kind is Imm:
        return ("c", operand.value)
    if kind is Special:
        return ("s", (operand.name, operand.axis))
    if kind is Param:
        try:
            return ("c", param_mem.load(operand.offset, dtype))
        except Exception:
            offset = operand.offset

            def read(regs, ctx, _o=offset, _t=dtype):
                return ctx.param_mem.load(_o, _t)

            return ("f", read)
    message = f"operand {operand!r} not readable here"

    def read(regs, ctx, _m=message):
        raise ExecutionFault(_m)

    return ("f", read)


def _reader(src):
    """A ``read(regs, ctx) -> value`` closure for one classified operand."""
    kind, v = src
    if kind == "r":

        def read(regs, ctx, _n=v):
            return regs.get(_n, 0)

        return read
    if kind == "c":

        def read(regs, ctx, _v=v):
            return _v

        return read
    return v  # "f": already a reader


# ------------------------------------------------------- generated bodies
#
# The hottest instruction shapes — integer/float ALU ops and set/setp
# over register/constant operands — get exec-generated bodies with the
# dtype's wrap arithmetic inlined (mask-and-sign-adjust instead of
# ``executor`` → ``_wrap`` → ``canonical_int`` call chains, condition
# codes computed in place instead of ``condition_code``).  Generated
# code is a *template* keyed by (op, dtype, operand kinds[, cmp, dest
# kind]): ``exec`` produces a ``make(...)`` factory once per template,
# and every instruction matching the shape binds its register names /
# folded constants through the factory's arguments.  Semantics are
# pinned to the interpreter executors in :mod:`repro.gpu.alu`; the
# differential fuzz harness enforces the equivalence.

_INT_BINARY_EXPRS = {
    "add": "x + y",
    "sub": "x - y",
    "mul": "x * y",
    "mul.wide": "(x & 0xffff) * (y & 0xffff)",
    "and": "x & y",
    "or": "x | y",
    "xor": "x ^ y",
    "min": "x if x < y else y",
    "max": "x if x > y else y",
}
_INT_UNARY_EXPRS = {
    "mov": "x",
    "cvt": "x",
    "not": "~x",
    "neg": "-x",
    "abs": "x if x >= 0 else -x",
}
_FLOAT_BINARY_EXPRS = {"add": "x + y", "sub": "x - y", "mul": "x * y"}
_FLOAT_UNARY_EXPRS = {"mov": "x", "cvt": "x"}
_CMP_SYMBOLS = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}

#: (op, dtype, kinds, ...) -> make factory, or False for unsupported shapes.
_FAST_CACHE: dict[tuple, object] = {}


def _emit_reads(lines, kinds, domain):
    """Operand-load statements; constants arrive pre-converted via args."""
    for var, kind in zip("xyz", kinds):
        lines.append(f"        {var} = _{var}" if kind == "c" else
                     f"        {var} = regs.get(_{var}, 0)")
        if kind == "c":
            continue
        if domain == "i":
            lines.append(f"        if type({var}) is not int:")
            lines.append(f"            {var} = _ti({var})")
        else:
            lines.append(f"        if type({var}) is not float:")
            lines.append(f"            {var} = float({var})")


def _emit_wrap(lines, dtype, expr, into="regs[_d]"):
    """Assign ``canonical_int(expr, dtype)`` without the function calls."""
    mask = (1 << dtype.width) - 1
    if dtype.is_signed:
        sign = 1 << (dtype.width - 1)
        lines.append(f"        v = ({expr}) & {mask:#x}")
        lines.append(f"        if v & {sign:#x}:")
        lines.append(f"            v -= {mask + 1:#x}")
        lines.append(f"        {into} = v")
    else:
        lines.append(f"        {into} = ({expr}) & {mask:#x}")


def _fast_alu_source(op, dtype, kinds):
    args = ", ".join(f"_{v}" for v, _ in zip("xyz", kinds))
    lines = [f"def make({args}, _d, _r):", "    def body(regs, ctx):"]
    if dtype.is_float:
        n = len(kinds)
        if op in ("mad", "fma") and n == 3:
            _emit_reads(lines, kinds, "f")
            if dtype is DataType.F32:
                # Non-fused: the product rounds before the addition.
                lines.append("        regs[_d] = _cl(_cl(x * y) + z)")
            else:
                lines.append("        regs[_d] = x * y + z")
        elif n == 2 and op in _FLOAT_BINARY_EXPRS:
            _emit_reads(lines, kinds, "f")
            expr = _FLOAT_BINARY_EXPRS[op]
            if dtype is DataType.F32:
                lines.append(f"        regs[_d] = _cl({expr})")
            else:
                lines.append(f"        regs[_d] = {expr}")
        elif n == 1 and op in _FLOAT_UNARY_EXPRS:
            _emit_reads(lines, kinds, "f")
            # mov/cvt round through the dtype like _exec_cvt does.
            if dtype is DataType.F32:
                lines.append("        regs[_d] = _cl(x)")
            else:
                lines.append("        regs[_d] = x")
        else:
            return None
    else:
        _emit_reads(lines, kinds, "i")
        if op in ("mad", "fma") and len(kinds) == 3:
            _emit_wrap(lines, dtype, "x * y + z")
        elif len(kinds) == 2 and op in _INT_BINARY_EXPRS:
            _emit_wrap(lines, dtype, _INT_BINARY_EXPRS[op])
        elif len(kinds) == 1 and op in _INT_UNARY_EXPRS:
            _emit_wrap(lines, dtype, _INT_UNARY_EXPRS[op])
        elif op == "shl" and len(kinds) == 2:
            lines.append("        s = y & 0xff")
            lines.append(f"        if s >= {dtype.width}:")
            lines.append("            regs[_d] = 0")
            lines.append("        else:")
            mask = (1 << dtype.width) - 1
            if dtype.is_signed:
                sign = 1 << (dtype.width - 1)
                lines.append(f"            v = (x << s) & {mask:#x}")
                lines.append(f"            if v & {sign:#x}:")
                lines.append(f"                v -= {mask + 1:#x}")
                lines.append("            regs[_d] = v")
            else:
                lines.append(f"            regs[_d] = (x << s) & {mask:#x}")
        elif op == "shr" and len(kinds) == 2:
            mask = (1 << dtype.width) - 1
            lines.append("        s = y & 0xff")
            lines.append(f"        if s >= {dtype.width}:")
            if dtype.is_signed:
                sign = 1 << (dtype.width - 1)
                lines.append("            regs[_d] = -1 if x < 0 else 0")
                lines.append("        else:")
                lines.append(f"            v = (x >> s) & {mask:#x}")
                lines.append(f"            if v & {sign:#x}:")
                lines.append(f"                v -= {mask + 1:#x}")
                lines.append("            regs[_d] = v")
            else:
                lines.append("            regs[_d] = 0")
                lines.append("        else:")
                lines.append(f"            regs[_d] = (x & {mask:#x}) >> s")
        else:
            return None
    lines.append("        return _r")
    lines.append("    return body")
    return "\n".join(lines)


def _fast_set_source(dtype, cmp, kinds, pred):
    if dtype.is_float:
        return None  # NaN semantics stay on the generic path
    sym = _CMP_SYMBOLS[cmp]
    mask = (1 << dtype.width) - 1
    args = ", ".join(f"_{v}" for v, _ in zip("xy", kinds))
    lines = [f"def make({args}, _d, _r):", "    def body(regs, ctx):"]
    _emit_reads(lines, kinds, "i")
    if pred:
        lines.append(f"        code = 1 if x {sym} y else 0")
        lines.append("        d = x - y")
        lines.append("        if d < 0:")
        lines.append("            code |= 2")
        lines.append(f"        if (x & {mask:#x}) < (y & {mask:#x}):")
        lines.append("            code |= 4")
        if dtype.is_signed:
            sign = 1 << (dtype.width - 1)
            lines.append(f"        w = d & {mask:#x}")
            lines.append(f"        if w & {sign:#x}:")
            lines.append(f"            w -= {mask + 1:#x}")
            lines.append("        if w != d:")
            lines.append("            code |= 8")
        lines.append("        regs[_d] = code")
    else:
        ones = -1 if dtype.is_signed else mask
        lines.append(f"        regs[_d] = {ones} if x {sym} y else 0")
    lines.append("        return _r")
    lines.append("    return body")
    return "\n".join(lines)


def _fast_factory(key, source_fn, *source_args):
    fac = _FAST_CACHE.get(key)
    if fac is None:
        src = source_fn(*source_args)
        if src is None:
            _FAST_CACHE[key] = False
            return None
        namespace = {"_ti": to_int, "_cl": clamp_f32}
        exec(src, namespace)  # noqa: S102 - compile-time template expansion
        fac = namespace["make"]
        _FAST_CACHE[key] = fac
    return fac if fac is not False else None


# ----------------------------------------------------------------- bodies
#
# A body executes one unguarded instruction and returns the next pc (or
# the negative blocked sentinel).  Guard checks and trace appends are
# layered on by ``_wrap``.


def _alu_body(op, executor, dtype, dest, pred, srcs, ret):
    n = len(srcs)
    if all(k == "c" for k, _ in srcs):
        try:
            value = executor(dtype, *[v for _, v in srcs])
            if pred:
                value = to_int(value) & 0xF
        except Exception:
            pass  # defer the fault to execution time, like the interpreter
        else:

            def body(regs, ctx, _d=dest, _v=value, _r=ret):
                regs[_d] = _v
                return _r

            return body
    if not pred and dtype is not None and all(k in ("r", "c") for k, _ in srcs):
        kinds = "".join(k for k, _ in srcs)
        factory = _fast_factory(
            ("alu", op, dtype, kinds), _fast_alu_source, op, dtype, kinds
        )
        if factory is not None:
            args = [
                (float(v) if dtype.is_float else to_int(v)) if k == "c" else v
                for k, v in srcs
            ]
            return factory(*args, dest, ret)
    if pred:
        # Predicate destinations on executor ops exist only for ``mov``;
        # keep the path generic — it is never hot.
        readers = tuple(_reader(s) for s in srcs)

        def body(regs, ctx, _e=executor, _t=dtype, _rs=readers, _d=dest, _r=ret):
            regs[_d] = to_int(_e(_t, *[r(regs, ctx) for r in _rs])) & 0xF
            return _r

        return body
    if n == 1:
        k0, a = srcs[0]
        if k0 == "r":

            def body(regs, ctx, _e=executor, _t=dtype, _a=a, _d=dest, _r=ret):
                regs[_d] = _e(_t, regs.get(_a, 0))
                return _r

            return body
        r0 = _reader(srcs[0])

        def body(regs, ctx, _e=executor, _t=dtype, _r0=r0, _d=dest, _r=ret):
            regs[_d] = _e(_t, _r0(regs, ctx))
            return _r

        return body
    if n == 2:
        (k0, a), (k1, b) = srcs
        if k0 == "r" and k1 == "r":

            def body(regs, ctx, _e=executor, _t=dtype, _a=a, _b=b, _d=dest, _r=ret):
                regs[_d] = _e(_t, regs.get(_a, 0), regs.get(_b, 0))
                return _r

            return body
        if k0 == "r" and k1 == "c":

            def body(regs, ctx, _e=executor, _t=dtype, _a=a, _b=b, _d=dest, _r=ret):
                regs[_d] = _e(_t, regs.get(_a, 0), _b)
                return _r

            return body
        if k0 == "c" and k1 == "r":

            def body(regs, ctx, _e=executor, _t=dtype, _a=a, _b=b, _d=dest, _r=ret):
                regs[_d] = _e(_t, _a, regs.get(_b, 0))
                return _r

            return body
        r0, r1 = _reader(srcs[0]), _reader(srcs[1])

        def body(regs, ctx, _e=executor, _t=dtype, _r0=r0, _r1=r1, _d=dest, _r=ret):
            regs[_d] = _e(_t, _r0(regs, ctx), _r1(regs, ctx))
            return _r

        return body
    # n == 3: mad / fma / slct
    kinds = tuple(k for k, _ in srcs)
    values = tuple(v for _, v in srcs)
    if kinds == ("r", "r", "r"):
        a, b, c = values

        def body(regs, ctx, _e=executor, _t=dtype, _a=a, _b=b, _c=c, _d=dest, _r=ret):
            regs[_d] = _e(_t, regs.get(_a, 0), regs.get(_b, 0), regs.get(_c, 0))
            return _r

        return body
    if kinds == ("r", "r", "c"):
        a, b, c = values

        def body(regs, ctx, _e=executor, _t=dtype, _a=a, _b=b, _c=c, _d=dest, _r=ret):
            regs[_d] = _e(_t, regs.get(_a, 0), regs.get(_b, 0), _c)
            return _r

        return body
    readers = tuple(_reader(s) for s in srcs)

    def body(regs, ctx, _e=executor, _t=dtype, _rs=readers, _d=dest, _r=ret):
        regs[_d] = _e(_t, _rs[0](regs, ctx), _rs[1](regs, ctx), _rs[2](regs, ctx))
        return _r

    return body


def _ld_body(operand, dtype, dest, pred, param_mem, ret):
    if type(operand) is Param:
        try:
            value = param_mem.load(operand.offset, dtype)
        except Exception:
            offset = operand.offset

            def body(regs, ctx, _o=offset, _t=dtype, _d=dest, _r=ret):
                regs[_d] = ctx.param_mem.load(_o, _t)
                return _r

            return body
        if pred:
            value = to_int(value) & 0xF

        def body(regs, ctx, _d=dest, _v=value, _r=ret):
            regs[_d] = _v
            return _r

        return body
    if type(operand) is not MemRef:
        message = f"ld source {operand!r} is not a memory operand"

        def body(regs, ctx, _m=message):
            raise ExecutionFault(_m)

        return body
    offset = operand.offset
    base = operand.base.name if operand.base is not None else None
    shared = operand.space == "shared"
    if base is None:
        if shared:

            def body(regs, ctx, _o=offset, _t=dtype, _d=dest, _r=ret):
                regs[_d] = ctx.shared_mem.load(_o, _t)
                return _r

        else:

            def body(regs, ctx, _o=offset, _t=dtype, _d=dest, _r=ret):
                regs[_d] = ctx.global_mem.load(_o, _t)
                return _r

        return body
    if shared:

        def body(regs, ctx, _b=base, _o=offset, _t=dtype, _d=dest, _r=ret):
            a = regs.get(_b, 0)
            if type(a) is not int:
                a = to_int(a)
            regs[_d] = ctx.shared_mem.load(_o + a, _t)
            return _r

    else:

        def body(regs, ctx, _b=base, _o=offset, _t=dtype, _d=dest, _r=ret):
            a = regs.get(_b, 0)
            if type(a) is not int:
                a = to_int(a)
            regs[_d] = ctx.global_mem.load(_o + a, _t)
            return _r

    return body


def _st_body(operand, vsrc, dtype, ret):
    if type(operand) is not MemRef:
        message = f"st target {operand!r} is not a memory operand"

        def body(regs, ctx, _m=message):
            raise ExecutionFault(_m)

        return body
    offset = operand.offset
    base = operand.base.name if operand.base is not None else None
    shared = operand.space == "shared"
    vk, vv = vsrc
    if base is not None and vk == "r":
        if shared:

            def body(regs, ctx, _b=base, _o=offset, _v=vv, _t=dtype, _r=ret):
                a = regs.get(_b, 0)
                if type(a) is not int:
                    a = to_int(a)
                ctx.shared_mem.store(_o + a, regs.get(_v, 0), _t)
                return _r

        else:

            def body(regs, ctx, _b=base, _o=offset, _v=vv, _t=dtype, _r=ret):
                a = regs.get(_b, 0)
                if type(a) is not int:
                    a = to_int(a)
                ctx.global_mem.store(_o + a, regs.get(_v, 0), _t)
                return _r

        return body
    if base is not None and vk == "c":
        if shared:

            def body(regs, ctx, _b=base, _o=offset, _v=vv, _t=dtype, _r=ret):
                a = regs.get(_b, 0)
                if type(a) is not int:
                    a = to_int(a)
                ctx.shared_mem.store(_o + a, _v, _t)
                return _r

        else:

            def body(regs, ctx, _b=base, _o=offset, _v=vv, _t=dtype, _r=ret):
                a = regs.get(_b, 0)
                if type(a) is not int:
                    a = to_int(a)
                ctx.global_mem.store(_o + a, _v, _t)
                return _r

        return body
    vread = _reader(vsrc)
    if base is None:
        if shared:

            def body(regs, ctx, _o=offset, _vr=vread, _t=dtype, _r=ret):
                ctx.shared_mem.store(_o, _vr(regs, ctx), _t)
                return _r

        else:

            def body(regs, ctx, _o=offset, _vr=vread, _t=dtype, _r=ret):
                ctx.global_mem.store(_o, _vr(regs, ctx), _t)
                return _r

        return body
    if shared:

        def body(regs, ctx, _b=base, _o=offset, _vr=vread, _t=dtype, _r=ret):
            a = regs.get(_b, 0)
            if type(a) is not int:
                a = to_int(a)
            ctx.shared_mem.store(_o + a, _vr(regs, ctx), _t)
            return _r

    else:

        def body(regs, ctx, _b=base, _o=offset, _vr=vread, _t=dtype, _r=ret):
            a = regs.get(_b, 0)
            if type(a) is not int:
                a = to_int(a)
            ctx.global_mem.store(_o + a, _vr(regs, ctx), _t)
            return _r

    return body


def _set_body(cmp, dtype, dest, pred, srcs, ret):
    (k0, a), (k1, b) = srcs
    if (
        dtype is not None
        and not (k0 == "c" and k1 == "c")
        and k0 in ("r", "c")
        and k1 in ("r", "c")
    ):
        kinds = k0 + k1
        factory = _fast_factory(
            ("set", dtype, cmp, kinds, pred), _fast_set_source, dtype, cmp, kinds, pred
        )
        if factory is not None:
            args = [to_int(v) if k == "c" else v for k, v in srcs]
            return factory(*args, dest, ret)
    if pred:
        if k0 == "c" and k1 == "c":
            value = condition_code(cmp, dtype, a, b)

            def body(regs, ctx, _d=dest, _v=value, _r=ret):
                regs[_d] = _v
                return _r

            return body
        if k0 == "r" and k1 == "r":

            def body(regs, ctx, _c=cmp, _t=dtype, _a=a, _b=b, _d=dest, _r=ret):
                regs[_d] = condition_code(_c, _t, regs.get(_a, 0), regs.get(_b, 0))
                return _r

            return body
        if k0 == "r" and k1 == "c":

            def body(regs, ctx, _c=cmp, _t=dtype, _a=a, _b=b, _d=dest, _r=ret):
                regs[_d] = condition_code(_c, _t, regs.get(_a, 0), _b)
                return _r

            return body
        r0, r1 = _reader(srcs[0]), _reader(srcs[1])

        def body(regs, ctx, _c=cmp, _t=dtype, _r0=r0, _r1=r1, _d=dest, _r=ret):
            regs[_d] = condition_code(_c, _t, _r0(regs, ctx), _r1(regs, ctx))
            return _r

        return body
    if k0 == "c" and k1 == "c":
        value = _exec_set_general(dtype, cmp, a, b)

        def body(regs, ctx, _d=dest, _v=value, _r=ret):
            regs[_d] = _v
            return _r

        return body
    if k0 == "r" and k1 == "r":

        def body(regs, ctx, _c=cmp, _t=dtype, _a=a, _b=b, _d=dest, _r=ret):
            regs[_d] = _exec_set_general(_t, _c, regs.get(_a, 0), regs.get(_b, 0))
            return _r

        return body
    if k0 == "r" and k1 == "c":

        def body(regs, ctx, _c=cmp, _t=dtype, _a=a, _b=b, _d=dest, _r=ret):
            regs[_d] = _exec_set_general(_t, _c, regs.get(_a, 0), _b)
            return _r

        return body
    r0, r1 = _reader(srcs[0]), _reader(srcs[1])

    def body(regs, ctx, _c=cmp, _t=dtype, _r0=r0, _r1=r1, _d=dest, _r=ret):
        regs[_d] = _exec_set_general(_t, _c, _r0(regs, ctx), _r1(regs, ctx))
        return _r

    return body


def _selp_body(selector, dest, srcs, ret):
    if not (type(selector) is Reg and selector.is_pred):
        message = "selp selector must be a predicate register"

        def body(regs, ctx, _m=message):
            raise ExecutionFault(_m)

        return body
    p = selector.name
    r0, r1 = _reader(srcs[0]), _reader(srcs[1])

    def body(regs, ctx, _p=p, _r0=r0, _r1=r1, _d=dest, _r=ret):
        z = regs.get(_p, 0)
        if type(z) is not int:
            z = to_int(z)
        regs[_d] = _r0(regs, ctx) if z & 1 else _r1(regs, ctx)
        return _r

    return body


def _body(op, dtype, dest, pred, srcs, classified, target, cmp, executor,
          param_mem, ret):
    if executor is not None:
        return _alu_body(op, executor, dtype, dest, pred, classified, ret)
    if op == "bra":

        def body(regs, ctx, _t=target):
            return _t

        return body
    if op == "ld":
        return _ld_body(srcs[0], dtype, dest, pred, param_mem, ret)
    if op == "st":
        return _st_body(srcs[0], classified[0], dtype, ret)
    if op in ("set", "setp"):
        return _set_body(cmp, dtype, dest, pred, classified, ret)
    if op == "selp":
        return _selp_body(srcs[2], dest, classified, ret)
    if op == "bar.sync":
        blocked = -1 - ret

        def body(regs, ctx, _r=blocked):
            ctx.state = ThreadState.AT_BARRIER
            return _r

        return body
    if op in _EXITS:
        blocked = -1 - ret

        def body(regs, ctx, _r=blocked):
            ctx.state = ThreadState.EXITED
            return _r

        return body
    if op in _CONTROL:

        def body(regs, ctx, _r=ret):
            return _r

        return body
    message = f"unhandled opcode {op!r}"

    def body(regs, ctx, _m=message):  # pragma: no cover - validated programs
        raise ExecutionFault(_m)

    return body


def _wrap(body, guard, pc, width, next_pc):
    """(plain, traced) closure pair: guard check + trace append layers."""
    if guard is None:
        event = (pc, width)

        def traced(regs, ctx, trace, _b=body, _e=event):
            trace.append(_e)
            return _b(regs, ctx)

        return body, traced
    gname, gset = guard

    def plain(regs, ctx, _b=body, _g=gname, _s=gset, _n=next_pc):
        z = regs.get(_g, 0)
        if type(z) is not int:
            z = to_int(z)
        if ((z & 1) == 1) != _s:
            return _n
        return _b(regs, ctx)

    on, off = (pc, width), (pc, 0)

    def traced(
        regs, ctx, trace, _b=body, _g=gname, _s=gset, _n=next_pc, _on=on, _off=off
    ):
        z = regs.get(_g, 0)
        if type(z) is not int:
            z = to_int(z)
        if ((z & 1) == 1) != _s:
            trace.append(_off)
            return _n
        trace.append(_on)
        return _b(regs, ctx)

    return plain, traced


# ------------------------------------------------------------ compilation


def _compile_one(pc, entry, param_mem):
    """One instruction → (plain, traced) pair, or a per-thread factory."""
    op, dtype, dest, pred, width, srcs, guard, target, cmp, executor = entry
    next_pc = pc + 1

    def finish(classified):
        body = _body(
            op, dtype, dest, pred, srcs, classified, target, cmp, executor,
            param_mem, next_pc,
        )
        return _wrap(body, guard, pc, width, next_pc)

    if executor is not None:
        classified = [_classify(s, dtype, param_mem) for s in srcs]
    elif op == "st":
        classified = [_classify(srcs[1], dtype, param_mem)]
    elif op in ("set", "setp"):
        classified = [_classify(s, dtype, param_mem) for s in srcs]
    elif op == "selp":
        classified = [
            _classify(srcs[0], dtype, param_mem),
            _classify(srcs[1], dtype, param_mem),
        ]
    else:
        return finish(None)
    if any(k == "s" for k, _ in classified):

        def factory(specials, _classified=tuple(classified)):
            resolved = [
                ("c", specials[v]) if k == "s" else (k, v) for k, v in _classified
            ]
            return finish(resolved)

        return factory
    return finish(classified)


@dataclass(frozen=True, slots=True)
class BoundChain:
    """Per-thread closure chains, indexed by pc by the compiled driver."""

    plain: tuple
    traced: tuple
    end: int


class CompiledProgram:
    """Specialised closures for one (program, parameter block).

    Instructions that read special registers become per-thread factories;
    everything else is compiled once and shared by every thread of every
    launch of this program with this parameter block.
    """

    __slots__ = ("_plain", "_traced", "_factories", "_invariant", "end")

    def __init__(
        self,
        plain: list,
        traced: list,
        factories: list[tuple[int, Callable]],
        end: int,
    ) -> None:
        self._plain = plain
        self._traced = traced
        self._factories = factories
        self._invariant: BoundChain | None = None
        self.end = end

    def bind(self, specials: dict[tuple[str, str], int]) -> BoundChain:
        """Finish the special-reading instructions for one thread."""
        if not self._factories:
            chain = self._invariant
            if chain is None:
                chain = BoundChain(tuple(self._plain), tuple(self._traced), self.end)
                self._invariant = chain
            return chain
        plain = list(self._plain)
        traced = list(self._traced)
        for pc, factory in self._factories:
            plain[pc], traced[pc] = factory(specials)
        return BoundChain(tuple(plain), tuple(traced), self.end)


def compile_program(program, param_mem) -> CompiledProgram:
    """Compile every instruction of ``program`` against one param block."""
    decoded = program.decoded()
    end = len(decoded)
    plain: list = [None] * end
    traced: list = [None] * end
    factories: list[tuple[int, Callable]] = []
    for pc, entry in enumerate(decoded):
        made = _compile_one(pc, entry, param_mem)
        if callable(made):
            factories.append((pc, made))
        else:
            plain[pc], traced[pc] = made
    return CompiledProgram(plain, traced, factories, end)
