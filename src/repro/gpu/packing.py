"""Packing host values into kernel-parameter blocks."""

from __future__ import annotations

from ..errors import SimulatorError
from .isa import DataType
from .memory import encode_value


def pack_params(
    layout: tuple[tuple[str, DataType], ...],
    values: dict[str, int | float],
) -> bytes:
    """Pack named values into the 4-byte-slot parameter block of a kernel.

    ``layout`` comes from :attr:`KernelBuilder.param_layout`; every declared
    parameter must be supplied, and no extras are allowed — mismatches are
    authoring bugs, caught loudly.
    """
    missing = [name for name, _ in layout if name not in values]
    if missing:
        raise SimulatorError(f"missing kernel parameters: {missing}")
    extra = set(values) - {name for name, _ in layout}
    if extra:
        raise SimulatorError(f"unknown kernel parameters: {sorted(extra)}")
    return b"".join(encode_value(values[name], dtype) for name, dtype in layout)
