"""A validated, executable sequence of instructions.

A :class:`Program` is produced by the :mod:`~repro.gpu.builder` DSL (or
constructed directly in tests).  Construction resolves labels and performs
static validation so the interpreter can assume well-formedness and stay on
its fast path.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InvalidProgram
from .instruction import Instruction
from .isa import MemRef, Param, Reg, opcode_arity, opcode_has_dest

#: Opcode/data-type compatibility, PTX-style: bitwise and shift operations
#: exist only for integer types, transcendental ones only for floats.
INT_ONLY_OPS = frozenset(("and", "or", "xor", "not", "shl", "shr", "mul.wide"))
FLOAT_ONLY_OPS = frozenset(("rcp", "sqrt", "ex2", "lg2", "fma"))


@dataclass(frozen=True)
class Program:
    """An immutable kernel program.

    Attributes:
        name: kernel name (for reporting).
        instructions: the static instruction sequence.
        labels: label -> instruction index.
        shared_bytes: shared-memory bytes required per CTA.
        param_bytes: size of the kernel-parameter block.
    """

    name: str
    instructions: tuple[Instruction, ...]
    labels: dict[str, int]
    shared_bytes: int = 0
    param_bytes: int = 0

    def __post_init__(self) -> None:
        self._validate()

    def target_index(self, label: str) -> int:
        return self.labels[label]

    def decoded(self) -> tuple:
        """Pre-decoded instruction tuples for the interpreter hot loop.

        Each entry is ``(op, dtype, dest_name, dest_is_pred, width, srcs,
        guard, target_index, cmp, executor)`` with labels resolved, widths
        precomputed, and the ALU executor bound — computed once per
        program and cached.
        """
        cached = getattr(self, "_decoded", None)
        if cached is None:
            from .alu import EXECUTORS

            entries = []
            for insn in self.instructions:
                guard = None
                if insn.guard is not None:
                    guard = (insn.guard.reg.name, insn.guard.cond == "eq")
                entries.append(
                    (
                        insn.op,
                        insn.dtype,
                        insn.dest.name if insn.dest is not None else None,
                        insn.dest.is_pred if insn.dest is not None else False,
                        insn.dest_width,
                        insn.srcs,
                        guard,
                        self.labels[insn.target] if insn.target is not None else None,
                        insn.cmp,
                        EXECUTORS.get(insn.op),
                    )
                )
            cached = tuple(entries)
            object.__setattr__(self, "_decoded", cached)
        return cached

    def compiled(self, param_mem):
        """The program specialised into closure chains for one param block.

        Compilation folds parameter loads into constants, so the cache is
        keyed by the parameter image; each distinct parameter block gets
        its own :class:`~repro.gpu.compiler.CompiledProgram`.  Like
        :meth:`decoded`, results are cached on the (frozen) program via
        ``object.__setattr__``.
        """
        cache = getattr(self, "_compiled", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_compiled", cache)
        key = param_mem.raw
        entry = cache.get(key)
        if entry is None:
            from .compiler import compile_program

            entry = compile_program(self, param_mem)
            cache[key] = entry
        return entry

    def vectorized(self, param_mem):
        """The program decoded for lane-masked SIMD issue.

        Vector decode folds parameter loads exactly like :meth:`compiled`,
        so the cache is keyed by the parameter image too.
        """
        cache = getattr(self, "_vectorized", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_vectorized", cache)
        key = param_mem.raw
        entry = cache.get(key)
        if entry is None:
            from .vector import VectorProgram

            entry = VectorProgram(self, param_mem)
            cache[key] = entry
        return entry

    def __len__(self) -> int:
        return len(self.instructions)

    def listing(self) -> str:
        """Human-readable PTXPlus-style listing (used by the Fig. 5 bench)."""
        return "\n".join(f"{i:4d}  {insn}" for i, insn in enumerate(self.instructions))

    def _validate(self) -> None:
        if not self.instructions:
            raise InvalidProgram(f"{self.name}: empty program")
        for idx, insn in enumerate(self.instructions):
            where = f"{self.name}[{idx}] {insn.op}"
            if insn.op == "bra":
                if insn.target is None:
                    raise InvalidProgram(f"{where}: branch without target")
                if insn.target not in self.labels:
                    raise InvalidProgram(f"{where}: unknown label {insn.target!r}")
            elif insn.target is not None:
                raise InvalidProgram(f"{where}: target on non-branch")
            if opcode_has_dest(insn.op):
                if insn.dest is None:
                    raise InvalidProgram(f"{where}: missing destination")
            elif insn.dest is not None:
                raise InvalidProgram(f"{where}: unexpected destination")
            arity = opcode_arity(insn.op)
            if len(insn.srcs) != arity:
                raise InvalidProgram(
                    f"{where}: expected {arity} sources, got {len(insn.srcs)}"
                )
            if insn.op in ("set", "setp") and insn.cmp is None:
                raise InvalidProgram(f"{where}: comparison operator required")
            if insn.dtype is not None:
                if insn.op in INT_ONLY_OPS and insn.dtype.is_float:
                    raise InvalidProgram(f"{where}: integer-only op on {insn.dtype}")
                if insn.op in FLOAT_ONLY_OPS and not insn.dtype.is_float:
                    raise InvalidProgram(f"{where}: float-only op on {insn.dtype}")
            self._validate_memrefs(where, insn)
        self._validate_labels()

    def _validate_memrefs(self, where: str, insn: Instruction) -> None:
        for operand in insn.srcs:
            if isinstance(operand, MemRef):
                if operand.space not in ("global", "shared"):
                    raise InvalidProgram(f"{where}: bad space {operand.space!r}")
                if insn.op not in ("ld", "st"):
                    raise InvalidProgram(f"{where}: memory operand on ALU op")
                if operand.space == "shared" and self.shared_bytes == 0:
                    raise InvalidProgram(f"{where}: shared access but no shared memory")
            if isinstance(operand, Param):
                if operand.offset < 0 or operand.offset + 4 > self.param_bytes:
                    raise InvalidProgram(
                        f"{where}: param offset {operand.offset:#x} outside block "
                        f"of {self.param_bytes} bytes"
                    )
        if isinstance(insn.dest, Reg) and insn.dest.is_pred and insn.op not in (
            "set",
            "setp",
            "mov",
        ):
            raise InvalidProgram(f"{where}: predicate dest only on set/setp/mov")

    def _validate_labels(self) -> None:
        for label, idx in self.labels.items():
            if not 0 <= idx < len(self.instructions):
                raise InvalidProgram(f"{self.name}: label {label!r} out of range")
            at = self.instructions[idx].label
            if at != label:
                raise InvalidProgram(
                    f"{self.name}: label table says {label!r} at {idx} but "
                    f"instruction carries {at!r}"
                )
