"""Instruction-set definitions for the PTXPlus-flavoured functional ISA.

The simulator executes a register-based, typed instruction set modelled on
GPGPU-Sim's PTXPlus representation (the level at which the paper injects
faults).  The pieces defined here are pure data:

* :class:`DataType` — operation/operand types with their storage widths.
  ``PRED`` is a 4-bit condition code (zero / sign / carry / overflow flags),
  matching the PTXPlus predicate system the paper's bit-wise pruning stage
  exploits (only the zero flag feeds branch conditions).
* Operand kinds — :class:`Reg`, :class:`Imm`, :class:`Special`,
  :class:`MemRef`, :class:`Param`.
* The opcode catalogue (:data:`OPCODES`) with per-opcode arity used by the
  static validator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DataType(enum.Enum):
    """Operation data types, named after their PTX suffixes."""

    U16 = "u16"
    U32 = "u32"
    S32 = "s32"
    U64 = "u64"
    S64 = "s64"
    F32 = "f32"
    F64 = "f64"
    PRED = "pred"

    # width / is_float / is_signed are plain attributes assigned right
    # after the class body (see below): the interpreter touches them on
    # every dynamic instruction, so they must not go through properties.
    width: int
    is_float: bool
    is_signed: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f".{self.value}"


_WIDTHS = {
    DataType.U16: 16,
    DataType.U32: 32,
    DataType.S32: 32,
    DataType.U64: 64,
    DataType.S64: 64,
    DataType.F32: 32,
    DataType.F64: 64,
    DataType.PRED: 4,
}

for _dt in DataType:
    _dt.width = _WIDTHS[_dt]
    _dt.is_float = _dt in (DataType.F32, DataType.F64)
    _dt.is_signed = _dt in (DataType.S32, DataType.S64)

#: Predicate condition-code flag bit positions (PTXPlus 4-bit system).
PRED_ZERO = 0
PRED_SIGN = 1
PRED_CARRY = 2
PRED_OVERFLOW = 3


@dataclass(frozen=True, slots=True)
class Reg:
    """A general-purpose or predicate register, e.g. ``$r4`` / ``$p0``.

    ``kind`` is ``"r"`` for general registers and ``"p"`` for predicate
    (4-bit condition code) registers.
    """

    name: str
    kind: str = "r"

    @property
    def is_pred(self) -> bool:
        return self.kind == "p"

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True, slots=True)
class Imm:
    """An immediate (literal) operand."""

    value: int | float

    def __str__(self) -> str:
        if isinstance(self.value, float):
            return repr(self.value)
        return f"0x{self.value:08x}" if self.value >= 0 else str(self.value)


@dataclass(frozen=True, slots=True)
class Special:
    """A read-only special register: ``tid.x``, ``ctaid.y``, ``ntid.x``, ...

    ``name`` is one of ``tid``/``ntid``/``ctaid``/``nctaid`` and ``axis``
    one of ``x``/``y``/``z``.
    """

    name: str
    axis: str

    def __str__(self) -> str:
        return f"%{self.name}.{self.axis}"


@dataclass(frozen=True, slots=True)
class MemRef:
    """A memory operand ``[base + offset]`` in ``global`` or ``shared`` space."""

    space: str
    base: Reg | None
    offset: int = 0

    def __str__(self) -> str:
        inner = f"{self.base}+{self.offset:#x}" if self.base else f"{self.offset:#x}"
        return f"{self.space}[{inner}]"


@dataclass(frozen=True, slots=True)
class Param:
    """A kernel-parameter slot, PTXPlus style ``s[offset]``."""

    offset: int

    def __str__(self) -> str:
        return f"s[{self.offset:#06x}]"


Operand = Reg | Imm | Special | MemRef | Param

#: Comparison operators accepted by ``set`` / ``setp`` / guarded branches.
CMP_OPS = ("eq", "ne", "lt", "le", "gt", "ge")

#: opcode -> (number of source operands, has destination)
OPCODES: dict[str, tuple[int, bool]] = {
    # data movement
    "mov": (1, True),
    "cvt": (1, True),
    "ld": (1, True),  # src is a MemRef/Param
    "st": (2, False),  # srcs are (MemRef, value)
    # integer / float arithmetic
    "add": (2, True),
    "sub": (2, True),
    "mul": (2, True),
    "mul.wide": (2, True),
    "mad": (3, True),
    "div": (2, True),
    "rem": (2, True),
    "min": (2, True),
    "max": (2, True),
    "neg": (1, True),
    "abs": (1, True),
    "rcp": (1, True),
    "sqrt": (1, True),
    "ex2": (1, True),
    "lg2": (1, True),
    "fma": (3, True),
    # logic / shift
    "and": (2, True),
    "or": (2, True),
    "xor": (2, True),
    "not": (1, True),
    "shl": (2, True),
    "shr": (2, True),
    # compare / select
    "set": (2, True),  # dest may be a predicate or a general register
    "setp": (2, True),
    "slct": (3, True),  # slct d, a, b, c : d = a if c >= 0 else b
    "selp": (3, True),  # selp d, a, b, p : d = a if p.zero else b
    # control
    "bra": (0, False),
    "bar.sync": (0, False),
    "ssy": (0, False),  # reconvergence hint; functional no-op
    "nop": (0, False),
    "exit": (0, False),
    "retp": (0, False),
}


def opcode_exists(op: str) -> bool:
    return op in OPCODES


def opcode_has_dest(op: str) -> bool:
    return OPCODES[op][1]


def opcode_arity(op: str) -> int:
    return OPCODES[op][0]
