"""Analysis layer: grouping analytics, profile comparison, table rendering."""

from .grouping import (
    CTADistribution,
    GroupingResult,
    ThreadSeries,
    cta_icnt_grouping,
    cta_outcome_grouping,
    find_target_instructions,
    thread_masked_pct,
    thread_outcome_series,
)
from .report import (
    InstructionVulnerability,
    instruction_vulnerabilities,
    render_report,
)
from .profiles import (
    ProfileComparison,
    average_absolute_errors,
    compare_profiles,
    format_profile_table,
)
from .tables import (
    GroupTableRow,
    format_group_table,
    format_table1,
    format_table7,
    group_table,
    loop_stats_for,
)

__all__ = [
    "CTADistribution",
    "GroupTableRow",
    "GroupingResult",
    "InstructionVulnerability",
    "ProfileComparison",
    "ThreadSeries",
    "average_absolute_errors",
    "compare_profiles",
    "cta_icnt_grouping",
    "cta_outcome_grouping",
    "find_target_instructions",
    "format_group_table",
    "format_profile_table",
    "format_table1",
    "format_table7",
    "group_table",
    "instruction_vulnerabilities",
    "loop_stats_for",
    "render_report",
    "thread_masked_pct",
    "thread_outcome_series",
]
