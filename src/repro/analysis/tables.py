"""Table renderers matching the paper's layouts (Tables I-IV, VII)."""

from __future__ import annotations

from dataclasses import dataclass

from ..faults.injector import FaultInjector
from ..kernels.registry import KernelSpec
from ..pruning.loopwise import loop_statistics
from ..pruning.threadwise import ThreadwisePruning


def format_table1(rows: list[tuple[KernelSpec, int, int]]) -> str:
    """Table I: suite / app / kernel / threads / total fault sites.

    Each row carries our measured (threads, sites); the paper's values are
    printed alongside for the scale comparison.
    """
    header = (
        f"{'suite':10s} {'app':10s} {'kernel':18s} {'id':5s} "
        f"{'threads':>8s} {'fault sites':>12s} {'paper thr':>10s} {'paper sites':>12s}"
    )
    lines = [header, "-" * len(header)]
    for spec, threads, sites in rows:
        paper_thr = f"{spec.paper_threads}" if spec.paper_threads else "-"
        paper_sites = (
            f"{spec.paper_fault_sites:.2E}" if spec.paper_fault_sites else "-"
        )
        lines.append(
            f"{spec.suite:10s} {spec.app:10s} {spec.kernel_name:18s} "
            f"{spec.kernel_id:5s} {threads:8d} {sites:12d} "
            f"{paper_thr:>10s} {paper_sites:>12s}"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class GroupTableRow:
    """One CTA group of Tables III/IV with its thread groups."""

    cta_group: str
    avg_icnt: float
    cta_proportion: float
    thread_groups: list[tuple[str, str, float]]  # (name, icnt desc, proportion)


def group_table(tw: ThreadwisePruning, n_ctas: int) -> list[GroupTableRow]:
    """Build Table III/IV rows from a thread-wise pruning result."""
    rows = []
    for gid, cgroup in enumerate(tw.cta_groups, start=1):
        tgroups = [g for g in tw.thread_groups if g.cta_group == gid - 1]
        total_threads = sum(len(g.threads) for g in tgroups)
        thread_rows = [
            (
                f"T-{gid}{tid}",
                str(g.icnt),
                100.0 * len(g.threads) / total_threads,
            )
            for tid, g in enumerate(tgroups, start=1)
        ]
        rows.append(
            GroupTableRow(
                cta_group=f"C-{gid}",
                avg_icnt=cgroup.mean_icnt,
                cta_proportion=100.0 * len(cgroup.ctas) / n_ctas,
                thread_groups=thread_rows,
            )
        )
    return rows


def format_group_table(rows: list[GroupTableRow]) -> str:
    header = (
        f"{'CTA grp':8s} {'avg iCnt':>9s} {'CTA prop.':>10s} | "
        f"{'thd grp':8s} {'thd iCnt':>9s} {'thd prop.':>10s}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        first = True
        for name, icnt, prop in row.thread_groups:
            left = (
                f"{row.cta_group:8s} {row.avg_icnt:9.1f} {row.cta_proportion:9.2f}%"
                if first
                else " " * 29
            )
            lines.append(f"{left} | {name:8s} {icnt:>9s} {prop:9.2f}%")
            first = False
    return "\n".join(lines)


def format_table7(rows: list[tuple[KernelSpec, int, int, float]]) -> str:
    """Table VII: threads, loop iterations, % instructions in loops."""
    header = (
        f"{'app':10s} {'kernel':7s} {'threads':>8s} {'#loop iter':>11s} "
        f"{'% insn in loop':>15s}"
    )
    lines = [header, "-" * len(header)]
    for spec, threads, iters, share in rows:
        lines.append(
            f"{spec.app:10s} {spec.kernel_id:7s} {threads:8d} {iters:11d} "
            f"{share:14.2f}%"
        )
    return "\n".join(lines)


def loop_stats_for(injector: FaultInjector) -> tuple[int, float]:
    return loop_statistics(injector.instance.program, injector.traces)
