"""Markdown resilience reports.

Bundles everything a reliability engineer asks about one kernel into a
single document: workload identity, fault-space size, per-stage pruning
reduction, the estimated profile, and the most vulnerable static
instructions (hardening priorities).  Used by ``python -m repro report``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from ..faults.injector import FaultInjector
from ..faults.outcome import ResilienceProfile
from ..pruning.progressive import PrunedSpace


@dataclass(frozen=True)
class InstructionVulnerability:
    """Aggregated weighted outcomes of one static instruction."""

    pc: int
    text: str
    weighted_sites: float
    unsafe_fraction: float  # (sdc + other) share

    @property
    def impact(self) -> float:
        return self.weighted_sites * self.unsafe_fraction


def instruction_vulnerabilities(
    injector: FaultInjector, space: PrunedSpace
) -> list[InstructionVulnerability]:
    """Rank static instructions by weighted unsafe fault sites.

    Re-injects the pruned space (cheap by construction) and aggregates per
    pc.  Rows are sorted most-harmful first.
    """
    program = injector.instance.program
    cells: dict[int, dict[str, float]] = defaultdict(
        lambda: {"masked": 0.0, "sdc": 0.0, "other": 0.0}
    )
    for ws in space.sites:
        outcome = injector.inject(ws.site)
        pc = injector.space.pc_of(ws.site.thread, ws.site.dyn_index)
        cells[pc][outcome.category] += ws.weight

    rows = []
    for pc, cell in cells.items():
        total = sum(cell.values())
        unsafe = (cell["sdc"] + cell["other"]) / total if total else 0.0
        rows.append(
            InstructionVulnerability(
                pc=pc,
                text=str(program.instructions[pc]),
                weighted_sites=total,
                unsafe_fraction=unsafe,
            )
        )
    rows.sort(key=lambda r: -r.impact)
    return rows


def render_report(
    injector: FaultInjector,
    space: PrunedSpace,
    profile: ResilienceProfile,
    top_n: int = 10,
) -> str:
    """A self-contained markdown resilience report for one kernel."""
    instance = injector.instance
    spec = instance.spec
    lines = [f"# Resilience report — {spec.key if spec else instance.program.name}"]
    if spec is not None:
        lines += [
            "",
            f"* suite: **{spec.suite}**, kernel `{spec.kernel_name}` ({spec.kernel_id})",
            f"* scaling: {spec.scaling_note}",
        ]
    geometry = instance.geometry
    lines += [
        f"* geometry: grid {geometry.grid} × block {geometry.block} "
        f"= {geometry.n_threads} threads",
        f"* exhaustive fault sites (Eq. 1): **{space.total_sites:,}**",
        "",
        "## Pruning",
        "",
        "| stage | remaining injections |",
        "|---|---|",
    ]
    for stage in space.stages:
        lines.append(f"| {stage.name} | {stage.sites_after:,} |")
    lines += [
        "",
        f"Reduction: **{space.reduction_factor():,.0f}×** "
        f"({space.total_sites:,} → {space.n_injections:,}).",
        "",
        "## Estimated error-resilience profile",
        "",
        "| masked | SDC | other (crash+hang) |",
        "|---|---|---|",
        f"| {profile.pct_masked:.2f}% | {profile.pct_sdc:.2f}% "
        f"| {profile.pct_other:.2f}% |",
        "",
        "## Hardening priorities",
        "",
        "Static instructions ranked by weighted unsafe fault sites "
        "(destination-register flips that end in SDC or crash/hang):",
        "",
        "| rank | pc | instruction | unsafe | weighted sites |",
        "|---|---|---|---|---|",
    ]
    rows = instruction_vulnerabilities(injector, space)
    for rank, row in enumerate(rows[:top_n], start=1):
        lines.append(
            f"| {rank} | {row.pc} | `{row.text}` | "
            f"{100 * row.unsafe_fraction:.1f}% | {row.weighted_sites:,.0f} |"
        )
    covered = sum(r.impact for r in rows[:top_n])
    total_impact = sum(r.impact for r in rows) or 1.0
    lines += [
        "",
        f"The top {min(top_n, len(rows))} instructions cover "
        f"{100 * covered / total_impact:.1f}% of the kernel's weighted "
        "unsafe sites.",
    ]
    return "\n".join(lines)
