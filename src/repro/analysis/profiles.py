"""Profile comparison utilities (Fig. 9 / Tables V-VI error columns)."""

from __future__ import annotations

from dataclasses import dataclass

from ..faults.outcome import CATEGORIES, ResilienceProfile


@dataclass(frozen=True)
class ProfileComparison:
    """Signed per-category percentage-point differences (a - b)."""

    delta_masked: float
    delta_sdc: float
    delta_other: float

    @property
    def max_abs(self) -> float:
        return max(
            abs(self.delta_masked), abs(self.delta_sdc), abs(self.delta_other)
        )

    def __str__(self) -> str:
        return (
            f"d_masked={self.delta_masked:+.2f}pp d_sdc={self.delta_sdc:+.2f}pp "
            f"d_other={self.delta_other:+.2f}pp"
        )


def compare_profiles(a: ResilienceProfile, b: ResilienceProfile) -> ProfileComparison:
    pa, pb = a.as_percentages(), b.as_percentages()
    return ProfileComparison(
        delta_masked=pa["masked"] - pb["masked"],
        delta_sdc=pa["sdc"] - pb["sdc"],
        delta_other=pa["other"] - pb["other"],
    )


def format_profile_table(rows: list[tuple[str, ResilienceProfile, ResilienceProfile]]) -> str:
    """Fig. 9-style table: kernel, pruned vs baseline percentages, deltas."""
    header = (
        f"{'kernel':16s} | {'pruned masked/sdc/other':>28s} | "
        f"{'baseline masked/sdc/other':>28s} | {'max |err|':>9s}"
    )
    lines = [header, "-" * len(header)]
    for kernel, pruned, baseline in rows:
        pp, pb = pruned.as_percentages(), baseline.as_percentages()
        cmp_ = compare_profiles(pruned, baseline)
        lines.append(
            f"{kernel:16s} | "
            f"{pp['masked']:7.2f}/{pp['sdc']:7.2f}/{pp['other']:7.2f}    | "
            f"{pb['masked']:7.2f}/{pb['sdc']:7.2f}/{pb['other']:7.2f}    | "
            f"{cmp_.max_abs:8.2f}p"
        )
    return "\n".join(lines)


def average_absolute_errors(
    pairs: list[tuple[ResilienceProfile, ResilienceProfile]]
) -> dict[str, float]:
    """Mean |error| per category across kernels (the paper reports
    1.68 / 1.90 / 1.64 pp for masked / SDC / other)."""
    sums = {c: 0.0 for c in CATEGORIES}
    for a, b in pairs:
        pa, pb = a.as_percentages(), b.as_percentages()
        for c in CATEGORIES:
            sums[c] += abs(pa[c] - pb[c])
    n = max(len(pairs), 1)
    return {c: sums[c] / n for c in CATEGORIES}
