"""CTA/thread grouping analytics behind Figs. 2-4.

These helpers run the *empirical* (fault-injection based) groupings the
paper uses to validate that iCnt is a good classification proxy:

* :func:`cta_outcome_grouping` — Fig. 2: per-CTA distributions of
  per-thread masked percentages for one target instruction;
* :func:`cta_icnt_grouping` — Fig. 3: the same grouping driven purely by
  iCnt statistics (one fault-free run);
* :func:`thread_outcome_series` — Fig. 4: per-thread masked% and iCnt
  inside one CTA.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..faults.injector import FaultInjector
from ..faults.site import FaultSite
from ..stats.distributions import BoxStats, box_core_distance, group_by_distance


@dataclass
class CTADistribution:
    """Per-CTA summary of some per-thread metric."""

    cta: int
    values: list[float]
    box: BoxStats


@dataclass
class GroupingResult:
    distributions: list[CTADistribution]
    groups: list[list[int]]  # lists of CTA ids

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    def group_of(self, cta: int) -> int:
        for gid, members in enumerate(self.groups):
            if cta in members:
                return gid
        raise ValueError(f"CTA {cta} not grouped")


def _group(distributions: list[CTADistribution], threshold: float) -> GroupingResult:
    boxes = [d.box for d in distributions]
    index_groups = group_by_distance(boxes, box_core_distance, threshold)
    groups = [[distributions[i].cta for i in g] for g in index_groups]
    return GroupingResult(distributions=distributions, groups=groups)


def find_target_instructions(
    injector: FaultInjector, count: int = 1
) -> list[int]:
    """Pick target *static* instructions (pcs), the way the paper does.

    The paper manually selects ~5 instructions per kernel spanning opcode
    classes and code locations.  The property that matters for CTA
    grouping is *which threads execute the instruction*: divergent-region
    instructions (boundary blocks, guarded bodies) are the probes that
    expose CTA differences.  We therefore bucket destination-writing pcs
    by their per-CTA execution-count signature and pick one probe per
    distinct signature, most-executed signatures first.
    """
    geometry = injector.instance.geometry
    tpc = geometry.threads_per_cta
    per_cta_counts: dict[int, list[int]] = {}
    total: dict[int, int] = {}
    for thread, trace in enumerate(injector.traces):
        cta = thread // tpc
        for pc in {pc for pc, width in trace if width}:
            counts = per_cta_counts.setdefault(pc, [0] * geometry.n_ctas)
            counts[cta] += 1
            total[pc] = total.get(pc, 0) + 1
    if not per_cta_counts:
        raise ValueError("no destination-writing instructions traced")

    by_signature: dict[tuple, list[int]] = {}
    for pc, counts in per_cta_counts.items():
        by_signature.setdefault(tuple(counts), []).append(pc)
    # One probe per signature: the middle pc of the signature's range, so
    # probes land inside code regions rather than on their edges.
    signatures = sorted(
        by_signature.items(), key=lambda item: -sum(item[0])
    )
    picks = [pcs[len(pcs) // 2] for _sig, pcs in signatures[:count]]
    if len(picks) < count:
        # Fewer distinct signatures than requested: fill with a positional
        # spread over all candidates.
        rest = sorted(set(per_cta_counts) - set(picks))
        need = count - len(picks)
        if rest:
            spread = np.linspace(0, len(rest) - 1, need)
            picks.extend(rest[int(round(i))] for i in spread)
    return sorted(dict.fromkeys(picks))


def occurrence_of(injector: FaultInjector, thread: int, pc: int) -> int | None:
    """The middle dynamic occurrence of a static pc in a thread's trace."""
    occurrences = [
        i for i, (at, width) in enumerate(injector.traces[thread])
        if at == pc and width
    ]
    if not occurrences:
        return None
    return occurrences[len(occurrences) // 2]


def thread_masked_pct(
    injector: FaultInjector,
    thread: int,
    pc: int,
    bits: list[int] | None = None,
) -> float | None:
    """Masked% over bit positions of one static instruction in one thread.

    Returns ``None`` when the thread never executes the instruction (the
    paper's boxplots simply omit such threads).
    """
    dyn_index = occurrence_of(injector, thread, pc)
    if dyn_index is None:
        return None
    width = injector.space.width_of(thread, dyn_index)
    chosen = [b for b in (bits if bits is not None else range(width)) if b < width]
    if not chosen:
        return None
    masked = 0
    for bit in chosen:
        outcome = injector.inject(FaultSite(thread, dyn_index, bit))
        if outcome.category == "masked":
            masked += 1
    return 100.0 * masked / len(chosen)


def cta_outcome_grouping(
    injector: FaultInjector,
    pc: int | list[int],
    threads_per_cta_sample: int | None = None,
    bits: list[int] | None = None,
    threshold: float = 8.0,
    rng: np.random.Generator | int | None = None,
) -> GroupingResult:
    """Fig. 2: group CTAs by their distribution of per-thread masked%.

    ``pc`` is a target static instruction or a list of them (the paper
    hand-picks ~5 "from different code locations" per kernel; divergent
    code regions only separate CTAs when probed).  Each thread's value is
    its masked% averaged over the probes; a thread that never executes a
    probe can never corrupt anything through it and counts as 100% masked
    there — the composition effect that makes each CTA's thread-population
    mix visible, exactly like the paper's boxplots.

    ``threads_per_cta_sample=None`` uses every thread (the paper's 60K
    random injections amount to dense per-thread coverage); pass a number
    to subsample for speed.
    """
    pcs = [pc] if isinstance(pc, int) else list(pc)
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    geometry = injector.instance.geometry
    tpc = geometry.threads_per_cta
    distributions = []
    for cta in range(geometry.n_ctas):
        if threads_per_cta_sample is None or threads_per_cta_sample >= tpc:
            slots = range(tpc)
        else:
            slots = np.sort(
                rng.choice(tpc, size=threads_per_cta_sample, replace=False)
            )
        values = []
        for slot in slots:
            thread = cta * tpc + int(slot)
            per_probe = [
                thread_masked_pct(injector, thread, probe, bits) for probe in pcs
            ]
            values.append(
                float(np.mean([100.0 if p is None else p for p in per_probe]))
            )
        distributions.append(
            CTADistribution(cta=cta, values=values, box=BoxStats.from_values(values))
        )
    return _group(distributions, threshold)


def cta_icnt_grouping(
    injector: FaultInjector, threshold: float = 0.6
) -> GroupingResult:
    """Fig. 3: group CTAs by the distribution of thread iCnts (no injections)."""
    geometry = injector.instance.geometry
    tpc = geometry.threads_per_cta
    distributions = []
    for cta in range(geometry.n_ctas):
        values = [float(len(injector.traces[cta * tpc + s])) for s in range(tpc)]
        distributions.append(
            CTADistribution(cta=cta, values=values, box=BoxStats.from_values(values))
        )
    return _group(distributions, threshold)


@dataclass
class ThreadSeries:
    """Fig. 4 raw series for one CTA."""

    threads: list[int]
    masked_pct: list[float]
    icnt: list[int]


def thread_outcome_series(
    injector: FaultInjector,
    cta: int,
    pc: int,
    bits: list[int] | None = None,
) -> ThreadSeries:
    """Fig. 4 raw series: per-thread masked% at a static instruction plus
    iCnt, over one CTA.  Threads that never execute ``pc`` report None."""
    geometry = injector.instance.geometry
    tpc = geometry.threads_per_cta
    threads, masked, icnts = [], [], []
    for slot in range(tpc):
        thread = cta * tpc + slot
        threads.append(thread)
        masked.append(thread_masked_pct(injector, thread, pc, bits))
        icnts.append(len(injector.traces[thread]))
    return ThreadSeries(threads=threads, masked_pct=masked, icnt=icnts)
