"""repro — Fault-Site Pruning for Practical Reliability Analysis of GPGPU
Applications (MICRO 2018), reproduced in Python.

Quickstart::

    from repro import FaultInjector, ProgressivePruner, load_instance

    instance = load_instance("gemm.k1")          # staged workload
    injector = FaultInjector(instance)            # golden run + traces
    pruned = ProgressivePruner().prune(injector)  # 4-stage pruning
    profile = pruned.estimate_profile(injector)   # weighted exhaustive run
    print(profile)                                # masked/sdc/other %

Layers (bottom-up):

* :mod:`repro.gpu`      — functional SIMT simulator (PTXPlus-flavoured ISA)
* :mod:`repro.kernels`  — the 11 Rodinia/Polybench applications (17 kernels)
* :mod:`repro.faults`   — single-bit-flip injection + outcome classification
* :mod:`repro.stats`    — statistical-injection sample sizing (Eqs. 2-4)
* :mod:`repro.pruning`  — the paper's progressive 4-stage pruning
* :mod:`repro.analysis` — grouping analytics and table/figure data
* :mod:`repro.telemetry` — events, metrics, spans, progress, manifests
"""

from .errors import (
    FaultInjectionError,
    HangDetected,
    InvalidProgram,
    KernelAuthoringError,
    MemoryFault,
    PruningError,
    ReproError,
    SimulatorError,
)
from .faults import (
    CoherenceAudit,
    FaultInjector,
    GoldenState,
    FaultSite,
    FaultSpace,
    Outcome,
    PropagationRecord,
    PropagationTracer,
    ResilienceProfile,
    exhaustive_campaign,
    random_campaign,
    run_campaign,
    run_coherence_audit,
)
from .gpu import BACKENDS
from .kernels import KernelInstance, KernelSpec, all_kernels, get_kernel, load_instance
from .parallel import ParallelCampaignRunner, SerialExecutor, resolve_executor
from .pruning import ProgressivePruner, PrunedSpace
from .telemetry import (
    NULL_TELEMETRY,
    MetricsRegistry,
    ProgressReporter,
    RunManifest,
    Telemetry,
)

__version__ = "1.0.0"

__all__ = [
    "BACKENDS",
    "CoherenceAudit",
    "FaultInjectionError",
    "FaultInjector",
    "FaultSite",
    "FaultSpace",
    "GoldenState",
    "HangDetected",
    "InvalidProgram",
    "KernelAuthoringError",
    "KernelInstance",
    "KernelSpec",
    "MemoryFault",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "Outcome",
    "ParallelCampaignRunner",
    "ProgressReporter",
    "PropagationRecord",
    "PropagationTracer",
    "RunManifest",
    "Telemetry",
    "ProgressivePruner",
    "PrunedSpace",
    "PruningError",
    "ReproError",
    "ResilienceProfile",
    "SerialExecutor",
    "SimulatorError",
    "all_kernels",
    "exhaustive_campaign",
    "get_kernel",
    "load_instance",
    "random_campaign",
    "resolve_executor",
    "run_campaign",
    "run_coherence_audit",
    "__version__",
]
