"""Event typing, sinks, and JSONL round-trips of every event type."""

import json

import pytest

from repro.errors import ReproError
from repro.telemetry import (
    EVENT_TYPES,
    EVENTS_SCHEMA_VERSION,
    CampaignEvent,
    HeartbeatEvent,
    InjectionEvent,
    JsonlSink,
    MemorySink,
    NullSink,
    SimRunEvent,
    StageEvent,
    event_from_dict,
    event_to_dict,
    read_events,
)

SAMPLE_EVENTS = [
    SimRunEvent(
        1.0,
        kind="golden",
        n_ctas=4,
        instructions=1234,
        barrier_rounds=3,
        hang=False,
        memory_fault=False,
        duration_s=0.5,
    ),
    InjectionEvent(
        2.0,
        thread=7,
        dyn_index=19,
        bit=30,
        model="iov",
        outcome="sdc",
        fast_path=True,
        duration_s=0.001,
    ),
    StageEvent(3.0, stage="loop-wise", sites_before=800, sites_after=120,
               duration_s=0.01),
    CampaignEvent(4.0, phase="end", campaign="random", n_sites=50,
                  profile={"masked": 40.0, "sdc": 6.0, "other": 4.0}),
    HeartbeatEvent(5.0, worker="ForkPoolWorker-1", state="beat", done=12,
                   rate=3.5, effective_instructions=48_000),
]


class TestDictRoundTrip:
    @pytest.mark.parametrize("event", SAMPLE_EVENTS, ids=lambda e: type(e).__name__)
    def test_round_trip_is_lossless(self, event):
        assert event_from_dict(event_to_dict(event)) == event

    def test_every_registered_type_is_covered(self):
        covered = {type(e) for e in SAMPLE_EVENTS}
        assert covered == set(EVENT_TYPES.values())

    def test_dict_carries_record_name(self):
        assert event_to_dict(SAMPLE_EVENTS[0])["event"] == "sim_run"

    def test_unknown_record_rejected(self):
        with pytest.raises(ReproError):
            event_from_dict({"event": "bogus"})


class TestSinks:
    def test_null_sink_is_disabled_and_silent(self):
        sink = NullSink()
        assert sink.enabled is False
        sink.emit(SAMPLE_EVENTS[0])  # no-op, no error

    def test_memory_sink_keeps_order_and_filters(self):
        sink = MemorySink()
        for event in SAMPLE_EVENTS:
            sink.emit(event)
        assert sink.events == SAMPLE_EVENTS
        assert sink.of_type(InjectionEvent) == [SAMPLE_EVENTS[1]]

    def test_jsonl_sink_round_trips_every_type(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            for event in SAMPLE_EVENTS:
                sink.emit(event)
            assert sink.n_emitted == len(SAMPLE_EVENTS)
        assert read_events(path) == SAMPLE_EVENTS

    def test_jsonl_flush_each_survives_without_close(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path, flush_each=True)
        sink.emit(SAMPLE_EVENTS[0])
        # Not closed: the line must already be on disk.
        assert read_events(path) == [SAMPLE_EVENTS[0]]
        sink.close()


class TestSchemaVersioning:
    def test_jsonl_sink_writes_schema_header(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(SAMPLE_EVENTS[0])
            assert sink.n_emitted == 1  # header not counted
        header = json.loads(path.read_text().splitlines()[0])
        assert header["schema"] == EVENTS_SCHEMA_VERSION
        assert "event" not in header

    def test_headerless_legacy_log_still_reads(self, tmp_path):
        path = tmp_path / "legacy.jsonl"
        path.write_text(
            json.dumps(event_to_dict(SAMPLE_EVENTS[1])) + "\n"
        )
        assert read_events(path) == [SAMPLE_EVENTS[1]]

    def test_newer_schema_rejected_loudly(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps({"schema": EVENTS_SCHEMA_VERSION + 1}) + "\n"
            + json.dumps(event_to_dict(SAMPLE_EVENTS[0])) + "\n"
        )
        with pytest.raises(ReproError, match="upgrade"):
            read_events(path)

    def test_garbage_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"schema": "vNext"}) + "\n")
        with pytest.raises(ReproError):
            read_events(path)

    def test_unknown_event_fields_are_ignored(self, tmp_path):
        # A same-major log from a slightly newer writer may carry extra
        # per-event fields; readers drop them instead of crashing.
        record = event_to_dict(SAMPLE_EVENTS[1])
        record["novel_field"] = 42
        path = tmp_path / "extra.jsonl"
        path.write_text(json.dumps(record) + "\n")
        assert read_events(path) == [SAMPLE_EVENTS[1]]


class TestTruncationTolerance:
    """A writer killed mid-record must not lose its completed events."""

    def _write(self, path, events, trailing):
        sink = JsonlSink(path)
        for event in events:
            sink.emit(event)
        sink.close()
        with open(path, "a") as handle:
            handle.write(trailing)

    def test_truncated_trailing_line_warns_and_keeps_events(self, tmp_path):
        path = tmp_path / "killed.jsonl"
        self._write(path, SAMPLE_EVENTS,
                    '{"event": "injection", "thread": 3, "dyn')
        with pytest.warns(UserWarning, match="truncated trailing line"):
            events = read_events(path)
        assert events == SAMPLE_EVENTS

    def test_trailing_junk_after_newline_also_tolerated(self, tmp_path):
        path = tmp_path / "killed.jsonl"
        self._write(path, SAMPLE_EVENTS[:2], '{"ev')
        with pytest.warns(UserWarning):
            assert read_events(path) == SAMPLE_EVENTS[:2]

    def test_midfile_corruption_still_raises(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        sink = JsonlSink(path)
        sink.emit(SAMPLE_EVENTS[0])
        sink.close()
        lines = path.read_text().splitlines()
        lines.insert(1, "{broken")  # between header and a complete event
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ReproError, match="corrupt at line 2"):
            read_events(path)

    def test_intact_log_reads_without_warning(self, tmp_path):
        import warnings as _warnings

        path = tmp_path / "ok.jsonl"
        sink = JsonlSink(path)
        for event in SAMPLE_EVENTS:
            sink.emit(event)
        sink.close()
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            assert read_events(path) == SAMPLE_EVENTS
