"""Span nesting, aggregation and the timer's snapshot/render API."""

import pytest

from repro.telemetry import SpanTimer


class FakeClock:
    """Deterministic clock: each read advances by ``step`` seconds."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestSpanNesting:
    def test_nested_spans_get_joined_paths(self):
        timer = SpanTimer(clock=FakeClock())
        with timer.span("outer"):
            assert timer.current_path == "outer"
            with timer.span("inner"):
                assert timer.current_path == "outer/inner"
                assert timer.depth == 2
        assert timer.depth == 0
        assert set(timer.stats) == {"outer", "outer/inner"}

    def test_same_name_different_parents_stay_separate(self):
        timer = SpanTimer(clock=FakeClock())
        with timer.span("a"):
            with timer.span("work"):
                pass
        with timer.span("b"):
            with timer.span("work"):
                pass
        assert "a/work" in timer.stats
        assert "b/work" in timer.stats
        assert "work" not in timer.stats

    def test_stack_unwinds_on_exception(self):
        timer = SpanTimer(clock=FakeClock())
        with pytest.raises(ValueError):
            with timer.span("boom"):
                raise ValueError("x")
        assert timer.depth == 0
        assert timer.stats["boom"].count == 1


class TestAggregation:
    def test_repeat_spans_aggregate(self):
        clock = FakeClock(step=1.0)
        timer = SpanTimer(clock=clock)
        for _ in range(3):
            with timer.span("phase"):
                pass
        stats = timer.stats["phase"]
        assert stats.count == 3
        # Every enter/exit pair reads the clock twice -> 1s per span.
        assert stats.total_s == pytest.approx(3.0)
        assert stats.mean_s == pytest.approx(1.0)
        assert stats.min_s == pytest.approx(1.0)
        assert stats.max_s == pytest.approx(1.0)

    def test_total_helper_defaults_to_zero(self):
        timer = SpanTimer()
        assert timer.total("missing") == 0.0

    def test_snapshot_and_render(self):
        timer = SpanTimer(clock=FakeClock())
        with timer.span("phase"):
            pass
        snap = timer.snapshot()
        assert snap["phase"]["count"] == 1
        assert "phase" in timer.render()

    def test_empty_render_placeholder(self):
        assert "no spans" in SpanTimer().render()
