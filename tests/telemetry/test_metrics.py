"""Counter/gauge/histogram math and the registry snapshot/render API."""

import pytest

from repro.telemetry import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter()
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_accepts_float_increments(self):
        c = Counter()
        c.inc(0.5)
        c.inc(0.25)
        assert c.value == pytest.approx(0.75)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge()
        g.set(3.0)
        g.set(-1.5)
        assert g.value == -1.5


class TestHistogram:
    def test_summary_stats(self):
        h = Histogram()
        for v in (2.0, 8.0, 5.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == pytest.approx(15.0)
        assert h.min == 2.0
        assert h.max == 8.0
        assert h.mean == pytest.approx(5.0)

    def test_empty_summary_is_json_safe(self):
        summary = Histogram().summary()
        assert summary["count"] == 0
        assert summary["min"] is None and summary["max"] is None

    def test_single_observation(self):
        h = Histogram()
        h.observe(1.5)
        assert h.min == h.max == h.mean == 1.5


class TestMetricsRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("runs").inc(7)
        reg.gauge("factor").set(2.5)
        reg.histogram("dt").observe(0.1)
        snap = reg.snapshot()
        assert snap["counters"] == {"runs": 7}
        assert snap["gauges"] == {"factor": 2.5}
        assert snap["histograms"]["dt"]["count"] == 1

    def test_render_lists_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("runs").inc()
        reg.gauge("factor").set(1.0)
        reg.histogram("dt").observe(0.5)
        text = reg.render()
        for fragment in ("counters:", "gauges:", "histograms:", "runs", "factor"):
            assert fragment in text

    def test_empty_registry_renders_placeholder(self):
        assert "no metrics" in MetricsRegistry().render()
