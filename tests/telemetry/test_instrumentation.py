"""End-to-end instrumentation: events/metrics from real campaigns, and
the regression pinning that the null sink changes nothing."""

import json

import numpy as np
import pytest

from repro import FaultInjector, ProgressivePruner, exhaustive_campaign, run_campaign
from repro.faults.persistence import campaign_to_dict
from repro.telemetry import (
    CampaignEvent,
    InjectionEvent,
    MemorySink,
    SimRunEvent,
    StageEvent,
    Telemetry,
)

from ..helpers import build_saxpy_instance


@pytest.fixture()
def live():
    telemetry = Telemetry(sink=MemorySink())
    injector = FaultInjector(build_saxpy_instance(n=6, block=3), telemetry=telemetry)
    return injector, telemetry


class TestInjectorInstrumentation:
    def test_golden_run_emits_sim_run_event(self, live):
        injector, telemetry = live
        runs = telemetry.sink.of_type(SimRunEvent)
        assert len(runs) == 1
        assert runs[0].kind == "golden"
        assert runs[0].instructions > 0
        assert telemetry.metrics.counter("sim.launches").value == 1
        assert telemetry.spans.stats["golden-run"].count == 1

    def test_each_injection_emits_one_event(self, live):
        injector, telemetry = live
        sites = injector.space.sample(5, np.random.default_rng(0))
        outcomes = [injector.inject(site) for site in sites]
        events = telemetry.sink.of_type(InjectionEvent)
        assert len(events) == 5
        for site, outcome, event in zip(sites, outcomes, events):
            assert (event.thread, event.dyn_index, event.bit) == (
                site.thread, site.dyn_index, site.bit,
            )
            assert event.outcome == outcome.value
            assert event.model == "iov"
            assert event.duration_s > 0
        assert telemetry.metrics.counter("injections.total").value == 5
        assert telemetry.metrics.histogram("injection_s").count == 5

    def test_fast_path_vs_full_rerun_counters(self, live):
        injector, telemetry = live
        site = injector.space.sample(1, np.random.default_rng(1))[0]
        injector.inject(site)
        injector.inject_full(site)
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["injections.total"] == 2
        assert counters["injections.fast_path"] == 1
        assert counters["injections.full_rerun"] == 1
        fast, full = telemetry.sink.of_type(InjectionEvent)
        assert fast.fast_path is True
        assert full.fast_path is False

    def test_outcome_counters_sum_to_total(self, live):
        injector, telemetry = live
        for site in injector.space.sample(8, np.random.default_rng(2)):
            injector.inject(site)
        counters = telemetry.metrics.snapshot()["counters"]
        outcome_total = sum(
            v for k, v in counters.items() if k.startswith("outcome.")
        )
        assert outcome_total == counters["injections.total"] == 8


class TestCampaignInstrumentation:
    def test_campaign_events_bracket_the_run(self, live):
        injector, telemetry = live
        sites = injector.space.sample(4, np.random.default_rng(3))
        run_campaign(injector, sites)  # telemetry defaults to the injector's
        start, end = telemetry.sink.of_type(CampaignEvent)
        assert (start.phase, start.campaign, start.n_sites) == ("start", "explicit", 4)
        assert (end.phase, end.n_sites) == ("end", 4)
        assert sum(end.profile.values()) == pytest.approx(4.0)

    def test_progress_called_once_per_injection(self, live):
        injector, _ = live
        calls = []
        sites = injector.space.sample(6, np.random.default_rng(4))
        run_campaign(injector, sites, progress=lambda done, total:
                     calls.append((done, total)))
        assert calls == [(i, 6) for i in range(1, 7)]

    def test_streaming_generator_input(self, live):
        injector, _ = live
        calls = []
        result = exhaustive_campaign(
            injector,
            threads=[0],
            progress=lambda done, total: calls.append((done, total)),
        )
        expected = injector.space.thread_sites(0)
        assert result.n_runs == expected
        assert calls[-1] == (expected, expected)

    def test_keep_sites_false_drops_lists_but_keeps_profile(self, live):
        injector, _ = live
        sites = injector.space.sample(5, np.random.default_rng(5))
        slim = run_campaign(injector, sites, keep_sites=False)
        fat = run_campaign(injector, sites)
        assert slim.sites == [] and slim.outcomes == []
        assert slim.n_runs == 5
        assert slim.profile.weights == fat.profile.weights


class TestPrunerInstrumentation:
    def test_stage_events_and_gauges(self, live):
        injector, telemetry = live
        pruner = ProgressivePruner(num_loop_iters=2, n_bits=4)
        space = pruner.prune(injector)
        events = telemetry.sink.of_type(StageEvent)
        assert [e.stage for e in events] == [
            "thread-wise", "instruction-wise", "loop-wise", "bit-wise",
        ]
        assert events[0].sites_before == injector.space.total_sites
        for previous, current in zip(events, events[1:]):
            assert current.sites_before == previous.sites_after
        assert events[-1].sites_after == space.n_injections
        gauges = telemetry.metrics.snapshot()["gauges"]
        assert gauges["prune.bit-wise.sites_after"] == space.n_injections

    def test_prune_progress_fires_per_stage(self, live):
        injector, _ = live
        calls = []
        ProgressivePruner(num_loop_iters=2, n_bits=4).prune(
            injector, progress=lambda done, total: calls.append((done, total))
        )
        assert calls == [(1, 4), (2, 4), (3, 4), (4, 4)]

    def test_estimate_profile_emits_per_injection(self, live):
        injector, telemetry = live
        space = ProgressivePruner(num_loop_iters=2, n_bits=4).prune(injector)
        before = len(telemetry.sink.of_type(InjectionEvent))
        space.estimate_profile(injector)
        emitted = len(telemetry.sink.of_type(InjectionEvent)) - before
        assert emitted == space.n_injections


class TestNullSinkRegression:
    def test_null_telemetry_result_is_byte_identical(self):
        """The default (null) telemetry must not perturb campaign results."""
        bare = FaultInjector(build_saxpy_instance(n=6, block=3))
        instrumented = FaultInjector(
            build_saxpy_instance(n=6, block=3),
            telemetry=Telemetry(sink=MemorySink()),
        )
        sites = bare.space.sample(12, np.random.default_rng(6))
        result_bare = run_campaign(bare, sites)
        result_live = run_campaign(instrumented, sites)
        blob_bare = json.dumps(campaign_to_dict(result_bare, "saxpy"), sort_keys=True)
        blob_live = json.dumps(campaign_to_dict(result_live, "saxpy"), sort_keys=True)
        assert blob_bare == blob_live

    def test_null_telemetry_pruned_profile_identical(self):
        bare = FaultInjector(build_saxpy_instance(n=6, block=3))
        instrumented = FaultInjector(
            build_saxpy_instance(n=6, block=3),
            telemetry=Telemetry(sink=MemorySink()),
        )
        pruner = ProgressivePruner(num_loop_iters=2, n_bits=4)
        profile_bare = pruner.prune(bare).estimate_profile(bare)
        profile_live = pruner.prune(instrumented).estimate_profile(instrumented)
        assert profile_bare.weights == profile_live.weights
        assert profile_bare.n_injections == profile_live.n_injections
