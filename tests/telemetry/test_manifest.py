"""Run-manifest creation, environment capture and round-trip."""

import json

import pytest

from repro.errors import ReproError
from repro.faults import ResilienceProfile
from repro.faults.outcome import Outcome
from repro.telemetry import (
    RunManifest,
    Telemetry,
    git_revision,
    library_versions,
    load_manifest,
)


class TestEnvironmentCapture:
    def test_library_versions_keys(self):
        versions = library_versions()
        assert set(versions) >= {"python", "numpy", "repro"}
        assert all(isinstance(v, str) and v for v in versions.values())

    def test_git_revision_in_this_repo(self):
        rev = git_revision()
        assert rev is None or (len(rev) == 40 and all(c in "0123456789abcdef"
                                                      for c in rev))

    def test_git_revision_outside_repo(self, tmp_path):
        assert git_revision(cwd=tmp_path) is None


class TestRoundTrip:
    def test_create_write_load(self, tmp_path):
        manifest = RunManifest.create(
            kernel="gemm.k1",
            command="profile",
            config={"bits": 4},
            seed=7,
            events_path=tmp_path / "ev.jsonl",
        )
        profile = ResilienceProfile()
        profile.add(Outcome.MASKED, 3.0)
        profile.add(Outcome.SDC, 1.0)
        manifest.record_profile(profile)
        manifest.finalize(wall_clock_s=1.25)
        path = tmp_path / "run.json"
        manifest.write(path)

        loaded = load_manifest(path)
        assert loaded.kernel == "gemm.k1"
        assert loaded.config == {"bits": 4}
        assert loaded.seed == 7
        assert loaded.profile["weights"]["masked"] == 3.0
        assert loaded.profile["n_injections"] == 2
        assert loaded.profile["percentages"]["masked"] == pytest.approx(75.0)
        assert loaded.wall_clock_s == 1.25
        assert loaded.versions == manifest.versions

    def test_finalize_captures_telemetry_snapshots(self):
        telemetry = Telemetry()
        telemetry.count("injections.total", 5)
        with telemetry.span("phase"):
            pass
        manifest = RunManifest.create(kernel="x")
        manifest.finalize(telemetry, wall_clock_s=0.5)
        assert manifest.metrics["counters"]["injections.total"] == 5
        assert manifest.spans["phase"]["count"] == 1

    def test_unsupported_version_rejected(self, tmp_path):
        manifest = RunManifest.create(kernel="x")
        path = tmp_path / "run.json"
        manifest.write(path)
        data = json.loads(path.read_text())
        data["version"] = 99
        path.write_text(json.dumps(data))
        with pytest.raises(ReproError):
            load_manifest(path)

    def test_manifest_json_is_plain_data(self, tmp_path):
        manifest = RunManifest.create(kernel="x", config={"a": 1})
        path = tmp_path / "run.json"
        manifest.write(path)
        data = json.loads(path.read_text())
        assert data["kernel"] == "x"
        assert data["version"] == 1
