"""Progress reporter: callbacks, rate/ETA math, stream rendering."""

import io

from repro.telemetry import ProgressReporter


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, dt: float) -> None:
        self.now += dt

    def __call__(self) -> float:
        return self.now


class TestCallbacks:
    def test_callback_fires_once_per_update(self):
        seen = []
        reporter = ProgressReporter(total=10, callback=lambda r: seen.append(r.done))
        for _ in range(10):
            reporter.update()
        assert seen == list(range(1, 11))

    def test_callable_interface_sets_absolute_position(self):
        reporter = ProgressReporter()
        reporter(3, 30)
        assert reporter.done == 3
        assert reporter.total == 30
        reporter(4)
        assert reporter.done == 4
        assert reporter.total == 30


class TestRateAndEta:
    def test_rate_and_eta_from_clock(self):
        clock = FakeClock()
        reporter = ProgressReporter(total=100, clock=clock)
        reporter.start()
        clock.advance(10.0)
        reporter(20)
        assert reporter.rate == 2.0
        assert reporter.eta_s == 40.0

    def test_eta_none_without_total_or_rate(self):
        reporter = ProgressReporter()
        assert reporter.eta_s is None
        clock = FakeClock()
        untimed = ProgressReporter(total=5, clock=clock)
        assert untimed.eta_s is None  # no progress yet -> rate 0

    def test_eta_clamps_at_zero_when_overshooting(self):
        clock = FakeClock()
        reporter = ProgressReporter(total=10, clock=clock)
        reporter.start()
        clock.advance(1.0)
        reporter(15)
        assert reporter.eta_s == 0.0


class TestRendering:
    def test_stream_gets_throttled_updates_and_final_line(self):
        clock = FakeClock()
        stream = io.StringIO()
        reporter = ProgressReporter(
            total=4, label="inj", stream=stream, min_interval_s=100.0, clock=clock
        )
        reporter.update()  # first render (interval satisfied at t=0)
        reporter.update()  # throttled
        reporter.update()  # throttled
        reporter.update()  # final: done == total always renders
        reporter.close()
        text = stream.getvalue()
        assert "inj: 4/4 (100.0%)" in text
        assert text.endswith("\n")
        # Throttle: the 2/4 and 3/4 lines must have been suppressed.
        assert "2/4" not in text
        assert "3/4" not in text

    def test_render_line_without_total(self):
        reporter = ProgressReporter()
        reporter.update(7)
        assert reporter.render_line().startswith("7")

    def test_context_manager_closes_stream(self):
        stream = io.StringIO()
        with ProgressReporter(total=1, stream=stream) as reporter:
            reporter.update()
        assert stream.getvalue().endswith("\n")
