"""Progress reporter: callbacks, rate/ETA math, stream rendering."""

import io

import pytest

from repro.telemetry import ProgressReporter


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, dt: float) -> None:
        self.now += dt

    def __call__(self) -> float:
        return self.now


class TestCallbacks:
    def test_callback_fires_once_per_update(self):
        seen = []
        reporter = ProgressReporter(total=10, callback=lambda r: seen.append(r.done))
        for _ in range(10):
            reporter.update()
        assert seen == list(range(1, 11))

    def test_callable_interface_sets_absolute_position(self):
        reporter = ProgressReporter()
        reporter(3, 30)
        assert reporter.done == 3
        assert reporter.total == 30
        reporter(4)
        assert reporter.done == 4
        assert reporter.total == 30


class TestRateAndEta:
    def test_rate_and_eta_from_clock(self):
        clock = FakeClock()
        reporter = ProgressReporter(total=100, clock=clock)
        reporter.start()
        clock.advance(10.0)
        reporter(20)
        assert reporter.rate == 2.0
        assert reporter.eta_s == 40.0

    def test_eta_none_without_total_or_rate(self):
        reporter = ProgressReporter()
        assert reporter.eta_s is None
        clock = FakeClock()
        untimed = ProgressReporter(total=5, clock=clock)
        assert untimed.eta_s is None  # no progress yet -> rate 0

    def test_eta_clamps_at_zero_when_overshooting(self):
        clock = FakeClock()
        reporter = ProgressReporter(total=10, clock=clock)
        reporter.start()
        clock.advance(1.0)
        reporter(15)
        assert reporter.eta_s == 0.0


class TestRendering:
    def test_stream_gets_throttled_updates_and_final_line(self):
        clock = FakeClock()
        stream = io.StringIO()
        reporter = ProgressReporter(
            total=4, label="inj", stream=stream, min_interval_s=100.0, clock=clock
        )
        reporter.update()  # first render (interval satisfied at t=0)
        reporter.update()  # throttled
        reporter.update()  # throttled
        reporter.update()  # final: done == total always renders
        reporter.close()
        text = stream.getvalue()
        assert "inj: 4/4 (100.0%)" in text
        assert text.endswith("\n")
        # Throttle: the 2/4 and 3/4 lines must have been suppressed.
        assert "2/4" not in text
        assert "3/4" not in text

    def test_render_line_without_total(self):
        reporter = ProgressReporter()
        reporter.update(7)
        assert reporter.render_line().startswith("7")

    def test_context_manager_closes_stream(self):
        stream = io.StringIO()
        with ProgressReporter(total=1, stream=stream) as reporter:
            reporter.update()
        assert stream.getvalue().endswith("\n")


class TestHeartbeat:
    def make(self, clock, stream, heartbeat_s=5.0, total=100):
        return ProgressReporter(
            total=total, label="camp", stream=stream, clock=clock,
            heartbeat_s=heartbeat_s,
        )

    def test_heartbeats_are_periodic_newline_lines(self):
        clock, stream = FakeClock(), io.StringIO()
        reporter = self.make(clock, stream)
        for _ in range(20):
            clock.advance(1.0)
            reporter.update()
        lines = stream.getvalue().splitlines()
        # t=1 (first advance), then every >=5s: t=6, t=11, t=16.
        assert reporter.heartbeats_emitted == 4
        assert len(lines) == 4
        assert all(line.startswith("camp: heartbeat ") for line in lines)
        assert "\r" not in stream.getvalue()

    def test_rolling_rate_tracks_recent_speed(self):
        clock = FakeClock()
        reporter = ProgressReporter(total=1000, clock=clock, heartbeat_s=5.0)
        reporter.start()
        # 100 units in the first 10s, then a slowdown to 1 unit/s.
        clock.advance(10.0)
        reporter(100)
        for done in range(101, 112):
            clock.advance(1.0)
            reporter(done)
        # Cumulative rate still remembers the fast start...
        assert reporter.rate > 5.0
        # ...the rolling window reports the current pace.
        assert reporter.rolling_rate == pytest.approx(1.0, rel=0.3)
        assert reporter.eta_s == pytest.approx(
            (1000 - reporter.done) / reporter.rolling_rate
        )

    def test_close_always_flushes_final_heartbeat(self):
        clock, stream = FakeClock(), io.StringIO()
        reporter = self.make(clock, stream, heartbeat_s=60.0, total=3)
        clock.advance(0.5)
        reporter.update(3)  # first advance emits immediately
        reporter.close()  # short campaign: closing emits the 3/3 line
        lines = stream.getvalue().splitlines()
        assert reporter.heartbeats_emitted == 2
        assert lines[-1].startswith("camp: heartbeat 3/3")

    def test_intermediate_updates_between_beats_are_silent(self):
        clock, stream = FakeClock(), io.StringIO()
        reporter = self.make(clock, stream)
        clock.advance(1.0)
        reporter.update()  # beat
        for _ in range(3):
            clock.advance(0.5)
            reporter.update()  # within the 5s period: silent
        assert reporter.heartbeats_emitted == 1
        assert reporter.done == 4
