"""Merging worker telemetry snapshots into a parent handle."""

from __future__ import annotations

from repro.telemetry import (
    InjectionEvent,
    MemorySink,
    MetricsRegistry,
    SpanTimer,
    Telemetry,
    event_to_dict,
)


class TestMetricsMerge:
    def test_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").inc(3)
        b.counter("x").inc(4)
        b.counter("y").inc(1)
        a.merge(b.snapshot())
        assert a.counter("x").value == 7
        assert a.counter("y").value == 1

    def test_gauges_last_write_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(1.0)
        b.gauge("g").set(5.0)
        a.merge(b.snapshot())
        assert a.gauge("g").value == 5.0

    def test_histograms_combine_like_one_stream(self):
        a, b, whole = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
        for value in (0.1, 0.5):
            a.histogram("h").observe(value)
            whole.histogram("h").observe(value)
        for value in (0.05, 0.9, 0.2):
            b.histogram("h").observe(value)
            whole.histogram("h").observe(value)
        a.merge(b.snapshot())
        assert a.histogram("h").summary() == whole.histogram("h").summary()

    def test_empty_histogram_snapshot_is_noop(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.histogram("h")  # created but never observed
        a.merge(b.snapshot())
        assert a.histogram("h").count == 0


class TestSpanMerge:
    def test_spans_combine_like_one_timer(self):
        ticks = iter(range(100))
        a = SpanTimer(clock=lambda: next(ticks))
        b = SpanTimer(clock=lambda: next(ticks))
        with a.span("injection"):
            pass
        with b.span("injection"):
            with b.span("sim"):
                pass
        a.merge(b.snapshot())
        assert a.stats["injection"].count == 2
        assert "injection/sim" in a.stats

    def test_min_max_combine(self):
        from repro.telemetry.timing import SpanStats

        a, b = SpanTimer(), SpanTimer()
        for timer, dt in ((a, 1.0), (a, 3.0), (b, 0.5), (b, 9.0)):
            timer.stats.setdefault("p", SpanStats()).record(dt)
        a.merge(b.snapshot())
        merged = a.stats["p"]
        assert merged.count == 4
        assert merged.min_s == 0.5
        assert merged.max_s == 9.0
        assert merged.total_s == 13.5


class TestTelemetryAbsorb:
    def test_absorb_reemits_events_and_merges_metrics(self):
        worker = Telemetry(sink=MemorySink())
        worker.count("injections.total", 3)
        worker.observe("injection_s", 0.25)
        worker.emit(
            InjectionEvent(
                1.0, thread=0, dyn_index=0, bit=0, model="value",
                outcome="masked", fast_path=True, duration_s=0.25,
            )
        )
        snapshot = {
            "events": [event_to_dict(e) for e in worker.sink.events],
            "metrics": worker.metrics.snapshot(),
            "spans": worker.spans.snapshot(),
        }
        parent = Telemetry(sink=MemorySink())
        parent.count("injections.total", 2)
        parent.absorb(snapshot)
        assert parent.metrics.counter("injections.total").value == 5
        assert parent.metrics.histogram("injection_s").count == 1
        events = parent.sink.events
        assert len(events) == 1
        assert isinstance(events[0], InjectionEvent)
        assert events[0].outcome == "masked"

    def test_absorb_empty_snapshot(self):
        parent = Telemetry(sink=MemorySink())
        parent.absorb({})
        assert parent.sink.events == []

    def test_absorb_stamps_worker_onto_events(self):
        worker = Telemetry(sink=MemorySink())
        worker.emit(
            InjectionEvent(
                1.0, thread=0, dyn_index=0, bit=0, model="value",
                outcome="masked", fast_path=True, duration_s=0.25,
            )
        )
        parent = Telemetry(sink=MemorySink())
        parent.absorb({
            "events": [event_to_dict(e) for e in worker.sink.events],
            "worker": "PoolWorker-7",
        })
        assert parent.sink.events[0].worker == "PoolWorker-7"

    def test_store_gauges_sum_per_worker(self):
        """Regression: checkpoint store gauges from different workers must
        sum into the headline gauge instead of last-write-winning."""
        parent = Telemetry(sink=MemorySink())
        for name, nbytes in (("w1", 1000.0), ("w2", 300.0)):
            snapshot = {
                "metrics": {
                    "counters": {"checkpoint.thread_hits": 2},
                    "gauges": {"checkpoint.bytes": nbytes},
                    "histograms": {},
                },
                "worker": name,
            }
            parent.absorb(snapshot)
        gauges = parent.metrics.snapshot()["gauges"]
        assert gauges["checkpoint.bytes"] == 1300.0
        assert gauges["checkpoint.bytes[w1]"] == 1000.0
        assert gauges["checkpoint.bytes[w2]"] == 300.0
        # Counters keep plain summing.
        assert parent.metrics.counter("checkpoint.thread_hits").value == 4

    def test_resent_worker_gauge_updates_not_double_counts(self):
        parent = Telemetry(sink=MemorySink())
        for nbytes in (500.0, 800.0):  # same worker reporting twice
            parent.absorb({
                "metrics": {
                    "counters": {},
                    "gauges": {"checkpoint.bytes": nbytes},
                    "histograms": {},
                },
                "worker": "w1",
            })
        gauges = parent.metrics.snapshot()["gauges"]
        assert gauges["checkpoint.bytes"] == 800.0

    def test_workerless_gauges_keep_last_write_semantics(self):
        parent = Telemetry(sink=MemorySink())
        parent.absorb({
            "metrics": {
                "counters": {},
                "gauges": {"checkpoint.bytes": 123.0},
                "histograms": {},
            },
        })
        assert parent.metrics.snapshot()["gauges"]["checkpoint.bytes"] == 123.0
