"""Resilience-report rendering tests."""

import pytest

from repro import FaultInjector, ProgressivePruner
from repro.analysis import instruction_vulnerabilities, render_report

from ..helpers import build_saxpy_instance


@pytest.fixture(scope="module")
def bundle():
    injector = FaultInjector(build_saxpy_instance())
    space = ProgressivePruner(n_bits=4).prune(injector)
    profile = space.estimate_profile(injector)
    return injector, space, profile


class TestVulnerabilityRanking:
    def test_rows_sorted_by_impact(self, bundle):
        injector, space, _ = bundle
        rows = instruction_vulnerabilities(injector, space)
        impacts = [r.impact for r in rows]
        assert impacts == sorted(impacts, reverse=True)

    def test_weights_cover_pruned_space(self, bundle):
        injector, space, _ = bundle
        rows = instruction_vulnerabilities(injector, space)
        total = sum(r.weighted_sites for r in rows)
        assert total == pytest.approx(sum(ws.weight for ws in space.sites))

    def test_fractions_in_range(self, bundle):
        injector, space, _ = bundle
        for row in instruction_vulnerabilities(injector, space):
            assert 0.0 <= row.unsafe_fraction <= 1.0


class TestRenderReport:
    def test_contains_all_sections(self, bundle):
        injector, space, profile = bundle
        text = render_report(injector, space, profile)
        for heading in ("# Resilience report", "## Pruning",
                        "## Estimated error-resilience profile",
                        "## Hardening priorities"):
            assert heading in text

    def test_profile_numbers_rendered(self, bundle):
        injector, space, profile = bundle
        text = render_report(injector, space, profile)
        assert f"{profile.pct_masked:.2f}%" in text

    def test_reduction_and_stage_rows(self, bundle):
        injector, space, profile = bundle
        text = render_report(injector, space, profile)
        for stage in space.stages:
            assert stage.name in text

    def test_cli_report(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "r.md"
        assert main(["report", "gaussian.k125", "--bits", "4",
                     "--loop-iters", "2", "--out", str(out)]) == 0
        assert "# Resilience report" in out.read_text()
