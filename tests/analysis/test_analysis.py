"""Analysis-layer tests: grouping analytics, profile comparison, tables."""

import numpy as np
import pytest

from repro import Outcome, ResilienceProfile, all_kernels
from repro.analysis import (
    average_absolute_errors,
    cta_icnt_grouping,
    cta_outcome_grouping,
    compare_profiles,
    find_target_instructions,
    format_group_table,
    format_profile_table,
    format_table1,
    format_table7,
    group_table,
    thread_masked_pct,
    thread_outcome_series,
)
from repro.pruning import prune_threads
from tests.conftest import injector_for


class TestProfileComparison:
    def _profiles(self):
        a = ResilienceProfile.from_outcomes([Outcome.MASKED, Outcome.SDC])
        b = ResilienceProfile.from_outcomes([Outcome.MASKED, Outcome.MASKED])
        return a, b

    def test_signed_deltas(self):
        a, b = self._profiles()
        cmp_ = compare_profiles(a, b)
        assert cmp_.delta_masked == -50.0
        assert cmp_.delta_sdc == 50.0
        assert cmp_.delta_other == 0.0
        assert cmp_.max_abs == 50.0

    def test_average_absolute_errors(self):
        a, b = self._profiles()
        avg = average_absolute_errors([(a, b), (a, a)])
        assert avg["masked"] == 25.0
        assert avg["sdc"] == 25.0
        assert avg["other"] == 0.0

    def test_format_profile_table(self):
        a, b = self._profiles()
        text = format_profile_table([("gemm.k1", a, b)])
        assert "gemm.k1" in text
        assert "50.00" in text


class TestGroupingAnalytics:
    def test_icnt_grouping_matches_thread_wise_structure(self):
        inj = injector_for("2dconv.k1")
        grouping = cta_icnt_grouping(inj)
        assert grouping.n_groups == 3
        # Group membership should match the mean-iCnt classification.
        tw = prune_threads(inj.traces, inj.instance.geometry)
        tw_sets = {frozenset(g.ctas) for g in tw.cta_groups}
        an_sets = {frozenset(g) for g in grouping.groups}
        assert tw_sets == an_sets

    def test_outcome_grouping_runs_and_groups(self):
        inj = injector_for("2dconv.k1")
        pc = find_target_instructions(inj)[0]
        grouping = cta_outcome_grouping(
            inj, pc, threads_per_cta_sample=4, bits=[3, 11, 19, 27], rng=0
        )
        assert 1 <= grouping.n_groups <= inj.instance.geometry.n_ctas
        covered = sorted(c for g in grouping.groups for c in g)
        assert covered == list(range(inj.instance.geometry.n_ctas))

    def test_thread_masked_pct_bounds(self):
        inj = injector_for("gemm.k1")
        pc = find_target_instructions(inj)[0]
        pct = thread_masked_pct(inj, 0, pc, bits=[0, 15, 31])
        assert pct is not None
        assert 0.0 <= pct <= 100.0

    def test_thread_masked_pct_none_for_unexecuted_pc(self):
        inj = injector_for("2dconv.k1")
        # A border thread never executes the stencil body's last pc.
        body_pc = max(pc for pc, w in inj.traces[65] if w)
        short_thread = min(
            range(len(inj.traces)), key=lambda t: len(inj.traces[t])
        )
        if all(pc != body_pc for pc, _ in inj.traces[short_thread]):
            assert thread_masked_pct(inj, short_thread, body_pc) is None

    def test_target_instructions_cover_distinct_patterns(self):
        """Probes are chosen per execution-pattern signature: each must be
        executed by at least one thread, and they must not all share the
        same thread population (HotSpot has divergent boundary blocks)."""
        inj = injector_for("hotspot.k1")
        populations = []
        for pc in find_target_instructions(inj, count=4):
            executing = frozenset(
                t for t, trace in enumerate(inj.traces)
                if any(p == pc and w for p, w in trace)
            )
            assert executing
            populations.append(executing)
        assert len(set(populations)) >= 2

    def test_thread_outcome_series_shape(self):
        inj = injector_for("gemm.k1")
        pc = find_target_instructions(inj)[0]
        series = thread_outcome_series(inj, cta=0, pc=pc, bits=[7, 23])
        tpc = inj.instance.geometry.threads_per_cta
        assert len(series.threads) == tpc
        assert len(series.masked_pct) == tpc
        assert len(series.icnt) == tpc

    def test_group_of(self):
        inj = injector_for("2dconv.k1")
        grouping = cta_icnt_grouping(inj)
        for cta in range(inj.instance.geometry.n_ctas):
            assert 0 <= grouping.group_of(cta) < grouping.n_groups
        with pytest.raises(ValueError):
            grouping.group_of(10_000)


class TestTableRenderers:
    def test_table1_contains_all_kernels(self):
        rows = []
        for spec in all_kernels()[:3]:
            inj = injector_for(spec.key)
            rows.append((spec, inj.instance.geometry.n_threads, inj.space.total_sites))
        text = format_table1(rows)
        for spec, _, _ in rows:
            assert spec.kernel_name in text

    def test_group_table_renders(self):
        inj = injector_for("2dconv.k1")
        tw = prune_threads(inj.traces, inj.instance.geometry)
        text = format_group_table(group_table(tw, inj.instance.geometry.n_ctas))
        assert "C-1" in text
        assert "T-11" in text
        assert "%" in text

    def test_table7_renders(self):
        from repro import get_kernel

        spec = get_kernel("mvt.k1")
        text = format_table7([(spec, 48, 48, 99.7)])
        assert "MVT" in text
        assert "99.70%" in text
