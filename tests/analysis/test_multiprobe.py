"""Multi-probe outcome grouping + target-selection diversity tests."""

import numpy as np
import pytest

from repro.analysis import (
    cta_outcome_grouping,
    find_target_instructions,
)
from repro.analysis.grouping import occurrence_of
from tests.conftest import injector_for


class TestOccurrenceOf:
    def test_middle_occurrence_in_loop(self):
        inj = injector_for("gemm.k1")
        # The k-loop body pc occurs 16 times; occurrence_of picks a middle one.
        from collections import Counter

        counts = Counter(pc for pc, w in inj.traces[0] if w)
        loop_pc, n = counts.most_common(1)[0]
        assert n > 1
        dyn = occurrence_of(inj, 0, loop_pc)
        occurrences = [
            i for i, (pc, w) in enumerate(inj.traces[0]) if pc == loop_pc and w
        ]
        assert dyn == occurrences[len(occurrences) // 2]

    def test_absent_pc_returns_none(self):
        inj = injector_for("gemm.k1")
        missing = len(inj.instance.program) + 5  # pc beyond the program
        assert occurrence_of(inj, 0, missing) is None


class TestTargetSelection:
    def test_signature_diversity_on_divergent_kernel(self):
        """2DCONV has several execution-pattern signatures; the probes must
        not all share one coverage pattern."""
        inj = injector_for("2dconv.k1")
        probes = find_target_instructions(inj, count=5)
        assert len(probes) >= 3

        def signature(pc):
            tpc = inj.instance.geometry.threads_per_cta
            counts = [0] * inj.instance.geometry.n_ctas
            for thread, trace in enumerate(inj.traces):
                if any(p == pc and w for p, w in trace):
                    counts[thread // tpc] += 1
            return tuple(counts)

        assert len({signature(pc) for pc in probes}) >= 2

    def test_single_signature_kernel_still_yields_probes(self):
        inj = injector_for("gemm.k1")
        probes = find_target_instructions(inj, count=3)
        assert len(probes) == 3
        assert len(set(probes)) == 3


class TestMultiProbeGrouping:
    def test_accepts_probe_list(self):
        inj = injector_for("gaussian.k1")
        probes = find_target_instructions(inj, count=2)
        single = cta_outcome_grouping(
            inj, probes[0], bits=[3, 19], rng=0, threads_per_cta_sample=8
        )
        multi = cta_outcome_grouping(
            inj, probes, bits=[3, 19], rng=0, threads_per_cta_sample=8
        )
        n_ctas = inj.instance.geometry.n_ctas
        for grouping in (single, multi):
            covered = sorted(c for g in grouping.groups for c in g)
            assert covered == list(range(n_ctas))

    def test_nonexecuting_threads_count_as_fully_masked(self):
        inj = injector_for("gaussian.k125")  # most threads idle at step 20
        # Probe the active-path store-address computation (a late pc).
        busy = max(range(len(inj.traces)), key=lambda t: len(inj.traces[t]))
        late_pc = max(pc for pc, w in inj.traces[busy] if w)
        grouping = cta_outcome_grouping(inj, late_pc, bits=[3], rng=0)
        for dist in grouping.distributions:
            assert max(dist.values) == 100.0  # idle threads present as 100
