"""Vectorized-backend injection equivalence on the real kernel registry.

The fuzz harness (``tests/gpu/test_compiled_backend.py``) covers ISA
breadth on synthetic programs; these tests pin the end-to-end contract on
registry kernels: a ``backend="vectorized"`` injector produces
byte-identical campaign outcomes, profile weights and fallback counts to
the interpreter — including composed with checkpointed fast-forwarding,
golden-state worker handoff, and a process pool.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import FaultInjector, load_instance, random_campaign
from repro.parallel import ParallelCampaignRunner

START_METHOD = os.environ.get("REPRO_TEST_START_METHOD") or None

N_SITES = 40
SEED = 17

#: One kernel per injector slicing regime: CTA-sliced barrier-heavy
#: (pathfinder), thread-sliced (2dconv), short-trace (k-means).
KEYS = ("pathfinder.k1", "2dconv.k1", "k-means.k1")


@pytest.fixture(scope="module", params=KEYS)
def backend_pair(request):
    key = request.param
    interp = FaultInjector(load_instance(key))
    vectorized = FaultInjector(load_instance(key), backend="vectorized")
    return key, interp, vectorized


class TestBackendEquivalence:
    def test_campaign_outcomes_identical(self, backend_pair):
        key, interp, vectorized = backend_pair
        a = random_campaign(interp, N_SITES, rng=SEED)
        b = random_campaign(vectorized, N_SITES, rng=SEED)
        assert a.outcomes == b.outcomes, key
        assert a.profile.weights == b.profile.weights
        assert interp.fallback_count == vectorized.fallback_count

    def test_store_address_and_register_file_identical(self, backend_pair):
        key, interp, vectorized = backend_pair
        thread = max(range(len(interp.traces)), key=lambda t: len(interp.traces[t]))
        for site in interp.store_address_sites(thread)[:12]:
            spec = site.spec()
            assert interp.inject_spec(site.thread, spec) == vectorized.inject_spec(
                site.thread, spec
            ), (key, site)
        for site in interp.sample_register_file_sites(12, np.random.default_rng(3)):
            spec = site.spec()
            assert interp.inject_spec(site.thread, spec) == vectorized.inject_spec(
                site.thread, spec
            ), (key, site)

    def test_full_reexecution_identical(self, backend_pair):
        key, interp, vectorized = backend_pair
        for site in interp.space.sample(6, np.random.default_rng(SEED)):
            assert interp.inject_full(site) == vectorized.inject_full(site), (
                key,
                site,
            )


def test_vectorized_with_checkpoints_matches_full_prefix_interpreter():
    reference = random_campaign(
        FaultInjector(load_instance("pathfinder.k1"), checkpoint_interval=0),
        N_SITES,
        rng=SEED,
    )
    candidate = random_campaign(
        FaultInjector(
            load_instance("pathfinder.k1"),
            backend="vectorized",
            checkpoint_interval=16,
        ),
        N_SITES,
        rng=SEED,
    )
    assert candidate.outcomes == reference.outcomes
    assert candidate.profile.weights == reference.profile.weights


def test_vectorized_two_workers_matches_serial_interpreter():
    serial = random_campaign(
        FaultInjector(load_instance("2dconv.k1")), N_SITES, rng=SEED
    )
    pooled = random_campaign(
        FaultInjector(load_instance("2dconv.k1"), backend="vectorized"),
        N_SITES,
        rng=SEED,
        executor=ParallelCampaignRunner(2, chunk_size=8, start_method=START_METHOD),
    )
    assert pooled.outcomes == serial.outcomes
    assert pooled.profile.weights == serial.profile.weights


def test_golden_state_handoff_skips_golden_run():
    parent = FaultInjector(load_instance("2dconv.k1"))
    child = FaultInjector(
        load_instance("2dconv.k1"),
        verify_golden=False,
        backend="vectorized",
        golden=parent.golden_state(),
    )
    assert child._golden_output == parent._golden_output
    a = random_campaign(parent, N_SITES, rng=SEED)
    b = random_campaign(child, N_SITES, rng=SEED)
    assert a.outcomes == b.outcomes


def test_vectorized_golden_traces_pickle_roundtrip():
    """CompactTrace survives pickling (spawn-pool golden-state handoff)."""
    import pickle

    inj = FaultInjector(load_instance("k-means.k1"), backend="vectorized")
    state = pickle.loads(pickle.dumps(inj.golden_state()))
    child = FaultInjector(
        load_instance("k-means.k1"),
        verify_golden=False,
        backend="vectorized",
        golden=state,
    )
    a = random_campaign(inj, 12, rng=SEED)
    b = random_campaign(child, 12, rng=SEED)
    assert a.outcomes == b.outcomes
