"""Compiled-backend injection equivalence on the real kernel registry.

The fuzz harness (``tests/gpu/test_compiled_backend.py``) covers ISA
breadth on synthetic programs; these tests pin the end-to-end contract on
registry kernels: a ``backend="compiled"`` injector produces byte-identical
campaign outcomes, profile weights and fallback counts to the interpreter —
including composed with checkpointed fast-forwarding, golden-state worker
handoff, and a process pool.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import FaultInjector, load_instance, random_campaign
from repro.errors import SimulatorError
from repro.gpu import GPUSimulator, derive_checkpoint_interval
from repro.parallel import ParallelCampaignRunner

START_METHOD = os.environ.get("REPRO_TEST_START_METHOD") or None

N_SITES = 40
SEED = 17

#: One kernel per injector slicing regime: CTA-sliced barrier-heavy
#: (pathfinder), thread-sliced (2dconv), short-trace (k-means).
KEYS = ("pathfinder.k1", "2dconv.k1", "k-means.k1")


@pytest.fixture(scope="module", params=KEYS)
def backend_pair(request):
    key = request.param
    interp = FaultInjector(load_instance(key))
    compiled = FaultInjector(load_instance(key), backend="compiled")
    return key, interp, compiled


class TestBackendEquivalence:
    def test_campaign_outcomes_identical(self, backend_pair):
        key, interp, compiled = backend_pair
        a = random_campaign(interp, N_SITES, rng=SEED)
        b = random_campaign(compiled, N_SITES, rng=SEED)
        assert a.outcomes == b.outcomes, key
        assert a.profile.weights == b.profile.weights
        assert interp.fallback_count == compiled.fallback_count

    def test_store_address_and_register_file_identical(self, backend_pair):
        key, interp, compiled = backend_pair
        thread = max(range(len(interp.traces)), key=lambda t: len(interp.traces[t]))
        for site in interp.store_address_sites(thread)[:12]:
            spec = site.spec()
            assert interp.inject_spec(site.thread, spec) == compiled.inject_spec(
                site.thread, spec
            ), (key, site)
        for site in interp.sample_register_file_sites(12, np.random.default_rng(3)):
            spec = site.spec()
            assert interp.inject_spec(site.thread, spec) == compiled.inject_spec(
                site.thread, spec
            ), (key, site)

    def test_full_reexecution_identical(self, backend_pair):
        key, interp, compiled = backend_pair
        for site in interp.space.sample(6, np.random.default_rng(SEED)):
            assert interp.inject_full(site) == compiled.inject_full(site), (key, site)


def test_compiled_with_checkpoints_matches_full_prefix_interpreter():
    reference = random_campaign(
        FaultInjector(load_instance("pathfinder.k1"), checkpoint_interval=0),
        N_SITES,
        rng=SEED,
    )
    candidate = random_campaign(
        FaultInjector(
            load_instance("pathfinder.k1"), backend="compiled", checkpoint_interval=16
        ),
        N_SITES,
        rng=SEED,
    )
    assert candidate.outcomes == reference.outcomes
    assert candidate.profile.weights == reference.profile.weights


def test_compiled_two_workers_matches_serial_interpreter():
    serial = random_campaign(
        FaultInjector(load_instance("2dconv.k1")), N_SITES, rng=SEED
    )
    pooled = random_campaign(
        FaultInjector(load_instance("2dconv.k1"), backend="compiled"),
        N_SITES,
        rng=SEED,
        executor=ParallelCampaignRunner(2, chunk_size=8, start_method=START_METHOD),
    )
    assert pooled.outcomes == serial.outcomes
    assert pooled.profile.weights == serial.profile.weights


def test_golden_state_handoff_skips_golden_run():
    parent = FaultInjector(load_instance("2dconv.k1"))
    child = FaultInjector(
        load_instance("2dconv.k1"),
        verify_golden=False,
        backend="compiled",
        golden=parent.golden_state(),
    )
    assert child._golden_output == parent._golden_output
    a = random_campaign(parent, N_SITES, rng=SEED)
    b = random_campaign(child, N_SITES, rng=SEED)
    assert a.outcomes == b.outcomes


def test_unknown_backend_rejected():
    with pytest.raises(SimulatorError):
        GPUSimulator(backend="jit")
    with pytest.raises(SimulatorError):
        FaultInjector(load_instance("k-means.k1"), backend="jit")


class TestAutoCheckpointInterval:
    def test_shallow_traces_disable_the_layer(self):
        assert derive_checkpoint_interval([]) == 0
        assert derive_checkpoint_interval([[(0, 32)] * 50] * 8) == 0

    def test_deep_traces_get_power_of_two_interval(self):
        traces = [[(0, 32)] * 1600] * 8
        interval = derive_checkpoint_interval(traces)
        assert interval >= 16
        assert interval & (interval - 1) == 0  # power of two

    def test_injector_defaults(self):
        deep = FaultInjector(load_instance("pathfinder.k1"))
        assert deep.checkpoint_interval > 0
        assert deep.checkpoints is not None
        shallow = FaultInjector(load_instance("k-means.k1"))
        assert shallow.checkpoint_interval == 0
        assert shallow.checkpoints is None
        explicit = FaultInjector(load_instance("pathfinder.k1"), checkpoint_interval=0)
        assert explicit.checkpoints is None
