"""Injector tests: classification, fast-path exactness, determinism."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import FaultInjector, FaultSite, Outcome
from repro.errors import FaultInjectionError

from ..helpers import build_loop_sum_instance, build_saxpy_instance


@pytest.fixture(scope="module")
def saxpy():
    return FaultInjector(build_saxpy_instance())


@pytest.fixture(scope="module")
def loop_sum():
    return FaultInjector(build_loop_sum_instance())


class TestGoldenState:
    def test_golden_verified_on_construction(self, saxpy):
        assert saxpy.space.total_sites > 0

    def test_traces_define_space(self, saxpy):
        manual = sum(w for trace in saxpy.traces for _, w in trace)
        assert saxpy.space.total_sites == manual


class TestClassification:
    def test_sdc_on_output_value_flip(self, saxpy):
        # Find the mad instruction (writes yv right before the store).
        trace = saxpy.traces[0]
        mad_index = max(
            i for i, (pc, w) in enumerate(trace)
            if w == 32 and saxpy.instance.program.instructions[pc].op == "mad"
        )
        outcome = saxpy.inject(FaultSite(0, mad_index, 30))
        assert outcome is Outcome.SDC

    def test_crash_on_address_high_bit_flip(self, saxpy):
        # Flipping a high bit of the address register sends the store OOB.
        trace = saxpy.traces[0]
        addr_indices = [
            i for i, (pc, w) in enumerate(trace)
            if w == 32 and saxpy.instance.program.instructions[pc].op == "add"
            and saxpy.instance.program.instructions[pc].dest.name == "addr"
        ]
        outcome = saxpy.inject(FaultSite(0, addr_indices[-1], 31))
        assert outcome is Outcome.CRASH

    def test_loop_counter_flip_skips_iterations(self, loop_sum):
        # Flip bit 2 of the freshly initialised loop counter (0 -> 4): the
        # loop runs fewer iterations, so the partial sum corrupts silently.
        trace = loop_sum.traces[0]
        mov_j = next(
            i for i, (pc, w) in enumerate(trace)
            if w == 32 and loop_sum.instance.program.instructions[pc].dest is not None
            and loop_sum.instance.program.instructions[pc].dest.name == "j"
        )
        assert loop_sum.inject(FaultSite(0, mov_j, 2)) is Outcome.SDC

    def test_hang_on_corrupted_loop_exit_check(self):
        """A flipped exit-check predicate inside a loop whose counter is
        re-zeroed each pass would spin forever; the hang budget catches a
        counter flip that pushes the bound comparison out of reach."""
        from repro.gpu import GPUSimulator, KernelBuilder, LaunchGeometry, pack_params
        from repro.kernels.registry import KernelInstance, OutputBuffer
        import numpy as np

        k = KernelBuilder("spin_risk")
        out_ptr, = k.params("out")
        r = k.regs("j", "addr", "bound")
        k.mov("u32", r.bound, 6)
        with k.loop("u32", r.j, 0, r.bound):
            pass
        k.ld("u32", r.addr, out_ptr)
        k.st("u32", k.global_ref(r.addr), r.j)
        k.retp()
        sim = GPUSimulator()
        out_addr = sim.alloc_zeros(4)
        inst = KernelInstance(
            spec=None,
            program=k.build(),
            geometry=LaunchGeometry(grid=(1, 1), block=(1, 1)),
            param_bytes=pack_params(k.param_layout, {"out": out_addr}),
            initial_memory=sim.memory,
            outputs=(OutputBuffer("out", out_addr, np.dtype(np.uint32), 1),),
            reference={"out": np.array([6], dtype=np.uint32)},
        )
        injector = FaultInjector(inst)
        # Flip bit 31 of `bound` (6 -> 2^31+6): the loop must now run two
        # billion iterations — the hang budget trips long before that.
        assert injector.inject(FaultSite(0, 0, 31)) is Outcome.HANG

    def test_pred_upper_flags_are_masked(self, saxpy):
        trace = saxpy.traces[0]
        pred_index = next(i for i, (_pc, w) in enumerate(trace) if w == 4)
        for bit in (1, 2, 3):
            assert saxpy.inject(FaultSite(0, pred_index, bit)) is Outcome.MASKED

    def test_zero_flag_flip_changes_behavior(self, saxpy):
        # Thread 0 is in range; flipping the zero flag makes it skip the
        # body -> its output element is never written -> SDC.
        trace = saxpy.traces[0]
        pred_index = next(i for i, (_pc, w) in enumerate(trace) if w == 4)
        assert saxpy.inject(FaultSite(0, pred_index, 0)) is Outcome.SDC


class TestSiteValidation:
    def test_bad_thread(self, saxpy):
        with pytest.raises(FaultInjectionError):
            saxpy.inject(FaultSite(10_000, 0, 0))

    def test_bad_dyn_index(self, saxpy):
        with pytest.raises(FaultInjectionError):
            saxpy.inject(FaultSite(0, 10_000, 0))

    def test_bad_bit(self, saxpy):
        with pytest.raises(FaultInjectionError):
            saxpy.inject(FaultSite(0, 0, 99))

    def test_zero_width_site_rejected(self, saxpy):
        trace = saxpy.traces[0]
        store_index = next(i for i, (_pc, w) in enumerate(trace) if w == 0)
        with pytest.raises(FaultInjectionError):
            saxpy.inject(FaultSite(0, store_index, 0))


class TestFastPathExactness:
    def test_fastpath_matches_full_on_sample(self, saxpy):
        rng = np.random.default_rng(3)
        for site in saxpy.space.sample(60, rng):
            assert saxpy.inject(site) == saxpy.inject_full(site)

    def test_injection_is_deterministic(self, saxpy):
        rng = np.random.default_rng(5)
        sites = saxpy.space.sample(20, rng)
        first = [saxpy.inject(s) for s in sites]
        second = [saxpy.inject(s) for s in sites]
        assert first == second

    def test_fastpath_matches_full_on_real_kernel(self, conv2d_injector):
        rng = np.random.default_rng(11)
        for site in conv2d_injector.space.sample(25, rng):
            assert conv2d_injector.inject(site) == conv2d_injector.inject_full(site)

    def test_fastpath_matches_full_on_shared_memory_kernel(self, pathfinder_injector):
        rng = np.random.default_rng(13)
        for site in pathfinder_injector.space.sample(25, rng):
            assert pathfinder_injector.inject(site) == pathfinder_injector.inject_full(
                site
            )

    def test_golden_state_unchanged_by_injections(self, saxpy):
        before = saxpy.instance.output_bytes(saxpy._golden_memory)
        rng = np.random.default_rng(17)
        for site in saxpy.space.sample(10, rng):
            saxpy.inject(site)
        after = saxpy.instance.output_bytes(saxpy._golden_memory)
        assert before == after
