"""Tests for campaign persistence and SDC-severity analysis."""

import json
import math

import numpy as np
import pytest

from repro import FaultInjector, Outcome, random_campaign
from repro.errors import ReproError
from repro.faults import (
    FaultSite,
    InjectionRecord,
    SeverityInjector,
    load_campaign,
    save_campaign,
)
from repro.faults.persistence import campaign_from_dict, campaign_to_dict

from ..helpers import build_saxpy_instance


@pytest.fixture(scope="module")
def injector():
    return FaultInjector(build_saxpy_instance())


class TestPersistence:
    def test_roundtrip(self, injector, tmp_path):
        result = random_campaign(injector, 12, rng=0)
        path = tmp_path / "campaign.json"
        save_campaign(result, path, kernel="saxpy")
        loaded = load_campaign(path)
        assert loaded.sites == result.sites
        assert loaded.outcomes == result.outcomes
        assert loaded.profile.as_percentages() == result.profile.as_percentages()

    def test_file_is_plain_json(self, injector, tmp_path):
        result = random_campaign(injector, 3, rng=0)
        path = tmp_path / "c.json"
        save_campaign(result, path, kernel="saxpy")
        data = json.loads(path.read_text())
        assert data["kernel"] == "saxpy"
        assert len(data["runs"]) == 3

    def test_version_checked(self):
        with pytest.raises(ReproError):
            campaign_from_dict({"version": 999, "runs": []})

    def test_dict_roundtrip_preserves_weights(self, injector):
        result = random_campaign(injector, 5, rng=1)
        clone = campaign_from_dict(campaign_to_dict(result))
        assert clone.profile.weights == result.profile.weights


class TestSeverity:
    def test_masked_site_has_zero_deviation(self, injector):
        severity = SeverityInjector(injector)
        # A predicate upper-flag flip is provably masked.
        trace = injector.traces[0]
        pred_index = next(i for i, (_pc, w) in enumerate(trace) if w == 4)
        record = severity.inject(FaultSite(0, pred_index, 1))
        assert record.outcome is Outcome.MASKED
        assert record.corrupted_elements == 0
        assert record.max_rel_error == 0.0

    def test_sdc_site_quantified(self, injector):
        severity = SeverityInjector(injector)
        trace = injector.traces[0]
        mad_index = max(
            i for i, (pc, w) in enumerate(trace)
            if w == 32 and injector.instance.program.instructions[pc].op == "mad"
        )
        record = severity.inject(FaultSite(0, mad_index, 23))
        assert record.outcome is Outcome.SDC
        assert record.corrupted_elements >= 1
        assert record.total_elements == 12
        assert record.max_rel_error > 0.0
        assert 0 < record.corruption_fraction <= 1.0

    def test_low_mantissa_bit_smaller_error_than_exponent_bit(self, injector):
        severity = SeverityInjector(injector)
        trace = injector.traces[0]
        mad_index = max(
            i for i, (pc, w) in enumerate(trace)
            if w == 32 and injector.instance.program.instructions[pc].op == "mad"
        )
        low = severity.inject(FaultSite(0, mad_index, 1))
        high = severity.inject(FaultSite(0, mad_index, 30))
        if low.outcome is Outcome.SDC and high.outcome is Outcome.SDC:
            assert low.max_rel_error < high.max_rel_error

    def test_severity_matches_outcome_classification(self, injector):
        """SeverityInjector must never disagree with the plain injector."""
        severity = SeverityInjector(injector)
        rng = np.random.default_rng(5)
        for site in injector.space.sample(20, rng):
            record = severity.inject(site)
            assert record.outcome == injector.inject(site)
            if record.outcome is not Outcome.SDC:
                assert record.corrupted_elements == 0
