"""Phase attribution: per-injection phase breakdowns on InjectionEvent.

The contract: with live telemetry every injection carries a ``phases``
dict whose keys come from :data:`~repro.telemetry.PHASE_NAMES` and whose
values sum to (at most) the injection's wall-clock ``duration_s`` — the
gap is untimed bookkeeping outside the phase brackets, which must stay
tiny.  The breakdown must hold on both backends and with checkpointed
fast-forwarding on or off, and must never change classification.
"""

from __future__ import annotations

import pytest

from repro import FaultInjector, load_instance, random_campaign
from repro.telemetry import PHASE_NAMES, InjectionEvent, MemorySink, Telemetry

KEY = "gaussian.k125"
N_SITES = 16
#: Untimed slack per injection: event construction, site validation, the
#: dispatch between phase brackets.  Generous for slow CI boxes, still
#: far below any real phase.
MAX_UNATTRIBUTED_S = 0.02


def _campaign_events(backend: str, checkpoint_interval) -> list[InjectionEvent]:
    telemetry = Telemetry(sink=MemorySink())
    injector = FaultInjector(
        load_instance(KEY),
        telemetry=telemetry,
        backend=backend,
        checkpoint_interval=checkpoint_interval,
    )
    random_campaign(injector, N_SITES, rng=5)
    return telemetry.sink.of_type(InjectionEvent)


@pytest.mark.parametrize("backend", ["interpreter", "compiled"])
@pytest.mark.parametrize("checkpoint_interval", [0, 8], ids=["no-ckpt", "ckpt8"])
class TestPhaseSums:
    def test_phases_cover_duration_within_epsilon(
        self, backend, checkpoint_interval
    ):
        events = _campaign_events(backend, checkpoint_interval)
        assert len(events) == N_SITES
        for event in events:
            assert event.phases, f"no phases on {event}"
            attributed = sum(event.phases.values())
            gap = event.duration_s - attributed
            # Phases are timed inside the duration bracket: the sum can
            # undershoot by untimed glue but never meaningfully overshoot.
            assert gap >= -1e-4, (event.phases, event.duration_s)
            assert gap <= MAX_UNATTRIBUTED_S, (event.phases, event.duration_s)

    def test_phase_names_and_values_are_sane(self, backend, checkpoint_interval):
        for event in _campaign_events(backend, checkpoint_interval):
            assert set(event.phases) <= set(PHASE_NAMES)
            assert all(v >= 0.0 for v in event.phases.values()), event.phases
            assert "suffix_exec" in event.phases
            assert event.backend == backend
            assert event.suffix_instructions > 0


class TestPhaseMetadata:
    def test_checkpointed_events_record_interval_and_restore_phase(self):
        events = _campaign_events("interpreter", 8)
        assert all(e.checkpoint_interval == 8 for e in events)
        # At least one deep injection resumes from a snapshot.
        assert any("checkpoint_restore" in e.phases for e in events)

    def test_uncheckpointed_events_record_zero_interval(self):
        events = _campaign_events("interpreter", 0)
        assert all(e.checkpoint_interval == 0 for e in events)

    def test_null_telemetry_records_nothing(self):
        injector = FaultInjector(load_instance(KEY))
        result = random_campaign(injector, 4, rng=5)
        assert injector.telemetry.phases is None
        assert len(result.outcomes) == 4

    def test_phases_do_not_change_outcomes(self):
        plain = random_campaign(FaultInjector(load_instance(KEY)), N_SITES, rng=5)
        instrumented = random_campaign(
            FaultInjector(
                load_instance(KEY), telemetry=Telemetry(sink=MemorySink())
            ),
            N_SITES,
            rng=5,
        )
        assert instrumented.outcomes == plain.outcomes
