"""Checkpointed fast-forward injection: equivalence and store behaviour.

The contract under test (see ``docs/performance.md``): for the same seed,
a campaign with checkpointing enabled — any interval, any memory budget,
serial or parallel, ordered or streamed — produces byte-identical
outcomes, profile weights, ``fallback_count`` and ``injections.*`` /
``outcome.*`` telemetry counters to the full-prefix reference path.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import FaultInjector, load_instance, random_campaign
from repro.gpu import GPUSimulator
from repro.gpu.checkpoint import CheckpointPlan, CheckpointStore, ThreadCheckpoint
from repro.parallel import ParallelCampaignRunner, SerialExecutor
from repro.telemetry import MemorySink, Telemetry

from ..helpers import build_loop_sum_instance

#: CI exercises both fork and spawn via this env var.
START_METHOD = os.environ.get("REPRO_TEST_START_METHOD") or None

N_SITES = 48
SEED = 11


def _campaign(key, interval, workers=1, budget_mb=64.0, order_batch=None):
    """One instrumented campaign; returns (injector, result, counters)."""
    telemetry = Telemetry(sink=MemorySink())
    injector = FaultInjector(
        load_instance(key),
        telemetry=telemetry,
        checkpoint_interval=interval,
        checkpoint_budget_mb=budget_mb,
    )
    if workers > 1:
        executor = ParallelCampaignRunner(
            workers, chunk_size=8, start_method=START_METHOD
        )
    elif order_batch is not None:
        executor = SerialExecutor(order_batch=order_batch)
    else:
        executor = None
    result = random_campaign(injector, N_SITES, rng=SEED, executor=executor)
    counters = {
        name: value
        for name, value in telemetry.metrics.snapshot()["counters"].items()
        if name.startswith(("injections.", "outcome."))
    }
    return injector, result, counters


@pytest.fixture(scope="module")
def conv2d_reference():
    """Full-prefix reference on the thread-sliced path (2dconv.k1)."""
    return _campaign("2dconv.k1", interval=0)


@pytest.fixture(scope="module")
def pathfinder_reference():
    """Full-prefix reference on the CTA-sliced path (pathfinder.k1)."""
    return _campaign("pathfinder.k1", interval=0)


def _assert_equivalent(reference, candidate):
    ref_injector, ref_result, ref_counters = reference
    injector, result, counters = candidate
    assert result.outcomes == ref_result.outcomes
    assert result.profile.weights == ref_result.profile.weights
    assert result.profile.n_injections == ref_result.profile.n_injections
    assert injector.fallback_count == ref_injector.fallback_count
    assert counters == ref_counters


class TestEquivalence:
    @pytest.mark.parametrize("interval", [1, 64, 1024])
    def test_thread_path_intervals(self, conv2d_reference, interval):
        candidate = _campaign("2dconv.k1", interval=interval)
        _assert_equivalent(conv2d_reference, candidate)
        if interval == 1:  # coarser grids may exceed every trace length
            assert candidate[0].checkpoints.stored > 0

    def test_cta_path(self, pathfinder_reference):
        candidate = _campaign("pathfinder.k1", interval=16)
        _assert_equivalent(pathfinder_reference, candidate)
        assert candidate[0].checkpoints.stored > 0

    def test_two_workers(self, conv2d_reference):
        # Workers rebuild checkpointing injectors from the payload and
        # order their chunks; the parent's in-order drain must still match
        # the serial full-prefix reference byte for byte.
        candidate = _campaign("2dconv.k1", interval=64, workers=2)
        _assert_equivalent(conv2d_reference, candidate)

    def test_serial_ordering_window(self, conv2d_reference):
        candidate = _campaign("2dconv.k1", interval=64, order_batch=7)
        _assert_equivalent(conv2d_reference, candidate)

    def test_ordering_disabled_still_equivalent(self, conv2d_reference):
        candidate = _campaign("2dconv.k1", interval=64, order_batch=0)
        _assert_equivalent(conv2d_reference, candidate)

    def test_tiny_budget_evicts_but_stays_equivalent(self, pathfinder_reference):
        # A budget that holds only a couple of CTA snapshots: the LRU must
        # evict (and stay under budget) without perturbing any outcome.
        budget_mb = 0.125
        candidate = _campaign("pathfinder.k1", interval=16, budget_mb=budget_mb)
        _assert_equivalent(pathfinder_reference, candidate)
        store = candidate[0].checkpoints
        assert store.evicted > 0
        assert store.nbytes <= budget_mb * (1 << 20)


class TestExtendedModels:
    def test_store_address_and_register_file_equivalent(self):
        base = FaultInjector(load_instance("k-means.k1"))
        ck = FaultInjector(load_instance("k-means.k1"), checkpoint_interval=8)
        thread = max(range(len(base.traces)), key=lambda t: len(base.traces[t]))
        for site in base.store_address_sites(thread)[:24]:
            spec = site.spec()
            assert base.inject_spec(site.thread, spec) == ck.inject_spec(
                site.thread, spec
            )
        for site in base.sample_register_file_sites(24, np.random.default_rng(5)):
            spec = site.spec()
            assert base.inject_spec(site.thread, spec) == ck.inject_spec(
                site.thread, spec
            )

    def test_store_address_cta_path_equivalent(self):
        base = FaultInjector(load_instance("pathfinder.k1"))
        ck = FaultInjector(load_instance("pathfinder.k1"), checkpoint_interval=16)
        sites = base.store_address_sites(0)[:8] + base.store_address_sites(70)[:8]
        for site in sites:
            spec = site.spec()
            assert base.inject_spec(site.thread, spec) == ck.inject_spec(
                site.thread, spec
            )


def test_rf_sampling_draw_order_unchanged():
    """Checkpointing/ordering must not shift any RNG draw: site samples
    from a warmed checkpointing injector match a pristine reference."""
    base = FaultInjector(load_instance("k-means.k1"))
    ck = FaultInjector(load_instance("k-means.k1"), checkpoint_interval=8)
    random_campaign(ck, 16, rng=3)  # warm the store and prefix caches
    assert base.sample_register_file_sites(
        20, np.random.default_rng(42)
    ) == ck.sample_register_file_sites(20, np.random.default_rng(42))
    rng_a, rng_b = np.random.default_rng(9), np.random.default_rng(9)
    assert base.space.sample(20, rng_a) == ck.space.sample(20, rng_b)


def test_launch_capture_then_resume_executes_suffix_only():
    """Direct simulator-level round trip: a resumed thread run starts at
    the snapshot's dynamic index and reproduces the exact write log."""
    instance = build_loop_sum_instance(n_threads=2, iters=8)
    sim = GPUSimulator()
    captured: dict[int, ThreadCheckpoint] = {}

    def sink(dyn, pc, regs):
        captured[dyn] = ThreadCheckpoint.capture(dyn, pc, regs, write_count=0)

    full_mem = instance.initial_memory.snapshot()
    full_log: list = []
    full_mem.write_log = full_log
    full = sim.launch(
        instance.program,
        instance.geometry,
        instance.param_bytes,
        memory=full_mem,
        only_thread=0,
        checkpoint=CheckpointPlan(interval=10, sink=sink, limit=1 << 30),
    )
    full_mem.write_log = None
    assert captured, "no snapshots were captured"
    deepest = captured[max(captured)]

    resumed_mem = instance.initial_memory.snapshot()
    resumed_log: list = []
    resumed_mem.write_log = resumed_log
    resumed = sim.launch(
        instance.program,
        instance.geometry,
        instance.param_bytes,
        memory=resumed_mem,
        only_thread=0,
        checkpoint=CheckpointPlan(interval=0, resume=deepest),
    )
    resumed_mem.write_log = None
    # loop_sum's only store happens after the loop, so the suffix write
    # log equals the full one; the instruction count drops by the skip.
    assert resumed_log == full_log
    assert resumed.instructions == full.instructions - deepest.dyn_index


class TestCheckpointStore:
    def _cp(self, dyn: int) -> ThreadCheckpoint:
        return ThreadCheckpoint.capture(dyn, 0, {"r1": dyn}, write_count=0)

    def test_best_is_deepest_at_or_below(self):
        store = CheckpointStore(1 << 20)
        for dyn in (8, 16, 32):
            store.put_thread(0, self._cp(dyn))
        assert store.best_thread(0, 31).dyn_index == 16
        assert store.best_thread(0, 32).dyn_index == 32
        assert store.best_thread(0, 7) is None
        assert store.best_thread(1, 100) is None
        assert store.hits == 2
        assert store.misses == 2

    def test_lru_evicts_least_recently_used(self):
        snapshot = self._cp(8)
        budget = 2 * snapshot.nbytes + 1  # room for exactly two
        store = CheckpointStore(budget)
        store.put_thread(0, self._cp(8))
        store.put_thread(0, self._cp(16))
        assert store.best_thread(0, 8).dyn_index == 8  # refresh 8's recency
        store.put_thread(0, self._cp(24))
        assert store.evicted == 1
        assert store.has_thread(0, 8)
        assert not store.has_thread(0, 16)
        assert store.has_thread(0, 24)
        assert store.nbytes <= budget
        # The evicted interval must also leave the lookup index.
        assert store.best_thread(0, 17).dyn_index == 8

    def test_oversized_snapshot_rejected(self):
        store = CheckpointStore(16)
        store.put_thread(0, self._cp(8))
        assert store.rejected == 1
        assert len(store) == 0

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            CheckpointStore(0)

    def test_counters_shape(self):
        store = CheckpointStore(1 << 20)
        store.put_thread(3, self._cp(8))
        store.best_thread(3, 100)
        assert store.counters() == {
            "hits": 1,
            "misses": 0,
            "stored": 1,
            "evicted": 0,
            "rejected": 0,
            "entries": 1,
            "nbytes": store.nbytes,
            "capture_s": store.capture_s,
        }
