"""Golden-resync early exit: equivalence, memo and monitor behaviour.

The contract under test (see ``docs/performance.md``): for the same
seed, a campaign with resync enabled — any backend, any checkpoint
interval, serial or pooled — produces byte-identical outcomes, profile
weights, ``fallback_count`` and ``injections.*`` / ``outcome.*``
telemetry counters to the plain reference path, while splicing golden
suffixes instead of executing them wherever the faulty run provably
reconverges.
"""

from __future__ import annotations

import math
import os

import pytest

from repro import FaultInjector, load_instance, random_campaign
from repro.errors import ResyncReached
from repro.faults.resync import (
    ResyncMemo,
    _exact,
    _has_special,
    _strict_match,
    control_pcs,
)
from repro.parallel import ParallelCampaignRunner
from repro.telemetry import InjectionEvent, MemorySink, Telemetry

from ..helpers import build_loop_sum_instance

#: CI exercises both fork and spawn via this env var (matrix tests below
#: additionally pin both explicitly).
START_METHOD = os.environ.get("REPRO_TEST_START_METHOD") or None

N_SITES = 48
SEED = 11

BACKENDS = ("interpreter", "compiled", "vectorized")
INTERVALS = (0, 16, "auto")


def _campaign(
    key,
    *,
    resync,
    backend="interpreter",
    interval=0,
    workers=1,
    start_method=None,
):
    """One instrumented campaign; returns (injector, result, counters)."""
    telemetry = Telemetry(sink=MemorySink())
    injector = FaultInjector(
        load_instance(key),
        telemetry=telemetry,
        backend=backend,
        checkpoint_interval=interval,
        resync=resync,
    )
    executor = None
    if workers > 1:
        executor = ParallelCampaignRunner(
            workers, chunk_size=8, start_method=start_method or START_METHOD
        )
    result = random_campaign(injector, N_SITES, rng=SEED, executor=executor)
    counters = {
        name: value
        for name, value in telemetry.metrics.snapshot()["counters"].items()
        if name.startswith(("injections.", "outcome.", "resync."))
    }
    return injector, result, counters


@pytest.fixture(scope="module")
def conv2d_reference():
    """Resync-off reference on the thread-sliced path (2dconv.k1)."""
    return _campaign("2dconv.k1", resync=False)


@pytest.fixture(scope="module")
def pathfinder_reference():
    """Resync-off reference on the CTA-sliced path (pathfinder.k1)."""
    return _campaign("pathfinder.k1", resync=False)


def _assert_equivalent(reference, candidate):
    ref_injector, ref_result, ref_counters = reference
    injector, result, counters = candidate
    assert result.outcomes == ref_result.outcomes
    assert result.profile.weights == ref_result.profile.weights
    assert result.profile.n_injections == ref_result.profile.n_injections
    assert injector.fallback_count == ref_injector.fallback_count
    for name, value in ref_counters.items():
        assert counters.get(name, 0) == value, name


class TestEquivalenceMatrix:
    """backends x checkpoint intervals, resync on vs the plain reference."""

    @pytest.mark.parametrize("interval", INTERVALS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_thread_path(self, conv2d_reference, backend, interval):
        candidate = _campaign(
            "2dconv.k1", resync=True, backend=backend, interval=interval
        )
        _assert_equivalent(conv2d_reference, candidate)
        counters = candidate[2]
        assert counters.get("resync.hits", 0) + counters.get(
            "resync.misses", 0
        ) > 0

    @pytest.mark.parametrize("interval", INTERVALS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cta_path(self, pathfinder_reference, backend, interval):
        candidate = _campaign(
            "pathfinder.k1", resync=True, backend=backend, interval=interval
        )
        _assert_equivalent(pathfinder_reference, candidate)
        assert candidate[2].get("resync.hits", 0) > 0  # some sites splice


class TestWorkerPools:
    def test_serial_matches_reference(self, conv2d_reference):
        candidate = _campaign("2dconv.k1", resync=True, workers=1)
        _assert_equivalent(conv2d_reference, candidate)

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_two_workers(self, conv2d_reference, start_method):
        # Workers rebuild resync-enabled injectors from the payload; the
        # parent's in-order drain must match the serial reference.  Pool
        # counters are absorbed from worker deltas, so resync.* totals
        # survive the process boundary too.
        candidate = _campaign(
            "2dconv.k1", resync=True, workers=2, start_method=start_method
        )
        ref_injector, ref_result, _ = conv2d_reference
        injector, result, counters = candidate
        assert result.outcomes == ref_result.outcomes
        assert result.profile.weights == ref_result.profile.weights
        assert counters.get("resync.hits", 0) + counters.get(
            "resync.misses", 0
        ) > 0


class TestExtendedModels:
    def test_store_address_and_register_file_equivalent(self):
        import numpy as np

        base = FaultInjector(load_instance("k-means.k1"))
        rs = FaultInjector(load_instance("k-means.k1"), resync=True)
        thread = max(range(len(base.traces)), key=lambda t: len(base.traces[t]))
        for site in base.store_address_sites(thread)[:16]:
            spec = site.spec()
            assert base.inject_spec(site.thread, spec) == rs.inject_spec(
                site.thread, spec
            ), site
        for site in base.sample_register_file_sites(16, np.random.default_rng(5)):
            spec = site.spec()
            assert base.inject_spec(site.thread, spec) == rs.inject_spec(
                site.thread, spec
            ), site


class TestPropagationComposition:
    def test_signatures_identical_with_resync(self):
        """Traced campaigns keep identical PropagationRecord signatures
        on sites that splice (resync shares the golden stream cache with
        the tracer instead of short-circuiting it)."""
        base = FaultInjector(load_instance("pathfinder.k1"), propagation=True)
        rs = FaultInjector(
            load_instance("pathfinder.k1"), propagation=True, resync=True
        )
        r1 = random_campaign(base, 24, rng=7)
        r2 = random_campaign(rs, 24, rng=7)
        assert r1.outcomes == r2.outcomes
        sigs = [rec.signature() for rec in base.propagation_records]
        assert [rec.signature() for rec in rs.propagation_records] == sigs


class TestMemo:
    def test_lru_bounds_and_recency(self):
        memo = ResyncMemo(capacity=2)
        memo.put(("t", 0, 1, "a"), ("none",))
        memo.put(("t", 0, 2, "b"), ("none",))
        assert memo.get(("t", 0, 1, "a")) == ("none",)  # refresh recency
        memo.put(("t", 0, 3, "c"), ("splice", 9, ()))
        assert memo.evicted == 1
        assert memo.get(("t", 0, 2, "b")) is None  # LRU victim
        assert memo.get(("t", 0, 1, "a")) == ("none",)
        assert memo.get(("t", 0, 3, "c")) == ("splice", 9, ())
        assert len(memo) == 2

    def test_reput_replaces_without_eviction(self):
        memo = ResyncMemo(capacity=1)
        memo.put("k", ("none",))
        memo.put("k", ("splice", 3, ()))
        assert memo.evicted == 0
        assert memo.get("k") == ("splice", 3, ())

    def test_repeat_campaign_reuses_verdicts(self):
        """Sibling sites collapsing to the same divergent state reuse
        the suffix verdict: a second identical pass is answered almost
        entirely from the memo, with identical outcomes."""
        telemetry = Telemetry(sink=MemorySink())
        injector = FaultInjector(
            load_instance("2dconv.k1"), telemetry=telemetry, resync=True
        )
        first = random_campaign(injector, N_SITES, rng=SEED)
        counters = telemetry.metrics.snapshot()["counters"]
        misses_before = counters.get("resync.memo_misses", 0)
        assert misses_before > 0
        second = random_campaign(injector, N_SITES, rng=SEED)
        assert second.outcomes == first.outcomes
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters.get("resync.memo_hits", 0) >= misses_before // 2
        # The repeat pass added (almost) no fresh memo misses.
        assert counters.get("resync.memo_misses", 0) <= misses_before + 1


class TestEffectiveAccounting:
    def test_events_carry_effective_and_spliced_counts(self):
        sink = MemorySink()
        injector = FaultInjector(
            load_instance("pathfinder.k1"),
            telemetry=Telemetry(sink=sink),
            resync=True,
            checkpoint_interval=16,
        )
        random_campaign(injector, N_SITES, rng=SEED)
        events = sink.of_type(InjectionEvent)
        assert events
        spliced_events = [e for e in events if e.spliced_instructions > 0]
        assert spliced_events  # some sites must have spliced
        for event in events:
            assert event.effective_instructions >= event.suffix_instructions
            assert event.spliced_instructions >= 0
        for event in spliced_events:
            # effective = executed suffix + checkpoint-skipped prefix
            #           + resync-spliced golden remainder.
            assert (
                event.effective_instructions
                >= event.suffix_instructions + event.spliced_instructions
            )

    def test_checkpoint_only_events_report_skips(self):
        # CTA-path kernel: barrier-boundary snapshots are shared by every
        # thread of the CTA, so a random campaign actually hits the store.
        sink = MemorySink()
        injector = FaultInjector(
            load_instance("pathfinder.k1"),
            telemetry=Telemetry(sink=sink),
            checkpoint_interval=16,
        )
        random_campaign(injector, 24, rng=SEED)
        events = sink.of_type(InjectionEvent)
        assert events
        assert all(e.spliced_instructions == 0 for e in events)
        assert any(
            e.effective_instructions > e.suffix_instructions for e in events
        )


class TestMonitorPrimitives:
    def test_exact_distinguishes_zero_signs_and_types(self):
        assert _exact(0.0) != _exact(-0.0)
        assert _exact(0) != _exact(0.0)
        assert _exact(1) == _exact(1)
        nan = float("nan")
        assert _exact(nan) == _exact(nan)  # same payload image

    def test_has_special_flags_zero_and_nan(self):
        assert not _has_special({"r1": 3, "f1": 2.5})
        assert _has_special({"r1": 0})
        assert _has_special({"f1": -0.0})
        assert _has_special({"f1": float("nan")})

    def test_strict_match_is_sign_of_zero_aware(self):
        assert _strict_match({"f": 0.0}, {"f": 0.0})
        assert not _strict_match({"f": -0.0}, {"f": 0.0})
        assert not _strict_match({"f": 0.0}, {"f": -0.0})
        assert _strict_match({"f": -0.0}, {"f": -0.0})

    def test_strict_match_rejects_int_float_confusion(self):
        assert not _strict_match({"r": 0}, {"r": 0.0})
        assert not _strict_match({"r": 0.0}, {"r": 0})
        assert _strict_match({"r": 0}, {"r": 0})

    def test_strict_match_is_nan_conservative(self):
        nan = float("nan")
        assert not _strict_match({"f": nan}, {"f": nan})

    def test_strict_match_requires_same_keys(self):
        assert not _strict_match({"a": 1}, {"a": 1, "b": 2})
        assert not _strict_match({"a": 1, "b": 2}, {"a": 1})
        assert not _strict_match({"b": 1}, {"a": 1})

    def test_control_pcs_finds_barriers_and_shared_stores(self):
        instance = build_loop_sum_instance(n_threads=2, iters=2)
        bars, shared = control_pcs(instance.program)
        golden = {
            pc
            for pc, insn in enumerate(instance.program.instructions)
            if insn.op == "bar.sync"
        }
        assert bars == golden
        for pc in shared:
            insn = instance.program.instructions[pc]
            assert insn.op == "st" and insn.srcs[0].space == "shared"

    def test_resync_reached_is_not_a_repro_error(self):
        from repro.errors import ReproError

        exc = ResyncReached(12, 4)
        assert not isinstance(exc, ReproError)
        assert exc.resync_dyn == 12
        assert exc.flip_dyn == 4
        assert exc.from_memo is False

    def test_nan_inf_heavy_kernel_stays_equivalent(self):
        """A stream full of specials (NaN/zero registers) must never
        splice unsoundly: outcomes match the reference bit-for-bit."""
        instance = build_loop_sum_instance(n_threads=4, iters=6)
        base = FaultInjector(instance, verify_golden=False)
        rs = FaultInjector(instance, verify_golden=False, resync=True)
        import numpy as np

        for site in base.space.sample(32, np.random.default_rng(3)):
            assert base.inject(site) == rs.inject(site), site
        assert math.isfinite(rs.golden_streams().capture_s)
