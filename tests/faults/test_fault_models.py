"""Tests for the extended (SASSIFI-style) fault models: IOA and RF."""

import numpy as np
import pytest

from repro import FaultInjector, Outcome
from repro.errors import FaultInjectionError
from repro.faults import FaultModel, InjectionSpec, RegisterFileSite, StoreAddressSite

from ..helpers import build_loop_sum_instance, build_saxpy_instance


@pytest.fixture(scope="module")
def saxpy():
    return FaultInjector(build_saxpy_instance())


class TestInjectionSpec:
    def test_rf_requires_register(self):
        with pytest.raises(ValueError):
            InjectionSpec(0, 0, FaultModel.REGISTER_FILE)

    def test_site_spec_builders(self):
        ioa = StoreAddressSite(1, 2, 3)
        assert ioa.spec().model is FaultModel.STORE_ADDRESS
        rf = RegisterFileSite(1, 2, "acc", 3)
        assert rf.spec().reg == "acc"
        assert "ioa:" in str(ioa) and "rf:" in str(rf)


class TestStoreAddressModel:
    def test_sites_enumerate_stores_only(self, saxpy):
        program = saxpy.instance.program
        sites = saxpy.store_address_sites(0)
        assert sites, "saxpy thread 0 performs a store"
        for site in sites:
            pc = saxpy.traces[site.thread][site.dyn_index][0]
            assert program.instructions[pc].op == "st"
        # 32 bits per store.
        assert len(sites) % 32 == 0

    def test_low_bit_address_flip_is_sdc(self, saxpy):
        # Flipping address bit 2 moves the store by one f32 element —
        # still inside the output buffer -> silent corruption.
        site = saxpy.store_address_sites(0)[2]
        assert site.bit == 2
        assert saxpy.inject_spec(site.thread, site.spec()) is Outcome.SDC

    def test_high_bit_address_flip_crashes(self, saxpy):
        sites = saxpy.store_address_sites(0)
        high = next(s for s in sites if s.bit == 31)
        assert saxpy.inject_spec(high.thread, high.spec()) is Outcome.CRASH

    def test_non_store_target_rejected(self, saxpy):
        spec = InjectionSpec(0, 0, FaultModel.STORE_ADDRESS)
        with pytest.raises(FaultInjectionError):
            saxpy.inject_spec(0, spec)

    def test_predicated_off_store_is_masked(self):
        # Tail threads of saxpy skip the guarded body; their store slot
        # never issues, so an address fault there cannot matter.
        injector = FaultInjector(build_saxpy_instance(n=10, block=4))
        # Thread 10/11 are out of range; they have no store in their trace,
        # so construct the spec against an in-range thread's store index
        # and aim it at the *guarded-off* path via a thread whose trace
        # contains the store pc as a predicated-off slot, if any.
        program = injector.instance.program
        tail = 11
        store_slots = [
            i for i, (pc, w) in enumerate(injector.traces[tail])
            if program.instructions[pc].op == "st"
        ]
        if store_slots:  # the slot exists but was predicated off
            spec = InjectionSpec(store_slots[0], 5, FaultModel.STORE_ADDRESS)
            assert injector.inject_spec(tail, spec) is Outcome.MASKED

    def test_fastpath_matches_full(self, saxpy):
        for site in saxpy.store_address_sites(3)[:16]:
            assert saxpy.inject_spec(site.thread, site.spec()) == (
                saxpy.inject_spec_full(site.thread, site.spec())
            )


class TestRegisterFileModel:
    def test_sampled_sites_are_valid(self, saxpy):
        rng = np.random.default_rng(1)
        sites = saxpy.sample_register_file_sites(25, rng)
        assert len(sites) == 25
        for site in sites:
            assert 0 <= site.thread < len(saxpy.traces)
            assert 0 <= site.dyn_index < len(saxpy.traces[site.thread])
            assert 0 <= site.bit < 32

    def test_sampling_deterministic(self, saxpy):
        a = saxpy.sample_register_file_sites(10, np.random.default_rng(3))
        b = saxpy.sample_register_file_sites(10, np.random.default_rng(3))
        assert a == b

    def test_flip_of_dead_register_is_masked(self):
        """A register overwritten before its next use absorbs the upset."""
        injector = FaultInjector(build_loop_sum_instance(n_threads=2, iters=4))
        program = injector.instance.program
        trace = injector.traces[0]
        # `v` is reloaded at the top of every iteration; flipping it right
        # after the accumulate (just before the reload) is dead.
        loads = [
            i for i, (pc, w) in enumerate(trace)
            if w and program.instructions[pc].op == "ld"
            and program.instructions[pc].dest.name == "v"
        ]
        assert len(loads) >= 2
        spec = InjectionSpec(loads[1], 7, FaultModel.REGISTER_FILE, reg="v")
        # Injected at the second load's issue point: the flip lands before
        # the reload overwrites it -> dead value -> masked.
        assert injector.inject_spec(0, spec) is Outcome.MASKED

    def test_flip_of_live_accumulator_corrupts(self):
        injector = FaultInjector(build_loop_sum_instance(n_threads=2, iters=4))
        trace = injector.traces[0]
        spec = InjectionSpec(len(trace) - 2, 9, FaultModel.REGISTER_FILE, reg="acc")
        assert injector.inject_spec(0, spec) is Outcome.SDC

    def test_outcomes_are_classified(self, saxpy):
        rng = np.random.default_rng(2)
        for site in saxpy.sample_register_file_sites(20, rng):
            assert isinstance(saxpy.inject_spec(site.thread, site.spec()), Outcome)

    def test_fastpath_matches_full(self, saxpy):
        rng = np.random.default_rng(4)
        for site in saxpy.sample_register_file_sites(12, rng):
            assert saxpy.inject_spec(site.thread, site.spec()) == (
                saxpy.inject_spec_full(site.thread, site.spec())
            )


class TestValueModelUnchanged:
    """The default model must behave exactly as before the extension."""

    def test_value_spec_equals_site_injection(self, saxpy):
        rng = np.random.default_rng(6)
        for site in saxpy.space.sample(15, rng):
            spec = InjectionSpec(site.dyn_index, site.bit)
            assert spec.model is FaultModel.VALUE
            assert saxpy.inject(site) == saxpy.inject_spec(site.thread, spec)
