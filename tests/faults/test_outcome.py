"""Unit + property tests for outcomes and resilience profiles."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ReproError
from repro.faults import CATEGORIES, Outcome, ResilienceProfile


class TestOutcome:
    def test_categories_collapse_to_three(self):
        assert Outcome.MASKED.category == "masked"
        assert Outcome.SDC.category == "sdc"
        assert Outcome.CRASH.category == "other"
        assert Outcome.HANG.category == "other"


class TestResilienceProfile:
    def test_unit_weights_count(self):
        profile = ResilienceProfile.from_outcomes(
            [Outcome.MASKED, Outcome.MASKED, Outcome.SDC, Outcome.HANG]
        )
        assert profile.pct_masked == 50.0
        assert profile.pct_sdc == 25.0
        assert profile.pct_other == 25.0
        assert profile.n_injections == 4

    def test_weighted(self):
        profile = ResilienceProfile.from_outcomes(
            [Outcome.MASKED, Outcome.SDC], weights=[3.0, 1.0]
        )
        assert profile.pct_masked == 75.0

    def test_empty_profile_has_no_fractions(self):
        with pytest.raises(ReproError):
            ResilienceProfile().fraction("masked")

    def test_negative_weight_rejected(self):
        with pytest.raises(ReproError):
            ResilienceProfile().add(Outcome.MASKED, -1.0)

    def test_merge(self):
        a = ResilienceProfile.from_outcomes([Outcome.MASKED])
        b = ResilienceProfile.from_outcomes([Outcome.SDC])
        a.merge(b)
        assert a.pct_masked == 50.0
        assert a.n_injections == 2

    def test_max_abs_error(self):
        a = ResilienceProfile.from_outcomes([Outcome.MASKED, Outcome.SDC])
        b = ResilienceProfile.from_outcomes([Outcome.MASKED, Outcome.MASKED])
        assert a.max_abs_error(b) == 50.0

    def test_str_contains_percentages(self):
        profile = ResilienceProfile.from_outcomes([Outcome.MASKED])
        assert "masked=100.00%" in str(profile)

    @given(
        st.lists(
            st.sampled_from(list(Outcome)), min_size=1, max_size=50
        )
    )
    def test_percentages_sum_to_100(self, outcomes):
        profile = ResilienceProfile.from_outcomes(outcomes)
        assert sum(profile.as_percentages().values()) == pytest.approx(100.0)

    @given(
        outcomes=st.lists(st.sampled_from(list(Outcome)), min_size=1, max_size=20),
        weights=st.lists(
            st.floats(min_value=0.1, max_value=100.0), min_size=20, max_size=20
        ),
    )
    def test_weighted_total_conserved(self, outcomes, weights):
        weights = weights[: len(outcomes)]
        profile = ResilienceProfile.from_outcomes(outcomes, weights)
        assert profile.total_weight == pytest.approx(sum(weights))

    def test_mismatched_weight_count_rejected(self):
        with pytest.raises(ValueError):
            ResilienceProfile.from_outcomes([Outcome.MASKED], weights=[1.0, 2.0])
