"""Parallel campaign execution: equivalence, fallbacks, failure surfacing.

The contract under test (see ``docs/performance.md``): for the same seed,
a campaign fanned over N worker processes produces a byte-identical
:class:`ResilienceProfile`, identical per-site outcomes, and the same
``fallback_count`` total as the serial in-process path, for any N.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import FaultInjector, load_instance, random_campaign, run_campaign
from repro.errors import FaultInjectionError
from repro.faults.site import FaultSite
from repro.parallel import ParallelCampaignRunner, SerialExecutor, resolve_executor
from repro.telemetry import MemorySink, Telemetry

from ..helpers import build_saxpy_instance

#: CI exercises both fork and spawn via this env var.
START_METHOD = os.environ.get("REPRO_TEST_START_METHOD") or None


def make_runner(workers: int, chunk_size: int = 8) -> ParallelCampaignRunner:
    return ParallelCampaignRunner(
        workers, chunk_size=chunk_size, start_method=START_METHOD
    )


@pytest.fixture(scope="module")
def conv2d_serial():
    """Serial reference campaign on a registered kernel (key payload)."""
    injector = FaultInjector(load_instance("2dconv.k1"))
    result = random_campaign(injector, 48, rng=11)
    return injector, result


@pytest.fixture(scope="module")
def saxpy_serial():
    """Serial reference on an unregistered instance (pickled payload)."""
    injector = FaultInjector(build_saxpy_instance())
    result = random_campaign(injector, 48, rng=11)
    return injector, result


class TestEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_registered_kernel_profiles_identical(self, conv2d_serial, workers):
        serial_injector, serial = conv2d_serial
        injector = FaultInjector(load_instance("2dconv.k1"))
        parallel = random_campaign(
            injector, 48, rng=11, executor=make_runner(workers)
        )
        assert parallel.outcomes == serial.outcomes
        assert parallel.profile.weights == serial.profile.weights
        assert parallel.profile.n_injections == serial.profile.n_injections
        assert injector.fallback_count == serial_injector.fallback_count

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_pickled_instance_profiles_identical(self, saxpy_serial, workers):
        serial_injector, serial = saxpy_serial
        injector = FaultInjector(build_saxpy_instance())
        parallel = random_campaign(
            injector, 48, rng=11, executor=make_runner(workers)
        )
        assert parallel.outcomes == serial.outcomes
        assert parallel.profile.weights == serial.profile.weights
        assert injector.fallback_count == serial_injector.fallback_count

    def test_weighted_campaign_identical(self, conv2d_serial):
        _, serial = conv2d_serial
        injector = FaultInjector(load_instance("2dconv.k1"))
        sites = serial.sites
        weights = [1.0 + (i % 5) for i in range(len(sites))]
        serial_result = run_campaign(injector, sites, weights=weights)
        parallel_result = run_campaign(
            injector, sites, weights=weights, executor=make_runner(2)
        )
        assert parallel_result.profile.weights == serial_result.profile.weights

    def test_fallback_totals_survive_fan_out(self):
        # Seed 2 on 2dconv.k1 is known to contain at least one write-escape
        # fallback in 80 sites, so the delta-summing path is exercised.
        serial_injector = FaultInjector(load_instance("2dconv.k1"))
        serial = random_campaign(serial_injector, 80, rng=2)
        assert serial_injector.fallback_count > 0
        injector = FaultInjector(load_instance("2dconv.k1"))
        parallel = random_campaign(injector, 80, rng=2, executor=make_runner(2))
        assert parallel.outcomes == serial.outcomes
        assert injector.fallback_count == serial_injector.fallback_count


class TestTelemetryMerge:
    def test_worker_counters_match_serial(self):
        serial_tel = Telemetry(sink=MemorySink())
        serial_injector = FaultInjector(
            load_instance("2dconv.k1"), telemetry=serial_tel
        )
        random_campaign(serial_injector, 32, rng=7)

        parallel_tel = Telemetry(sink=MemorySink())
        injector = FaultInjector(load_instance("2dconv.k1"), telemetry=parallel_tel)
        random_campaign(injector, 32, rng=7, executor=make_runner(2))

        serial_counts = serial_tel.metrics.snapshot()["counters"]
        parallel_counts = parallel_tel.metrics.snapshot()["counters"]
        for name in serial_counts:
            if name.startswith(("injections.", "outcome.")):
                assert parallel_counts[name] == serial_counts[name], name
        assert parallel_counts["parallel.chunks"] > 1
        assert parallel_tel.metrics.snapshot()["gauges"]["parallel.workers"] == 2
        # Per-injection spans merged from the workers.
        assert parallel_tel.spans.snapshot()["injection"]["count"] >= 32


class TestCheckpointCounterMerge:
    """Regression: checkpoint store metrics from pool workers must *sum*.

    Counters always added across snapshots, but the store gauges
    (``checkpoint.bytes`` etc.) were last-write-wins, so a 4-worker
    campaign reported only the last worker's store.  They are now scoped
    per worker and summed (see ``SUMMED_GAUGES``).
    """

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_lookup_totals_invariant_across_worker_counts(self, workers):
        serial_tel = Telemetry(sink=MemorySink())
        serial = FaultInjector(
            load_instance("2dconv.k1"), telemetry=serial_tel, checkpoint_interval=8
        )
        random_campaign(serial, 48, rng=11)
        serial_counts = serial_tel.metrics.snapshot()["counters"]

        parallel_tel = Telemetry(sink=MemorySink())
        injector = FaultInjector(
            load_instance("2dconv.k1"),
            telemetry=parallel_tel,
            checkpoint_interval=8,
        )
        random_campaign(injector, 48, rng=11, executor=make_runner(workers))
        counts = parallel_tel.metrics.snapshot()["counters"]

        # Which lookups hit depends on each worker's private store, but the
        # number of lookups per kind is execution-path invariant.
        for kind in ("thread", "cta"):
            serial_lookups = serial_counts.get(
                f"checkpoint.{kind}_hits", 0
            ) + serial_counts.get(f"checkpoint.{kind}_misses", 0)
            lookups = counts.get(f"checkpoint.{kind}_hits", 0) + counts.get(
                f"checkpoint.{kind}_misses", 0
            )
            assert lookups == serial_lookups, kind

    @pytest.mark.parametrize("workers", [2, 4])
    def test_store_gauges_sum_across_workers(self, workers):
        telemetry = Telemetry(sink=MemorySink())
        injector = FaultInjector(
            load_instance("2dconv.k1"), telemetry=telemetry, checkpoint_interval=8
        )
        random_campaign(injector, 48, rng=11, executor=make_runner(workers))
        gauges = telemetry.metrics.snapshot()["gauges"]
        scoped = {
            name: value
            for name, value in gauges.items()
            if name.startswith("checkpoint.bytes[")
        }
        # Slow pool start-up (spawn) can let one worker drain every chunk,
        # so only a lower bound on participating workers is deterministic.
        assert 1 <= len(scoped) <= workers
        assert all(value > 0 for value in scoped.values())
        # The headline gauge is the fleet total, not one worker's store.
        assert gauges["checkpoint.bytes"] == pytest.approx(sum(scoped.values()))
        if len(scoped) > 1:
            assert gauges["checkpoint.bytes"] > max(scoped.values())


class TestFailureSurfacing:
    def test_worker_exception_propagates(self):
        injector = FaultInjector(load_instance("2dconv.k1"))
        bogus = FaultSite(thread=10**6, dyn_index=0, bit=0)
        with pytest.raises(FaultInjectionError):
            run_campaign(injector, [bogus], executor=make_runner(2))


class TestDegradation:
    def test_resolve_executor_serial_cases(self):
        assert resolve_executor(None) is None
        assert resolve_executor(0) is None
        assert resolve_executor(1) is None
        runner = resolve_executor(3)
        assert isinstance(runner, ParallelCampaignRunner)
        assert runner.workers == 3

    def test_single_worker_runner_stays_in_process(self, saxpy_serial):
        injector, serial = saxpy_serial
        runner = ParallelCampaignRunner(1)
        pairs = [(site, 1.0) for site in serial.sites]
        streamed = list(runner.imap(injector, pairs))
        assert [o for _, _, o in streamed] == serial.outcomes

    def test_unpicklable_instance_falls_back_to_serial(self, saxpy_serial):
        injector, serial = saxpy_serial
        # Poison the instance so the payload builder cannot pickle it.
        instance = injector.instance
        original = instance.reference
        instance.reference = {"cb": lambda: None}  # lambdas don't pickle
        try:
            telemetry = Telemetry(sink=MemorySink())
            pairs = [(site, 1.0) for site in serial.sites]
            streamed = list(make_runner(2).imap(injector, pairs, telemetry))
            assert [o for _, _, o in streamed] == serial.outcomes
            counters = telemetry.metrics.snapshot()["counters"]
            assert counters["parallel.serial_fallback"] == 1
        finally:
            instance.reference = original

    def test_serial_executor_streams_in_order(self, saxpy_serial):
        injector, serial = saxpy_serial
        pairs = [(site, 2.0) for site in serial.sites]
        streamed = list(SerialExecutor().imap(injector, pairs))
        assert [s for s, _, _ in streamed] == serial.sites
        assert all(w == 2.0 for _, w, _ in streamed)


class TestChunking:
    def test_chunk_sizes(self):
        runner = ParallelCampaignRunner(2, chunk_size=3)
        chunks = list(runner._chunked(iter([(i, 1.0) for i in range(8)])))
        assert [len(c) for c in chunks] == [3, 3, 2]

    def test_chunk_size_validated(self):
        with pytest.raises(ValueError):
            ParallelCampaignRunner(2, chunk_size=0)


def test_sites_equal_under_differing_worker_counts():
    """Site sampling must not depend on the executor at all."""
    injector = FaultInjector(build_saxpy_instance())
    rng1 = np.random.default_rng(5)
    rng2 = np.random.default_rng(5)
    a = random_campaign(injector, 20, rng=rng1)
    b = random_campaign(injector, 20, rng=rng2, executor=make_runner(2))
    assert a.sites == b.sites
