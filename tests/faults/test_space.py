"""Unit + property tests for fault-space enumeration and sampling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FaultInjectionError
from repro.faults import FaultSite, FaultSpace


def make_space():
    # Two threads: thread 0 has widths [32, 0, 4], thread 1 has [16, 32].
    traces = [
        [(0, 32), (1, 0), (2, 4)],
        [(0, 16), (3, 32)],
    ]
    return FaultSpace(traces)


class TestCounting:
    def test_total_sites(self):
        assert make_space().total_sites == 32 + 4 + 16 + 32

    def test_thread_sites(self):
        space = make_space()
        assert space.thread_sites(0) == 36
        assert space.thread_sites(1) == 48

    def test_icnt(self):
        space = make_space()
        assert space.thread_icnt(0) == 3
        assert space.thread_icnt(1) == 2


class TestIndexing:
    def test_first_site(self):
        assert make_space().site_at(0) == FaultSite(0, 0, 0)

    def test_skips_zero_width_entries(self):
        # Index 32 is the first bit of thread 0's dyn instr 2 (width 4);
        # dyn instr 1 has width 0 and owns no sites.
        assert make_space().site_at(32) == FaultSite(0, 2, 0)

    def test_crosses_thread_boundary(self):
        assert make_space().site_at(36) == FaultSite(1, 0, 0)

    def test_last_site(self):
        assert make_space().site_at(83) == FaultSite(1, 1, 31)

    def test_out_of_range(self):
        with pytest.raises(FaultInjectionError):
            make_space().site_at(84)
        with pytest.raises(FaultInjectionError):
            make_space().site_at(-1)

    @given(st.integers(min_value=0, max_value=83))
    def test_indexing_is_bijective(self, index):
        space = make_space()
        site = space.site_at(index)
        # Reconstruct the flat index from the site.
        flat = 0
        for t in range(site.thread):
            flat += space.thread_sites(t)
        for i in range(site.dyn_index):
            flat += space.width_of(site.thread, i)
        flat += site.bit
        assert flat == index

    @given(st.integers(min_value=0, max_value=83))
    def test_sites_are_valid(self, index):
        space = make_space()
        site = space.site_at(index)
        assert 0 <= site.bit < space.width_of(site.thread, site.dyn_index)


class TestSampling:
    def test_sample_deterministic_with_seed(self):
        space = make_space()
        a = space.sample(10, np.random.default_rng(1))
        b = space.sample(10, np.random.default_rng(1))
        assert a == b

    def test_sample_covers_space_roughly_uniformly(self):
        space = make_space()
        rng = np.random.default_rng(0)
        sites = space.sample(2000, rng)
        thread1 = sum(1 for s in sites if s.thread == 1)
        # Thread 1 owns 48/84 of the space.
        assert 0.5 < thread1 / 2000 < 0.65


class TestEnumeration:
    def test_sites_of_instruction(self):
        sites = make_space().sites_of_instruction(0, 2)
        assert sites == [FaultSite(0, 2, b) for b in range(4)]

    def test_iter_thread_sites(self):
        sites = list(make_space().iter_thread_sites(0))
        assert len(sites) == 36
        assert sites[0] == FaultSite(0, 0, 0)
        assert sites[-1] == FaultSite(0, 2, 3)


class TestFaultSiteType:
    def test_ordering_and_str(self):
        assert FaultSite(0, 1, 2) < FaultSite(1, 0, 0)
        assert str(FaultSite(3, 4, 5)) == "t3/i4/b5"

    def test_hashable(self):
        assert len({FaultSite(0, 0, 0), FaultSite(0, 0, 0)}) == 1
