"""Fault-propagation provenance tracing: record semantics, backend and
checkpoint equivalence, pool streaming, zero-interference discipline, and
the pruning-group coherence audit."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import FaultInjector, load_instance, random_campaign
from repro.errors import ReproError
from repro.faults import parse_site, run_coherence_audit
from repro.faults.model import InjectionSpec, RegisterFileSite, StoreAddressSite
from repro.faults.propagation import PropagationRecord
from repro.faults.site import FaultSite
from repro.parallel import ParallelCampaignRunner
from repro.telemetry import InjectionEvent, MemorySink, Telemetry

from ..helpers import build_loop_sum_instance, build_saxpy_instance

START_METHOD = os.environ.get("REPRO_TEST_START_METHOD") or None


def sample_specs(injector, threads=(0,)):
    """A deterministic spread of valid VALUE sites per thread."""
    specs = []
    for thread in threads:
        trace = injector.traces[thread]
        valid = [d for d, (_pc, width) in enumerate(trace) if width]
        for dyn in (valid[0], valid[len(valid) // 2], valid[-1]):
            for bit in (0, 14, 31):
                specs.append((thread, InjectionSpec(dyn, bit)))
    return specs


def collect_records(injector, specs):
    for thread, spec in specs:
        injector.inject_spec(thread, spec)
    return [r.to_dict() for r in injector.propagation_records]


class TestRecordSemantics:
    @pytest.fixture(scope="class")
    def traced(self):
        injector = FaultInjector(build_saxpy_instance(), propagation=True)
        specs = sample_specs(injector, threads=(0, 7))
        collect_records(injector, specs)
        return injector, specs

    def test_every_injection_yields_one_record(self, traced):
        injector, specs = traced
        assert len(injector.propagation_records) == len(specs)

    def test_first_corrupted_pc_is_the_flip_site_pc(self, traced):
        injector, _ = traced
        for record in injector.propagation_records:
            assert (
                record.first_corrupted_pc
                == injector.traces[record.thread][record.dyn_index][0]
            )

    def test_masked_records_drain_or_die_unobserved(self, traced):
        injector, _ = traced
        masked = [
            r for r in injector.propagation_records if r.outcome == "masked"
        ]
        assert masked
        for record in masked:
            # A masked injection never corrupts the output image.
            assert record.output_corrupt_bytes == 0
            if record.masking_dyn is not None:
                assert record.masking_dyn > record.dyn_index
                assert record.masking_depth >= 1

    def test_sdc_records_carry_output_geometry(self, traced):
        injector, _ = traced
        sdcs = [r for r in injector.propagation_records if r.outcome == "sdc"]
        assert sdcs
        for record in sdcs:
            assert record.output_corrupt_bytes > 0
            assert record.output_extent >= 1
            assert record.output_max_magnitude >= 1
            assert f"out{record.output_corrupt_bytes.bit_length()}" in (
                record.signature()
            )

    def test_corruption_events_start_after_the_flip(self, traced):
        injector, _ = traced
        for record in injector.propagation_records:
            for dyn, regs in record.corruption_events:
                assert dyn > record.dyn_index
                assert regs == tuple(sorted(regs))

    def test_round_trip_and_signature_stability(self, traced):
        injector, _ = traced
        for record in injector.propagation_records:
            payload = record.to_dict()
            restored = PropagationRecord.from_dict(payload)
            assert restored.to_dict() == payload
            assert restored.signature() == payload["signature"]

    def test_divergent_record_points_into_the_faulty_path(self):
        injector = FaultInjector(build_loop_sum_instance(), propagation=True)
        trace = injector.traces[0]
        valid = [d for d, (_pc, width) in enumerate(trace) if width]
        diverged = None
        for dyn in valid:
            for bit in (0, 14, 30):
                injector.inject_spec(0, InjectionSpec(dyn, bit))
                record = injector.propagation_records[-1]
                if record.diverged:
                    diverged = record
                    break
            if diverged:
                break
        assert diverged is not None, "loop kernel must offer a CF divergence"
        assert diverged.divergence_dyn > diverged.dyn_index
        assert diverged.divergence_pc is not None
        assert diverged.masking_dyn is None  # tracking stops at divergence
        assert "|div|" in diverged.signature()


class TestFaultModelTraces:
    def test_store_address_and_rf_models_trace(self):
        injector = FaultInjector(build_saxpy_instance(), propagation=True)
        ioa = injector.store_address_sites(0)[0]
        injector.inject_spec(ioa.thread, ioa.spec(), label=str(ioa))
        assert injector.propagation_records[-1].model == "ioa"

        import numpy as np

        rf = injector.sample_register_file_sites(1, np.random.default_rng(3))[0]
        injector.inject_spec(rf.thread, rf.spec(), label=str(rf))
        record = injector.propagation_records[-1]
        assert record.model == "rf"
        assert record.outcome in ("masked", "sdc", "crash", "hang")


class TestEquivalence:
    """The tracer observes; it must never change what is observed."""

    @pytest.mark.parametrize("backend", ["interpreter", "compiled"])
    def test_profiles_byte_identical_with_tracing(self, backend):
        instance = build_saxpy_instance()
        plain = FaultInjector(instance, backend=backend)
        traced = FaultInjector(instance, backend=backend, propagation=True)
        r_plain = random_campaign(plain, 24, rng=5)
        r_traced = random_campaign(traced, 24, rng=5)
        assert r_traced.outcomes == r_plain.outcomes
        assert r_traced.profile.weights == r_plain.profile.weights
        assert len(traced.propagation_records) == 24

    def test_records_identical_across_backends_and_checkpoints(self):
        instance = build_saxpy_instance()
        reference = None
        for backend in ("interpreter", "compiled"):
            for interval in (0, 16):
                injector = FaultInjector(
                    instance,
                    propagation=True,
                    backend=backend,
                    checkpoint_interval=interval,
                )
                records = collect_records(
                    injector, sample_specs(injector, threads=(0, 7))
                )
                for record in records:
                    record.pop("backend")
                if reference is None:
                    reference = records
                else:
                    assert records == reference, (backend, interval)

    def test_tracer_does_not_pollute_campaign_metrics(self):
        instance = build_saxpy_instance()

        def instruction_count(propagation):
            telemetry = Telemetry(sink=MemorySink())
            injector = FaultInjector(
                instance, telemetry=telemetry, propagation=propagation
            )
            random_campaign(injector, 12, rng=9)
            return telemetry.metrics.counter("sim.instructions").value

        assert instruction_count(True) == instruction_count(False)

    def test_disabled_tracing_builds_no_tracer(self):
        injector = FaultInjector(build_saxpy_instance())
        random_campaign(injector, 6, rng=1)
        assert injector._tracer is None
        assert injector.propagation_records == []


class TestPoolStreaming:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_records_stream_back_identically(self, workers):
        def run(executor):
            sink = MemorySink()
            injector = FaultInjector(
                build_saxpy_instance(),
                propagation=True,
                telemetry=Telemetry(sink=sink),
            )
            random_campaign(injector, 16, rng=7, executor=executor)
            return sorted(
                (e.thread, e.dyn_index, e.bit, e.propagation["signature"])
                for e in sink.of_type(InjectionEvent)
                if e.propagation
            )

        serial = run(None)
        pooled = run(
            ParallelCampaignRunner(workers, start_method=START_METHOD)
        )
        assert len(serial) == 16
        assert pooled == serial


class TestCoherenceAudit:
    def test_requires_propagation(self):
        injector = FaultInjector(build_saxpy_instance())
        with pytest.raises(ReproError):
            run_coherence_audit(injector)

    def test_audit_probes_groups_and_tags_events(self):
        sink = MemorySink()
        injector = FaultInjector(
            build_saxpy_instance(),
            propagation=True,
            telemetry=Telemetry(sink=sink),
        )
        audit = run_coherence_audit(
            injector, members_per_group=3, sites_per_group=3
        )
        assert audit.groups
        for group in audit.groups:
            assert 0.0 <= group.agreement <= 1.0
            assert group.members[0] not in group.members[1:]
            assert len(group.probes) == len(group.members) * 3
        assert 0.0 <= audit.agreement <= 1.0
        tagged = [e for e in sink.of_type(InjectionEvent) if e.group]
        assert tagged and all(e.propagation for e in tagged)
        assert {e.group for e in tagged} == {g.group for g in audit.groups}
        payload = audit.to_dict()
        assert payload["n_groups"] == len(audit.groups)

    def test_identical_members_agree_fully(self):
        # saxpy threads within a group run the same code on different
        # data; masked probes at bit 31 of dyn 0 are structurally alike,
        # so at least one group/site must agree; and the audit's
        # reference (the representative) always agrees with itself.
        injector = FaultInjector(build_saxpy_instance(), propagation=True)
        audit = run_coherence_audit(injector, members_per_group=2)
        for group in audit.groups:
            rep_probes = [p for p in group.probes if p.thread == group.members[0]]
            assert all(p.signature != "" for p in rep_probes)

    def test_group_registry_kernel_smoke(self):
        injector = FaultInjector(
            load_instance("pathfinder.k1"), propagation=True
        )
        audit = run_coherence_audit(
            injector, members_per_group=2, sites_per_group=2, max_groups=1
        )
        assert len(audit.groups) == 1


class TestParseSite:
    def test_all_three_forms_round_trip(self):
        for site in (
            FaultSite(3, 40, 12),
            StoreAddressSite(1, 5, 30),
            RegisterFileSite(0, 9, "sum", 7),
        ):
            assert parse_site(str(site)) == site

    def test_garbage_rejected(self):
        with pytest.raises(ReproError):
            parse_site("t1/i2")
        with pytest.raises(ReproError):
            parse_site("xyz:t0/i0/b0")

    def test_round_trip_property(self):
        """parse_site(str(site)) == site over randomly drawn sites of
        all three forms (thread/dyn/bit ranges spanning realistic
        campaigns, register names covering the grammar)."""
        rng = np.random.default_rng(20180631 % (1 << 31))
        alphabet = (
            "abcdefghijklmnopqrstuvwxyz"
            "ABCDEFGHIJKLMNOPQRSTUVWXYZ_"
        )
        digits = alphabet + "0123456789"
        for _ in range(300):
            thread = int(rng.integers(0, 1 << 20))
            dyn = int(rng.integers(0, 1 << 24))
            bit = int(rng.integers(0, 64))
            kind = int(rng.integers(3))
            if kind == 0:
                site = FaultSite(thread, dyn, bit)
            elif kind == 1:
                site = StoreAddressSite(thread, dyn, bit)
            else:
                head = alphabet[int(rng.integers(len(alphabet)))]
                tail = "".join(
                    digits[int(rng.integers(len(digits)))]
                    for _ in range(int(rng.integers(0, 8)))
                )
                site = RegisterFileSite(thread, dyn, head + tail, bit)
            parsed = parse_site(str(site))
            assert parsed == site
            assert type(parsed) is type(site)
