"""Integration robustness: random campaigns never kill the simulator.

Every injection over every kernel class must end in one of the four
outcomes — no stray exceptions, regardless of what the corrupted state
does (wild addresses, NaN math, broken loop counters, skipped barriers).
"""

import numpy as np
import pytest

from repro import Outcome
from tests.conftest import injector_for

KERNEL_SAMPLE = [
    "2dconv.k1",      # divergent stencil
    "gemm.k1",        # uniform loop kernel
    "pathfinder.k1",  # shared memory + barriers + loop
    "lud.k46",        # data-dependent nested loops + barriers
    "k-means.k2",     # nested loops + divergent min-update
    "gaussian.k125",  # mostly-idle late invocation
]


@pytest.mark.parametrize("key", KERNEL_SAMPLE)
def test_random_campaign_always_classifies(key):
    injector = injector_for(key)
    rng = np.random.default_rng(abs(hash(key)) % 2**32)
    for site in injector.space.sample(25, rng):
        outcome = injector.inject(site)
        assert isinstance(outcome, Outcome)


@pytest.mark.parametrize("key", ["pathfinder.k1", "lud.k46"])
def test_barrier_kernels_survive_predicate_flips(key):
    """Zero-flag flips change control flow around barriers; the scheduler
    must resolve every resulting schedule (possibly as HANG), never
    deadlock or crash the host."""
    injector = injector_for(key)
    pred_sites = []
    for thread in range(min(4, injector.space.n_threads)):
        for dyn_index, (_pc, width) in enumerate(injector.traces[thread]):
            if width == 4:
                pred_sites.extend(
                    injector.space.sites_of_instruction(thread, dyn_index)
                )
    assert pred_sites
    for site in pred_sites[:60]:
        assert isinstance(injector.inject(site), Outcome)


def test_outcome_counts_are_exhaustive_classification():
    """Across a batch, outcomes always land in the four enum members."""
    injector = injector_for("2dconv.k1")
    rng = np.random.default_rng(1)
    seen = set()
    for site in injector.space.sample(120, rng):
        seen.add(injector.inject(site))
    assert seen <= set(Outcome)
    assert Outcome.SDC in seen  # flips in a stencil always corrupt something
