"""Regression pins for the injector hot-path optimisations.

Each optimisation replaced a simple reference implementation; these tests
keep the optimised code byte-for-byte faithful to it:

* mask-based ``_writes_escape_cta``   vs  the original per-byte set scans;
* thread-sliced re-execution          vs  full-grid re-execution;
* cached ``sample_register_file_sites`` vs  the original rescan loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import FaultInjector, load_instance, random_campaign
from repro.faults.model import RegisterFileSite

from ..helpers import build_saxpy_instance


def reference_writes_escape_cta(injector, faulty_log, cta) -> bool:
    """The original set-based escape check, verbatim semantics."""
    cta_write_bytes = []
    for log in injector._cta_write_logs:
        owned = set()
        for address, raw in log:
            owned.update(range(address, address + len(raw)))
        cta_write_bytes.append(owned)
    own = cta_write_bytes[cta]
    others = [s for i, s in enumerate(cta_write_bytes) if i != cta]
    for address, raw in faulty_log:
        for byte in range(address, address + len(raw)):
            if byte in own:
                continue
            if any(byte in other for other in others):
                return True
    return False


class TestEscapeMask:
    @pytest.mark.parametrize("key", ["2dconv.k1", "pathfinder.k1"])
    def test_matches_set_reference_on_golden_logs(self, key):
        """Every CTA's own golden log, plus every *other* CTA's log offset
        into this CTA's decision, must classify identically."""
        injector = FaultInjector(load_instance(key))
        n_ctas = injector.instance.geometry.n_ctas
        for cta in range(min(n_ctas, 4)):
            for source in range(min(n_ctas, 4)):
                log = injector._cta_write_logs[source][:32]
                got = injector._writes_escape_cta(log, cta)
                want = reference_writes_escape_cta(injector, log, cta)
                assert got == want, (key, cta, source)

    def test_matches_reference_on_synthetic_spans(self, conv2d_injector):
        injector = conv2d_injector
        lo, hi = injector.instance.initial_memory.allocation_span()
        cases = [
            [(lo, b"\x00" * 4)],                  # window start
            [(hi - 4, b"\x00" * 4)],              # window end
            [(lo - 64, b"\x00" * 16)],            # before the window
            [(hi + 64, b"\x00" * 16)],            # past the window
            [(lo - 8, b"\x00" * 16)],             # straddling the low edge
            [(hi - 8, b"\x00" * 16)],             # straddling the high edge
        ]
        for log in cases:
            got = injector._writes_escape_cta(log, 0)
            want = reference_writes_escape_cta(injector, log, 0)
            assert got == want, log

    def test_fallback_decisions_pinned_end_to_end(self):
        """Seed 2 contains a known write-escape; the optimised path must
        take the full-re-run fallback exactly as often as before."""
        injector = FaultInjector(load_instance("2dconv.k1"))
        random_campaign(injector, 80, rng=2)
        assert injector.fallback_count == 1


class TestThreadSlicing:
    @pytest.mark.parametrize("key", ["2dconv.k1", "k-means.k1", "gaussian.k126"])
    def test_outcomes_match_cta_slicing(self, key):
        """Thread-sliced and CTA-sliced classification agree everywhere —
        including on gaussian.k126, where 35 of 36 CTAs are sliceable and
        the last is not."""
        sliced = FaultInjector(load_instance(key))
        unsliced = FaultInjector(load_instance(key), thread_slicing=False)
        assert any(sliced._cta_sliceable)
        assert not any(unsliced._cta_sliceable)
        rng = np.random.default_rng(13)
        for site in sliced.space.sample(40, rng):
            assert sliced.inject(site) == unsliced.inject(site), site
        assert sliced.fallback_count == unsliced.fallback_count

    def test_outcomes_match_full_rerun(self):
        injector = FaultInjector(load_instance("2dconv.k1"))
        rng = np.random.default_rng(17)
        for site in injector.space.sample(25, rng):
            assert injector.inject(site) == injector.inject_full(site), site

    def test_shared_memory_kernels_never_slice(self, pathfinder_injector):
        assert not any(pathfinder_injector._cta_sliceable)

    def test_scratch_heap_repaired_between_injections(self):
        """The reused scratch heap must equal the initial heap after every
        injection, or later injections would see stale faulty bytes."""
        injector = FaultInjector(build_saxpy_instance())
        initial = injector.instance.initial_memory
        rng = np.random.default_rng(3)
        for site in injector.space.sample(30, rng):
            injector.inject(site)
            assert injector._scratch_memory._data == initial._data


def reference_sample_register_file_sites(injector, n, rng):
    """The original rejection loop, rescanning the trace prefix per draw."""
    instructions = injector.instance.program.instructions
    sites = []
    n_threads = len(injector.traces)
    while len(sites) < n:
        thread = int(rng.integers(0, n_threads))
        trace = injector.traces[thread]
        if not trace:
            continue
        dyn_index = int(rng.integers(0, len(trace)))
        written = set()
        for pc, width in trace[:dyn_index]:
            if width and instructions[pc].dest is not None:
                written.add(instructions[pc].dest.name)
        if not written:
            continue
        ordered = sorted(written)
        reg = ordered[int(rng.integers(0, len(ordered)))]
        bit = int(rng.integers(0, 32))
        sites.append(RegisterFileSite(thread, dyn_index, reg, bit))
    return sites


class TestRegisterFileSampleCache:
    @pytest.mark.parametrize("key", ["2dconv.k1", "pathfinder.k1"])
    def test_matches_rescan_reference(self, key):
        injector = FaultInjector(load_instance(key))
        got = injector.sample_register_file_sites(60, np.random.default_rng(41))
        want = reference_sample_register_file_sites(
            injector, 60, np.random.default_rng(41)
        )
        assert got == want

    def test_cache_reused_across_calls(self):
        injector = FaultInjector(build_saxpy_instance())
        injector.sample_register_file_sites(10, np.random.default_rng(1))
        cached = dict(injector._rf_prefix_cache)
        again = injector.sample_register_file_sites(10, np.random.default_rng(1))
        for thread, entry in cached.items():
            assert injector._rf_prefix_cache[thread] is entry
        assert again == injector.sample_register_file_sites(
            10, np.random.default_rng(1)
        )
