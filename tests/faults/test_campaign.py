"""Campaign-driver tests."""

import numpy as np
import pytest

from repro import FaultInjector, exhaustive_campaign, random_campaign, run_campaign
from repro.faults import FaultSite

from ..helpers import build_saxpy_instance


@pytest.fixture(scope="module")
def injector():
    return FaultInjector(build_saxpy_instance(n=6, block=3))


class TestRunCampaign:
    def test_counts_match_sites(self, injector):
        sites = injector.space.sample(10, np.random.default_rng(0))
        result = run_campaign(injector, sites)
        assert result.n_runs == 10
        assert result.profile.n_injections == 10

    def test_weights_flow_into_profile(self, injector):
        sites = injector.space.sample(4, np.random.default_rng(0))
        result = run_campaign(injector, sites, weights=[1.0, 2.0, 3.0, 4.0])
        assert result.profile.total_weight == pytest.approx(10.0)


class TestRandomCampaign:
    def test_seed_reproducibility(self, injector):
        a = random_campaign(injector, 15, rng=7)
        b = random_campaign(injector, 15, rng=7)
        assert a.sites == b.sites
        assert a.outcomes == b.outcomes

    def test_different_seeds_differ(self, injector):
        a = random_campaign(injector, 15, rng=1)
        b = random_campaign(injector, 15, rng=2)
        assert a.sites != b.sites

    def test_accepts_generator(self, injector):
        result = random_campaign(injector, 5, rng=np.random.default_rng(3))
        assert result.n_runs == 5


class TestExhaustiveCampaign:
    def test_single_thread_exhaustive(self, injector):
        result = exhaustive_campaign(injector, threads=[0])
        assert result.n_runs == injector.space.thread_sites(0)
        # Every site of thread 0, in order.
        assert result.sites[0] == FaultSite(0, 0, 0)

    def test_exhaustive_is_superset_of_thread_runs(self, injector):
        full = exhaustive_campaign(injector)
        assert full.n_runs == injector.space.total_sites

    def test_exhaustive_profile_is_the_ground_truth(self, injector):
        """The full-space campaign is self-consistent: re-running any site
        reproduces its recorded outcome."""
        full = exhaustive_campaign(injector, threads=[1])
        rng = np.random.default_rng(9)
        picks = rng.choice(full.n_runs, size=5, replace=False)
        for index in picks:
            assert injector.inject(full.sites[int(index)]) == full.outcomes[int(index)]
