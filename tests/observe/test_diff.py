"""Report diffing: loader validation, delta math, CI significance, CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.observe import (
    build_report,
    diff_reports,
    load_campaign,
    load_report_json,
    render_diff_text,
    render_json,
)

FIXTURES = Path(__file__).parent / "fixtures"


def make_report(outcomes, *, kernel="demo.k1", latency=None, phases=None):
    """A minimal report dict shaped like render_json output."""
    total = sum(c for c, *_ in outcomes.values())
    rows = []
    for outcome, spec in outcomes.items():
        count, ci = spec
        rows.append({
            "outcome": outcome,
            "count": count,
            "share": count / total,
            "ci_low": ci[0] if ci else None,
            "ci_high": ci[1] if ci else None,
        })
    report = {
        "meta": {"kernel": kernel, "backends": ["compiled"],
                 "n_injections": total},
        "outcomes": rows,
        "latency": latency,
        "phases": phases,
    }
    return report


class TestLoader:
    def test_loads_real_report_json(self, tmp_path):
        report = build_report(load_campaign([FIXTURES / "campaign.jsonl"]))
        path = tmp_path / "a.json"
        path.write_text(render_json(report))
        loaded = load_report_json(path)
        assert loaded["meta"]["n_injections"] == 12

    def test_missing_file_fails_loudly(self):
        with pytest.raises(ReproError, match="not found"):
            load_report_json("/nonexistent/report.json")

    def test_invalid_json_fails_loudly(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ReproError, match="not valid JSON"):
            load_report_json(bad)

    def test_non_report_json_fails_loudly(self, tmp_path):
        other = tmp_path / "other.json"
        other.write_text(json.dumps({"foo": 1}))
        with pytest.raises(ReproError, match="not a campaign report"):
            load_report_json(other)


class TestDeltaMath:
    def test_share_deltas_and_counts(self):
        a = make_report({"masked": (6, None), "sdc": (2, None)})
        b = make_report({"masked": (4, None), "sdc": (4, None)})
        diff = diff_reports(a, b)
        rows = {r["outcome"]: r for r in diff["outcomes"]}
        assert rows["sdc"]["delta"] == pytest.approx(0.5 - 0.25)
        assert rows["sdc"]["count_a"] == 2 and rows["sdc"]["count_b"] == 4
        assert rows["sdc"]["significant"] is None  # no CIs available

    def test_outcome_only_in_one_report(self):
        a = make_report({"masked": (8, None)})
        b = make_report({"masked": (6, None), "hang": (2, None)})
        rows = {r["outcome"]: r for r in diff_reports(a, b)["outcomes"]}
        assert rows["hang"]["share_a"] == 0.0
        assert rows["hang"]["count_a"] == 0
        assert rows["hang"]["share_b"] == pytest.approx(0.25)

    def test_disjoint_cis_are_significant(self):
        a = make_report({"sdc": (2, (0.05, 0.20)), "masked": (8, (0.5, 0.9))})
        b = make_report({"sdc": (6, (0.35, 0.80)), "masked": (4, (0.2, 0.6))})
        rows = {r["outcome"]: r for r in diff_reports(a, b)["outcomes"]}
        assert rows["sdc"]["ci_overlap"] is False
        assert rows["sdc"]["significant"] is True
        assert rows["masked"]["ci_overlap"] is True
        assert rows["masked"]["significant"] is False

    def test_latency_speedup_is_a_over_b(self):
        latency_a = {"mean_s": 0.04, "p50_s": 0.03, "p99_s": 0.1, "max_s": 0.2}
        latency_b = {"mean_s": 0.02, "p50_s": 0.015, "p99_s": 0.05,
                     "max_s": 0.1}
        a = make_report({"masked": (4, None)}, latency=latency_a)
        b = make_report({"masked": (4, None)}, latency=latency_b)
        latency = diff_reports(a, b)["latency"]
        assert latency["speedup"] == pytest.approx(2.0)
        assert latency["mean_s"]["delta"] == pytest.approx(-0.02)

    def test_phase_deltas_union_both_sides(self):
        phases_a = {"rows": [{"phase": "suffix_exec", "mean_s": 0.01}]}
        phases_b = {"rows": [{"phase": "suffix_exec", "mean_s": 0.004},
                             {"phase": "classify", "mean_s": 0.001}]}
        a = make_report({"masked": (4, None)}, phases=phases_a)
        b = make_report({"masked": (4, None)}, phases=phases_b)
        phases = {r["phase"]: r for r in diff_reports(a, b)["phases"]}
        assert phases["suffix_exec"]["delta"] == pytest.approx(-0.006)
        assert phases["classify"]["mean_a"] == 0.0

    def test_kernel_mismatch_is_flagged(self):
        a = make_report({"masked": (4, None)}, kernel="gemm.k1")
        b = make_report({"masked": (4, None)}, kernel="gaussian.k1")
        meta = diff_reports(a, b)["meta"]
        assert meta["same_kernel"] is False


class TestRendering:
    def test_verdicts_and_warning(self):
        a = make_report({"sdc": (2, (0.05, 0.20)), "masked": (8, (0.5, 0.9)),
                         "hang": (1, None)}, kernel="gemm.k1")
        b = make_report({"sdc": (6, (0.35, 0.80)), "masked": (4, (0.2, 0.6)),
                         "hang": (1, None)}, kernel="gaussian.k1")
        text = render_diff_text(diff_reports(a, b))
        assert "WARNING: reports cover different kernels" in text
        assert "SIGNIFICANT (CIs disjoint)" in text
        assert "within noise (CIs overlap)" in text
        assert "no CI" in text

    def test_latency_and_phase_sections_render(self):
        latency = {"mean_s": 0.04, "p50_s": 0.03, "p99_s": 0.1, "max_s": 0.2}
        phases = {"rows": [{"phase": "suffix_exec", "mean_s": 0.01}]}
        a = make_report({"masked": (4, None)}, latency=latency, phases=phases)
        text = render_diff_text(diff_reports(a, a))
        assert "latency (mean speedup 1.00x):" in text
        assert "suffix_exec" in text


class TestDiffCli:
    @pytest.fixture()
    def report_files(self, tmp_path):
        report = build_report(load_campaign([
            FIXTURES / "campaign.jsonl", FIXTURES / "run.json",
        ]))
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(render_json(report))
        b.write_text(render_json(report))
        return a, b

    def test_diff_mode_renders_text(self, report_files, capsys):
        from repro.__main__ import main

        a, b = report_files
        assert main(["report", "--diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("report diff — A: pathfinder.k1")
        assert "within noise (CIs overlap)" in out

    def test_diff_json_format(self, report_files, capsys):
        from repro.__main__ import main

        a, b = report_files
        assert main([
            "report", "--diff", str(a), str(b), "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["meta"]["same_kernel"] is True
        assert all(r["delta"] == 0.0 for r in payload["outcomes"])

    def test_diff_missing_file_fails_loudly(self, report_files):
        from repro.__main__ import main

        a, _ = report_files
        with pytest.raises(ReproError):
            main(["report", "--diff", str(a), "/nonexistent.json"])

    def test_report_without_targets_or_diff_fails(self):
        from repro.__main__ import main

        with pytest.raises(ReproError):
            main(["report"])
