"""Benchmark history: normalized records, snapshots, regression checks."""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.observe.history import (
    HISTORY_SCHEMA_VERSION,
    append_history,
    check_history,
    load_history,
    write_suite_snapshot,
)


def _seed(results_dir, values, metric="wall_s", direction="lower"):
    for value in values:
        append_history(
            results_dir, "suiteA", "gemm.k1", metric, value,
            unit="s", direction=direction, config={"bits": 4},
        )


class TestRecords:
    def test_append_writes_normalized_jsonl(self, tmp_path):
        record = append_history(
            tmp_path, "suiteA", "gemm.k1", "wall_s", 1.5,
            unit="s", direction="lower", config={"bits": 4},
        )
        assert record["schema"] == HISTORY_SCHEMA_VERSION
        assert record["git_rev"]  # stamped from the repo
        lines = (tmp_path / "history.jsonl").read_text().splitlines()
        assert json.loads(lines[0])["value"] == 1.5
        assert json.loads(lines[0])["config"] == {"bits": 4}

    def test_load_round_trips_and_filters_by_suite(self, tmp_path):
        _seed(tmp_path, [1.0, 2.0])
        append_history(tmp_path, "suiteB", "mvt.k1", "wall_s", 9.0)
        assert len(load_history(tmp_path)) == 3
        assert len(load_history(tmp_path, "suiteA")) == 2
        assert load_history(tmp_path / "nowhere") == []

    def test_bad_direction_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            append_history(tmp_path, "s", "k", "m", 1.0, direction="sideways")

    def test_newer_schema_rejected(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text(json.dumps({
            "schema": HISTORY_SCHEMA_VERSION + 1, "suite": "s",
            "kernel": "k", "metric": "m", "value": 1.0,
        }) + "\n")
        with pytest.raises(ReproError):
            load_history(tmp_path)


class TestSnapshots:
    def test_snapshot_keeps_latest_per_series(self, tmp_path):
        _seed(tmp_path, [1.0, 3.0, 2.0])
        snapshot = json.loads((tmp_path / "BENCH_suiteA.json").read_text())
        assert snapshot["suite"] == "suiteA"
        (entry,) = snapshot["entries"]
        assert entry["value"] == 2.0  # latest, not best
        assert entry["observations"] == 3

    def test_snapshot_rewritable_standalone(self, tmp_path):
        _seed(tmp_path, [1.0])
        (tmp_path / "BENCH_suiteA.json").unlink()
        write_suite_snapshot(tmp_path, "suiteA")
        assert (tmp_path / "BENCH_suiteA.json").exists()


class TestCheck:
    def test_empty_history_is_an_error_not_a_pass(self, tmp_path):
        with pytest.raises(ReproError):
            check_history(tmp_path)

    def test_single_observation_has_no_baseline(self, tmp_path):
        _seed(tmp_path, [1.0])
        (finding,) = check_history(tmp_path)
        assert finding["status"] == "no-baseline"
        assert finding["baseline"] is None

    def test_within_tolerance_is_ok(self, tmp_path):
        _seed(tmp_path, [1.0, 1.1, 0.9, 1.05])
        (finding,) = check_history(tmp_path, tolerance=0.25)
        assert finding["status"] == "ok"
        assert finding["baseline"] == 1.0  # median of the priors

    def test_lower_is_better_flags_slowdown(self, tmp_path):
        _seed(tmp_path, [1.0, 1.0, 1.6])
        (finding,) = check_history(tmp_path, tolerance=0.25)
        assert finding["status"] == "regression"
        assert finding["ratio"] == pytest.approx(1.6)

    def test_lower_is_better_flags_speedup_as_improved(self, tmp_path):
        _seed(tmp_path, [1.0, 1.0, 0.5])
        (finding,) = check_history(tmp_path, tolerance=0.25)
        assert finding["status"] == "improved"

    def test_higher_is_better_inverts_the_band(self, tmp_path):
        _seed(tmp_path, [4.0, 4.0, 2.0], metric="speedup", direction="higher")
        (finding,) = check_history(tmp_path, tolerance=0.25)
        assert finding["status"] == "regression"
        _seed(tmp_path, [6.0], metric="speedup", direction="higher")
        (finding,) = check_history(tmp_path, tolerance=0.25)
        assert finding["status"] == "improved"

    def test_series_check_independently(self, tmp_path):
        _seed(tmp_path, [1.0, 1.0, 5.0])  # regression in suiteA
        append_history(tmp_path, "suiteB", "mvt.k1", "wall_s", 1.0)
        statuses = {
            (f["suite"], f["status"]) for f in check_history(tmp_path)
        }
        assert statuses == {
            ("suiteA", "regression"), ("suiteB", "no-baseline"),
        }


class TestHostKeying:
    def test_records_are_stamped_with_this_host(self, tmp_path):
        import platform

        record = append_history(tmp_path, "s", "k", "m", 1.0)
        assert record["host"] == platform.node()
        explicit = append_history(tmp_path, "s", "k", "m", 1.0, host="ci-pool")
        assert explicit["host"] == "ci-pool"

    def test_other_hosts_records_are_ignored(self, tmp_path):
        # Fast history on a beefy machine must not flag this host's runs.
        for value in (1.0, 1.0):
            append_history(tmp_path, "s", "k", "wall_s", value, host="beefy")
        append_history(tmp_path, "s", "k", "wall_s", 5.0, host="beefy")
        _seed(tmp_path, [5.0])  # this host's only (slower) observation
        (finding,) = check_history(tmp_path)
        assert finding["status"] == "no-baseline"
        (finding,) = check_history(tmp_path, host="beefy")
        assert finding["status"] == "regression"

    def test_legacy_records_without_host_are_wildcards(self, tmp_path):
        path = tmp_path / "history.jsonl"
        legacy = {
            "schema": HISTORY_SCHEMA_VERSION, "suite": "s", "kernel": "k",
            "metric": "wall_s", "value": 1.0, "unit": "s",
            "direction": "lower",
        }
        path.write_text(json.dumps(legacy) + "\n" + json.dumps(legacy) + "\n")
        # A new host-stamped run joins the legacy series as its baseline.
        append_history(tmp_path, "s", "k", "wall_s", 1.05)
        (finding,) = check_history(tmp_path, tolerance=0.25)
        assert finding["status"] == "ok"
        assert finding["observations"] == 3

    def test_unknown_host_fails_loudly_with_known_hosts(self, tmp_path):
        append_history(tmp_path, "s", "k", "m", 1.0, host="runner-a")
        append_history(tmp_path, "s", "k", "m", 1.0, host="runner-b")
        with pytest.raises(ReproError, match="runner-a, runner-b"):
            check_history(tmp_path, host="laptop")

    def test_host_flag_on_cli(self, tmp_path, capsys):
        from repro.__main__ import main

        append_history(tmp_path, "s", "k", "wall_s", 1.0, host="ci-pool")
        append_history(tmp_path, "s", "k", "wall_s", 1.0, host="ci-pool")
        assert main([
            "bench-check", "--results-dir", str(tmp_path),
            "--host", "ci-pool",
        ]) == 0
        capsys.readouterr()
        assert main([
            "bench-check", "--results-dir", str(tmp_path),
            "--host", "ci-pool", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["status"] == "ok"
        with pytest.raises(ReproError):
            main([
                "bench-check", "--results-dir", str(tmp_path),
                "--host", "nowhere",
            ])


class TestBenchCheckCli:
    def test_exit_codes_and_advisory(self, tmp_path, capsys):
        from repro.__main__ import main

        _seed(tmp_path, [1.0, 1.0, 1.0, 5.0])
        assert main(["bench-check", "--results-dir", str(tmp_path)]) == 1
        assert "regression" in capsys.readouterr().out
        assert main(
            ["bench-check", "--results-dir", str(tmp_path), "--advisory"]
        ) == 0
        assert main(
            ["bench-check", "--results-dir", str(tmp_path),
             "--tolerance", "10.0"]
        ) == 0

    def test_thin_baseline_regression_is_advisory(self, tmp_path, capsys):
        """A regression backed by fewer than MIN_BLOCKING_SAMPLES prior
        observations reports but does not gate."""
        from repro.__main__ import main

        _seed(tmp_path, [1.0, 1.0, 5.0])  # two baseline samples only
        assert main(["bench-check", "--results-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "advisory" in out
        assert "WARNING" in out
        assert main(
            ["bench-check", "--results-dir", str(tmp_path), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["regressions"] == 1
        assert payload["blocking"] == 0
        (finding,) = payload["findings"]
        assert finding["status"] == "regression"
        assert finding["advisory"] is True
        assert finding["baseline_samples"] == 2

    def test_json_output(self, tmp_path, capsys):
        from repro.__main__ import main

        _seed(tmp_path, [1.0, 1.0])
        assert main(
            ["bench-check", "--results-dir", str(tmp_path), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["regressions"] == 0
        assert payload["findings"][0]["metric"] == "wall_s"

    def test_committed_history_passes(self, capsys):
        """The repo ships real history under benchmarks/results; the
        advisory CI job must be able to run against it as committed."""
        from repro.__main__ import main

        assert main(["bench-check", "--advisory"]) == 0
