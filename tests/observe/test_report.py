"""Campaign report engine: loading, section math, rendering, golden file."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.observe import (
    build_report,
    load_campaign,
    render_json,
    render_markdown,
    render_text,
)
from repro.telemetry import InjectionEvent, JsonlSink

FIXTURES = Path(__file__).parent / "fixtures"
EVENTS = FIXTURES / "campaign.jsonl"
MANIFEST = FIXTURES / "run.json"
GOLDEN = FIXTURES / "campaign.report.txt"


@pytest.fixture(scope="module")
def campaign():
    return load_campaign([EVENTS, MANIFEST])


@pytest.fixture(scope="module")
def report(campaign):
    return build_report(campaign)


class TestLoader:
    def test_files_are_sniffed_and_bucketed(self, campaign):
        assert len(campaign.injections) == 12
        assert len(campaign.stages) == 4
        assert len(campaign.sim_runs) == 1
        assert [c.phase for c in campaign.campaigns] == ["start", "end"]
        assert campaign.kernel == "pathfinder.k1"

    def test_manifest_metrics_are_merged(self, campaign):
        counters = campaign.merged_metrics()["counters"]
        assert counters["checkpoint.cta_hits"] == 7
        assert counters["compiled.chain_hits"] == 380

    def test_missing_file_fails_loudly(self):
        with pytest.raises(ReproError):
            load_campaign(["/nonexistent/evts.jsonl"])

    def test_empty_input_fails_loudly(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        JsonlSink(empty).close()  # header only, zero events
        with pytest.raises(ReproError):
            load_campaign([empty])


class TestSections:
    def test_outcome_rows_have_wilson_cis(self, report):
        rows = {r["outcome"]: r for r in report["outcomes"]}
        assert rows["masked"]["count"] == 6
        assert rows["masked"]["share"] == pytest.approx(0.5)
        assert 0.0 < rows["masked"]["ci_low"] < 0.5 < rows["masked"]["ci_high"] < 1.0
        assert rows["hang"]["count"] == 1

    def test_phase_shares_sum_to_attribution(self, report):
        phases = report["phases"]
        assert {r["phase"] for r in phases["rows"]} == {
            "checkpoint_restore", "prefix_replay", "suffix_exec",
            "heap_repair", "classify",
        }
        assert phases["attributed_s"] == pytest.approx(
            sum(r["total_s"] for r in phases["rows"])
        )
        assert phases["unattributed_s"] == pytest.approx(
            max(0.0, phases["duration_total_s"] - phases["attributed_s"])
        )

    def test_tertiles_split_by_depth_and_slow_down_with_it(self, report):
        rows = report["tertiles"]["rows"]
        assert [r["tertile"] for r in rows] == ["shallow", "middle", "deep"]
        assert sum(r["count"] for r in rows) == 12
        means = [r["mean_s"] for r in rows]
        assert means == sorted(means)  # fixture: deeper faults run longer

    def test_checkpoint_and_compiled_cache_rates(self, report):
        checkpoint = report["checkpoint"]
        assert checkpoint["interval"] == 16
        assert checkpoint["hit_rate"] == pytest.approx(7 / 12)
        assert checkpoint["skipped_instructions"] == 5200
        compiled = report["compiled"]
        assert compiled["hit_rate"] == pytest.approx(380 / 400)

    def test_worker_imbalance_from_busy_counters(self, report):
        workers = report["workers"]
        assert [r["worker"] for r in workers["rows"]] == ["w1", "w2"]
        assert workers["imbalance"] == pytest.approx(0.30 / 0.245)
        assert workers["queue_wait"]["count"] == 2

    def test_funnel_factors(self, report):
        funnel = report["funnel"]
        assert [f["stage"] for f in funnel] == [
            "thread-wise", "instruction-wise", "loop-wise", "bit-wise",
        ]
        assert funnel[0]["factor"] == pytest.approx(8.0)

    def test_stragglers_exceed_p99(self):
        # 120 fast injections and one 10x outlier: the straggler section
        # must single it out with its phase split attached.
        events = [
            InjectionEvent(
                float(i), thread=0, dyn_index=i, bit=0, model="value",
                outcome="masked", fast_path=True,
                duration_s=0.1 if i == 60 else 0.01,
                phases={"suffix_exec": 0.09 if i == 60 else 0.009},
            )
            for i in range(121)
        ]
        from repro.observe.loader import CampaignLog

        log = CampaignLog(events=list(events), injections=list(events))
        section = build_report(log)["stragglers"]
        assert len(section["rows"]) == 1
        assert section["rows"][0]["dyn_index"] == 60
        assert section["rows"][0]["phases"]["suffix_exec"] == 0.09

    def test_sections_absent_on_minimal_log(self):
        from repro.observe.loader import CampaignLog

        event = InjectionEvent(
            1.0, thread=0, dyn_index=0, bit=0, model="value",
            outcome="masked", fast_path=True, duration_s=0.01,
        )
        log = CampaignLog(events=[event], injections=[event])
        report = build_report(log)
        assert report["phases"] is None
        assert report["checkpoint"] is None
        assert report["compiled"] is None
        assert report["workers"] is None
        assert report["funnel"] is None


class TestRendering:
    def test_text_matches_committed_golden(self, report):
        assert render_text(report) == GOLDEN.read_text()

    def test_json_round_trips(self, report):
        assert json.loads(render_json(report))["meta"]["n_injections"] == 12

    def test_markdown_has_all_section_headings(self, report):
        text = render_markdown(report)
        for heading in ("# Campaign report", "## Outcomes", "## Phases",
                        "## Checkpoints", "## Compiled backend",
                        "## Pruning funnel"):
            assert heading in text


class TestReportCli:
    def test_campaign_mode_renders_golden(self, capsys):
        from repro.__main__ import main

        assert main(["report", str(EVENTS), str(MANIFEST)]) == 0
        assert capsys.readouterr().out == GOLDEN.read_text()

    def test_format_and_out_flags(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "report.md"
        assert main([
            "report", str(EVENTS), "--manifest", str(MANIFEST),
            "--format", "markdown", "--out", str(out),
        ]) == 0
        assert out.read_text().startswith("# Campaign report — pathfinder.k1")

    def test_mixed_missing_files_fail_loudly(self):
        from repro.__main__ import main

        with pytest.raises(ReproError):
            main(["report", str(EVENTS), "/nonexistent.jsonl"])
