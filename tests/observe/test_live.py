"""Live campaign control plane: aggregation, equivalence, front-ends.

The standing invariant under test: the live plane is *advisory* — a
campaign with streaming telemetry attached (serial or pooled, any
backend) produces a byte-identical outcome profile to one without.  On
top of that, the units: delta-record construction, rolling aggregation,
convergence, flight-recorder dumps, the HTTP/status-file front-ends and
the ``repro watch`` loop.
"""

from __future__ import annotations

import json
import os
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import FaultInjector, load_instance, random_campaign, run_campaign
from repro.errors import FaultInjectionError, ReproError
from repro.faults.site import FaultSite
from repro.observe.live import (
    DEFAULT_RING_SIZE,
    LIVE_STATUS_VERSION,
    FlightRecorder,
    LiveAggregator,
    LiveChannel,
    check_convergence,
    load_flight_dump,
    max_half_width,
    render_live,
)
from repro.observe.statusd import StatusFileWriter, StatusServer, watch
from repro.parallel import ParallelCampaignRunner
from repro.telemetry import MemorySink, Telemetry

START_METHOD = os.environ.get("REPRO_TEST_START_METHOD") or None

N_SITES = 40
SEED = 17


def make_runner(workers: int, chunk_size: int = 8) -> ParallelCampaignRunner:
    return ParallelCampaignRunner(
        workers, chunk_size=chunk_size, start_method=START_METHOD
    )


class FakeClock:
    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def injection_record(
    worker: str = "w1",
    outcome: str = "masked",
    dyn_index: int = 5,
    duration_s: float = 0.01,
    **extra,
) -> dict:
    record = {
        "kind": "injection",
        "worker": worker,
        "ts": 0.0,
        "outcome": outcome,
        "thread": 0,
        "dyn_index": dyn_index,
        "duration_s": duration_s,
        "effective_instructions": 100,
        "spliced_instructions": 0,
        "checkpoint_hits": 0,
        "resync_hits": 0,
    }
    record.update(extra)
    return record


class TestConvergenceMath:
    def test_no_samples_is_unconverged(self):
        assert max_half_width({}, 0) is None
        assert not check_convergence({}, 0, until_ci=0.5)

    def test_width_shrinks_with_n(self):
        counts_small = {"masked": 5, "sdc": 5}
        counts_big = {"masked": 500, "sdc": 500}
        assert max_half_width(counts_big, 1000) < max_half_width(counts_small, 10)

    def test_convergence_threshold(self):
        counts = {"masked": 500, "sdc": 300, "crash": 200}
        width = max_half_width(counts, 1000)
        assert check_convergence(counts, 1000, until_ci=width + 1e-9)
        assert not check_convergence(counts, 1000, until_ci=width / 2)

    def test_deterministic_for_fixed_counts(self):
        counts = {"masked": 40, "crash": 8}
        assert max_half_width(counts, 48) == max_half_width(dict(counts), 48)


class TestLiveChannel:
    def test_note_ships_counter_deltas(self):
        telemetry = Telemetry(sink=MemorySink())
        pushed: list[dict] = []
        channel = LiveChannel(pushed.append, "w1", metrics=telemetry.metrics)
        telemetry.count("work.effective_instructions", 120)
        site = FaultSite(thread=3, dyn_index=9, bit=1)

        class Outcome:
            value = "sdc"

        channel.note(site, Outcome(), duration_s=0.5)
        telemetry.count("work.effective_instructions", 30)
        telemetry.count("work.spliced_instructions", 7)
        channel.note(site, Outcome(), duration_s=0.25)

        injections = [r for r in pushed if r["kind"] == "injection"]
        assert [r["effective_instructions"] for r in injections] == [120, 30]
        assert [r["spliced_instructions"] for r in injections] == [0, 7]
        assert injections[0]["thread"] == 3
        assert injections[0]["dyn_index"] == 9

    def test_resync_counters_reanchors_after_registry_reset(self):
        telemetry = Telemetry(sink=MemorySink())
        pushed: list[dict] = []
        channel = LiveChannel(pushed.append, "w1", metrics=telemetry.metrics)
        telemetry.count("work.effective_instructions", 50)
        telemetry.metrics.__init__()  # the worker chunk-reset idiom
        channel.resync_counters()
        telemetry.count("work.effective_instructions", 10)
        site = FaultSite(thread=0, dyn_index=0, bit=0)

        class Outcome:
            value = "masked"

        channel.note(site, Outcome(), duration_s=0.1)
        injections = [r for r in pushed if r["kind"] == "injection"]
        assert injections[-1]["effective_instructions"] == 10

    def test_ring_is_bounded(self):
        channel = LiveChannel(lambda record: None, "w1", ring_size=4)
        site = FaultSite(thread=0, dyn_index=0, bit=0)

        class Outcome:
            value = "masked"

        for _ in range(10):
            channel.note(site, Outcome(), duration_s=0.0)
        assert len(channel.ring) == 4

    def test_broken_push_never_raises(self):
        def explode(record):
            raise OSError("queue torn down")

        channel = LiveChannel(explode, "w1")
        channel.online()
        site = FaultSite(thread=0, dyn_index=0, bit=0)

        class Outcome:
            value = "masked"

        channel.note(site, Outcome(), duration_s=0.0)
        channel.crash(site, ValueError("boom"))

    def test_crash_ships_ring_and_traceback(self):
        pushed: list[dict] = []
        channel = LiveChannel(pushed.append, "w2", ring_size=8)
        site = FaultSite(thread=1, dyn_index=2, bit=3)

        class Outcome:
            value = "crash"

        channel.note(site, Outcome(), duration_s=0.0)
        channel.crash(site, ValueError("boom"))
        crash = pushed[-1]
        assert crash["kind"] == "crash"
        assert crash["worker"] == "w2"
        assert "boom" in crash["error"]
        assert len(crash["ring"]) == 1


class TestLiveAggregator:
    def make(self, **kwargs):
        clock = FakeClock(1000.0)
        mono = FakeClock(0.0)
        kwargs.setdefault("clock", clock)
        kwargs.setdefault("monotonic", mono)
        aggregator = LiveAggregator(**kwargs)
        return aggregator, clock, mono

    def test_snapshot_counts_and_shares(self):
        aggregator, _, mono = self.make(total=10, kernel="k", until_ci=0.5)
        aggregator.begin()
        for outcome in ("masked", "masked", "sdc", "crash"):
            mono.advance(1.0)
            aggregator.record(injection_record(outcome=outcome))
        snap = aggregator.snapshot()
        assert snap["version"] == LIVE_STATUS_VERSION
        assert snap["done"] == 4
        assert snap["total"] == 10
        shares = {row["outcome"]: row for row in snap["outcomes"]}
        assert shares["masked"]["count"] == 2
        assert shares["masked"]["share"] == pytest.approx(0.5)
        assert shares["masked"]["ci_low"] is not None
        assert snap["throughput"]["effective_instructions"] == 400

    def test_rolling_rate_uses_recent_window(self):
        aggregator, _, mono = self.make()
        aggregator.begin()
        for _ in range(5):
            mono.advance(2.0)
            aggregator.record(injection_record())
        assert aggregator.rolling_rate == pytest.approx(0.5)
        assert aggregator.rolling_effective_rate == pytest.approx(50.0)

    def test_eta_projection(self):
        aggregator, _, mono = self.make(total=100)
        aggregator.begin()
        for _ in range(10):
            mono.advance(1.0)
            aggregator.record(injection_record())
        snap = aggregator.snapshot()
        assert snap["eta_s"] == pytest.approx(90.0, rel=0.2)

    def test_worker_liveness_and_stall(self):
        aggregator, _, mono = self.make(stall_after_s=5.0)
        aggregator.begin()
        aggregator.record(injection_record(worker="a"))
        aggregator.record(injection_record(worker="b"))
        mono.advance(10.0)
        aggregator.record(injection_record(worker="b"))
        rows = {row["worker"]: row for row in aggregator.snapshot()["workers"]}
        assert rows["a"]["stalled"]
        assert not rows["b"]["stalled"]
        assert rows["b"]["done"] == 2

    def test_heartbeat_refreshes_liveness_without_counting(self):
        aggregator, _, mono = self.make(stall_after_s=5.0)
        aggregator.begin()
        aggregator.record(injection_record(worker="a"))
        mono.advance(10.0)
        aggregator.record(
            {"kind": "heartbeat", "worker": "a", "ts": 0.0, "done": 1,
             "state": "beat"}
        )
        rows = aggregator.snapshot()["workers"]
        assert not rows[0]["stalled"]
        assert aggregator.done == 1

    def test_convergence_signal_in_snapshot(self):
        aggregator, _, _ = self.make(until_ci=0.2)
        aggregator.begin()
        for _ in range(200):
            aggregator.record(injection_record(outcome="masked"))
        conv = aggregator.snapshot()["convergence"]
        assert conv["target"] == 0.2
        assert conv["converged"]
        assert conv["max_half_width"] < 0.2

    def test_crash_record_flips_worker_and_state(self):
        aggregator, _, _ = self.make()
        aggregator.begin()
        aggregator.record(
            {"kind": "crash", "worker": "a", "ts": 0.0, "site": "t0/i0/b0",
             "error": "ValueError('x')", "traceback": "tb", "ring": []}
        )
        aggregator.abort(ValueError("x"))
        snap = aggregator.snapshot()
        assert snap["state"] == "crashed"
        assert snap["crashes"][0]["worker"] == "a"

    def test_finish_states(self):
        aggregator, _, _ = self.make()
        aggregator.begin()
        aggregator.finish()
        assert aggregator.snapshot()["state"] == "done"
        aggregator, _, _ = self.make()
        aggregator.begin()
        aggregator.finish(converged=True)
        assert aggregator.snapshot()["state"] == "converged"

    def test_tertiles_split_by_depth(self):
        aggregator, _, _ = self.make()
        aggregator.begin()
        for depth in range(30):
            aggregator.record(
                injection_record(dyn_index=depth, duration_s=depth / 1000.0)
            )
        rows = {row["tertile"]: row for row in aggregator.snapshot()["tertiles"]}
        assert set(rows) == {"shallow", "middle", "deep"}
        assert rows["deep"]["mean_s"] > rows["shallow"]["mean_s"]

    def test_heartbeat_emits_event_into_telemetry(self):
        sink = MemorySink()
        telemetry = Telemetry(sink=sink)
        aggregator, _, _ = self.make()
        aggregator.begin(telemetry=telemetry)
        aggregator.record(
            {"kind": "heartbeat", "worker": "w1", "ts": 7.0, "done": 3,
             "state": "beat"}
        )
        beats = [e for e in sink.events if type(e).__name__ == "HeartbeatEvent"]
        assert len(beats) == 1
        assert beats[0].worker == "w1"
        assert beats[0].done == 3


class TestRenderLive:
    def test_dashboard_sections(self):
        aggregator = LiveAggregator(total=10, kernel="demo.k1", until_ci=0.3)
        aggregator.begin(label="random")
        for outcome in ("masked", "sdc", "crash", "masked"):
            aggregator.record(injection_record(outcome=outcome))
        text = render_live(aggregator.snapshot())
        assert "demo.k1" in text
        assert "state: running" in text
        assert "masked" in text and "sdc" in text
        assert "Wilson 95% CI" in text
        assert "workers:" in text
        assert "w1" in text

    def test_crash_rendered(self):
        aggregator = LiveAggregator()
        aggregator.begin()
        aggregator.record(
            {"kind": "crash", "worker": "w9", "ts": 0.0, "site": "t1/i2/b3",
             "error": "ValueError('dead')", "traceback": "", "ring": []}
        )
        assert "worker crash: w9" in render_live(aggregator.snapshot())


@pytest.fixture(scope="module")
def conv2d_serial():
    injector = FaultInjector(load_instance("2dconv.k1"))
    result = random_campaign(injector, N_SITES, rng=SEED)
    return result


class TestAdvisoryEquivalence:
    """Live-on campaigns must match live-off byte for byte."""

    @pytest.mark.parametrize("backend", ["interpreter", "compiled", "vectorized"])
    def test_serial_profiles_identical(self, conv2d_serial, backend):
        injector = FaultInjector(load_instance("2dconv.k1"), backend=backend)
        live = LiveAggregator()
        result = random_campaign(injector, N_SITES, rng=SEED, live=live)
        assert result.outcomes == conv2d_serial.outcomes
        assert result.profile.weights == conv2d_serial.profile.weights
        assert live.done == N_SITES
        assert "serial" in live.workers

    def test_pool_profiles_identical(self, conv2d_serial):
        injector = FaultInjector(load_instance("2dconv.k1"))
        live = LiveAggregator()
        result = random_campaign(
            injector, N_SITES, rng=SEED, executor=make_runner(2), live=live
        )
        assert result.outcomes == conv2d_serial.outcomes
        assert result.profile.weights == conv2d_serial.profile.weights
        assert live.done == N_SITES

    def test_pool_instrumented_profiles_identical(self, conv2d_serial):
        telemetry = Telemetry(sink=MemorySink())
        injector = FaultInjector(load_instance("2dconv.k1"), telemetry=telemetry)
        live = LiveAggregator()
        result = random_campaign(
            injector, N_SITES, rng=SEED, executor=make_runner(2), live=live
        )
        assert result.outcomes == conv2d_serial.outcomes
        assert live.effective_instructions > 0
        counters = telemetry.metrics.snapshot()["counters"]
        assert live.effective_instructions == counters[
            "work.effective_instructions"
        ]

    def test_convergence_verdict_matches_across_executors(self):
        serial = random_campaign(
            FaultInjector(load_instance("2dconv.k1")),
            N_SITES,
            rng=SEED,
            until_ci=0.25,
            early_stop=True,
        )
        pooled = random_campaign(
            FaultInjector(load_instance("2dconv.k1")),
            N_SITES,
            rng=SEED,
            executor=make_runner(2),
            until_ci=0.25,
            early_stop=True,
        )
        assert serial.converged == pooled.converged
        assert serial.stopped_early == pooled.stopped_early
        assert serial.outcomes == pooled.outcomes

    def test_early_stop_truncates_sampled_campaign(self):
        injector = FaultInjector(load_instance("2dconv.k1"))
        result = random_campaign(
            injector, 200, rng=SEED, until_ci=0.3, early_stop=True
        )
        assert result.converged and result.stopped_early
        assert result.n_runs < 200
        # Without early stop the same campaign still reports the verdict.
        flagged = random_campaign(
            FaultInjector(load_instance("2dconv.k1")),
            200,
            rng=SEED,
            until_ci=0.3,
        )
        assert flagged.converged and not flagged.stopped_early
        assert flagged.n_runs == 200


class TestFlightRecorder:
    def crash_campaign(self, tmp_path, executor=None):
        dump_path = tmp_path / "flight.json"
        injector = FaultInjector(load_instance("2dconv.k1"))
        live = LiveAggregator()
        live.flight_recorder = FlightRecorder(dump_path)
        good = injector.space.sample(6, np.random.default_rng(3))
        bogus = FaultSite(thread=10**6, dyn_index=0, bit=0)
        with pytest.raises(FaultInjectionError):
            run_campaign(
                injector, list(good) + [bogus], executor=executor, live=live
            )
        return dump_path, live

    def test_serial_crash_writes_dump(self, tmp_path):
        dump_path, live = self.crash_campaign(tmp_path)
        assert dump_path.exists()
        dump = load_flight_dump(dump_path)
        assert dump["kind"] == "flight-recorder"
        assert dump["status"]["state"] == "crashed"
        assert "FaultInjectionError" in (dump["error"] or "")
        assert dump["traceback"]
        # The serial channel shipped its ring and crash context.
        assert dump["crashes"], "crash record missing from dump"
        assert dump["crashes"][0]["ring"]
        assert live.snapshot()["state"] == "crashed"

    def test_pool_crash_writes_dump(self, tmp_path):
        dump_path, _ = self.crash_campaign(tmp_path, executor=make_runner(2))
        dump = load_flight_dump(dump_path)
        assert dump["status"]["state"] == "crashed"
        assert dump["crashes"], "worker crash record missing from dump"
        assert dump["crashes"][0]["worker"].startswith(
            ("ForkPoolWorker", "SpawnPoolWorker", "ForkServerPoolWorker")
        )

    def test_load_rejects_non_dumps(self, tmp_path):
        path = tmp_path / "not-a-dump.json"
        path.write_text('{"kind": "something-else"}')
        with pytest.raises(ReproError):
            load_flight_dump(path)
        newer = tmp_path / "newer.json"
        newer.write_text(
            json.dumps({"kind": "flight-recorder",
                        "version": LIVE_STATUS_VERSION + 1})
        )
        with pytest.raises(ReproError):
            load_flight_dump(newer)


class TestStatusServer:
    def serve(self):
        aggregator = LiveAggregator(total=4, kernel="demo.k1")
        aggregator.begin()
        aggregator.record(injection_record(outcome="masked"))
        server = StatusServer(aggregator, port=0)
        server.start()
        return aggregator, server

    def fetch(self, url: str) -> tuple[int, bytes]:
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, response.read()

    def test_status_json(self):
        _, server = self.serve()
        try:
            status, body = self.fetch(server.url + "/status")
            assert status == 200
            snap = json.loads(body)
            assert snap["kernel"] == "demo.k1"
            assert snap["done"] == 1
        finally:
            server.stop()

    def test_html_dashboard_and_healthz(self):
        _, server = self.serve()
        try:
            status, body = self.fetch(server.url + "/")
            assert status == 200
            assert b"demo.k1" in body
            assert b"http-equiv" in body  # self-refreshing
            status, body = self.fetch(server.url + "/healthz")
            assert status == 200
        finally:
            server.stop()

    def test_404(self):
        _, server = self.serve()
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                self.fetch(server.url + "/nope")
            assert err.value.code == 404
        finally:
            server.stop()


class TestStatusFileAndWatch:
    def test_writer_final_flush_records_terminal_state(self, tmp_path):
        path = tmp_path / "status.json"
        aggregator = LiveAggregator(kernel="demo.k1")
        aggregator.begin()
        writer = StatusFileWriter(aggregator, path, interval_s=60.0)
        writer.start()
        aggregator.record(injection_record())
        aggregator.finish()
        writer.stop()
        snap = json.loads(path.read_text())
        assert snap["state"] == "done"
        assert snap["done"] == 1

    def test_watch_once_renders_and_exits(self, tmp_path, capsys):
        path = tmp_path / "status.json"
        aggregator = LiveAggregator(kernel="demo.k1")
        aggregator.begin()
        aggregator.record(injection_record())
        aggregator.finish()
        path.write_text(json.dumps(aggregator.snapshot()))
        assert watch(str(path), once=True) == 0
        out = capsys.readouterr().out
        assert "demo.k1" in out
        assert "state: done" in out

    def test_watch_json_mode(self, tmp_path, capsys):
        path = tmp_path / "status.json"
        aggregator = LiveAggregator(kernel="demo.k1")
        aggregator.begin()
        path.write_text(json.dumps(aggregator.snapshot()))
        assert watch(str(path), once=True, as_json=True) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["kernel"] == "demo.k1"

    def test_watch_polls_until_terminal_state(self, tmp_path):
        path = tmp_path / "status.json"
        aggregator = LiveAggregator(kernel="demo.k1")
        aggregator.begin()
        ticks = {"n": 0}

        def fake_sleep(seconds):
            ticks["n"] += 1
            if ticks["n"] == 2:
                aggregator.finish(converged=True)
            path.write_text(json.dumps(aggregator.snapshot()))

        path.write_text(json.dumps(aggregator.snapshot()))
        stream = open(os.devnull, "w")
        try:
            code = watch(str(path), interval_s=0.0, stream=stream,
                         sleep=fake_sleep)
        finally:
            stream.close()
        assert code == 0
        assert ticks["n"] >= 2

    def test_watch_missing_target_times_out(self, tmp_path):
        clock = FakeClock(0.0)

        def fake_sleep(seconds):
            clock.advance(max(seconds, 1.0))

        code = watch(
            str(tmp_path / "never.json"),
            timeout_s=3.0,
            clock=clock,
            sleep=fake_sleep,
            stream=open(os.devnull, "w"),
        )
        assert code == 1

    def test_watch_crashed_campaign_exit_code(self, tmp_path, capsys):
        path = tmp_path / "status.json"
        aggregator = LiveAggregator(kernel="demo.k1")
        aggregator.begin()
        aggregator.abort(ValueError("dead"))
        path.write_text(json.dumps(aggregator.snapshot()))
        assert watch(str(path), once=True) == 2


def test_default_ring_size_sane():
    assert DEFAULT_RING_SIZE >= 16
