"""Propagation report sections: aggregation math, rendering, golden file.

The fixture was produced by a real traced campaign on the 3-CTA saxpy
helper kernel (threads 0 and 7, nine bit/site combinations each) followed
by a coherence audit with one seeded disagreement, then re-stamped with
deterministic timestamps and durations.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.observe import (
    build_propagation_section,
    build_report,
    load_campaign,
    render_json,
    render_markdown,
    render_text,
)

FIXTURES = Path(__file__).parent / "fixtures"
EVENTS = FIXTURES / "propagation.jsonl"
GOLDEN = FIXTURES / "propagation.report.txt"


@pytest.fixture(scope="module")
def campaign():
    return load_campaign([EVENTS])


@pytest.fixture(scope="module")
def report(campaign):
    return build_report(campaign, propagation=True)


class TestSection:
    def test_absent_unless_requested(self, campaign):
        assert build_report(campaign)["propagation"] is None

    def test_pc_map_covers_every_traced_injection(self, report):
        section = report["propagation"]
        assert section["n_traced"] == 30
        pc_map = section["pc_map"]
        assert pc_map["n_pcs"] == len(pc_map["rows"]) == 5
        assert sum(r["n"] for r in pc_map["rows"]) == 30
        # Sorted most-vulnerable first.
        sdc_rates = [r["sdc_rate"] for r in pc_map["rows"]]
        assert sdc_rates == sorted(sdc_rates, reverse=True)
        for row in pc_map["rows"]:
            assert 0.0 <= row["sdc_rate"] <= 1.0
            assert 0.0 <= row["diverged_rate"] <= 1.0
            assert 0.0 <= row["escaped_rate"] <= 1.0
            assert sum(row["outcomes"].values()) == row["n"]

    def test_masking_buckets_are_log2(self, report):
        masking = report["propagation"]["masking"]
        assert set(masking) == {"iov"}
        row = masking["iov"]
        assert row["n"] == 30
        assert row["unmasked"] + sum(row["buckets"].values()) == 30
        assert all("-" in b or b.isdigit() for b in row["buckets"])

    def test_sdc_signatures_sum_to_sdc_count(self, report):
        signatures = report["propagation"]["signatures"]
        assert signatures["n_sdc"] == sum(r["count"] for r in signatures["rows"])
        counts = [r["count"] for r in signatures["rows"]]
        assert counts == sorted(counts, reverse=True)
        for row in signatures["rows"]:
            assert row["share"] == pytest.approx(row["count"] / signatures["n_sdc"])

    def test_coherence_reports_the_seeded_disagreement(self, report):
        coherence = report["propagation"]["coherence"]
        assert coherence["n_groups"] == 1
        group = coherence["rows"][0]
        assert group["group"] == "g0"
        assert group["members"] == 3
        assert group["probes"] == 12
        assert 0.0 < group["agreement"] < 1.0
        assert coherence["overall"] == pytest.approx(group["agreement"])
        assert len(group["disagreements"]) == 1
        site = group["disagreements"][0]
        assert len(site["signatures"]) == 2

    def test_section_is_none_without_traces(self):
        from repro.observe.loader import CampaignLog
        from repro.telemetry import InjectionEvent

        event = InjectionEvent(
            1.0, thread=0, dyn_index=0, bit=0, model="iov",
            outcome="masked", fast_path=True, duration_s=0.01,
        )
        log = CampaignLog(events=[event], injections=[event])
        assert build_propagation_section(log) is None
        assert build_report(log, propagation=True)["propagation"] is None


class TestRendering:
    def test_text_matches_committed_golden(self, report):
        assert render_text(report) == GOLDEN.read_text()

    def test_json_round_trips(self, report):
        payload = json.loads(render_json(report))
        assert payload["propagation"]["n_traced"] == 30

    def test_markdown_has_propagation_headings(self, report):
        text = render_markdown(report)
        for heading in ("## PC vulnerability map",
                        "## Masking depth by fault model",
                        "## SDC signatures",
                        "## Pruning-group coherence"):
            assert heading in text


class TestReportCli:
    def test_propagation_flag_renders_golden(self, capsys):
        from repro.__main__ import main

        assert main(["report", str(EVENTS), "--propagation"]) == 0
        assert capsys.readouterr().out == GOLDEN.read_text()

    def test_without_flag_sections_are_omitted(self, capsys):
        from repro.__main__ import main

        assert main(["report", str(EVENTS)]) == 0
        out = capsys.readouterr().out
        assert "PC vulnerability map" not in out
        assert "coherence" not in out
