"""End-to-end live smoke: a real CLI campaign polled over HTTP.

Two arms, mirroring the CI live-smoke job:

* a ``repro profile`` subprocess on a 2-worker spawn pool with
  ``--live-port 0`` + ``--live-status`` — poll ``/status`` while it
  runs, then assert the terminal snapshot's fields and the CLI
  convergence verdict;
* a crashing pooled campaign with a flight recorder attached — assert
  the post-mortem dump exists, parses, and carries the worker's ring.

These spawn real processes and bind real (ephemeral) ports, so they are
the slowest observe tests; everything unit-sized lives in
``test_live.py``.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
START_METHOD = os.environ.get("REPRO_TEST_START_METHOD") or "spawn"


def repro_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    return env


def poll_status(port: int, deadline_s: float = 60.0) -> dict | None:
    """Last ``/status`` snapshot fetched before the server goes away."""
    url = f"http://127.0.0.1:{port}/status"
    last = None
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(url, timeout=2) as response:
                last = json.loads(response.read())
        except (urllib.error.URLError, OSError, ValueError):
            if last is not None:
                break  # server served, then shut down: campaign over
            time.sleep(0.1)
            continue
        if last.get("state") in ("done", "converged", "crashed"):
            break
        time.sleep(0.2)
    return last


@pytest.mark.slow
def test_live_campaign_over_http(tmp_path):
    status_path = tmp_path / "status.json"
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "profile", "pathfinder.k1",
            "--workers", "2", "--start-method", START_METHOD,
            "--live-port", "0", "--live-status", str(status_path),
            "--until-ci", "0.5",
        ],
        cwd=REPO,
        env=repro_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        # The CLI announces the ephemeral port on stderr before starting.
        line = process.stderr.readline()
        match = re.search(r"live status: http://127\.0\.0\.1:(\d+)", line)
        assert match, f"no live-status announcement, got {line!r}"
        port = int(match.group(1))

        polled = poll_status(port)
        stdout, stderr = process.communicate(timeout=180)
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()

    assert process.returncode == 0, stderr
    assert "converged: every outcome share within" in stdout

    # At least one mid-flight (or terminal) snapshot came over HTTP.
    assert polled is not None, "never fetched /status over HTTP"
    assert {"state", "outcomes", "workers", "throughput"} <= set(polled)

    # The status file records the terminal state after exit.
    final = json.loads(status_path.read_text())
    assert final["state"] == "converged"
    assert final["done"] == final["total"] > 0
    shares = {row["outcome"]: row for row in final["outcomes"]}
    assert shares["masked"]["count"] > 0
    assert shares["masked"]["ci_low"] is not None
    assert shares["masked"]["half_width"] is not None
    assert final["convergence"]["converged"] is True
    assert final["convergence"]["max_half_width"] <= 0.5
    assert final["throughput"]["injections_per_s"] > 0
    assert final["throughput"]["effective_instructions"] > 0
    workers = {row["worker"]: row for row in final["workers"]}
    assert len(workers) >= 1  # slow spawn can let one worker drain all chunks
    assert all(row["done"] > 0 for row in workers.values())
    assert sum(row["done"] for row in workers.values()) == final["done"]


CRASH_ARM = """
import sys
import numpy as np
from repro import FaultInjector, load_instance, run_campaign
from repro.errors import FaultInjectionError
from repro.faults.site import FaultSite
from repro.observe.live import FlightRecorder, LiveAggregator
from repro.parallel import ParallelCampaignRunner

dump_path, start_method = sys.argv[1], sys.argv[2]
injector = FaultInjector(load_instance("pathfinder.k1"))
live = LiveAggregator()
live.flight_recorder = FlightRecorder(dump_path)
sites = injector.space.sample(8, np.random.default_rng(1))
sites.append(FaultSite(thread=10**6, dyn_index=0, bit=0))
runner = ParallelCampaignRunner(2, chunk_size=4, start_method=start_method)
try:
    run_campaign(injector, sites, executor=runner, live=live)
except FaultInjectionError:
    sys.exit(42)
sys.exit(1)
"""


@pytest.mark.slow
def test_worker_crash_leaves_flight_dump(tmp_path):
    dump_path = tmp_path / "flight.json"
    process = subprocess.run(
        [sys.executable, "-c", CRASH_ARM, str(dump_path), START_METHOD],
        cwd=REPO,
        env=repro_env(),
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert process.returncode == 42, process.stderr
    assert dump_path.exists(), "flight recorder wrote no dump"

    from repro.observe.live import load_flight_dump

    dump = load_flight_dump(dump_path)
    assert dump["kind"] == "flight-recorder"
    assert dump["status"]["state"] == "crashed"
    assert "FaultInjectionError" in (dump["error"] or "")
    assert dump["traceback"]
    assert dump["crashes"], "worker crash record missing"
    crash = dump["crashes"][0]
    assert crash["worker"]
    assert crash["traceback"]
