"""Event-log schema back-compat matrix.

The reader contract (``docs/observability.md``): every schema version
ever shipped stays loadable — missing fields fall back to their
dataclass defaults — while logs from a *newer* writer are rejected
loudly rather than silently dropping fields.  The checked-in
``events_v{2,3,4}.jsonl`` fixtures are frozen copies of real-era logs;
regenerating them to match a new schema would defeat the test.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.observe.loader import load_campaign
from repro.telemetry import EVENTS_SCHEMA_VERSION, read_events

FIXTURES = Path(__file__).parent / "fixtures"

#: Every schema version with a checked-in fixture, and what each era
#: introduced (the loader must surface the era's fields and default the
#: later ones).
ERAS = {
    2: FIXTURES / "events_v2.jsonl",
    3: FIXTURES / "events_v3.jsonl",
    4: FIXTURES / "events_v4.jsonl",
}


@pytest.mark.parametrize("version", sorted(ERAS))
def test_old_schemas_load(version):
    events = read_events(ERAS[version])
    assert events, f"v{version} fixture produced no events"
    log = load_campaign([ERAS[version]])
    assert log.injections, f"v{version} fixture has no injections"
    assert log.campaigns[0].phase == "start"
    assert log.campaigns[-1].profile  # the end record carries the profile


def test_v2_era_fields_default():
    log = load_campaign([ERAS[2]])
    injection = log.injections[0]
    # Fields that postdate v2 fall back to their dataclass defaults.
    assert injection.propagation is None
    assert injection.group is None
    assert injection.effective_instructions == 0
    assert injection.spliced_instructions == 0
    # v2-era fields survive.
    assert injection.model == "iov"
    assert log.injections[2].worker == "ForkPoolWorker-1"
    assert log.heartbeats == []


def test_v3_era_carries_propagation():
    log = load_campaign([ERAS[3]])
    injection = log.injections[0]
    assert injection.group == "cta0/pc12"
    assert injection.propagation["first_divergence"] == 10
    assert injection.effective_instructions == 0  # postdates v3


def test_v4_era_carries_effective_instructions():
    log = load_campaign([ERAS[4]])
    injection = log.injections[0]
    assert injection.effective_instructions == 900
    assert injection.spliced_instructions == 500
    assert "resync_scan" in injection.phases
    assert log.heartbeats == []  # heartbeats postdate v4


def test_matrix_covers_every_prior_schema():
    # When the schema bumps, freeze a fixture for the outgoing version
    # and extend ERAS — this assertion is the reminder.
    assert sorted(ERAS) == list(range(2, EVENTS_SCHEMA_VERSION))


def test_newer_schema_rejected_loudly(tmp_path):
    path = tmp_path / "future.jsonl"
    header = {"schema": EVENTS_SCHEMA_VERSION + 1, "writer": "repro.telemetry"}
    record = {
        "event": "heartbeat", "ts": 1.0, "worker": "w", "state": "beat",
        "done": 1, "rate": 2.0, "effective_instructions": 3,
    }
    path.write_text(json.dumps(header) + "\n" + json.dumps(record) + "\n")
    with pytest.raises(ReproError, match="schema"):
        read_events(path)
    with pytest.raises(ReproError, match="schema"):
        load_campaign([path])


def test_unknown_event_record_rejected(tmp_path):
    path = tmp_path / "alien.jsonl"
    path.write_text(
        json.dumps({"schema": EVENTS_SCHEMA_VERSION}) + "\n"
        + json.dumps({"event": "teleport", "ts": 1.0}) + "\n"
    )
    with pytest.raises(ReproError, match="teleport"):
        read_events(path)
