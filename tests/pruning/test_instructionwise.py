"""Stage-2 (instruction-wise) pruning tests."""

import pytest

from repro.pruning import prune_instructions, prune_threads
from repro.gpu.tracing import static_key_sequence
from tests.conftest import injector_for


def _reps(injector):
    tw = prune_threads(injector.traces, injector.instance.geometry)
    return tw.representatives


class TestPathFinder:
    """The paper's Fig. 5 example: two reps sharing almost all code."""

    def test_large_common_fraction(self, pathfinder_injector):
        reps = _reps(pathfinder_injector)
        iw = prune_instructions(
            pathfinder_injector.instance.program, pathfinder_injector.traces, reps
        )
        assert iw.applicable
        assert iw.common_fraction(pathfinder_injector.traces) > 0.35

    def test_donor_keeps_everything(self, pathfinder_injector):
        reps = _reps(pathfinder_injector)
        iw = prune_instructions(
            pathfinder_injector.instance.program, pathfinder_injector.traces, reps
        )
        donor = max(reps, key=lambda t: len(pathfinder_injector.traces[t]))
        assert iw.kept[donor] == [(0, len(pathfinder_injector.traces[donor]))]

    def test_borrowed_blocks_have_identical_keys(self, pathfinder_injector):
        program = pathfinder_injector.instance.program
        traces = pathfinder_injector.traces
        iw = prune_instructions(program, traces, _reps(pathfinder_injector))
        for block in iw.borrowed:
            own = static_key_sequence(program, traces[block.thread])
            donor = static_key_sequence(program, traces[block.donor])
            assert (
                own[block.lo : block.lo + block.size]
                == donor[block.donor_lo : block.donor_lo + block.size]
            )

    def test_kept_plus_borrowed_partition_the_trace(self, pathfinder_injector):
        traces = pathfinder_injector.traces
        iw = prune_instructions(
            pathfinder_injector.instance.program, traces, _reps(pathfinder_injector)
        )
        for thread, ranges in iw.kept.items():
            covered = set()
            for lo, hi in ranges:
                covered.update(range(lo, hi))
            for block in iw.borrowed:
                if block.thread == thread:
                    span = set(range(block.lo, block.lo + block.size))
                    assert not span & covered
                    covered |= span
            assert covered == set(range(len(traces[thread])))


class TestApplicabilityRules:
    def test_single_representative_keeps_everything(self, gemm_injector):
        reps = _reps(gemm_injector)
        assert len(reps) == 1
        iw = prune_instructions(
            gemm_injector.instance.program, gemm_injector.traces, reps
        )
        assert not iw.applicable
        assert iw.borrowed == []

    def test_tiny_thread_not_pruned_against_huge_donor(self, gaussian_k1_injector):
        # Gaussian K1's short (guard-fail) thread shares only the prologue;
        # below the threshold it must be kept whole (paper: "not
        # applicable ... leaving few opportunities").
        inj = gaussian_k1_injector
        reps = _reps(inj)
        iw = prune_instructions(
            inj.instance.program, inj.traces, reps, min_common_fraction=0.9
        )
        short = min(reps, key=lambda t: len(inj.traces[t]))
        assert iw.kept[short] == [(0, len(inj.traces[short]))]

    def test_min_block_filters_coincidences(self, pathfinder_injector):
        inj = pathfinder_injector
        strict = prune_instructions(
            inj.instance.program, inj.traces, _reps(inj), min_block=10_000
        )
        assert strict.borrowed == []


class TestWeightsSafety:
    def test_widths_match_across_borrowed_blocks(self, pathfinder_injector):
        """A borrowed dynamic instruction must have the donor's width
        whenever both executed (else progressive pruning keeps the copy)."""
        traces = pathfinder_injector.traces
        iw = prune_instructions(
            pathfinder_injector.instance.program, traces, _reps(pathfinder_injector)
        )
        mismatches = 0
        total = 0
        for block in iw.borrowed:
            for off in range(block.size):
                w_own = traces[block.thread][block.lo + off][1]
                w_don = traces[block.donor][block.donor_lo + off][1]
                total += 1
                if w_own != w_don:
                    mismatches += 1
        assert total > 0
        assert mismatches / total < 0.25


class TestShortThreadRule:
    """Paper III-C: short representatives are not partially pruned."""

    def test_short_idle_thread_keeps_own_sites(self, gaussian_k1_injector):
        inj = gaussian_k1_injector
        from repro.pruning import prune_threads

        tw = prune_threads(inj.traces, inj.instance.geometry)
        iw = prune_instructions(inj.instance.program, inj.traces, tw.representatives)
        for rep in tw.representatives:
            own_len = len(inj.traces[rep])
            if own_len < 10:
                # A short thread may only be pruned against an *identical*
                # donor; a longer active thread never qualifies.
                for block in iw.borrowed:
                    if block.thread == rep:
                        donor_len = len(inj.traces[block.donor])
                        assert donor_len == own_len

    def test_identical_short_threads_still_share(self):
        """Two byte-identical short traces may borrow from each other."""
        from repro.gpu import KernelBuilder

        k = KernelBuilder("twins")
        r = k.regs("a")
        k.mov("u32", r.a, 1)
        k.add("u32", r.a, r.a, 2)
        k.mul("u32", r.a, r.a, 3)
        k.add("u32", r.a, r.a, 4)
        k.retp()
        program = k.build()
        trace = [(i, 32) for i in range(4)] + [(4, 0)]
        traces = [list(trace), list(trace)]
        iw = prune_instructions(program, traces, [0, 1], min_block=2)
        assert iw.applicable
        assert sum(b.size for b in iw.borrowed) == len(trace)
