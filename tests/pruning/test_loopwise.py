"""Stage-3 (loop-wise) pruning tests."""

import numpy as np
import pytest

from repro.gpu import KernelBuilder
from repro.pruning import (
    build_loop_tree,
    find_static_loops,
    iteration_spans,
    loop_statistics,
    prune_loops,
)
from tests.conftest import injector_for
from tests.helpers import build_loop_sum_instance

from repro import FaultInjector


@pytest.fixture(scope="module")
def loop_sum():
    return FaultInjector(build_loop_sum_instance(n_threads=2, iters=8))


class TestStaticDetection:
    def test_simple_loop_found(self, loop_sum):
        loops = find_static_loops(loop_sum.instance.program)
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header < loop.backedge

    def test_loop_free_program(self):
        k = KernelBuilder("t")
        r = k.regs("a")
        k.mov("u32", r.a, 1)
        k.retp()
        assert find_static_loops(k.build()) == []

    def test_nested_tree(self, kmeans_k2_injector):
        tree = build_loop_tree(kmeans_k2_injector.instance.program)
        assert len(tree.children) == 1  # one top-level (cluster) loop
        assert len(tree.children[0].children) == 1  # feature loop inside


class TestIterationSpans:
    def test_span_count_matches_trip_count(self, loop_sum):
        loop = find_static_loops(loop_sum.instance.program)[0]
        trace = loop_sum.traces[0]
        spans = iteration_spans(trace, loop, 0, len(trace))
        assert len(spans) == 8

    def test_spans_are_contiguous(self, loop_sum):
        loop = find_static_loops(loop_sum.instance.program)[0]
        trace = loop_sum.traces[0]
        spans = iteration_spans(trace, loop, 0, len(trace))
        for a, b in zip(spans, spans[1:]):
            assert a.hi == b.lo

    def test_spans_start_at_header(self, loop_sum):
        loop = find_static_loops(loop_sum.instance.program)[0]
        trace = loop_sum.traces[0]
        for span in iteration_spans(trace, loop, 0, len(trace)):
            assert trace[span.lo][0] == loop.header


class TestPruneLoops:
    def test_sampling_keeps_requested_iterations(self, loop_sum):
        rng = np.random.default_rng(0)
        lw = prune_loops(
            loop_sum.instance.program, loop_sum.traces, [0], num_iter=3, rng=rng
        )
        loop = find_static_loops(loop_sum.instance.program)[0]
        trace = loop_sum.traces[0]
        spans = iteration_spans(trace, loop, 0, len(trace))
        kept = lw.kept(0)
        kept_iterations = sum(
            1 for s in spans if any(i in kept for i in range(s.lo, s.hi))
        )
        assert kept_iterations == 3

    def test_multiplier_scales_by_total_over_kept(self, loop_sum):
        rng = np.random.default_rng(0)
        lw = prune_loops(
            loop_sum.instance.program, loop_sum.traces, [0], num_iter=2, rng=rng
        )
        loop = find_static_loops(loop_sum.instance.program)[0]
        trace = loop_sum.traces[0]
        span = iteration_spans(trace, loop, 0, len(trace))[0]
        kept = lw.kept(0)
        in_loop_multipliers = {
            kept[i]
            for s in iteration_spans(trace, loop, 0, len(trace))
            for i in range(s.lo, s.hi)
            if i in kept
        }
        assert in_loop_multipliers == {8 / 2}

    def test_outside_loop_kept_with_unit_weight(self, loop_sum):
        rng = np.random.default_rng(0)
        lw = prune_loops(
            loop_sum.instance.program, loop_sum.traces, [0], num_iter=2, rng=rng
        )
        kept = lw.kept(0)
        # The prologue (before the loop header) is always kept at weight 1.
        assert kept[0] == 1.0

    def test_weight_conservation_for_uniform_iterations(self, loop_sum):
        """All iterations of loop_sum execute the same instructions, so the
        sampled weights must add back to the exact dynamic count."""
        rng = np.random.default_rng(1)
        lw = prune_loops(
            loop_sum.instance.program, loop_sum.traces, [0], num_iter=3, rng=rng
        )
        kept = lw.kept(0)
        assert sum(kept.values()) == pytest.approx(len(loop_sum.traces[0]))

    def test_sampling_more_than_available_keeps_all(self, loop_sum):
        rng = np.random.default_rng(0)
        lw = prune_loops(
            loop_sum.instance.program, loop_sum.traces, [0], num_iter=99, rng=rng
        )
        kept = lw.kept(0)
        assert set(kept) == set(range(len(loop_sum.traces[0])))
        assert all(v == 1.0 for v in kept.values())

    def test_nested_loops_multiply_factors(self, kmeans_k2_injector):
        inj = kmeans_k2_injector
        busy = max(range(len(inj.traces)), key=lambda t: len(inj.traces[t]))
        rng = np.random.default_rng(0)
        lw = prune_loops(inj.instance.program, inj.traces, [busy], num_iter=2, rng=rng)
        kept = lw.kept(busy)
        factors = sorted(set(kept.values()))
        assert 1.0 in factors  # prologue
        assert 2.0 in factors  # outer loop: 4 iterations / 2 kept
        assert 6.0 in factors  # inner within outer: (4/2) * (6/2)


class TestLoopStatistics:
    def test_table7_shape_for_mvt(self):
        inj = injector_for("mvt.k1")
        iters, share = loop_statistics(inj.instance.program, inj.traces)
        assert iters == 48  # one iteration per matrix column
        assert share > 95.0

    def test_table7_zero_for_hotspot(self):
        inj = injector_for("hotspot.k1")
        assert loop_statistics(inj.instance.program, inj.traces) == (0, 0.0)
