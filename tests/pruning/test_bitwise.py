"""Stage-4 (bit-wise) pruning tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PruningError
from repro.pruning import plan_bits, sampled_bit_positions


class TestSampledPositions:
    def test_paper_rule_8_of_32(self):
        """Paper Section III-E: 2 per 8-bit section -> {3,7,...,31}."""
        assert sampled_bit_positions(32, 8) == [3, 7, 11, 15, 19, 23, 27, 31]

    def test_16_of_32(self):
        assert sampled_bit_positions(32, 16) == list(range(1, 32, 2))

    def test_4_of_32(self):
        assert sampled_bit_positions(32, 4) == [7, 15, 23, 31]

    def test_all_when_n_exceeds_width(self):
        assert sampled_bit_positions(16, 32) == list(range(16))

    def test_invalid_n(self):
        with pytest.raises(PruningError):
            sampled_bit_positions(32, 0)

    @given(
        width=st.sampled_from([4, 16, 32, 64]),
        n=st.integers(min_value=1, max_value=64),
    )
    def test_positions_valid_and_distinct(self, width, n):
        positions = sampled_bit_positions(width, n)
        assert len(set(positions)) == len(positions)
        assert all(0 <= p < width for p in positions)

    @given(width=st.sampled_from([16, 32, 64]))
    def test_msb_always_sampled(self, width):
        for n in (2, 4, 8):
            assert (width - 1) in sampled_bit_positions(width, n)


class TestPlanBits:
    def test_u32_plan_weights(self):
        plan = plan_bits(32, 16)
        assert len(plan.kept_bits) == 16
        assert plan.weight_per_bit == 2.0
        assert plan.static_masked_bits == 0

    def test_pred_plan_keeps_zero_flag_only(self):
        plan = plan_bits(4, 16)
        assert plan.kept_bits == (0,)
        assert plan.static_masked_bits == 3
        assert plan.weight_per_bit == 1.0

    def test_pred_flag_pruning_can_be_disabled(self):
        plan = plan_bits(4, 16, pred_flags_masked=False)
        assert len(plan.kept_bits) == 4
        assert plan.static_masked_bits == 0

    @given(
        width=st.sampled_from([16, 32, 64]),
        n=st.integers(min_value=1, max_value=64),
    )
    def test_weight_conservation(self, width, n):
        plan = plan_bits(width, n)
        total = plan.weight_per_bit * len(plan.kept_bits) + plan.static_masked_bits
        assert total == pytest.approx(width)

    def test_pred_weight_conservation(self):
        plan = plan_bits(4, 16)
        assert plan.weight_per_bit * len(plan.kept_bits) + plan.static_masked_bits == 4
