"""Adaptive loop-iteration selection tests (paper III-D closing remark)."""

import pytest

from repro import FaultInjector
from repro.pruning import ProgressivePruner, stable_loop_iterations
from tests.conftest import injector_for
from tests.helpers import build_loop_sum_instance


class TestStableLoopIterations:
    def test_uniform_loop_stabilises_immediately(self):
        """loop_sum's iterations are identical, so the profile is flat and
        the sweep stops at the earliest allowed point."""
        injector = FaultInjector(build_loop_sum_instance(n_threads=2, iters=8))
        sweep = stable_loop_iterations(
            injector,
            epsilon=2.0,
            patience=2,
            max_iter=8,
            pruner=ProgressivePruner(n_bits=4),
        )
        assert sweep.chosen_num_iter <= 4
        assert sweep.chosen_profile.n_injections > 0

    def test_history_is_monotone_in_num_iter(self):
        injector = FaultInjector(build_loop_sum_instance(n_threads=2, iters=8))
        sweep = stable_loop_iterations(
            injector, max_iter=5, pruner=ProgressivePruner(n_bits=4)
        )
        nums = [n for n, _ in sweep.history()]
        assert nums == sorted(nums)
        assert nums[0] == 1

    def test_spaces_grow_with_num_iter(self):
        injector = injector_for("gemm.k1")
        sweep = stable_loop_iterations(
            injector,
            epsilon=100.0,  # stop ASAP; we only inspect the first two steps
            patience=1,
            max_iter=4,
            pruner=ProgressivePruner(n_bits=4),
        )
        if len(sweep.spaces) >= 2:
            sizes = [sweep.spaces[n].n_injections for n in sorted(sweep.spaces)]
            assert sizes[0] <= sizes[-1]

    def test_chosen_profile_close_to_fixed_high_setting(self):
        injector = injector_for("pathfinder.k1")
        sweep = stable_loop_iterations(
            injector, epsilon=3.0, patience=2, max_iter=8,
            pruner=ProgressivePruner(n_bits=4),
        )
        reference = ProgressivePruner(n_bits=4, num_loop_iters=8).prune(injector)
        ref_profile = reference.estimate_profile(injector)
        assert sweep.chosen_profile.max_abs_error(ref_profile) < 8.0
        # The paper lands between 3 and 15 sampled iterations.
        assert 2 <= sweep.chosen_num_iter <= 15
