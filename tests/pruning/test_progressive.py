"""End-to-end pipeline tests: invariants, accuracy, reduction reporting."""

import numpy as np
import pytest

from repro import FaultInjector, ProgressivePruner, random_campaign
from repro.pruning import reduction_row
from tests.conftest import injector_for
from tests.helpers import build_loop_sum_instance, build_saxpy_instance


class TestWeightInvariant:
    """sum(site weights) + statically-masked weight == exhaustive sites.

    Exact whenever loop iterations are uniform (or loop-wise is off);
    loop_sum and saxpy both satisfy that, as do several real kernels.
    """

    def test_saxpy_exact(self):
        injector = FaultInjector(build_saxpy_instance())
        space = ProgressivePruner().prune(injector)
        assert space.weight_total() == pytest.approx(space.total_sites)

    def test_loop_sum_exact(self):
        injector = FaultInjector(build_loop_sum_instance())
        space = ProgressivePruner(num_loop_iters=3).prune(injector)
        assert space.weight_total() == pytest.approx(space.total_sites)

    def test_exact_without_loopwise_on_real_kernels(self):
        pruner = ProgressivePruner(enable_loopwise=False)
        for key in ["2dconv.k1", "gemm.k1", "pathfinder.k1"]:
            injector = injector_for(key)
            space = pruner.prune(injector)
            assert space.weight_total() == pytest.approx(space.total_sites)

    def test_approximate_with_loopwise(self):
        injector = injector_for("gemm.k1")
        space = ProgressivePruner().prune(injector)
        # GEMM loop iterations are uniform -> still exact.
        assert space.weight_total() == pytest.approx(space.total_sites)


class TestStageMonotonicity:
    @pytest.mark.parametrize("key", ["2dconv.k1", "gemm.k1", "pathfinder.k1", "k-means.k2"])
    def test_each_stage_never_grows_sites(self, key):
        space = ProgressivePruner().prune(injector_for(key))
        counts = [s.sites_after for s in space.stages]
        assert counts[0] <= space.total_sites
        for before, after in zip(counts, counts[1:]):
            assert after <= before

    def test_stage_names_in_order(self):
        space = ProgressivePruner().prune(injector_for("gemm.k1"))
        assert [s.name for s in space.stages] == [
            "thread-wise", "instruction-wise", "loop-wise", "bit-wise",
        ]


class TestStageToggles:
    def test_disabling_bitwise_keeps_all_bits(self):
        injector = injector_for("gemm.k1")
        on = ProgressivePruner().prune(injector)
        off = ProgressivePruner(enable_bitwise=False).prune(injector)
        assert off.n_injections > on.n_injections
        assert off.static_masked_weight >= 0.0

    def test_disabling_instructionwise(self):
        injector = injector_for("pathfinder.k1")
        on = ProgressivePruner(enable_loopwise=False).prune(injector)
        off = ProgressivePruner(
            enable_loopwise=False, enable_instructionwise=False
        ).prune(injector)
        assert off.n_injections >= on.n_injections

    def test_seed_changes_loop_sample(self):
        injector = injector_for("gemm.k1")
        a = ProgressivePruner(seed=1).prune(injector)
        b = ProgressivePruner(seed=2).prune(injector)
        sites_a = {ws.site for ws in a.sites}
        sites_b = {ws.site for ws in b.sites}
        assert sites_a != sites_b

    def test_same_seed_is_deterministic(self):
        injector = injector_for("gemm.k1")
        a = ProgressivePruner(seed=5).prune(injector)
        b = ProgressivePruner(seed=5).prune(injector)
        assert [(ws.site, ws.weight) for ws in a.sites] == [
            (ws.site, ws.weight) for ws in b.sites
        ]


class TestAccuracy:
    """The headline claim: the pruned space reproduces the profile."""

    @pytest.mark.parametrize("key", ["gemm.k1", "2dconv.k1"])
    def test_estimate_close_to_random_baseline(self, key):
        injector = injector_for(key)
        space = ProgressivePruner(num_loop_iters=4, n_bits=8).prune(injector)
        estimated = space.estimate_profile(injector)
        baseline = random_campaign(injector, 500, rng=2018).profile
        # 500 runs -> ~±4.4pp at 95%; allow the combined error budget.
        assert estimated.max_abs_error(baseline) < 10.0

    def test_all_sites_injectable(self):
        injector = injector_for("lud.k46")
        space = ProgressivePruner(n_bits=4).prune(injector)
        profile = space.estimate_profile(injector)
        assert profile.total_weight == pytest.approx(space.weight_total())


class TestReductionReport:
    def test_row_roundtrip(self):
        injector = injector_for("gemm.k1")
        space = ProgressivePruner().prune(injector)
        row = reduction_row("gemm.k1", space, baseline_runs=1067)
        assert row.exhaustive == space.total_sites
        assert row.after_bitwise == space.n_injections
        assert row.orders_of_magnitude > 2.0
        assert 0 < row.normalized["+bit-wise"] < 1

    def test_reduction_factor(self):
        injector = injector_for("2dconv.k1")
        space = ProgressivePruner().prune(injector)
        assert space.reduction_factor() > 100


class TestGroundTruth:
    """Direct validation against exhaustive injection (small kernels only).

    gaussian.k125's space is ~6K sites, small enough to enumerate: the
    pruned estimate (~90 runs) must reproduce the exhaustive profile.
    This is the strongest form of the paper's accuracy claim, and it
    regression-tests the instruction-wise applicability rule (borrowing a
    short idle thread's prologue from an active donor once skewed this
    kernel by >20pp).
    """

    def test_k125_estimate_matches_exhaustive(self):
        from repro import exhaustive_campaign

        injector = injector_for("gaussian.k125")
        truth = exhaustive_campaign(injector).profile
        space = ProgressivePruner(n_bits=4, num_loop_iters=4).prune(injector)
        estimate = space.estimate_profile(injector)
        assert space.n_injections < truth.n_injections / 50
        assert estimate.max_abs_error(truth) < 5.0
