"""Stage-1 (thread-wise) pruning tests."""

import numpy as np
import pytest

from repro.errors import PruningError
from repro.gpu import LaunchGeometry
from repro.pruning import prune_threads
from tests.conftest import injector_for


def synthetic_traces():
    """2 CTAs x 4 threads; CTA0 has iCnt mix {3,3,5,5}, CTA1 {3,3,3,3}."""
    t3 = [(0, 32)] * 3
    t5 = [(0, 32)] * 5
    return [t3, t3, t5, t5, t3, t3, t3, t3], LaunchGeometry(grid=(2, 1), block=(4, 1))


class TestSynthetic:
    def test_cta_groups_split_on_mean(self):
        traces, geo = synthetic_traces()
        tw = prune_threads(traces, geo)
        assert len(tw.cta_groups) == 2

    def test_thread_groups_by_exact_icnt(self):
        traces, geo = synthetic_traces()
        tw = prune_threads(traces, geo)
        icnts = sorted(g.icnt for g in tw.thread_groups)
        assert icnts == [3, 3, 5]  # {3,5} in CTA0, {3} in CTA1

    def test_weights_cover_exhaustive_space(self):
        traces, geo = synthetic_traces()
        tw = prune_threads(traces, geo)
        assert tw.weight_check() == pytest.approx(tw.total_sites)

    def test_group_weight_proportional_to_population(self):
        traces, geo = synthetic_traces()
        tw = prune_threads(traces, geo)
        # CTA1's single group stands for 4 threads x 3 instrs x 32 bits.
        cta1_group = next(g for g in tw.thread_groups if g.cta_group == 1)
        assert cta1_group.site_weight == pytest.approx(4 * 3 * 32)

    def test_per_site_weight(self):
        traces, geo = synthetic_traces()
        tw = prune_threads(traces, geo)
        cta1_group = next(g for g in tw.thread_groups if g.cta_group == 1)
        assert cta1_group.per_site_weight == pytest.approx(4.0)

    def test_representative_is_member(self):
        traces, geo = synthetic_traces()
        tw = prune_threads(traces, geo)
        for g in tw.thread_groups:
            assert g.representative in g.threads

    def test_rng_choice_stays_in_group(self):
        traces, geo = synthetic_traces()
        tw = prune_threads(traces, geo, rng=np.random.default_rng(0))
        for g in tw.thread_groups:
            assert g.representative in g.threads

    def test_signature_method_splits_different_mixes(self):
        # Same mean, different multiset: {3,5} vs {4,4}.
        t3, t4, t5 = [(0, 32)] * 3, [(0, 32)] * 4, [(0, 32)] * 5
        traces = [t3, t5, t4, t4]
        geo = LaunchGeometry(grid=(2, 1), block=(2, 1))
        mean_groups = prune_threads(traces, geo, method="mean")
        sig_groups = prune_threads(traces, geo, method="signature")
        assert len(mean_groups.cta_groups) == 1
        assert len(sig_groups.cta_groups) == 2

    def test_unknown_method_rejected(self):
        traces, geo = synthetic_traces()
        with pytest.raises(PruningError):
            prune_threads(traces, geo, method="vibes")

    def test_trace_count_must_match_geometry(self):
        traces, geo = synthetic_traces()
        with pytest.raises(PruningError):
            prune_threads(traces[:-1], geo)


class TestRealKernels:
    def test_gemm_collapses_to_one_representative(self):
        inj = injector_for("gemm.k1")
        tw = prune_threads(inj.traces, inj.instance.geometry)
        assert len(tw.thread_groups) == 1
        assert tw.sites_after == inj.space.thread_sites(tw.representatives[0])

    def test_pathfinder_two_representatives(self):
        inj = injector_for("pathfinder.k1")
        tw = prune_threads(inj.traces, inj.instance.geometry)
        assert len(tw.thread_groups) == 2

    def test_2dconv_three_cta_groups(self):
        inj = injector_for("2dconv.k1")
        tw = prune_threads(inj.traces, inj.instance.geometry)
        assert len(tw.cta_groups) == 3  # corner / edge / centre

    def test_hotspot_three_cta_groups(self):
        inj = injector_for("hotspot.k1")
        tw = prune_threads(inj.traces, inj.instance.geometry)
        assert len(tw.cta_groups) == 3

    def test_weights_cover_space_on_all_kernels(self):
        for key in ["2dconv.k1", "hotspot.k1", "gemm.k1", "lud.k46", "k-means.k2"]:
            inj = injector_for(key)
            tw = prune_threads(inj.traces, inj.instance.geometry)
            assert tw.weight_check() == pytest.approx(inj.space.total_sites)

    def test_huge_reduction_on_wide_kernels(self):
        inj = injector_for("2dconv.k1")
        tw = prune_threads(inj.traces, inj.instance.geometry)
        assert tw.sites_after < tw.total_sites / 50
